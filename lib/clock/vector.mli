(** Vector-order algebra (paper Equation (2)).

    Timestamps throughout the library are plain [int array]s compared with
    the strict vector order: [u < v] iff every component of [u] is ≤ the
    matching component of [v] and some component is strictly smaller. *)

type t = int array

val zero : int -> t
val copy : t -> t
val size : t -> int

val lt : t -> t -> bool
(** Strict vector order. Raises [Invalid_argument] on size mismatch. *)

val leq : t -> t -> bool
(** [lt] or structurally equal. *)

val concurrent : t -> t -> bool
(** Incomparable and distinct. *)

val compare_order : t -> t -> [ `Lt | `Gt | `Eq | `Concurrent ]
(** One-pass classification of the pair. *)

val max_into : dst:t -> t -> unit
(** Componentwise maximum, written into [dst]. *)

val merge : t -> t -> t
(** Fresh componentwise maximum. *)

val merge_into : dst:t -> t -> t -> unit
(** [merge_into ~dst u v] writes the componentwise maximum of [u] and [v]
    into [dst] without allocating. [dst] may alias [u] or [v]. *)

val blit_into : dst:t -> t -> unit
(** Overwrite [dst] with the components of [src]. *)

val incr : t -> int -> unit
(** Increment one component in place. *)

val equal : t -> t -> bool
(** Componentwise equality (monomorphic int loop, no polymorphic
    compare). Raises [Invalid_argument] on size mismatch. *)

val to_string : t -> string
(** [(1,0,2)] style. *)

val pp : Format.formatter -> t -> unit
