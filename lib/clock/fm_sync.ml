module Trace = Synts_sync.Trace

let timestamp_store ?store ?rows trace =
  let n = Trace.n trace in
  let dim = max n 1 in
  let mcount = Trace.message_count trace in
  let store =
    match store with
    | Some s ->
        if Stamp_store.dim s <> dim then
          invalid_arg "Fm_sync.timestamp_store: store dimension mismatch";
        Stamp_store.clear s;
        s
    | None -> Stamp_store.create ~capacity:(mcount + 2) dim
  in
  let row_of_id =
    match rows with
    | Some r when Array.length r >= mcount -> r
    | Some _ -> invalid_arg "Fm_sync.timestamp_store: rows array too short"
    | None -> Array.make (max mcount 1) (-1)
  in
  let zero = Stamp_store.push_zero store in
  let local_row = Array.make dim zero in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let row =
        Stamp_store.push_merge store ~a:local_row.(src) ~b:local_row.(dst)
      in
      Stamp_store.row_incr store row src;
      Stamp_store.row_incr store row dst;
      local_row.(src) <- row;
      local_row.(dst) <- row;
      row_of_id.(m.Trace.id) <- row)
    (Trace.messages trace);
  (store, row_of_id)

let timestamp_trace trace =
  let store, row_of_id = timestamp_store trace in
  Array.init (Trace.message_count trace) (fun id ->
      Stamp_store.get store row_of_id.(id))

(* Seed implementation, kept as the equivalence oracle for the slab path. *)
let timestamp_trace_reference trace =
  let n = Trace.n trace in
  let local = Array.init n (fun _ -> Vector.zero n) in
  let out = Array.make (Trace.message_count trace) [||] in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let v = Vector.merge local.(src) local.(dst) in
      Vector.incr v src;
      Vector.incr v dst;
      local.(src) <- Vector.copy v;
      local.(dst) <- v;
      out.(m.Trace.id) <- Vector.copy v)
    (Trace.messages trace);
  out

let precedes = Vector.lt
let entries_per_message ~n = 2 * n
