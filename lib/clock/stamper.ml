module Trace = Synts_sync.Trace

module type S = sig
  type state
  type stamp

  val name : string
  val exact : bool
  val init : unit -> state
  val on_send : state -> src:int -> dst:int -> string
  val on_receive : state -> src:int -> dst:int -> string -> string * stamp
  val stamp_size_bytes : stamp -> int
  val precedes : state -> stamp -> stamp -> bool
end

type t = (module S)

type run = {
  name : string;
  exact : bool;
  payload_bytes : int;
  stamp_bytes : int array;
  precedes : int -> int -> bool;
}

let run (module M : S) trace =
  let state = M.init () in
  let k = Trace.message_count trace in
  let stamps : M.stamp option array = Array.make k None in
  let bytes = ref 0 in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let req = M.on_send state ~src ~dst in
      let ack, stamp = M.on_receive state ~src ~dst req in
      bytes := !bytes + String.length req + String.length ack;
      stamps.(m.Trace.id) <- Some stamp)
    (Trace.messages trace);
  let get i =
    match stamps.(i) with
    | Some s -> s
    | None -> invalid_arg "Stamper.run: message id out of range"
  in
  {
    name = M.name;
    exact = M.exact;
    payload_bytes = !bytes;
    stamp_bytes = Array.init k (fun i -> M.stamp_size_bytes (get i));
    precedes = (fun i j -> M.precedes state (get i) (get j));
  }

let decode_exn who s =
  match Wire.decode s with
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "%s: bad payload (%s)" who e)

(* ---------- synchronous Fidge–Mattern ---------- *)

let fm_sync ~n : t =
  (module struct
    type state = Vector.t array
    type stamp = Vector.t

    let name = "fm-sync"
    let exact = true
    let init () = Array.init n (fun _ -> Vector.zero n)
    let on_send state ~src ~dst:_ = Wire.encode state.(src)

    let on_receive state ~src ~dst req =
      let incoming = decode_exn name req in
      let ack = Wire.encode state.(dst) in
      let v = Vector.merge incoming state.(dst) in
      Vector.incr v src;
      Vector.incr v dst;
      state.(src) <- Vector.copy v;
      state.(dst) <- v;
      (ack, Vector.copy v)

    let stamp_size_bytes = Wire.encoded_bytes
    let precedes _ = Vector.lt
  end)

(* ---------- Lamport scalars ---------- *)

let lamport ~n : t =
  (module struct
    type state = int array
    type stamp = int

    let name = "lamport"
    let exact = false
    let init () = Array.make n 0
    let on_send state ~src ~dst:_ = Wire.encode [| state.(src) |]

    let on_receive state ~src ~dst req =
      let incoming = (decode_exn name req).(0) in
      let ack = Wire.encode [| state.(dst) |] in
      let c = 1 + max incoming state.(dst) in
      state.(src) <- c;
      state.(dst) <- c;
      (ack, c)

    let stamp_size_bytes c = Wire.encoded_bytes [| c |]
    let precedes _ c1 c2 = c1 < c2
  end)

(* ---------- Fowler–Zwaenepoel direct dependency ---------- *)

let direct_dependency ~n : t =
  (module struct
    type state = {
      last : int array;  (* last message id per process, -1 when none *)
      mutable preds : int list array;  (* grown by doubling *)
      mutable count : int;
    }

    type stamp = int  (* the message id *)

    let name = "direct-dep"
    let exact = true

    let init () = { last = Array.make n (-1); preds = Array.make 16 []; count = 0 }

    (* The wire carries one sequence number each way (the sender's and
       receiver's previous message ids, offset to stay non-negative). *)
    let on_send state ~src ~dst:_ = Wire.encode [| state.last.(src) + 1 |]

    let on_receive state ~src ~dst _req =
      let ack = Wire.encode [| state.last.(dst) + 1 |] in
      let id = state.count in
      if id >= Array.length state.preds then begin
        let bigger = Array.make (2 * Array.length state.preds) [] in
        Array.blit state.preds 0 bigger 0 (Array.length state.preds);
        state.preds <- bigger
      end;
      state.preds.(id) <-
        List.sort_uniq compare
          (List.filter (fun x -> x >= 0) [ state.last.(src); state.last.(dst) ]);
      state.count <- id + 1;
      state.last.(src) <- id;
      state.last.(dst) <- id;
      (ack, id)

    let stamp_size_bytes id = Wire.encoded_bytes [| id + 1 |]

    (* Transitive search through the log; ids decrease along predecessor
       edges, bounding the walk. *)
    let precedes state m1 m2 =
      let visited = Array.make (max 1 state.count) false in
      let rec reaches m =
        m = m1
        || (m > m1
           && List.exists
                (fun p ->
                  (not visited.(p))
                  && begin
                       visited.(p) <- true;
                       reaches p
                     end)
                state.preds.(m))
      in
      m1 >= 0 && m2 >= 0 && m1 < state.count && m2 < state.count && m1 <> m2
      && reaches m2
  end)

(* ---------- Singhal–Kshemkalyani differential transmission ---------- *)

let singhal_kshemkalyani ~n : t =
  (module struct
    type state = {
      local : Vector.t array;
      (* what [src] last sent to [dst] / what [dst] last decoded from
         [src]; the two views agree because transmission is lossless, so
         one matrix serves both directions of the diff. *)
      last_exchanged : Vector.t array array;
    }

    type stamp = Vector.t

    let name = "singhal-kshemkalyani"
    let exact = true

    let init () =
      {
        local = Array.init n (fun _ -> Vector.zero n);
        last_exchanged =
          Array.init n (fun _ -> Array.init n (fun _ -> Vector.zero n));
      }

    let diff_from state ~src ~dst =
      let payload = Wire.encode_diff ~prev:state.last_exchanged.(src).(dst) state.local.(src) in
      state.last_exchanged.(src).(dst) <- Vector.copy state.local.(src);
      payload

    let apply_diff state ~src ~dst payload =
      match Wire.decode_diff ~prev:state.last_exchanged.(src).(dst) payload with
      | Ok v ->
          state.last_exchanged.(src).(dst) <- Vector.copy v;
          v
      | Error e -> invalid_arg (Printf.sprintf "%s: bad diff (%s)" name e)

    let on_send state ~src ~dst = diff_from state ~src ~dst

    let on_receive state ~src ~dst req =
      (* The receiver reconstructs the sender's vector from the diff (its
         record of the last exchange matches the sender's), answers with
         its own pre-merge diff, then both sides merge and increment. *)
      let incoming = apply_diff state ~src ~dst req in
      let ack = diff_from state ~src:dst ~dst:src in
      let v = Vector.merge incoming state.local.(dst) in
      Vector.incr v src;
      Vector.incr v dst;
      state.local.(src) <- Vector.copy v;
      state.local.(dst) <- v;
      (ack, Vector.copy v)

    let stamp_size_bytes = Wire.encoded_bytes
    let precedes _ = Vector.lt
  end)

(* ---------- plausible (comb) clocks ---------- *)

let plausible ~n ~r : t =
  if r < 1 then invalid_arg "Stamper.plausible: r must be >= 1";
  (module struct
    type state = Vector.t array
    type stamp = Vector.t

    let name = Printf.sprintf "plausible-r%d" r
    let exact = false
    let class_of p = p mod r
    let init () = Array.init n (fun _ -> Vector.zero r)
    let on_send state ~src ~dst:_ = Wire.encode state.(src)

    let on_receive state ~src ~dst req =
      let incoming = decode_exn name req in
      let ack = Wire.encode state.(dst) in
      let v = Vector.merge incoming state.(dst) in
      Vector.incr v (class_of src);
      if class_of dst <> class_of src then Vector.incr v (class_of dst);
      state.(src) <- Vector.copy v;
      state.(dst) <- v;
      (ack, Vector.copy v)

    let stamp_size_bytes = Wire.encoded_bytes
    let precedes _ = Vector.lt
  end)

let baselines ~n ?(r = 4) () =
  [
    fm_sync ~n;
    lamport ~n;
    direct_dependency ~n;
    singhal_kshemkalyani ~n;
    plausible ~n ~r;
  ]
