type t = int array

let zero n = Array.make n 0
let copy = Array.copy
let size = Array.length

let check a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector: size mismatch"

let compare_order u v =
  check u v;
  let some_lt = ref false and some_gt = ref false in
  for k = 0 to Array.length u - 1 do
    if u.(k) < v.(k) then some_lt := true;
    if u.(k) > v.(k) then some_gt := true
  done;
  match (!some_lt, !some_gt) with
  | true, false -> `Lt
  | false, true -> `Gt
  | false, false -> `Eq
  | true, true -> `Concurrent

let lt u v = compare_order u v = `Lt
let leq u v = match compare_order u v with `Lt | `Eq -> true | _ -> false
let concurrent u v = compare_order u v = `Concurrent

let max_into ~dst src =
  check dst src;
  for k = 0 to Array.length dst - 1 do
    if src.(k) > dst.(k) then dst.(k) <- src.(k)
  done

let merge u v =
  let w = copy u in
  max_into ~dst:w v;
  w

let merge_into ~dst u v =
  check dst u;
  check dst v;
  for k = 0 to Array.length dst - 1 do
    let a = Array.unsafe_get u k and b = Array.unsafe_get v k in
    Array.unsafe_set dst k (if a > b then a else b)
  done

let blit_into ~dst src =
  check dst src;
  Array.blit src 0 dst 0 (Array.length src)

let incr v k =
  if k < 0 || k >= Array.length v then invalid_arg "Vector.incr: out of range";
  v.(k) <- v.(k) + 1

(* Monomorphic: the polymorphic [u = v] walks the runtime representation
   through caml_compare on every precedence test. *)
let equal u v =
  check u v;
  let k = ref 0 and n = Array.length u in
  while !k < n && Array.unsafe_get u !k = Array.unsafe_get v !k do
    Stdlib.incr k
  done;
  !k = n

let to_string v =
  "(" ^ String.concat "," (List.map string_of_int (Array.to_list v)) ^ ")"

let pp ppf v = Format.pp_print_string ppf (to_string v)
