(** Flat slab of fixed-width timestamps.

    A store holds [rows] timestamps of [dim] components each in one
    contiguous [int array]; row [r] occupies words [r*dim .. r*dim+dim-1].
    The stamping kernels ({!Synts_core.Online.timestamp_store},
    [Fm_sync.timestamp_store], ...) append one row per message into a
    store instead of allocating a fresh vector per message, so a whole
    trace costs one slab (amortised by doubling) rather than M short-lived
    arrays. Rows are addressed by index and are conceptually immutable
    once the next row has been pushed; [get] copies a row out as an
    ordinary {!Vector.t} when callers need a standalone value. *)

type t

val create : ?capacity:int -> int -> t
(** [create ?capacity dim] makes an empty store of [dim]-component rows.
    [capacity] (default 64) is the initial row capacity; the slab doubles
    as needed. [dim = 0] is allowed (degenerate decompositions produce
    zero-width stamps); negative [dim] raises [Invalid_argument]. *)

val dim : t -> int
val rows : t -> int

val clear : t -> unit
(** Forget all rows (capacity is kept). *)

val truncate : t -> int -> unit
(** Keep only the first [k] rows (the streaming stamper compacts live
    rows to the front and drops the rest). *)

(** {1 Appending} — each returns the new row's index. *)

val push_zero : t -> int
(** Append an all-zero row. *)

val push : t -> Vector.t -> int
(** Append a copy of a vector. Raises [Invalid_argument] on size
    mismatch. *)

val push_row : t -> int -> int
(** [push_row t r] appends a copy of row [r]. *)

val push_merge : t -> a:int -> b:int -> int
(** [push_merge t ~a ~b] appends the componentwise maximum of rows [a]
    and [b] — one fused pass over the slab, no intermediate vector. *)

(** {1 In-place row updates} *)

val row_incr : t -> int -> int -> unit
(** [row_incr t r k] increments component [k] of row [r]. *)

val row_set : t -> int -> int -> int -> unit
(** [row_set t r k v] writes component [k] of row [r]. *)

val blit_rows : t -> src:int -> dst:int -> unit
(** Overwrite row [dst] with row [src]. *)

(** {1 Reading} *)

val get : t -> int -> Vector.t
(** Copy row [r] out as a fresh vector. *)

val get_into : t -> int -> Vector.t -> unit
(** Copy row [r] into a caller-owned vector without allocating. *)

val unsafe_cell : t -> int -> int -> int
(** [unsafe_cell t r k] reads component [k] of row [r] (bounds-checked
    on the slab only). *)

val to_array : t -> Vector.t array
(** Materialise every row, in order. *)

(** {1 Row comparisons} — all monomorphic, none allocate. *)

val equal_rows : t -> int -> int -> bool
val compare_rows : t -> int -> int -> [ `Lt | `Gt | `Eq | `Concurrent ]
val lt_rows : t -> int -> int -> bool
val concurrent_rows : t -> int -> int -> bool

val diff_count : t -> int -> int -> int
(** Number of components on which the two rows differ (the
    Singhal–Kshemkalyani "entries that changed since last send"). *)

(** {1 Checkpoint / restore} — durable snapshots for crash recovery. *)

type checkpoint
(** An immutable snapshot of a store's rows, detached from the slab. *)

val checkpoint : t -> checkpoint
(** Snapshot the current rows (copies them out — the checkpoint is
    unaffected by later pushes, truncation or clearing). *)

val restore : t -> checkpoint -> unit
(** Overwrite the store's contents with the snapshot (row count and all
    cells). The store must have the same [dim] as the checkpoint's
    source; raises [Invalid_argument] otherwise. *)
