(** One interface over every message-timestamping scheme.

    Each scheme — the paper's edge-decomposition clocks
    ({!Synts_core.Stampers.edge}) and the five baselines below — is
    packaged as a first-class module implementing {!S}: a state shared
    by all processes, the two halves of the rendezvous ([on_send]
    produces the REQ payload, [on_receive] consumes it, replies with
    the ACK payload and yields the message's timestamp), a per-stamp
    wire size, and the scheme's precedence test. Validators, the
    experiment suite and the benchmarks iterate over
    [(module Stamper.S) list] values instead of hand-written per-scheme
    branches; {!run} is the shared trace driver. *)

module type S = sig
  type state
  (** Shared by every process of the computation (the driver feeds one
      linearization, so no synchronization is needed). *)

  type stamp

  val name : string

  val exact : bool
  (** Whether [precedes] characterizes ↦ exactly (complete and sound),
      or is only sound — Lamport and plausible clocks may order
      concurrent messages. *)

  val init : unit -> state
  (** Fresh clocks for a new computation. Topology parameters (process
      count, decomposition, comb size) are fixed when the first-class
      module is built. *)

  val on_send : state -> src:int -> dst:int -> string
  (** The payload piggybacked on the REQ packet of a rendezvous
      [src → dst]. Does not complete the message. *)

  val on_receive : state -> src:int -> dst:int -> string -> string * stamp
  (** Consume the REQ payload at [dst]; returns the ACK payload (what
      travels back to the sender, counted toward wire cost) and the
      message's timestamp, updating both endpoints' clocks. *)

  val stamp_size_bytes : stamp -> int
  (** Wire size of a stored timestamp (varint encoding). *)

  val precedes : state -> stamp -> stamp -> bool
  (** The scheme's [m1 ↦ m2] test; [state] is available because some
      schemes (direct dependency) answer from a log, not the stamp. *)
end

type t = (module S)

(** The result of driving one scheme over one trace: per-message-id
    accessors that survive the existential stamp type. *)
type run = {
  name : string;
  exact : bool;
  payload_bytes : int;  (** Total REQ + ACK payload bytes. *)
  stamp_bytes : int array;  (** Per message id. *)
  precedes : int -> int -> bool;  (** By message id. *)
}

val run : t -> Synts_sync.Trace.t -> run
(** Feed every message of the trace (in linearization order) through
    [on_send]/[on_receive]. *)

(** {1 Baseline instances}

    The paper's own scheme lives in [Synts_core.Stampers] (it needs an
    edge decomposition, which the clock library does not know about). *)

val fm_sync : n:int -> t
(** Synchronous Fidge–Mattern: N-component vectors, exact. *)

val lamport : n:int -> t
(** Scalar clocks: sound only. *)

val direct_dependency : n:int -> t
(** Fowler–Zwaenepoel: constant wire cost, O(M) query via the log;
    exact. *)

val singhal_kshemkalyani : n:int -> t
(** FM vectors with differential transmission; exact, same stamps as
    {!fm_sync}. *)

val plausible : n:int -> r:int -> t
(** Torres-Rojas/Ahamad comb vectors of size [r]: sound only. *)

val baselines : n:int -> ?r:int -> unit -> t list
(** The five instances above; [r] (default 4) sizes the plausible
    comb. *)
