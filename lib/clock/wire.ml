let varint_bytes v =
  let rec go v acc = if v < 0x80 then acc + 1 else go (v lsr 7) (acc + 1) in
  if v < 0 then invalid_arg "Wire: negative value" else go v 0

let put_varint buf v =
  if v < 0 then invalid_arg "Wire: negative value";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

(* Returns (value, next offset) or raises Exit on truncation/overflow. *)
let get_varint s off =
  let len = String.length s in
  let rec go off shift acc =
    if off >= len || shift > 56 then raise Exit
    else begin
      let b = Char.code s.[off] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if acc < 0 then raise Exit
      else if b land 0x80 = 0 then (acc, off + 1)
      else go (off + 1) (shift + 7) acc
    end
  in
  go off 0 0

let encode v =
  let buf = Buffer.create (Array.length v + 1) in
  put_varint buf (Array.length v);
  Array.iter (put_varint buf) v;
  Buffer.contents buf

let encoded_bytes v =
  Array.fold_left (fun acc x -> acc + varint_bytes x) (varint_bytes (Array.length v)) v

let decode s =
  match
    let count, off = get_varint s 0 in
    if count > String.length s then raise Exit;
    let v = Array.make count 0 in
    let off = ref off in
    for i = 0 to count - 1 do
      let x, next = get_varint s !off in
      v.(i) <- x;
      off := next
    done;
    if !off <> String.length s then Error "trailing bytes" else Ok v
  with
  | result -> result
  | exception Exit -> Error "truncated or malformed varint"

(* FNV-1a, 32-bit. One pass, no allocation; any single-bit flip of the
   payload changes the digest (xor-then-multiply never cancels a lone
   flipped bit), which is the property the rendezvous layer relies on. *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let encode_framed v =
  let body = encode v in
  let buf = Buffer.create (String.length body + 5) in
  put_varint buf (checksum body);
  Buffer.add_string buf body;
  Buffer.contents buf

let decode_framed s =
  match get_varint s 0 with
  | exception Exit -> Error "truncated checksum frame"
  | expected, off ->
      let body = String.sub s off (String.length s - off) in
      if checksum body <> expected then Error "checksum mismatch"
      else decode body

let encode_diff ~prev v =
  if Array.length prev <> Array.length v then
    invalid_arg "Wire.encode_diff: size mismatch";
  let changed = ref [] in
  Array.iteri (fun i x -> if x <> prev.(i) then changed := (i, x) :: !changed) v;
  let changed = List.rev !changed in
  let buf = Buffer.create 16 in
  put_varint buf (List.length changed);
  List.iter
    (fun (i, x) ->
      put_varint buf i;
      put_varint buf x)
    changed;
  Buffer.contents buf

let decode_diff ~prev s =
  match
    let count, off = get_varint s 0 in
    let v = Array.copy prev in
    let off = ref off in
    for _ = 1 to count do
      let i, next = get_varint s !off in
      let x, next = get_varint s next in
      if i >= Array.length v then raise Exit;
      v.(i) <- x;
      off := next
    done;
    if !off <> String.length s then Error "trailing bytes" else Ok v
  with
  | result -> result
  | exception Exit -> Error "truncated or malformed diff"
