let varint_bytes v =
  let rec go v acc = if v < 0x80 then acc + 1 else go (v lsr 7) (acc + 1) in
  if v < 0 then invalid_arg "Wire: negative value" else go v 0

let put_varint buf v =
  if v < 0 then invalid_arg "Wire: negative value";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

(* Returns (value, next offset) or raises Exit on truncation/overflow. *)
let get_varint s off =
  let len = String.length s in
  let rec go off shift acc =
    if off >= len || shift > 56 then raise Exit
    else begin
      let b = Char.code s.[off] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if acc < 0 then raise Exit
      else if b land 0x80 = 0 then (acc, off + 1)
      else go (off + 1) (shift + 7) acc
    end
  in
  go off 0 0

let read_varint s off =
  match get_varint s off with
  | value, next -> Some (value, next)
  | exception Exit -> None

let encode v =
  let buf = Buffer.create (Array.length v + 1) in
  put_varint buf (Array.length v);
  Array.iter (put_varint buf) v;
  Buffer.contents buf

let encoded_bytes v =
  Array.fold_left (fun acc x -> acc + varint_bytes x) (varint_bytes (Array.length v)) v

let decode s =
  match
    let count, off = get_varint s 0 in
    if count > String.length s then raise Exit;
    let v = Array.make count 0 in
    let off = ref off in
    for i = 0 to count - 1 do
      let x, next = get_varint s !off in
      v.(i) <- x;
      off := next
    done;
    if !off <> String.length s then Error "trailing bytes" else Ok v
  with
  | result -> result
  | exception Exit -> Error "truncated or malformed varint"

(* FNV-1a, 32-bit. One pass, no allocation; any single-bit flip of the
   payload changes the digest (xor-then-multiply never cancels a lone
   flipped bit), which is the property the rendezvous layer relies on. *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

(* ---------- checksum framing, versioned ----------

   Version 0 (the PR 5 seed frame) is a bare varint checksum followed by
   the body. Version 1 prefixes a magic byte and a version byte, so a
   server can reject a client speaking a future protocol revision with a
   clear error instead of a baffling checksum failure. Decoding accepts
   both: v0 frames remain readable (the fault-injection suites replay
   recorded v0 traffic), and any byte string that happens to start with
   the magic byte but fails the versioned parse is retried as v0 before
   an error is reported. *)

let magic = '\xD7'
let current_version = 1

let frame ?(version = current_version) body =
  let buf = Buffer.create (String.length body + 7) in
  (match version with
  | 0 -> ()
  | 1 ->
      Buffer.add_char buf magic;
      Buffer.add_char buf (Char.chr current_version)
  | v -> invalid_arg (Printf.sprintf "Wire.frame: unknown version %d" v));
  put_varint buf (checksum body);
  Buffer.add_string buf body;
  Buffer.contents buf

let unframe_v0 s =
  match get_varint s 0 with
  | exception Exit -> Error "truncated checksum frame"
  | expected, off ->
      let body = String.sub s off (String.length s - off) in
      if checksum body <> expected then Error "checksum mismatch" else Ok body

let unframe s =
  if String.length s >= 2 && s.[0] = magic then begin
    let version = Char.code s.[1] in
    let versioned =
      if version <> current_version then
        Error
          (Printf.sprintf
             "unsupported wire version %d (this build speaks 0 and %d)" version
             current_version)
      else
        match get_varint s 2 with
        | exception Exit -> Error "truncated checksum frame"
        | expected, off ->
            let body = String.sub s off (String.length s - off) in
            if checksum body <> expected then Error "checksum mismatch"
            else Ok body
    in
    match versioned with
    | Ok _ as ok -> ok
    | Error _ as e -> (
        (* The magic byte may be a coincidence in a v0 frame; only if the
           legacy parse also fails do we surface the versioned error. *)
        match unframe_v0 s with Ok _ as ok -> ok | Error _ -> e)
  end
  else unframe_v0 s

let frame_version s =
  if String.length s >= 2 && s.[0] = magic then Char.code s.[1] else 0

let encode_framed ?version v = frame ?version (encode v)
let decode_framed s = Result.bind (unframe s) decode

(* ---------- epoch-tagged vectors ----------

   Under churn a vector is only meaningful relative to the epoch whose
   slot layout it uses, so the wire shape is [varint epoch · encode v].
   A receiver on a newer epoch decodes the old frame and translates it
   through the membership remap chain instead of rejecting it — stale
   frames degrade to one table lookup, not a connection error. *)

let encode_epoch ~epoch v =
  if epoch < 0 then invalid_arg "Wire.encode_epoch: negative epoch";
  let buf = Buffer.create (Array.length v + 2) in
  put_varint buf epoch;
  put_varint buf (Array.length v);
  Array.iter (put_varint buf) v;
  Buffer.contents buf

let decode_epoch s =
  match get_varint s 0 with
  | exception Exit -> Error "truncated epoch tag"
  | epoch, off ->
      Result.map
        (fun v -> (epoch, v))
        (decode (String.sub s off (String.length s - off)))

let encode_epoch_framed ?version ~epoch v = frame ?version (encode_epoch ~epoch v)
let decode_epoch_framed s = Result.bind (unframe s) decode_epoch

let encode_diff ~prev v =
  if Array.length prev <> Array.length v then
    invalid_arg "Wire.encode_diff: size mismatch";
  let changed = ref [] in
  Array.iteri (fun i x -> if x <> prev.(i) then changed := (i, x) :: !changed) v;
  let changed = List.rev !changed in
  let buf = Buffer.create 16 in
  put_varint buf (List.length changed);
  List.iter
    (fun (i, x) ->
      put_varint buf i;
      put_varint buf x)
    changed;
  Buffer.contents buf

let decode_diff ~prev s =
  match
    let count, off = get_varint s 0 in
    let v = Array.copy prev in
    let off = ref off in
    for _ = 1 to count do
      let i, next = get_varint s !off in
      let x, next = get_varint s next in
      if i >= Array.length v then raise Exit;
      v.(i) <- x;
      off := next
    done;
    if !off <> String.length s then Error "trailing bytes" else Ok v
  with
  | result -> result
  | exception Exit -> Error "truncated or malformed diff"
