(** Fidge–Mattern message timestamps for synchronous computations — the
    N-component baseline the paper improves on.

    One component per process. For a message between [Pi] and [Pj], the two
    processes exchange vectors (the message and its acknowledgement), take
    the componentwise maximum and each increments its own component; the
    resulting common vector is the message's timestamp. This encodes
    [(M, ↦)] exactly, at O(N) space and piggyback cost per message. *)

val timestamp_trace : Synts_sync.Trace.t -> Vector.t array
(** One N-sized vector per message id. *)

val timestamp_store :
  ?store:Stamp_store.t ->
  ?rows:int array ->
  Synts_sync.Trace.t ->
  Stamp_store.t * int array
(** Zero-allocation form: stamps land in a {!Stamp_store} slab; the
    returned array maps message id to slab row. [?store]/[?rows] allow
    buffer reuse across traces. *)

val timestamp_trace_reference : Synts_sync.Trace.t -> Vector.t array
(** The pre-slab seed implementation (equivalence oracle for tests). *)

val precedes : Vector.t -> Vector.t -> bool
(** [Vector.lt]. *)

val entries_per_message : n:int -> int
(** Piggyback cost in vector entries for one message + acknowledgement:
    [2 * n]. *)
