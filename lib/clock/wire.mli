(** Wire encoding of timestamp vectors.

    Makes the piggyback-cost comparisons concrete at the byte level:
    vectors are LEB128-varint encoded with a length prefix, so a fresh
    clock costs one byte per component and mature clocks grow
    logarithmically with their counters. {!encode_diff} is the
    Singhal–Kshemkalyani transmission: only [(index, value)] pairs that
    changed since the peer last saw the vector. *)

val put_varint : Buffer.t -> int -> unit
(** Append one LEB128 varint (non-negative; raises [Invalid_argument]
    otherwise). Exposed so higher protocols — the [synts serve] message
    codec — share one integer encoding. *)

val varint_bytes : int -> int
(** Encoded size of one varint, without building it. *)

val read_varint : string -> int -> (int * int) option
(** [read_varint s off] is [Some (value, next_offset)], or [None] on
    truncation / overflow past 63 bits. *)

val encode : Vector.t -> string
(** Length-prefixed varint encoding. *)

val decode : string -> (Vector.t, string) result
(** Inverse of {!encode}; descriptive errors on truncated or trailing
    input. *)

val encoded_bytes : Vector.t -> int
(** [String.length (encode v)] without building the string. *)

val checksum : string -> int
(** 32-bit FNV-1a digest of a byte string. Any single-bit flip of the
    input changes the digest. *)

(** {1 Checksum framing}

    Frames are versioned. Version 1 (current) is
    [magic byte · version byte · varint checksum · body]; version 0 (the
    original frame, still emitted by [~version:0] and always accepted on
    decode) omits the two-byte prefix. A frame carrying an {e unknown}
    version is rejected with a descriptive ["unsupported wire version"]
    error — how [synts serve] turns away mismatched clients — rather
    than a misleading checksum failure. *)

val magic : char
(** First byte of every versioned frame ([0xD7]). *)

val current_version : int
(** The frame version this build emits (1). *)

val frame : ?version:int -> string -> string
(** Wrap an arbitrary body in a checksum frame. [version] defaults to
    {!current_version}; [0] emits the legacy prefix-free frame; other
    values raise [Invalid_argument]. *)

val unframe : string -> (string, string) result
(** Validate and strip a frame of either version, returning the body.
    Errors: ["checksum mismatch"] (bit-flip corruption),
    ["unsupported wire version N ..."], ["truncated checksum frame"]. *)

val frame_version : string -> int
(** The version a frame announces: the version byte after {!magic},
    or [0] for legacy frames. *)

val encode_framed : ?version:int -> Vector.t -> string
(** [frame ?version (encode v)] — a vector in a checksum frame. *)

val decode_framed : string -> (Vector.t, string) result
(** Inverse of {!encode_framed}, accepting both frame versions;
    [Error "checksum mismatch"] when the body does not hash to the
    stored digest (bit-flip corruption), other errors as {!decode} or
    {!unframe}. *)

(** {1 Epoch-tagged vectors}

    Under churn ({!Synts_graph.Membership}) a stamp is only meaningful
    together with the epoch whose slot layout it uses; these frames
    carry [varint epoch] before the vector so a receiver on a newer
    epoch can decode a stale frame and translate it through the remap
    chain instead of rejecting it. *)

val encode_epoch : epoch:int -> Vector.t -> string
(** [varint epoch · encode v]. Raises [Invalid_argument] when [epoch]
    is negative. *)

val decode_epoch : string -> (int * Vector.t, string) result
(** Inverse of {!encode_epoch}. *)

val encode_epoch_framed : ?version:int -> epoch:int -> Vector.t -> string
(** {!encode_epoch} inside a checksum frame (see {!frame}). *)

val decode_epoch_framed : string -> (int * Vector.t, string) result

val encode_diff : prev:Vector.t -> Vector.t -> string
(** Sparse encoding of the entries where [v] differs from [prev] (count,
    then (index, value) varint pairs). Sizes must match. *)

val decode_diff : prev:Vector.t -> string -> (Vector.t, string) result
(** Apply a sparse diff to the previously known vector (fresh copy). *)
