(** Wire encoding of timestamp vectors.

    Makes the piggyback-cost comparisons concrete at the byte level:
    vectors are LEB128-varint encoded with a length prefix, so a fresh
    clock costs one byte per component and mature clocks grow
    logarithmically with their counters. {!encode_diff} is the
    Singhal–Kshemkalyani transmission: only [(index, value)] pairs that
    changed since the peer last saw the vector. *)

val encode : Vector.t -> string
(** Length-prefixed varint encoding. *)

val decode : string -> (Vector.t, string) result
(** Inverse of {!encode}; descriptive errors on truncated or trailing
    input. *)

val encoded_bytes : Vector.t -> int
(** [String.length (encode v)] without building the string. *)

val checksum : string -> int
(** 32-bit FNV-1a digest of a byte string. Any single-bit flip of the
    input changes the digest. *)

val encode_framed : Vector.t -> string
(** {!encode} prefixed with a varint {!checksum} of the body, so the
    receiving end can reject corrupted payloads. *)

val decode_framed : string -> (Vector.t, string) result
(** Inverse of {!encode_framed}; [Error "checksum mismatch"] when the
    body does not hash to the stored digest (bit-flip corruption),
    other errors as {!decode}. *)

val encode_diff : prev:Vector.t -> Vector.t -> string
(** Sparse encoding of the entries where [v] differs from [prev] (count,
    then (index, value) varint pairs). Sizes must match. *)

val decode_diff : prev:Vector.t -> string -> (Vector.t, string) result
(** Apply a sparse diff to the previously known vector (fresh copy). *)
