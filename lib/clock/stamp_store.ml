type t = { mutable slab : int array; dim : int; mutable rows : int }

let create ?(capacity = 64) dim =
  if dim < 0 then invalid_arg "Stamp_store.create: negative dim";
  let capacity = max capacity 1 in
  { slab = Array.make (capacity * dim) 0; dim; rows = 0 }

let dim t = t.dim
let rows t = t.rows
let clear t = t.rows <- 0

let truncate t k =
  if k < 0 || k > t.rows then invalid_arg "Stamp_store.truncate: bad row count";
  t.rows <- k

let check_row t r name =
  if r < 0 || r >= t.rows then invalid_arg ("Stamp_store." ^ name ^ ": bad row")

(* Ensure capacity for one more row and return its base offset; the new
   row's cells are NOT cleared. *)
let reserve t =
  let base = t.rows * t.dim in
  if base + t.dim > Array.length t.slab then begin
    let bigger = Array.make (2 * Array.length t.slab) 0 in
    Array.blit t.slab 0 bigger 0 base;
    t.slab <- bigger
  end;
  t.rows <- t.rows + 1;
  base

let push_zero t =
  let base = reserve t in
  Array.fill t.slab base t.dim 0;
  t.rows - 1

let push t v =
  if Array.length v <> t.dim then invalid_arg "Stamp_store.push: size mismatch";
  let base = reserve t in
  Array.blit v 0 t.slab base t.dim;
  t.rows - 1

let push_row t r =
  check_row t r "push_row";
  let base = reserve t in
  (* reserve may have swapped slabs; recompute nothing — blit within. *)
  Array.blit t.slab (r * t.dim) t.slab base t.dim;
  t.rows - 1

let push_merge t ~a ~b =
  check_row t a "push_merge";
  check_row t b "push_merge";
  let base = reserve t in
  let slab = t.slab in
  let pa = a * t.dim and pb = b * t.dim in
  for k = 0 to t.dim - 1 do
    let x = Array.unsafe_get slab (pa + k)
    and y = Array.unsafe_get slab (pb + k) in
    Array.unsafe_set slab (base + k) (if x > y then x else y)
  done;
  t.rows - 1

let row_incr t r k =
  check_row t r "row_incr";
  if k < 0 || k >= t.dim then invalid_arg "Stamp_store.row_incr: bad component";
  let i = (r * t.dim) + k in
  t.slab.(i) <- t.slab.(i) + 1

let row_set t r k v =
  check_row t r "row_set";
  if k < 0 || k >= t.dim then invalid_arg "Stamp_store.row_set: bad component";
  t.slab.((r * t.dim) + k) <- v

let blit_rows t ~src ~dst =
  check_row t src "blit_rows";
  check_row t dst "blit_rows";
  Array.blit t.slab (src * t.dim) t.slab (dst * t.dim) t.dim

let get t r =
  check_row t r "get";
  Array.sub t.slab (r * t.dim) t.dim

let get_into t r v =
  check_row t r "get_into";
  if Array.length v <> t.dim then
    invalid_arg "Stamp_store.get_into: size mismatch";
  Array.blit t.slab (r * t.dim) v 0 t.dim

let unsafe_cell t r k = t.slab.((r * t.dim) + k)
let to_array t = Array.init t.rows (fun r -> get t r)

let compare_rows t a b =
  check_row t a "compare_rows";
  check_row t b "compare_rows";
  let slab = t.slab in
  let pa = a * t.dim and pb = b * t.dim in
  let some_lt = ref false and some_gt = ref false in
  for k = 0 to t.dim - 1 do
    let x = Array.unsafe_get slab (pa + k)
    and y = Array.unsafe_get slab (pb + k) in
    if x < y then some_lt := true;
    if x > y then some_gt := true
  done;
  match (!some_lt, !some_gt) with
  | true, false -> `Lt
  | false, true -> `Gt
  | false, false -> `Eq
  | true, true -> `Concurrent

let equal_rows t a b = compare_rows t a b = `Eq
let lt_rows t a b = compare_rows t a b = `Lt
let concurrent_rows t a b = compare_rows t a b = `Concurrent

type checkpoint = { c_dim : int; c_rows : int; c_data : int array }

let checkpoint t =
  { c_dim = t.dim; c_rows = t.rows; c_data = Array.sub t.slab 0 (t.rows * t.dim) }

let restore t ck =
  if ck.c_dim <> t.dim then invalid_arg "Stamp_store.restore: dim mismatch";
  let words = ck.c_rows * ck.c_dim in
  if words > Array.length t.slab then begin
    let bigger = Array.make (max words (2 * Array.length t.slab)) 0 in
    t.slab <- bigger
  end;
  Array.blit ck.c_data 0 t.slab 0 words;
  t.rows <- ck.c_rows

let diff_count t a b =
  check_row t a "diff_count";
  check_row t b "diff_count";
  let slab = t.slab in
  let pa = a * t.dim and pb = b * t.dim in
  let c = ref 0 in
  for k = 0 to t.dim - 1 do
    if Array.unsafe_get slab (pa + k) <> Array.unsafe_get slab (pb + k) then
      Stdlib.incr c
  done;
  !c
