module Trace = Synts_sync.Trace

type stats = { messages : int; entries_sent : int; full_entries : int }

let simulate trace =
  let n = Trace.n trace in
  let dim = max n 1 in
  let mcount = Trace.message_count trace in
  (* One slab holds everything: rows [0 .. n*n-1] are the last-sent
     matrix (row [i*n + j] is i's vector as of its last payload to j,
     initially zero — the same semantics as "never sent"), row [n*n] is
     the shared zero start vector, and each message appends one stamp
     row.  The per-message cost is one fused merge plus one diff + blit
     per direction; no vectors are copied. *)
  let store = Stamp_store.create ~capacity:((n * n) + mcount + 2) dim in
  for _ = 1 to n * n do
    ignore (Stamp_store.push_zero store)
  done;
  let zero = Stamp_store.push_zero store in
  let local_row = Array.make dim zero in
  let out_row = Array.make (max mcount 1) (-1) in
  let entries = ref 0 in
  (* [a] transmits its current vector to [b]: count the entries that
     differ from the last payload on this channel, then remember the
     vector as the new last payload. *)
  let exchange a b =
    let cell = (a * n) + b in
    entries := !entries + Stamp_store.diff_count store cell local_row.(a);
    Stamp_store.blit_rows store ~src:local_row.(a) ~dst:cell
  in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      (* Program message carries src's diff; the ack carries dst's diff
         (of dst's pre-merge vector, as in the paper's Figure 5 line 04). *)
      exchange src dst;
      exchange dst src;
      let row =
        Stamp_store.push_merge store ~a:local_row.(src) ~b:local_row.(dst)
      in
      Stamp_store.row_incr store row src;
      Stamp_store.row_incr store row dst;
      local_row.(src) <- row;
      local_row.(dst) <- row;
      out_row.(m.Trace.id) <- row)
    (Trace.messages trace);
  let out = Array.init mcount (fun id -> Stamp_store.get store out_row.(id)) in
  ( out,
    {
      messages = mcount;
      entries_sent = !entries;
      full_entries = 2 * n * mcount;
    } )

(* Seed implementation, kept as the equivalence oracle for the slab path. *)
let simulate_reference trace =
  let n = Trace.n trace in
  let local = Array.init n (fun _ -> Vector.zero n) in
  (* last_sent.(i).(j) is a copy of i's vector as of the last payload i sent
     to j; only entries differing from it are transmitted. *)
  let last_sent = Array.init n (fun _ -> Array.make n [||]) in
  let changed_entries src dst v =
    let prev = last_sent.(src).(dst) in
    let count = ref 0 in
    for k = 0 to n - 1 do
      let old = if prev = [||] then 0 else prev.(k) in
      if v.(k) <> old then incr count
    done;
    last_sent.(src).(dst) <- Vector.copy v;
    !count
  in
  let out = Array.make (Trace.message_count trace) [||] in
  let entries = ref 0 in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      entries := !entries + changed_entries src dst local.(src);
      entries := !entries + changed_entries dst src local.(dst);
      let v = Vector.merge local.(src) local.(dst) in
      Vector.incr v src;
      Vector.incr v dst;
      local.(src) <- Vector.copy v;
      local.(dst) <- v;
      out.(m.Trace.id) <- Vector.copy v)
    (Trace.messages trace);
  let messages = Trace.message_count trace in
  (out, { messages; entries_sent = !entries; full_entries = 2 * n * messages })

let average_entries_per_message stats =
  if stats.messages = 0 then 0.0
  else float_of_int stats.entries_sent /. float_of_int stats.messages
