(** Singhal–Kshemkalyani differential vector transmission.

    Processes still keep full Fidge–Mattern vectors but piggyback only the
    [(index, value)] pairs that changed since the last exchange with the
    same peer. Produces exactly the {!Fm_sync} timestamps; what differs is
    the wire cost, which {!simulate} measures so the benchmark suite can
    compare it with the paper's O(d) piggybacking. *)

type stats = {
  messages : int;  (** Program messages (each also carries one ack). *)
  entries_sent : int;
      (** Total [(index, value)] pairs carried by all messages and acks. *)
  full_entries : int;
      (** What plain FM would have carried: [2 * N * messages]. *)
}

val simulate : Synts_sync.Trace.t -> Vector.t array * stats
(** Timestamps (identical to [Fm_sync.timestamp_trace]) plus wire cost.
    Runs over a single {!Stamp_store} slab (stamps + the last-sent
    matrix), so the sweep itself performs no per-message vector copies. *)

val simulate_reference : Synts_sync.Trace.t -> Vector.t array * stats
(** The pre-slab seed implementation (equivalence oracle for tests). *)

val average_entries_per_message : stats -> float
(** [entries_sent / messages] — counting each entry as two words (index
    and value) is left to the caller. *)
