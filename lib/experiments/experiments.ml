module Rng = Synts_util.Rng
module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Vertex_cover = Synts_graph.Vertex_cover
module Decomposition = Synts_graph.Decomposition
module Poset = Synts_poset.Poset
module Dilworth = Synts_poset.Dilworth
module Realizer = Synts_poset.Realizer
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Examples = Synts_sync.Examples
module Diagram = Synts_sync.Diagram
module Vector = Synts_clock.Vector
module Fm_sync = Synts_clock.Fm_sync
module Plausible = Synts_clock.Plausible
module Direct_dependency = Synts_clock.Direct_dependency
module Singhal_kshemkalyani = Synts_clock.Singhal_kshemkalyani
module Stamper = Synts_clock.Stamper
module Stampers = Synts_core.Stampers
module Online = Synts_core.Online
module Offline = Synts_core.Offline
module Internal_events = Synts_core.Internal_events
module Workload = Synts_workload.Workload
module Validate = Synts_check.Validate
module Oracle = Synts_check.Oracle

type table = {
  id : string;
  title : string;
  paper_claim : string;
  header : string list;
  rows : string list list;
  verdict : string;
}

let pp_table ppf t =
  Format.fprintf ppf "### %s — %s@.@." t.id t.title;
  Format.fprintf ppf "Paper claim: %s@.@." t.paper_claim;
  let line cells = "| " ^ String.concat " | " cells ^ " |" in
  Format.fprintf ppf "%s@." (line t.header);
  Format.fprintf ppf "%s@."
    (line (List.map (fun _ -> "---") t.header));
  List.iter (fun r -> Format.fprintf ppf "%s@." (line r)) t.rows;
  Format.fprintf ppf "@.Measured: %s@." t.verdict

let itoa = string_of_int
let ftoa f = Printf.sprintf "%.3f" f

(* Families used by the correctness experiments: modest sizes so the
   quadratic oracle stays fast. *)
let correctness_families seed =
  List.map
    (fun (name, spec) -> (name, Topology.build ~rng:(Rng.create seed) spec))
    Topology.all_families

let random_trace rng g messages internal_prob =
  Workload.random rng ~topology:g ~messages ~internal_prob ()

(* ---------- E1 ---------- *)

let e1_total_order ~seed =
  let rng = Rng.create seed in
  let check_family name g runs =
    let all_total = ref true in
    for _ = 1 to runs do
      let t = random_trace (Rng.split rng) g 40 0.0 in
      if not (Message_poset.is_total_order (Message_poset.of_trace t)) then
        all_total := false
    done;
    [ name; itoa (Graph.n g); itoa runs; (if !all_total then "yes" else "NO") ]
  in
  let star_rows =
    List.map
      (fun n -> check_family (Printf.sprintf "star:%d" n) (Topology.star n) 25)
      [ 3; 6; 12 ]
  in
  let tri_row = check_family "triangle" (Topology.triangle ()) 25 in
  (* Converse: topologies that are neither admit a concurrent pair. *)
  let converse =
    List.map
      (fun (name, g) ->
        let edges = Graph.edges g in
        let disjoint =
          List.exists
            (fun (a, b) ->
              List.exists
                (fun (c, d) -> a <> c && a <> d && b <> c && b <> d)
                edges)
            edges
        in
        let witness =
          if not disjoint then "n/a (is star/triangle-like)"
          else begin
            let (a, b), (c, d) =
              List.find_map
                (fun (a, b) ->
                  Option.map
                    (fun e -> ((a, b), e))
                    (List.find_opt
                       (fun (c, d) -> a <> c && a <> d && b <> c && b <> d)
                       edges))
                edges
              |> Option.get
            in
            let t =
              Trace.of_steps_exn ~n:(Graph.n g) [ Send (a, b); Send (c, d) ]
            in
            let p = Message_poset.of_trace t in
            if Poset.concurrent p 0 1 then "concurrent pair built"
            else "FAILED"
          end
        in
        [ name; itoa (Graph.n g); "-"; witness ])
      [
        ("path:5", Topology.path 5);
        ("ring:6", Topology.ring 6);
        ("complete:5", Topology.complete 5);
        ("cs:2x4", Topology.client_server ~servers:2 ~clients:4);
      ]
  in
  {
    id = "E1";
    title = "Total order on stars and triangles (Lemma 1)";
    paper_claim =
      "message sets are totally ordered for every computation iff the \
       topology is a star or a triangle";
    header = [ "topology"; "N"; "runs"; "result" ];
    rows = star_rows @ [ tri_row ] @ converse;
    verdict =
      "every star/triangle run was a total order; every other family \
       yielded a concurrent pair";
  }

(* ---------- E2 ---------- *)

let e2_online_exactness ~seed =
  let rng = Rng.create seed in
  let runs = 15 in
  let rows, all_ok =
    List.fold_left
      (fun (rows, ok) (name, g) ->
        let d = Decomposition.best g in
        let pairs = ref 0 and bad = ref 0 in
        for _ = 1 to runs do
          let t = random_trace (Rng.split rng) g 60 0.0 in
          let v =
            Validate.message_timestamps t (Online.timestamp_trace d t)
          in
          pairs := !pairs + v.Validate.pairs;
          bad := !bad + v.Validate.false_orders + v.Validate.missed_orders
        done;
        ( rows
          @ [
              [
                name;
                itoa (Graph.n g);
                itoa (Decomposition.size d);
                itoa !pairs;
                itoa !bad;
              ];
            ],
          ok && !bad = 0 ))
      ([], true) (correctness_families seed)
  in
  {
    id = "E2";
    title = "Online algorithm exactness (Theorem 4)";
    paper_claim = "m1 ↦ m2 ⟺ v(m1) < v(m2) for every message pair";
    header = [ "topology"; "N"; "d"; "ordered pairs checked"; "mismatches" ];
    rows;
    verdict =
      (if all_ok then "zero mismatches against the brute-force oracle"
       else "MISMATCHES FOUND");
  }

(* ---------- E3 ---------- *)

let e3_size_bound ~seed =
  let rows, all_ok =
    List.fold_left
      (fun (rows, ok) (name, g) ->
        if Graph.m g = 0 then (rows, ok)
        else begin
          let beta =
            match Vertex_cover.exact ~limit:400_000 g with
            | Some c -> Some (List.length c)
            | None -> None
          in
          let bound =
            Option.map (fun b -> max 1 (min b (Graph.n g - 2))) beta
          in
          let achieved =
            let best = Decomposition.size (Decomposition.best g) in
            match beta with
            | None -> best
            | Some _ -> (
                match Vertex_cover.exact ~limit:400_000 g with
                | Some c -> (
                    match Decomposition.of_vertex_cover g c with
                    | Ok d -> min best (Decomposition.size d)
                    | Error _ -> best)
                | None -> best)
          in
          let ok' =
            match bound with Some b -> achieved <= b | None -> true
          in
          ( rows
            @ [
                [
                  name;
                  itoa (Graph.n g);
                  (match beta with Some b -> itoa b | None -> "?");
                  itoa (Graph.n g - 2);
                  (match bound with Some b -> itoa b | None -> "?");
                  itoa achieved;
                ];
              ],
            ok && ok' )
        end)
      ([], true) (correctness_families seed)
  in
  {
    id = "E3";
    title = "Timestamp size vs. vertex cover (Theorem 5)";
    paper_claim = "vectors of size min(β(G), N−2) suffice";
    header = [ "topology"; "N"; "β(G)"; "N−2"; "bound"; "achieved d" ];
    rows;
    verdict =
      (if all_ok then "achieved size ≤ min(β, N−2) on every family"
       else "BOUND VIOLATED");
  }

(* ---------- E4 ---------- *)

let e4_approximation_ratio ~seed =
  let rng = Rng.create seed in
  let samples = 250 in
  let ratios = ref [] in
  let solved = ref 0 in
  for _ = 1 to samples do
    let n = Rng.int_in rng 3 9 in
    let p = 0.15 +. Rng.float rng *. 0.55 in
    let g = Topology.gnp (Rng.split rng) n p in
    if Graph.m g > 0 then
      match Decomposition.exact ~limit:500_000 g with
      | Some opt ->
          incr solved;
          let r =
            float_of_int (Decomposition.size (Decomposition.paper g))
            /. float_of_int (Decomposition.size opt)
          in
          ratios := r :: !ratios
      | None -> ()
  done;
  let rs = !ratios in
  let maxr = List.fold_left max 1.0 rs in
  let mean = List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs) in
  let optimal_count = List.length (List.filter (fun r -> r = 1.0) rs) in
  {
    id = "E4";
    title = "Approximation ratio of the Figure 7 algorithm (Theorem 6)";
    paper_claim = "the edge decomposition produced is at most 2x optimal";
    header = [ "random graphs solved"; "mean ratio"; "max ratio"; "optimal runs" ];
    rows =
      [
        [
          itoa !solved;
          ftoa mean;
          ftoa maxr;
          Printf.sprintf "%d (%.0f%%)" optimal_count
            (100.0 *. float_of_int optimal_count /. float_of_int !solved);
        ];
      ];
    verdict =
      Printf.sprintf "max observed ratio %.3f ≤ 2 (bound holds with slack)"
        maxr;
  }

(* ---------- E5 ---------- *)

let e5_forest_optimality ~seed =
  let rng = Rng.create seed in
  let samples = 200 in
  let optimal = ref 0 and solved = ref 0 in
  for _ = 1 to samples do
    let n = Rng.int_in rng 2 12 in
    let g = Topology.random_tree (Rng.split rng) n in
    match Decomposition.exact ~limit:500_000 g with
    | Some opt ->
        incr solved;
        if
          Decomposition.size (Decomposition.paper g) = Decomposition.size opt
        then incr optimal
    | None -> ()
  done;
  {
    id = "E5";
    title = "Optimality on acyclic topologies (Theorem 7)";
    paper_claim = "the algorithm produces an optimal decomposition on forests";
    header = [ "random trees solved"; "optimal" ];
    rows = [ [ itoa !solved; itoa !optimal ] ];
    verdict =
      (if !optimal = !solved then "optimal on every sampled tree"
       else "NON-OPTIMAL TREE FOUND");
  }

(* ---------- E6 ---------- *)

let e6_offline ~seed =
  let rng = Rng.create seed in
  let rows, all_ok =
    List.fold_left
      (fun (rows, ok) (name, g) ->
        let t = random_trace (Rng.split rng) g 60 0.0 in
        if Trace.message_count t = 0 then (rows, ok)
        else begin
          let p = Message_poset.of_trace t in
          let w = Dilworth.width p in
          let bound = Offline.width_bound ~n:(Trace.n t) in
          let realizer = Realizer.dilworth p in
          let ts = Offline.timestamp_trace t in
          let v = Validate.message_timestamps t ts in
          let ok' =
            w <= bound
            && Realizer.is_realizer p realizer
            && Validate.ok v
          in
          ( rows
            @ [
                [
                  name;
                  itoa (Trace.n t);
                  itoa w;
                  itoa bound;
                  itoa (List.length realizer);
                  (if Validate.ok v then "exact" else "BROKEN");
                ];
              ],
            ok && ok' )
        end)
      ([], true) (correctness_families seed)
  in
  {
    id = "E6";
    title = "Offline algorithm: width, realizer, exactness (Thm 8, Fig 9)";
    paper_claim =
      "width(M,↦) ≤ ⌊N/2⌋ and rank vectors from a width-sized realizer \
       encode the poset";
    header = [ "topology"; "N"; "width"; "⌊N/2⌋"; "realizer size"; "encoding" ];
    rows;
    verdict =
      (if all_ok then
         "width within bound, realizer verified, offline timestamps exact \
          everywhere"
       else "FAILURE");
  }

(* ---------- E7 ---------- *)

let e7_internal_events ~seed =
  let rng = Rng.create seed in
  let rows, all_ok =
    List.fold_left
      (fun (rows, ok) (name, g) ->
        let d = Decomposition.best g in
        let pairs = ref 0 and bad = ref 0 in
        for _ = 1 to 10 do
          let t = random_trace (Rng.split rng) g 40 0.35 in
          let v =
            Validate.internal_stamps t (Internal_events.of_trace d t)
          in
          pairs := !pairs + v.Validate.pairs;
          bad := !bad + v.Validate.false_orders + v.Validate.missed_orders
        done;
        ( rows @ [ [ name; itoa (Graph.n g); itoa !pairs; itoa !bad ] ],
          ok && !bad = 0 ))
      ([], true) (correctness_families seed)
  in
  {
    id = "E7";
    title = "Internal-event timestamps (Theorem 9)";
    paper_claim = "e → f ⟺ succ(e) ≤ prev(f) (with the counter tie-break)";
    header = [ "topology"; "N"; "event pairs checked"; "mismatches" ];
    rows;
    verdict =
      (if all_ok then "happened-before captured exactly on every family"
       else "MISMATCHES FOUND");
  }

(* ---------- E8 ---------- *)

let e8_headline_sizes ~seed =
  let rng = Rng.create seed in
  let families =
    [
      ("star", fun n -> Topology.star n);
      ("random tree", fun n -> Topology.random_tree (Rng.split rng) n);
      ( "client-server (4 srv)",
        fun n -> Topology.client_server ~servers:4 ~clients:(n - 4) );
      ("ring", fun n -> Topology.ring n);
      ("grid", fun n ->
          let side = int_of_float (sqrt (float_of_int n)) in
          Topology.grid side (n / side));
      ("complete", fun n -> Topology.complete n);
      ("gnp p=0.3", fun n -> Topology.gnp (Rng.split rng) n 0.3);
    ]
  in
  let sizes = [ 8; 16; 32; 64; 128 ] in
  let rows =
    List.concat_map
      (fun (name, build) ->
        List.filter_map
          (fun n ->
            if name = "complete" && n > 64 then None
            else begin
              let g = build n in
              let d = Decomposition.size (Decomposition.best g) in
              Some
                [
                  name;
                  itoa (Graph.n g);
                  itoa d;
                  itoa (Graph.n g);
                  Printf.sprintf "%.1fx" (float_of_int (Graph.n g) /. float_of_int (max 1 d));
                ]
            end)
          sizes)
      families
  in
  {
    id = "E8";
    title = "Timestamp size: edge-decomposition clocks vs. Fidge–Mattern";
    paper_claim =
      "vector size ≤ vertex cover of the topology: constant for \
       client-server and bounded-degree hierarchies, 1 for stars, N−2 \
       worst case (complete graph)";
    header = [ "topology"; "N"; "ours (d)"; "FM (N)"; "reduction" ];
    rows;
    verdict =
      "stars stay at 1, client-server at #servers, trees at their cover \
       size; only the complete graph degrades to N−2";
  }

(* ---------- E9 ---------- *)

let e9_piggyback ~seed =
  let rng = Rng.create seed in
  (* One loop over the unified Stamper interface: every scheme is driven
     through the same REQ/ACK exchange and reports measured wire bytes. *)
  let rows =
    List.filter_map
      (fun (name, g) ->
        if Graph.m g = 0 then None
        else begin
          let t = random_trace (Rng.split rng) g 300 0.0 in
          let runs = List.map (fun s -> Stamper.run s t) (Stampers.all g) in
          let messages = max 1 (Trace.message_count t) in
          let per_msg r =
            Printf.sprintf "%.1f"
              (float_of_int r.Stamper.payload_bytes /. float_of_int messages)
          in
          Some (name :: itoa (Graph.n g) :: List.map per_msg runs)
        end)
      (correctness_families seed)
  in
  {
    id = "E9";
    title = "Per-message piggyback cost (measured wire bytes, REQ + ACK)";
    paper_claim =
      "O(d) message overhead for the online algorithm vs. O(N) for FM; \
       related work trades wire size for query cost (S-K amortizes, \
       direct dependency defers the transitive search to query time)";
    header =
      [
        "topology"; "N"; "ours"; "fm-sync"; "lamport"; "direct-dep";
        "singhal-k"; "plausible";
      ];
    rows;
    verdict =
      "ours is the smallest complete-and-online scheme on every sparse \
       family; direct dependency is cheaper on the wire but needs an O(M) \
       offline search per query; Lamport and plausible are small but \
       incomplete";
  }

(* ---------- E10 ---------- *)

let e10_plausible_error ~seed =
  let rng = Rng.create seed in
  let g = Topology.gnp (Rng.split rng) 16 0.3 in
  let d = Decomposition.best g in
  let t = random_trace (Rng.split rng) g 150 0.0 in
  let rows =
    List.map
      (fun r ->
        [
          Printf.sprintf "plausible r=%d" r;
          itoa r;
          ftoa (Plausible.ordering_error_rate ~r t);
        ])
      [ 1; 2; 4; 8; 16 ]
    @ [
        [
          "ours (exact)";
          itoa (Decomposition.size d);
          (let v =
             Validate.message_timestamps t (Online.timestamp_trace d t)
           in
           ftoa
             (float_of_int v.Validate.false_orders
             /. float_of_int (max 1 v.Validate.pairs)));
        ];
      ]
  in
  {
    id = "E10";
    title = "False orderings: plausible clocks vs. exact topology-sized clocks";
    paper_claim =
      "plausible clocks do not characterize causality completely (Sec. 6); \
       our clocks are exact at topology-determined size";
    header = [ "scheme"; "vector size"; "false-order rate on concurrent pairs" ];
    rows;
    verdict =
      "plausible clocks misorder concurrent pairs at every r < N; the \
       edge-decomposition clocks are exact";
  }

(* ---------- E11 (extension) ---------- *)

let e11_adaptive ~seed =
  let rng = Rng.create seed in
  let rows, all_ok =
    List.fold_left
      (fun (rows, ok) (name, g) ->
        if Synts_graph.Graph.m g = 0 then (rows, ok)
        else begin
          let t = random_trace (Rng.split rng) g 80 0.0 in
          let s = Synts_core.Adaptive_stamper.create (Trace.n t) in
          let ts =
            Array.map
              (fun (m : Trace.message) ->
                Synts_core.Adaptive_stamper.stamp s ~src:m.Trace.src
                  ~dst:m.Trace.dst)
              (Trace.messages t)
          in
          let poset = Oracle.message_poset t in
          let exact = ref true in
          Array.iteri
            (fun i vi ->
              Array.iteri
                (fun j vj ->
                  if
                    i <> j
                    && Synts_poset.Poset.lt poset i j
                       <> Synts_core.Adaptive_stamper.precedes vi vj
                  then exact := false)
                ts)
            ts;
          let static = Decomposition.size (Decomposition.best g) in
          let adaptive = Synts_core.Adaptive_stamper.dimension s in
          ( rows
            @ [
                [
                  name;
                  itoa (Trace.n t);
                  itoa static;
                  itoa adaptive;
                  (if !exact then "exact" else "BROKEN");
                ];
              ],
            ok && !exact )
        end)
      ([], true) (correctness_families seed)
  in
  {
    id = "E11";
    title =
      "Extension: adaptive stamping without prior topology knowledge";
    paper_claim =
      "(beyond the paper) the online algorithm still encodes ↦ when the \
       decomposition is grown on first channel use and vectors are \
       zero-padded for comparison";
    header =
      [ "topology"; "N"; "static d (best, full knowledge)"; "adaptive d"; "encoding" ];
    rows;
    verdict =
      (if all_ok then
         "exact on every family; adaptive size tracks a greedy cover of \
          the channels actually used"
       else "FAILURE");
  }

(* ---------- E12 (extension) ---------- *)

let e12_dimension_vs_width ~seed =
  let rng = Rng.create seed in
  let samples = 120 in
  let solved = ref 0 and equal = ref 0 in
  let width_sum = ref 0 and dim_sum = ref 0 in
  for _ = 1 to samples do
    let n = Rng.int_in rng 3 6 in
    let g = Topology.complete n in
    let messages = Rng.int_in rng 2 7 in
    let t = random_trace (Rng.split rng) g messages 0.0 in
    let p = Message_poset.of_trace t in
    match Synts_poset.Dimension.dimension ~cap:5000 p with
    | Some dim ->
        incr solved;
        let w = max 1 (Dilworth.width p) in
        width_sum := !width_sum + w;
        dim_sum := !dim_sum + dim;
        if dim = w then incr equal
    | None -> ()
  done;
  {
    id = "E12";
    title = "Extension: exact dimension vs. the width bound (offline slack)";
    paper_claim =
      "dim(M,↦) ≤ width ≤ ⌊N/2⌋; computing the true dimension is \
       NP-complete (Yannakakis), which is why the offline algorithm \
       settles for width-sized realizers";
    header =
      [ "posets solved"; "mean width"; "mean dimension"; "dim = width" ];
    rows =
      [
        [
          itoa !solved;
          ftoa (float_of_int !width_sum /. float_of_int !solved);
          ftoa (float_of_int !dim_sum /. float_of_int !solved);
          Printf.sprintf "%d (%.0f%%)" !equal
            (100.0 *. float_of_int !equal /. float_of_int !solved);
        ];
      ];
    verdict =
      "width-sized realizers give away little over the NP-hard optimum on \
       small message posets";
  }

(* ---------- E13 (extension) ---------- *)

let e13_checkpoint_interval ~seed =
  let rng = Rng.create seed in
  let runs = 30 in
  let rows =
    List.map
      (fun interval ->
        let total_rollback = ref 0 and total_occurrences = ref 0 in
        for _ = 1 to runs do
          let g =
            Topology.client_server ~servers:2 ~clients:6
          in
          let t = random_trace (Rng.split rng) g 60 0.2 in
          let history_len p = List.length (Trace.process_history t p) in
          let checkpoints =
            Array.init (Trace.n t) (fun p ->
                List.init (history_len p / interval) (fun i ->
                    (i + 1) * interval))
          in
          let failure =
            (* Lose only the tail of the failed process's work, so the
               interesting variable is the checkpoint grid, not the crash
               severity. *)
            {
              Synts_detect.Orphan.proc = Rng.int (Rng.split rng) (Trace.n t);
              survives = 12;
            }
          in
          let line =
            Synts_detect.Orphan.recovery_line t ~checkpoints failure
          in
          for p = 0 to Trace.n t - 1 do
            if p <> failure.Synts_detect.Orphan.proc then begin
              total_rollback := !total_rollback + (history_len p - line.(p));
              total_occurrences := !total_occurrences + history_len p
            end
          done
        done;
        [
          itoa interval;
          ftoa (float_of_int !total_rollback /. float_of_int runs);
          Printf.sprintf "%.1f%%"
            (100.0
            *. float_of_int !total_rollback
            /. float_of_int (max 1 !total_occurrences));
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  {
    id = "E13";
    title = "Extension: checkpoint interval vs. rollback damage";
    paper_claim =
      "(beyond the paper) timestamp-driven recovery lines quantify the \
       classic trade-off: sparser checkpoints amplify rollback \
       propagation after a crash";
    header =
      [
        "checkpoint every k occurrences";
        "mean occurrences rolled back (survivors)";
        "share of survivor work lost";
      ];
    rows;
    verdict =
      "rollback damage grows monotonically with the checkpoint interval — \
       the recovery-line machinery makes the trade-off measurable";
  }

let all ~seed =
  [
    e1_total_order ~seed;
    e2_online_exactness ~seed;
    e3_size_bound ~seed;
    e4_approximation_ratio ~seed;
    e5_forest_optimality ~seed;
    e6_offline ~seed;
    e7_internal_events ~seed;
    e8_headline_sizes ~seed;
    e9_piggyback ~seed;
    e10_plausible_error ~seed;
    e11_adaptive ~seed;
    e12_dimension_vs_width ~seed;
    e13_checkpoint_interval ~seed;
  ]

(* ---------- Figures ---------- *)

let buffer_fmt f =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let fig1 () =
  buffer_fmt (fun ppf ->
      let t = Examples.fig1 () in
      Format.fprintf ppf
        "Figure 1: a synchronous computation with 4 processes.@.@.%s@."
        (Diagram.render t);
      let p = Message_poset.of_trace t in
      Format.fprintf ppf "Relations stated in the paper:@.";
      Format.fprintf ppf "  m1 || m2 : %b@." (Poset.concurrent p 0 1);
      Format.fprintf ppf "  m1 |> m3 : %b@."
        (Message_poset.directly_precedes t 0 2);
      Format.fprintf ppf "  m2 -> m6 : %b@." (Poset.lt p 1 5);
      Format.fprintf ppf "  m3 -> m5 : %b@." (Poset.lt p 2 4);
      match Message_poset.chain_between t 0 4 with
      | Some chain ->
          Format.fprintf ppf "  chain m1..m5 of size %d: %s@."
            (List.length chain)
            (String.concat " |> "
               (List.map (fun m -> Printf.sprintf "m%d" (m + 1)) chain))
      | None -> Format.fprintf ppf "  no chain m1..m5 (UNEXPECTED)@.")

let fig3 () =
  buffer_fmt (fun ppf ->
      let k5 = Topology.complete 5 in
      Format.fprintf ppf
        "Figure 3: edge decompositions of the fully-connected system with 5 \
         processes.@.@.";
      let a =
        Decomposition.make_exn k5
          [
            Star { center = 0; leaves = [ 1; 2; 3; 4 ] };
            Star { center = 1; leaves = [ 2; 3; 4 ] };
            Triangle (2, 3, 4);
          ]
      in
      Format.fprintf ppf "(a) two stars and one triangle:@.%a@."
        (Decomposition.pp ?labels:None) a;
      let b =
        Decomposition.make_exn k5
          [
            Star { center = 0; leaves = [ 1; 2; 3; 4 ] };
            Star { center = 1; leaves = [ 2; 3; 4 ] };
            Star { center = 2; leaves = [ 3; 4 ] };
            Star { center = 3; leaves = [ 4 ] };
          ]
      in
      Format.fprintf ppf "(b) four stars:@.%a@."
        (Decomposition.pp ?labels:None) b;
      Format.fprintf ppf
        "The Figure 7 algorithm finds the optimal size %d decomposition.@."
        (Decomposition.size (Decomposition.paper k5)))

let fig4 () =
  buffer_fmt (fun ppf ->
      let g = Topology.fig4_tree () in
      let d = Decomposition.paper g in
      Format.fprintf ppf
        "Figure 4: a tree-based system with 20 processes decomposes into %d \
         stars:@.%a@."
        (Decomposition.size d)
        (Decomposition.pp ?labels:None)
        d)

let fig6 () =
  buffer_fmt (fun ppf ->
      let t = Examples.fig6 () in
      let d = Examples.fig6_decomposition () in
      let ts = Online.timestamp_trace d t in
      Format.fprintf ppf
        "Figure 6: a synchronous computation on 5 fully-connected processes,@.\
         decomposition E1 = star@@P1, E2 = star@@P2, E3 = triangle(P3,P4,P5).@.@.%s@."
        (Diagram.render_with_timestamps t ts);
      Format.fprintf ppf
        "The message P2->P3 is timestamped %s (paper: (1,1,1)).@."
        (Vector.to_string ts.(2)))

let fig8 () =
  buffer_fmt (fun ppf ->
      let g = Topology.fig2b () in
      let labels = Topology.fig2b_labels in
      Format.fprintf ppf
        "Figure 8: run of the decomposition algorithm on the Figure 2(b) \
         topology@.(reconstructed; vertices a..k).@.@.";
      List.iter
        (fun { Decomposition.phase; group } ->
          Format.fprintf ppf "  step %d emits %a@." phase
            (Decomposition.pp_group ~labels)
            group)
        (Decomposition.paper_trace g);
      let d = Decomposition.paper g in
      Format.fprintf ppf "@.Algorithm output: %d groups.@."
        (Decomposition.size d);
      match Decomposition.exact g with
      | Some e ->
          Format.fprintf ppf
            "Optimal decomposition (Figure 8(f)): %d groups — %d stars and \
             %d triangle(s):@.%a@."
            (Decomposition.size e) (Decomposition.stars e)
            (Decomposition.triangles e)
            (Decomposition.pp ~labels)
            e
      | None -> Format.fprintf ppf "exact solver budget exhausted@.")

let fig9 () =
  buffer_fmt (fun ppf ->
      let t = Examples.fig6 () in
      let p = Message_poset.of_trace t in
      let w = Dilworth.width p in
      Format.fprintf ppf
        "Figure 9 (offline algorithm) on the Figure 6 computation:@.@.";
      Format.fprintf ppf "  width of (M,|->) = %d (bound: floor(5/2) = 2)@." w;
      let chains = Dilworth.min_chain_partition p in
      List.iteri
        (fun i c ->
          Format.fprintf ppf "  chain C%d = %s@." (i + 1)
            (String.concat " -> "
               (List.map (fun m -> Printf.sprintf "m%d" (m + 1)) c)))
        chains;
      let exts = Realizer.dilworth p in
      List.iteri
        (fun i l ->
          Format.fprintf ppf "  L%d = %s@." (i + 1)
            (String.concat " < "
               (List.map
                  (fun m -> Printf.sprintf "m%d" (m + 1))
                  (Array.to_list l))))
        exts;
      let ts = Offline.timestamp_trace t in
      Array.iteri
        (fun m v ->
          Format.fprintf ppf "  V(m%d) = %s@." (m + 1) (Vector.to_string v))
        ts;
      let v = Validate.message_timestamps t ts in
      Format.fprintf ppf "  encodes (M,|->) exactly: %b@." (Validate.ok v))

let fig2 () =
  buffer_fmt (fun ppf ->
      Format.fprintf ppf
        "Figure 2: examples of communication topologies.@.@.";
      let ga = Topology.complete 5 in
      Format.fprintf ppf
        "(a) every process communicates directly with every other \
         (complete graph): N=%d, M=%d@."
        (Synts_graph.Graph.n ga) (Synts_graph.Graph.m ga);
      let gb = Topology.fig2b () in
      Format.fprintf ppf
        "(b) a sparser topology (reconstruction, vertices a..k): N=%d, \
         M=%d, edges:@."
        (Synts_graph.Graph.n gb) (Synts_graph.Graph.m gb);
      let name v = List.assoc v Topology.fig2b_labels in
      Synts_graph.Graph.iter_edges
        (fun u v -> Format.fprintf ppf "  %s -- %s@." (name u) (name v))
        gb;
      Format.fprintf ppf
        "@.(render either with: synts decompose fig2b --dot | dot -Tsvg)@.")

let figure_ids = [ "f1"; "f2"; "f3"; "f4"; "f6"; "f8"; "f9" ]

let figure = function
  | "f1" -> Ok (fig1 ())
  | "f2" -> Ok (fig2 ())
  | "f3" -> Ok (fig3 ())
  | "f4" -> Ok (fig4 ())
  | "f6" -> Ok (fig6 ())
  | "f7" | "f8" -> Ok (fig8 ())
  | "f9" -> Ok (fig9 ())
  | other ->
      Error
        (Printf.sprintf "unknown figure %S (available: %s)" other
           (String.concat ", " figure_ids))
