type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type sink =
  | Silent
  | Text of out_channel
  | Jsonl of out_channel
  | Custom of (string -> unit)

let current_level = ref Info
let current_sink = ref (Text stderr)
let emitted = ref 0
let set_level l = current_level := l
let level () = !current_level
let set_sink s = current_sink := s
let records () = !emitted

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_text lvl ~tick ~component ~kv msg =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "[%s] tick=%d %s: %s"
       (String.uppercase_ascii (level_name lvl))
       tick component msg);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k v))
    kv;
  Buffer.contents buf

let render_jsonl lvl ~tick ~component ~kv msg =
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "{\"level\": \"%s\", \"tick\": %d, \"component\": \"%s\", \
                     \"msg\": \"%s\""
       (level_name lvl) tick (json_escape component) (json_escape msg));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ", \"%s\": \"%s\"" (json_escape k) (json_escape v)))
    kv;
  Buffer.add_char buf '}';
  Buffer.contents buf

let log ?tick lvl ~component ?(kv = []) msg =
  if severity lvl >= severity !current_level then begin
    incr emitted;
    let tick = match tick with Some t -> t | None -> !emitted in
    match !current_sink with
    | Silent -> ()
    | Text oc ->
        output_string oc (render_text lvl ~tick ~component ~kv msg);
        output_char oc '\n';
        flush oc
    | Jsonl oc ->
        output_string oc (render_jsonl lvl ~tick ~component ~kv msg);
        output_char oc '\n';
        flush oc
    | Custom f -> f (render_text lvl ~tick ~component ~kv msg)
  end

let debug ?tick ~component ?kv msg = log ?tick Debug ~component ?kv msg
let info ?tick ~component ?kv msg = log ?tick Info ~component ?kv msg
let warn ?tick ~component ?kv msg = log ?tick Warn ~component ?kv msg
let error ?tick ~component ?kv msg = log ?tick Error ~component ?kv msg
