(** The admin-channel protocol: a second, versioned frame family.

    [synts serve] can listen on a second socket reserved for
    introspection. Admin messages reuse the exact transport stack of the
    data plane — {!Synts_server.Frame} length prefixes around
    {!Synts_clock.Wire.frame} checksum frames — but the checksummed body
    opens with its {e own} family header: {!family_magic} ([0xAD]) then a
    family version byte, then a tag. A data-plane client that connects to
    the admin port (or vice versa) is therefore rejected with a
    descriptive decode error, not a misparse, and the admin protocol can
    rev independently of the stamping protocol.

    Like the data plane, integers are LEB128 varints and strings are
    length-prefixed; the latency quantiles are IEEE doubles in 8-byte
    big-endian, so encoding is bit-deterministic. *)

type metrics_format = Prom | Json

type request =
  | Health
  | Metrics of metrics_format
      (** The merged cross-shard registry snapshot, rendered. *)
  | Stats
  | Tracedump  (** Drain the tracer ring. *)

type shard_stat = {
  shard : int;
  s_events : int;  (** Events swept by this shard. *)
  s_cells : int;  (** Clock cells written (events x owned components). *)
  s_messages : int;  (** Messages whose edge group this shard owns. *)
}

type conn_stat = {
  conn : int;
  events_in : int;
  stamps_out : int;
  dedup_hits : int;
  last_seq : int;
}

type stream_stat = {
  chains : int;
  live : int;
  retired : int;
  width : int;
  exact : bool;
  repairs : int;
}

type stats = {
  backend : string;  (** ["sharded:k"] or ["offline-stream"]. *)
  clients : int;
  batches : int;
  messages : int;
  internal : int;
  dedup_hits : int;
  errors : int;
  dropped : int;  (** Resolved-queue overflow drops. *)
  pending : int;  (** Resolved stamps awaiting drain. *)
  p50_ms : float;  (** Stamp-batch latency quantiles. *)
  p90_ms : float;
  p99_ms : float;
  shards : shard_stat list;
  conns : conn_stat list;
  stream : stream_stat option;  (** Offline-stream watermarks. *)
}

type response =
  | Health_r of {
      ok : bool;
      backend : string;
      processes : int;
      dimension : int;
      shards : int;
    }
  | Metrics_r of string  (** Rendered Prometheus text or JSON. *)
  | Stats_r of stats
  | Tracedump_r of { dropped : int; spans : int; jsonl : string }
  | Error_r of string

val family_magic : char
(** First body byte of every admin message ([0xAD]). *)

val current_version : int
(** The admin family version this build speaks (1). *)

val encode_request : request -> string
(** Family header + tag + payload; wrap with [Wire.frame] before
    [Frame.send]. *)

val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
