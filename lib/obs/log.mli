(** Structured, leveled logging for the whole stack.

    Every record carries a severity {!level}, a component name
    (["server"], ["engine"], ["cli"], …), a {e logical tick} and a list
    of [key=value] pairs — never a wall-clock timestamp, so two seeded
    runs emit byte-identical logs. Ticks come from the caller when the
    caller has a meaningful clock (the daemon's batch counter, the
    simulator's virtual time); otherwise a process-wide monotone record
    counter supplies one, which keeps ordering without breaking
    determinism.

    Sinks are pluggable: human-readable text on a channel (the default,
    on [stderr]), JSONL on a channel (one object per record, the same
    shape the tracer's [Tracelog] uses), a custom callback, or silence.
    This module is the {e one} sanctioned path to stderr inside [lib/] —
    a CI lint (see the repository root [dune]) keeps every other file
    free of raw [prerr_endline] / [Printf.eprintf] prints. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val set_level : level -> unit
(** Drop records below this severity (default {!Info}). *)

val level : unit -> level

type sink =
  | Silent  (** Drop everything (still counts records). *)
  | Text of out_channel  (** [\[LEVEL\] tick=N component: msg k=v …]. *)
  | Jsonl of out_channel  (** One JSON object per record. *)
  | Custom of (string -> unit)  (** Receives the rendered text line. *)

val set_sink : sink -> unit
(** Default: [Text stderr]. *)

val records : unit -> int
(** Records emitted (post level-filter) since process start — doubles as
    the default tick source. *)

val log :
  ?tick:int -> level -> component:string -> ?kv:(string * string) list ->
  string -> unit
(** Emit one record. [tick] defaults to the process-wide record
    counter. Key order in [kv] is preserved verbatim. *)

val debug :
  ?tick:int -> component:string -> ?kv:(string * string) list -> string -> unit

val info :
  ?tick:int -> component:string -> ?kv:(string * string) list -> string -> unit

val warn :
  ?tick:int -> component:string -> ?kv:(string * string) list -> string -> unit

val error :
  ?tick:int -> component:string -> ?kv:(string * string) list -> string -> unit

val render_text :
  level -> tick:int -> component:string -> kv:(string * string) list ->
  string -> string
(** The text-sink line, without the trailing newline — exposed so tests
    pin the format. *)

val render_jsonl :
  level -> tick:int -> component:string -> kv:(string * string) list ->
  string -> string
(** The JSONL-sink line, without the trailing newline. *)
