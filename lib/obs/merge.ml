module Tm = Synts_telemetry.Telemetry

let value a b =
  match (a, b) with
  | Tm.Counter_v x, Tm.Counter_v y -> Tm.Counter_v (x + y)
  | Tm.Gauge_v x, Tm.Gauge_v y -> Tm.Gauge_v (if x >= y then x else y)
  | ( Tm.Histogram_v
        { buckets = ba; inf = ia; sum = sa; count = ca; min = mina; max = maxa },
      Tm.Histogram_v
        { buckets = bb; inf = ib; sum = sb; count = cb; min = minb; max = maxb }
    ) ->
      let ka = Array.length ba and kb = Array.length bb in
      if ka <> kb then invalid_arg "Obs.Merge: histogram bucket-count mismatch";
      let buckets =
        Array.init ka (fun i ->
            let la, na = ba.(i) and lb, nb = bb.(i) in
            if la <> lb then
              invalid_arg "Obs.Merge: histogram bucket-bounds mismatch";
            (la, na + nb))
      in
      Tm.Histogram_v
        {
          buckets;
          inf = ia + ib;
          sum = sa +. sb;
          count = ca + cb;
          min = Float.min mina minb;
          max = Float.max maxa maxb;
        }
  | _ -> invalid_arg "Obs.Merge: metric kind mismatch"

let snapshots snaps =
  let table : (string, Tm.value) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt table name with
          | None -> Hashtbl.replace table name v
          | Some prior -> Hashtbl.replace table name (value prior v))
        snap)
    snaps;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
