(** Deterministic cross-domain snapshot aggregation.

    The sharded engine keeps one {!Synts_telemetry.Telemetry.registry}
    per worker domain so hot-path recording never crosses a domain
    boundary; the admin channel (and the property tests) then merge the
    per-shard {e snapshots} into one logical view. Merge semantics, per
    metric name:

    - {b counters} add — each shard counted disjoint work;
    - {b gauges} take the maximum — watermark semantics;
    - {b histograms} require identical bucket bounds, then add per-bucket
      counts, the overflow bucket, [sum] and [count] pointwise, and
      combine [min]/[max] with min-of-mins / max-of-maxes (the empty
      histogram's [+inf]/[-inf] sentinels are the identities).

    The same name registered at different kinds (or histogram bounds)
    across inputs raises [Invalid_argument] — that is a bug in the
    instrumentation, not data. The result is name-sorted, so merging is
    itself deterministic: the per-shard counter layout is designed to be
    shard-count invariant, and [test/test_obs.ml] checks that merging a
    k-shard run's registries is {e structurally equal} to the 1-shard
    oracle registry's snapshot. *)

val snapshots :
  Synts_telemetry.Telemetry.snapshot list -> Synts_telemetry.Telemetry.snapshot
(** Merge any number of snapshots; [snapshots [] = []] and
    [snapshots [s] = s] (re-sorted). *)

val value :
  Synts_telemetry.Telemetry.value -> Synts_telemetry.Telemetry.value ->
  Synts_telemetry.Telemetry.value
(** Merge two values of the same metric. Raises [Invalid_argument] on a
    kind or bucket-bounds mismatch. *)
