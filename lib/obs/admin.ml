module Wire = Synts_clock.Wire

type metrics_format = Prom | Json

type request = Health | Metrics of metrics_format | Stats | Tracedump

type shard_stat = {
  shard : int;
  s_events : int;
  s_cells : int;
  s_messages : int;
}

type conn_stat = {
  conn : int;
  events_in : int;
  stamps_out : int;
  dedup_hits : int;
  last_seq : int;
}

type stream_stat = {
  chains : int;
  live : int;
  retired : int;
  width : int;
  exact : bool;
  repairs : int;
}

type stats = {
  backend : string;
  clients : int;
  batches : int;
  messages : int;
  internal : int;
  dedup_hits : int;
  errors : int;
  dropped : int;
  pending : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  shards : shard_stat list;
  conns : conn_stat list;
  stream : stream_stat option;
}

type response =
  | Health_r of {
      ok : bool;
      backend : string;
      processes : int;
      dimension : int;
      shards : int;
    }
  | Metrics_r of string
  | Stats_r of stats
  | Tracedump_r of { dropped : int; spans : int; jsonl : string }
  | Error_r of string

let family_magic = '\xAD'
let current_version = 1

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let varint s off =
  match Wire.read_varint s off with
  | Some (v, off') -> (v, off')
  | None -> fail "truncated varint at byte %d" off

let byte s off =
  if off >= String.length s then fail "truncated admin message at byte %d" off
  else (Char.code s.[off], off + 1)

let put_string buf s =
  Wire.put_varint buf (String.length s);
  Buffer.add_string buf s

let get_string s off =
  let len, off = varint s off in
  if off + len > String.length s then fail "truncated string at byte %d" off
  else (String.sub s off len, off + len)

(* Doubles travel as their IEEE bits, big-endian — 8 bytes, no textual
   round-trip, so quantiles survive the wire bit-exactly. *)
let put_f64 buf f =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.bits_of_float f);
  Buffer.add_bytes buf b

let get_f64 s off =
  if off + 8 > String.length s then fail "truncated float at byte %d" off
  else
    (Int64.float_of_bits (String.get_int64_be s off), off + 8)

let finish_at s off what =
  if off <> String.length s then
    fail "%s: %d trailing bytes" what (String.length s - off)

let header buf =
  Buffer.add_char buf family_magic;
  Buffer.add_char buf (Char.chr current_version)

let check_header what s =
  if String.length s < 2 then fail "truncated %s header" what;
  if s.[0] <> family_magic then
    fail "not an admin-family message (magic 0x%02x)" (Char.code s.[0]);
  let version = Char.code s.[1] in
  if version <> current_version then
    fail "unsupported admin version %d (this build speaks %d)" version
      current_version;
  2

(* {2 Requests} *)

let encode_request r =
  let buf = Buffer.create 8 in
  header buf;
  (match r with
  | Health -> Buffer.add_char buf '\x00'
  | Metrics fmt ->
      Buffer.add_char buf '\x01';
      Buffer.add_char buf (match fmt with Prom -> '\x00' | Json -> '\x01')
  | Stats -> Buffer.add_char buf '\x02'
  | Tracedump -> Buffer.add_char buf '\x03');
  Buffer.contents buf

let decode_request s =
  try
    let off = check_header "request" s in
    let tag, off = byte s off in
    match tag with
    | 0 ->
        finish_at s off "Health";
        Ok Health
    | 1 ->
        let fmt, off = byte s off in
        let fmt =
          match fmt with
          | 0 -> Prom
          | 1 -> Json
          | f -> fail "unknown metrics format %d" f
        in
        finish_at s off "Metrics";
        Ok (Metrics fmt)
    | 2 ->
        finish_at s off "Stats";
        Ok Stats
    | 3 ->
        finish_at s off "Tracedump";
        Ok Tracedump
    | t -> fail "unknown admin request tag %d" t
  with Fail e -> Error e

(* {2 Responses} *)

let encode_response r =
  let buf = Buffer.create 128 in
  header buf;
  (match r with
  | Health_r { ok; backend; processes; dimension; shards } ->
      Buffer.add_char buf '\x00';
      Buffer.add_char buf (if ok then '\x01' else '\x00');
      put_string buf backend;
      Wire.put_varint buf processes;
      Wire.put_varint buf dimension;
      Wire.put_varint buf shards
  | Metrics_r body ->
      Buffer.add_char buf '\x01';
      put_string buf body
  | Stats_r st ->
      Buffer.add_char buf '\x02';
      put_string buf st.backend;
      Wire.put_varint buf st.clients;
      Wire.put_varint buf st.batches;
      Wire.put_varint buf st.messages;
      Wire.put_varint buf st.internal;
      Wire.put_varint buf st.dedup_hits;
      Wire.put_varint buf st.errors;
      Wire.put_varint buf st.dropped;
      Wire.put_varint buf st.pending;
      put_f64 buf st.p50_ms;
      put_f64 buf st.p90_ms;
      put_f64 buf st.p99_ms;
      Wire.put_varint buf (List.length st.shards);
      List.iter
        (fun { shard; s_events; s_cells; s_messages } ->
          Wire.put_varint buf shard;
          Wire.put_varint buf s_events;
          Wire.put_varint buf s_cells;
          Wire.put_varint buf s_messages)
        st.shards;
      Wire.put_varint buf (List.length st.conns);
      List.iter
        (fun { conn; events_in; stamps_out; dedup_hits; last_seq } ->
          Wire.put_varint buf conn;
          Wire.put_varint buf events_in;
          Wire.put_varint buf stamps_out;
          Wire.put_varint buf dedup_hits;
          (* last_seq starts at -1 (nothing observed yet): shift by one
             so it stays in varint range. *)
          Wire.put_varint buf (last_seq + 1))
        st.conns;
      (match st.stream with
      | None -> Buffer.add_char buf '\x00'
      | Some { chains; live; retired; width; exact; repairs } ->
          Buffer.add_char buf '\x01';
          Wire.put_varint buf chains;
          Wire.put_varint buf live;
          Wire.put_varint buf retired;
          Wire.put_varint buf width;
          Buffer.add_char buf (if exact then '\x01' else '\x00');
          Wire.put_varint buf repairs)
  | Tracedump_r { dropped; spans; jsonl } ->
      Buffer.add_char buf '\x03';
      Wire.put_varint buf dropped;
      Wire.put_varint buf spans;
      put_string buf jsonl
  | Error_r msg ->
      Buffer.add_char buf '\x04';
      put_string buf msg);
  Buffer.contents buf

let decode_response s =
  try
    let off = check_header "response" s in
    let tag, off = byte s off in
    match tag with
    | 0 ->
        let ok, off = byte s off in
        let backend, off = get_string s off in
        let processes, off = varint s off in
        let dimension, off = varint s off in
        let shards, off = varint s off in
        finish_at s off "Health_r";
        Ok (Health_r { ok = ok <> 0; backend; processes; dimension; shards })
    | 1 ->
        let body, off = get_string s off in
        finish_at s off "Metrics_r";
        Ok (Metrics_r body)
    | 2 ->
        let backend, off = get_string s off in
        let clients, off = varint s off in
        let batches, off = varint s off in
        let messages, off = varint s off in
        let internal, off = varint s off in
        let dedup_hits, off = varint s off in
        let errors, off = varint s off in
        let dropped, off = varint s off in
        let pending, off = varint s off in
        let p50_ms, off = get_f64 s off in
        let p90_ms, off = get_f64 s off in
        let p99_ms, off = get_f64 s off in
        let nshards, off = varint s off in
        let off = ref off in
        let shards =
          List.init nshards (fun _ ->
              let shard, o = varint s !off in
              let s_events, o = varint s o in
              let s_cells, o = varint s o in
              let s_messages, o = varint s o in
              off := o;
              { shard; s_events; s_cells; s_messages })
        in
        let nconns, o = varint s !off in
        off := o;
        let conns =
          List.init nconns (fun _ ->
              let conn, o = varint s !off in
              let events_in, o = varint s o in
              let stamps_out, o = varint s o in
              let dedup_hits, o = varint s o in
              let last_seq, o = varint s o in
              off := o;
              { conn; events_in; stamps_out; dedup_hits;
                last_seq = last_seq - 1 })
        in
        let flag, o = byte s !off in
        let stream, o =
          match flag with
          | 0 -> (None, o)
          | 1 ->
              let chains, o = varint s o in
              let live, o = varint s o in
              let retired, o = varint s o in
              let width, o = varint s o in
              let exact, o = byte s o in
              let repairs, o = varint s o in
              ( Some
                  { chains; live; retired; width; exact = exact <> 0; repairs },
                o )
          | f -> fail "unknown stream flag %d" f
        in
        finish_at s o "Stats_r";
        Ok
          (Stats_r
             {
               backend; clients; batches; messages; internal; dedup_hits;
               errors; dropped; pending; p50_ms; p90_ms; p99_ms; shards;
               conns; stream;
             })
    | 3 ->
        let dropped, off = varint s off in
        let spans, off = varint s off in
        let jsonl, off = get_string s off in
        finish_at s off "Tracedump_r";
        Ok (Tracedump_r { dropped; spans; jsonl })
    | 4 ->
        let msg, off = get_string s off in
        finish_at s off "Error_r";
        Ok (Error_r msg)
    | t -> fail "unknown admin response tag %d" t
  with Fail e -> Error e

let pp_request ppf = function
  | Health -> Format.fprintf ppf "Health"
  | Metrics Prom -> Format.fprintf ppf "Metrics(prom)"
  | Metrics Json -> Format.fprintf ppf "Metrics(json)"
  | Stats -> Format.fprintf ppf "Stats"
  | Tracedump -> Format.fprintf ppf "Tracedump"

let pp_response ppf = function
  | Health_r { ok; backend; processes; dimension; shards } ->
      Format.fprintf ppf "Health{ok=%b; %s; n=%d; d=%d; shards=%d}" ok backend
        processes dimension shards
  | Metrics_r body -> Format.fprintf ppf "Metrics(%d bytes)" (String.length body)
  | Stats_r st ->
      Format.fprintf ppf
        "Stats{%s; clients=%d; batches=%d; msgs=%d; dropped=%d; pending=%d}"
        st.backend st.clients st.batches st.messages st.dropped st.pending
  | Tracedump_r { dropped; spans; _ } ->
      Format.fprintf ppf "Tracedump{spans=%d; dropped=%d}" spans dropped
  | Error_r e -> Format.fprintf ppf "Error(%s)" e
