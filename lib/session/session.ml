module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Adaptive_stamper = Synts_core.Adaptive_stamper
module Event_stream = Synts_core.Event_stream
module Internal_events = Synts_core.Internal_events
module Frontier = Synts_monitor.Frontier
module Stats = Synts_monitor.Stats
module Tm = Synts_telemetry.Telemetry
module Tracer = Synts_trace.Tracer

let m_stamps =
  Tm.Counter.v ~help:"Message stamps issued by sessions" "session.stamps"

let m_internal =
  Tm.Counter.v ~help:"Internal events observed by sessions"
    "session.internal_events"

let m_drains =
  Tm.Counter.v ~help:"drain_events calls on sessions" "session.drains"

let m_flushes =
  Tm.Counter.v ~help:"finish_events flushes on sessions" "session.flushes"

let m_precedence =
  Tm.Counter.v
    ~help:"Precedence/concurrency/happened-before tests answered by sessions"
    "session.precedence_tests"

let m_dimension =
  Tm.Gauge.v ~help:"Largest vector dimension in use by any session"
    "session.vector_dimension"

let m_dropped =
  Tm.Counter.v
    ~help:"Resolved internal-event stamps evicted from full pending queues"
    "session.dropped_events"

type stamper =
  | Static of Decomposition.t * (src:int -> dst:int -> Vector.t)
  | Adaptive of Adaptive_stamper.t
  | Streaming of Synts_core.Offline.Stream.t

type t = {
  n : int;
  stamper : stamper;
  events : Event_stream.t;
  frontier : Frontier.t;
  stats : Stats.t;
  width : Synts_poset.Incremental_width.t;
  last_message : int array;  (* per process, -1 when none *)
  resolved : (Event_stream.ticket * Internal_events.stamp) Queue.t;
      (* oldest first, drained by the caller; bounded by [pending_cap] *)
  pending_cap : int;
  mutable dropped : int;
  mutable observed : int;
}

let make ?window ?(pending_cap = 65536) ~n stamper dimension =
  if pending_cap < 1 then invalid_arg "Session: pending_cap must be >= 1";
  {
    n;
    stamper;
    events = Event_stream.create ~dimension ~n;
    frontier = Frontier.create ();
    stats = Stats.create ?window ();
    width = Synts_poset.Incremental_width.create ();
    last_message = Array.make n (-1);
    resolved = Queue.create ();
    pending_cap;
    dropped = 0;
    observed = 0;
  }

let of_decomposition ?window ?pending_cap d =
  let n = Decomposition.graph_vertices d in
  make ?window ?pending_cap ~n
    (Static (d, Online.stamper d))
    (max 1 (Decomposition.size d))

let of_topology ?window ?pending_cap g =
  of_decomposition ?window ?pending_cap (Decomposition.best g)

let adaptive ?window ?pending_cap ~n () =
  make ?window ?pending_cap ~n (Adaptive (Adaptive_stamper.create n)) 1

let offline_stream ?window ?stream_window ?pending_cap ~n () =
  make ?window ?pending_cap ~n
    (Streaming (Synts_core.Offline.Stream.create ?window:stream_window ~n ()))
    1

let processes t = t.n

let dimension t =
  match t.stamper with
  | Static (d, _) -> Decomposition.size d
  | Adaptive s -> max 1 (Adaptive_stamper.dimension s)
  | Streaming s -> Synts_core.Offline.Stream.dimension s

let message t ~src ~dst =
  let v =
    match t.stamper with
    | Static (_, stamp) -> stamp ~src ~dst
    | Adaptive s -> Adaptive_stamper.stamp s ~src ~dst
    | Streaming s -> Synts_core.Offline.Stream.observe s ~src ~dst
  in
  Tm.Counter.incr m_stamps;
  Tm.Gauge.set_max m_dimension (Vector.size v);
  let id = t.observed in
  t.observed <- id + 1;
  ignore (Frontier.insert t.frontier ~id v);
  Stats.observe t.stats v;
  let preds =
    List.filter (fun m -> m >= 0) [ t.last_message.(src); t.last_message.(dst) ]
  in
  ignore (Synts_poset.Incremental_width.add t.width ~preds);
  t.last_message.(src) <- id;
  t.last_message.(dst) <- id;
  let enqueue resolved =
    List.iter
      (fun r ->
        (* Bounded: a caller that never drains loses the oldest stamps,
           counted, instead of growing without bound. *)
        if Queue.length t.resolved >= t.pending_cap then begin
          ignore (Queue.pop t.resolved);
          t.dropped <- t.dropped + 1;
          Tm.Counter.incr m_dropped
        end;
        Queue.push r t.resolved)
      resolved
  in
  enqueue (Event_stream.record_message t.events ~proc:src v);
  enqueue (Event_stream.record_message t.events ~proc:dst v);
  if Tracer.enabled () then
    (* The session's tick domain is its own sequence numbers; [cells] is
       the per-observe stamp cost in slab cells touched. *)
    Tracer.message ~cat:"session" ~src ~dst ~tick:(float_of_int id) ~id
      ~cells:(Vector.size v) ~stamp:v ();
  v

let internal t ~proc =
  Tm.Counter.incr m_internal;
  if Tracer.enabled () then
    Tracer.instant ~cat:"session" ~pid:proc ~tick:(float_of_int t.observed)
      "internal";
  Event_stream.record_internal t.events ~proc

let dropped_events t = t.dropped

let drain_events t =
  Tm.Counter.incr m_drains;
  let out = List.of_seq (Queue.to_seq t.resolved) in
  Queue.clear t.resolved;
  out

let finish_events t =
  Tm.Counter.incr m_flushes;
  drain_events t @ Event_stream.finish t.events

type event = Synts_ingest.Ingest.event =
  | Message of { src : int; dst : int }
  | Internal of { proc : int }

type outcome = Synts_ingest.Ingest.outcome =
  | Stamped of Vector.t
  | Deferred of Event_stream.ticket

let observe t = function
  | Message { src; dst } -> Stamped (message t ~src ~dst)
  | Internal { proc } -> Deferred (internal t ~proc)

let observe_batch t events = Array.map (observe t) events

let messages_observed t = t.observed
let width t = Synts_poset.Incremental_width.width t.width
let frontier t = Frontier.frontier t.frontier
let concurrency_ratio t = Stats.concurrency_ratio t.stats
let longest_chain t = Stats.longest_chain t.stats

let pad v dim =
  if Vector.size v >= dim then v
  else begin
    let w = Vector.zero dim in
    Array.blit v 0 w 0 (Vector.size v);
    w
  end

let common u v =
  let dim = max (Vector.size u) (Vector.size v) in
  (pad u dim, pad v dim)

let precedes _t u v =
  Tm.Counter.incr m_precedence;
  let u, v = common u v in
  Vector.lt u v

let concurrent _t u v =
  Tm.Counter.incr m_precedence;
  let u, v = common u v in
  Vector.concurrent u v

let happened_before t a b =
  Tm.Counter.incr m_precedence;
  (* Bring every vector of both stamps to one width, then apply the
     Theorem 9 test. *)
  let dim =
    List.fold_left max 1
      (List.filter_map
         (Option.map Vector.size)
         [
           Some a.Internal_events.prev;
           a.Internal_events.succ;
           Some b.Internal_events.prev;
           b.Internal_events.succ;
         ])
  in
  ignore t;
  let widen (s : Internal_events.stamp) =
    {
      s with
      Internal_events.prev = pad s.Internal_events.prev dim;
      succ = Option.map (fun v -> pad v dim) s.Internal_events.succ;
    }
  in
  Internal_events.happened_before (widen a) (widen b)

let decomposition t =
  match t.stamper with
  | Static (d, _) -> d
  | Adaptive s -> Adaptive_stamper.decomposition s
  | Streaming _ ->
      invalid_arg
        "Session.decomposition: streaming-offline sessions stamp from the \
         observed order, not a decomposition"

(* The Ingest.S conformance: a session is one sink among the in-process
   engine and the remote server client. *)
module Sink = struct
  type nonrec t = t

  let observe = observe
  let observe_batch = observe_batch
  let drain = drain_events
  let finish = finish_events
  let processes = processes
  let dimension = dimension
end

let ingest t = Synts_ingest.Ingest.sink (module Sink) t
