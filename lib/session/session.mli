(** The one-object embedding API for live monitoring.

    A [Session.t] owns everything a monitoring integration needs: the
    decomposition (fixed from a known topology, or grown adaptively), the
    per-process clocks, the causal frontier, streaming order statistics
    and the deferred internal-event stamps. Feed it the observation stream
    — one call per message (in any linearization order of the real run)
    and per internal event — and query it at any time.

    All vectors returned by one session are mutually comparable with
    {!precedes}/{!concurrent}/{!happened_before}, which zero-pad when the
    adaptive decomposition has grown between two stamps. *)

type t

val of_topology : ?window:int -> ?pending_cap:int -> Synts_graph.Graph.t -> t
(** Known topology: uses [Decomposition.best]. [window] bounds the
    statistics' retained history; [pending_cap] (default 65536, ≥ 1)
    bounds the resolved internal-event queue — see {!drain_events}. *)

val of_decomposition :
  ?window:int -> ?pending_cap:int -> Synts_graph.Decomposition.t -> t
(** Known topology with a caller-chosen decomposition. *)

val adaptive : ?window:int -> ?pending_cap:int -> n:int -> unit -> t
(** Unknown topology: channels register on first use. *)

val processes : t -> int
val dimension : t -> int
(** Current vector size (constant unless adaptive). *)

(** {1 Observation}

    Two equivalent styles, pick whichever fits the embedder:

    - {b typed calls} — {!message} and {!internal}, one per event kind,
      when the integration point already distinguishes them;
    - {b one stream} — {!observe} with the {!event} variant, when the
      embedder forwards a single heterogeneous event feed (a log tailer,
      a network tap). [observe t (Message {src; dst})] is exactly
      [message t ~src ~dst] and [observe t (Internal {proc})] is exactly
      [internal t ~proc]; the {!outcome} carries what each returns.

    Neither style is deprecated; both stay supported. *)

val message : t -> src:int -> dst:int -> Synts_clock.Vector.t
(** Observe the next message; returns its timestamp. Raises
    [Invalid_argument] for channels outside a fixed decomposition. *)

val internal : t -> proc:int -> Synts_core.Event_stream.ticket
(** Observe an internal event; its stamp is deferred until the process's
    next message ({!drain_events}). *)

type event = Message of { src : int; dst : int } | Internal of { proc : int }
(** One element of a unified observation stream. *)

type outcome =
  | Stamped of Synts_clock.Vector.t
      (** A message's timestamp, as returned by {!message}. *)
  | Deferred of Synts_core.Event_stream.ticket
      (** An internal event's ticket, as returned by {!internal};
          redeemed via {!drain_events}/{!finish_events}. *)

val observe : t -> event -> outcome
(** The unified entry point over both event kinds. *)

val drain_events :
  t -> (Synts_core.Event_stream.ticket * Synts_core.Internal_events.stamp) list
(** Internal-event stamps resolved since the last drain, oldest first.
    The pending queue is bounded by the constructor's [pending_cap]: when
    an embedder stops draining, the oldest resolved stamps are evicted —
    each eviction increments {!dropped_events} and the
    [session.dropped_events] telemetry counter, never silently. *)

val dropped_events : t -> int
(** Resolved stamps evicted from the full pending queue so far. *)

val finish_events :
  t -> (Synts_core.Event_stream.ticket * Synts_core.Internal_events.stamp) list
(** Flush still-pending internal events with [succ = +∞]. *)

val messages_observed : t -> int
val frontier : t -> (int * Synts_clock.Vector.t) list
(** Current maximal messages as [(sequence number, timestamp)]; sequence
    numbers count messages in observation order from 0. *)

val concurrency_ratio : t -> float
val longest_chain : t -> int

val width : t -> int
(** Width of the message poset observed so far (maintained incrementally;
    always ≤ {!dimension}). The size an offline re-timestamping of the
    prefix would need. *)

val precedes : t -> Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
val concurrent : t -> Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
val happened_before :
  t -> Synts_core.Internal_events.stamp -> Synts_core.Internal_events.stamp -> bool
(** Padded comparisons, valid across the session's whole lifetime. *)

val decomposition : t -> Synts_graph.Decomposition.t
(** The current decomposition (a snapshot when adaptive). *)
