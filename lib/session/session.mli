(** The one-object embedding API for live monitoring.

    A [Session.t] owns everything a monitoring integration needs: the
    decomposition (fixed from a known topology, or grown adaptively), the
    per-process clocks, the causal frontier, streaming order statistics
    and the deferred internal-event stamps. Feed it the observation stream
    — one call per message (in any linearization order of the real run)
    and per internal event — and query it at any time.

    All vectors returned by one session are mutually comparable with
    {!precedes}/{!concurrent}/{!happened_before}, which zero-pad when the
    adaptive decomposition has grown between two stamps. *)

type t

val of_topology : ?window:int -> ?pending_cap:int -> Synts_graph.Graph.t -> t
(** Known topology: uses [Decomposition.best]. [window] bounds the
    statistics' retained history; [pending_cap] (default 65536, ≥ 1)
    bounds the resolved internal-event queue — see {!drain_events}. *)

val of_decomposition :
  ?window:int -> ?pending_cap:int -> Synts_graph.Decomposition.t -> t
(** Known topology with a caller-chosen decomposition. *)

val adaptive : ?window:int -> ?pending_cap:int -> n:int -> unit -> t
(** Unknown topology: channels register on first use. *)

val offline_stream :
  ?window:int -> ?stream_window:int -> ?pending_cap:int -> n:int -> unit -> t
(** Offline-quality stamps, live: messages are stamped by the streaming
    Dilworth pipeline ({!Synts_core.Offline.Stream}) instead of the
    Fig. 5 online rule — rank vectors over the incrementally maintained
    chain partition, order-equivalent to the batch
    {!Synts_core.Offline.timestamp_trace} of the observed linearization,
    with no topology decomposition needed. {!dimension} starts at 1 and
    grows with the chain count (near the poset's width, cf. the paper's
    ⌊N/2⌋); all comparison entry points zero-pad as with {!adaptive}
    sessions. [stream_window] bounds the pipeline's live matching window
    ({!Synts_poset.Streaming_chains.create}). {!decomposition} raises
    [Invalid_argument] for these sessions. *)

val processes : t -> int
val dimension : t -> int
(** Current vector size (constant unless adaptive). *)

(** {1 Observation}

    Sessions ingest the {!Synts_ingest.Ingest} event stream: {!observe}
    is {e the} entry point, and {!ingest} packs a session as a
    first-class {!Synts_ingest.Ingest.sink} so embedders written against
    the unified interface run against a session, the sharded
    [synts serve] engine or a remote server client interchangeably. *)

type event = Synts_ingest.Ingest.event =
  | Message of { src : int; dst : int }
  | Internal of { proc : int }
(** One element of a unified observation stream (re-exported from
    {!Synts_ingest.Ingest} — the constructors are the same). *)

type outcome = Synts_ingest.Ingest.outcome =
  | Stamped of Synts_clock.Vector.t
      (** A message's timestamp, available immediately. *)
  | Deferred of Synts_core.Event_stream.ticket
      (** An internal event's ticket, redeemed via
          {!drain_events}/{!finish_events}. *)

val observe : t -> event -> outcome
(** The unified entry point over both event kinds. [Message] raises
    [Invalid_argument] for channels outside a fixed decomposition. *)

val observe_batch : t -> event array -> outcome array
(** {!observe} over a contiguous run of events, in order. *)

module Sink : Synts_ingest.Ingest.S with type t = t
(** The {!Synts_ingest.Ingest.S} conformance ([drain] and [finish] map
    to {!drain_events} and {!finish_events}). *)

val ingest : t -> Synts_ingest.Ingest.sink
(** This session as a packed ingest sink. *)

val drain_events :
  t -> (Synts_core.Event_stream.ticket * Synts_core.Internal_events.stamp) list
(** Internal-event stamps resolved since the last drain, oldest first.
    The pending queue is bounded by the constructor's [pending_cap]: when
    an embedder stops draining, the oldest resolved stamps are evicted —
    each eviction increments {!dropped_events} and the
    [session.dropped_events] telemetry counter, never silently. *)

val dropped_events : t -> int
(** Resolved stamps evicted from the full pending queue so far. *)

val finish_events :
  t -> (Synts_core.Event_stream.ticket * Synts_core.Internal_events.stamp) list
(** Flush still-pending internal events with [succ = +∞]. *)

val messages_observed : t -> int
val frontier : t -> (int * Synts_clock.Vector.t) list
(** Current maximal messages as [(sequence number, timestamp)]; sequence
    numbers count messages in observation order from 0. *)

val concurrency_ratio : t -> float
val longest_chain : t -> int

val width : t -> int
(** Width of the message poset observed so far (maintained incrementally;
    always ≤ {!dimension}). The size an offline re-timestamping of the
    prefix would need. *)

val precedes : t -> Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
val concurrent : t -> Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
val happened_before :
  t -> Synts_core.Internal_events.stamp -> Synts_core.Internal_events.stamp -> bool
(** Padded comparisons, valid across the session's whole lifetime. *)

val decomposition : t -> Synts_graph.Decomposition.t
(** The current decomposition (a snapshot when adaptive). Raises
    [Invalid_argument] for {!offline_stream} sessions, which stamp from
    the observed order without one. *)
