(** Churn-tolerant membership: epochs over an incrementally maintained
    edge decomposition.

    The paper's clocks assume a fixed topology [G] with a fixed edge
    decomposition. A membership instance lifts that to a {e sequence} of
    topologies connected by deltas — processes join and leave, channels
    appear and disappear — while keeping the Figure 5 protocol exact:

    - Every clock component has a {e stable id} for its whole lifetime.
      A component may be {e live} (its channels still increment it) or
      {e frozen} (its channels were redecomposed away; old counts are
      still carried and max-merged, never incremented again).
    - The soundness invariant is on the {e historical union} of edges
      ever assigned to a component: all of them must pairwise share a
      process (a common vertex, or the three edges of one triangle), so
      all messages counted by the component are totally ordered and the
      count characterization [ts(m)[c] = #{c-messages ≼ m}] of Theorem 4
      survives arbitrary delta sequences.
    - Each applied delta opens a new {e epoch} and yields a {!remap}
      describing how epoch-[e] vector slots embed into epoch-[e+1]
      vectors. Without {!compact} the remap is an identity injection
      (old slots keep their index, the width only grows), so translating
      an old-epoch stamp is zero-padding — provably exact. {!compact}
      retires long-frozen slots and renumbers, trading exact
      comparability of pre-floor stamps for bounded width.

    Deltas are repaired {e locally}: an added edge is absorbed into the
    first live component whose historical union stays
    pairwise-intersecting, else it opens a fresh singleton star. Only
    when the live-component count would exceed the
    [min(β(G), N_active − 2)] bound of Theorem 5 does the maintenance
    fall back to a full recompute ({!Decomposition.best} plus an exact
    vertex-cover candidate), matching the recomputed groups back onto
    live ids wherever the union invariant allows. Every epoch is logged
    ({!history}) so the [epoch/*] lint rules can audit the bound and the
    remap chain after the fact. *)

type delta =
  | Join of { proc : int; edges : (int * int) list }
      (** Activate [proc] (growing the vertex set when [proc] is fresh)
          and add [edges], each incident to [proc] with an already
          active peer. Rejoining a previously left process keeps its
          identity — vertex slots are never reused for a different
          process, which is what keeps frozen components sound. *)
  | Leave of int
      (** Drop every channel of the process and deactivate it. *)
  | Add_edge of int * int
  | Remove_edge of int * int

type remap = {
  from_epoch : int;
  from_dim : int;
  to_dim : int;
  map : int array;
      (** [map.(s)] is the slot of epoch-[from_epoch] component [s] in
          epoch [from_epoch + 1] vectors, or [-1] when {!compact}
          retired it. *)
}

type epoch_info = {
  epoch : int;
  delta : string;  (** the delta that opened the epoch, rendered *)
  live : int;  (** live components *)
  width : int;  (** vector width (live + frozen slots) *)
  active_procs : int;
  bound : int;  (** the [min(β(G), N_active − 2)] clamp, ≥ 1 *)
  repaired : bool;  (** local repair sufficed *)
  recomputed : bool;  (** fell back to a full recompute *)
  compacted : bool;
}

type t

val create : Graph.t -> Decomposition.t -> t
(** Epoch 0: the decomposition's groups become live components
    [0 .. d-1], every process is active. Raises [Invalid_argument] when
    the decomposition does not cover the graph. *)

val of_graph : Graph.t -> t
(** [create g (Decomposition.best g)]. *)

val apply : t -> delta -> (remap, string) result
(** Apply one delta; on success the epoch advances by one and the
    returned remap translates previous-epoch vectors. On [Error] the
    state is unchanged. *)

val delta_to_string : delta -> string
(** [join:P:U-V,U-V] / [leave:P] / [add:U-V] / [drop:U-V]. *)

val delta_of_string : string -> (delta, string) result

val epoch : t -> int
val width : t -> int
(** Current vector width (= number of allocated slots). *)

val processes : t -> int
(** Size of the vertex universe (grows on joins, never shrinks). *)

val active : t -> int list
val is_active : t -> int -> bool
val graph : t -> Graph.t
val live_components : t -> int
val frozen_components : t -> int

val slot_of_edge : t -> int -> int -> int
(** The current vector slot incremented by messages on channel [(u,v)].
    Raises [Not_found] when the channel is not in the current topology. *)

val component_edges : t -> (int * Graph.edge list) list
(** Live components as [(slot, current edges)], sorted by slot. *)

val remap_to_current : t -> from_epoch:int -> remap
(** The composition of the per-epoch remaps from [from_epoch] to the
    current epoch ([map] is the identity injection when nothing was
    compacted in between). Raises [Invalid_argument] on a future or
    negative epoch. *)

val translate : t -> from_epoch:int -> int array -> int array
(** Rewrite an epoch-[from_epoch] stamp into a current-epoch stamp
    (fresh array): surviving slots move by {!remap_to_current},
    retired slots are dropped, new slots are zero. *)

val compact : t -> retire_before:int -> remap
(** Drop every slot whose component was frozen before epoch
    [retire_before] and renumber the survivors densely. Stamps from
    epochs [≥ retire_before] keep exact comparison outcomes; older
    stamps must be translated {e before} their distinguishing slots are
    retired. Opens a new epoch even when nothing is dropped. *)

val history : t -> epoch_info list
(** One record per epoch (including epoch 0), oldest first — the input
    of the [epoch/*] lint rules. *)

val remaps : t -> remap list
(** The per-epoch remap chain, oldest first; entry [i] maps epoch [i]
    to epoch [i + 1]. *)

val repairs : t -> int
val recomputes : t -> int

val pp : Format.formatter -> t -> unit
