(** Edge decompositions into stars and triangles (paper Definition 2).

    An edge decomposition of a topology [G = (V, E)] is a partition
    [{E1, …, Ed}] of [E] such that each [(V, Ei)] is a star or a triangle.
    The online timestamping algorithm dedicates one vector component to each
    group, so [d] is exactly the timestamp size; all the constructions the
    paper discusses are here:

    - {!paper}: the approximation algorithm of Figure 7 (ratio ≤ 2,
      Theorem 6; optimal on forests, Theorem 7);
    - {!of_vertex_cover}: one star per cover vertex (Theorem 5);
    - {!sequential}: the trivial ≤ N−2 groups bound of Theorem 5;
    - {!exact}: minimum decomposition by branch and bound (small graphs);
    - {!best}: the smallest of the polynomial constructions. *)

type group =
  | Star of { center : int; leaves : int list }
      (** Edges [center—leaf] for each leaf; [leaves] is sorted, non-empty,
          and never contains [center]. *)
  | Triangle of int * int * int  (** Three vertices [x < y < z], all edges. *)

type t
(** A decomposition, carrying its edge-to-group index. *)

val make : Graph.t -> group list -> (t, string) result
(** Validates that the groups partition the graph's edge set and that each
    group is well-formed; returns a descriptive error otherwise. *)

val make_exn : Graph.t -> group list -> t
(** Like {!make} but raises [Invalid_argument]. *)

val groups : t -> group list
val size : t -> int
(** Number of groups [d] — the timestamp dimension. *)

val graph_vertices : t -> int
(** [N], the vertex count of the decomposed topology. *)

val group_of_edge : t -> int -> int -> int
(** [group_of_edge t u v] is the index [g] with edge [(u, v) ∈ E_g]
    (0-based). Raises [Not_found] when the edge is in no group. *)

val edges_of_group : group -> Graph.edge list
val stars : t -> int
val triangles : t -> int

type step = { phase : int; group : group }
(** One output action of the Figure 7 algorithm, tagged with the step
    (1, 2 or 3) that produced it — used to replay Figure 8. *)

val paper_trace : Graph.t -> step list
(** The full run of the paper's algorithm, in emission order. *)

val paper : Graph.t -> t
(** The decomposition produced by the Figure 7 algorithm. Deterministic:
    ties are broken towards smaller vertex/edge identifiers. *)

val of_vertex_cover : Graph.t -> int list -> (t, string) result
(** One star per cover vertex; each edge joins the star of its smallest
    covering vertex. Fails when the list is not a vertex cover. Empty stars
    are dropped, so the size is ≤ the cover size. *)

val sequential : Graph.t -> t
(** Scan vertices in increasing order emitting the star of each vertex's
    remaining edges; when ≤ 3 vertices with edges remain and they form a
    triangle, emit it as one group. Guarantees ≤ max(1, N−2) groups on any
    graph (Theorem 5's fallback). *)

val exact : ?limit:int -> Graph.t -> t option
(** Minimum-size decomposition by branch and bound on the smallest
    uncovered edge ([limit] bounds explored nodes, default 2_000_000;
    [None] when exceeded). WLOG stars greedily absorb every remaining edge
    at their center (an exchange argument shows this loses nothing). *)

val min_size_lower_bound : Graph.t -> int
(** Any matching is a set of edges that must lie in pairwise-distinct
    groups, so a greedy maximal matching size lower-bounds the optimum. *)

val group_of_edge_set : int -> Graph.edge list -> group option
(** [group_of_edge_set n edges] is the single star or triangle on [n]
    vertices covering exactly [edges], when one exists. An edge set fits
    one group iff it is pairwise-intersecting (a common vertex, or the
    three edges of a triangle) — the compatibility test the incremental
    {!Membership} maintenance uses before absorbing an edge into an
    existing clock component. *)

val best : Graph.t -> t
(** Smallest of {!paper}, greedy/matching vertex-cover stars and
    {!sequential} — the recommended polynomial-time construction. *)

val triangles_first : Graph.t -> t
(** Ablation variant: greedily carve out disjoint triangles, then cover
    the remaining edges with greedy-vertex-cover stars. Good exactly when
    the topology is triangle-rich (its motivating case is the
    disjoint-triangles family where pure stars pay 2×); the benchmark
    suite compares it against {!paper}. *)

val improve : Graph.t -> t -> t
(** Local-search post-pass: repeatedly merge two groups whose combined
    edge set is itself a single star or triangle. Never increases the
    size; recovers, e.g., the triangles a pure-star construction split in
    half. O(d² · m) per round. *)

val pp_group : ?labels:(int * string) list -> Format.formatter -> group -> unit
val pp : ?labels:(int * string) list -> Format.formatter -> t -> unit
