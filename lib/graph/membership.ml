type delta =
  | Join of { proc : int; edges : (int * int) list }
  | Leave of int
  | Add_edge of int * int
  | Remove_edge of int * int

type remap = {
  from_epoch : int;
  from_dim : int;
  to_dim : int;
  map : int array;
}

type epoch_info = {
  epoch : int;
  delta : string;
  live : int;
  width : int;
  active_procs : int;
  bound : int;
  repaired : bool;
  recomputed : bool;
  compacted : bool;
}

(* A clock component over its lifetime. [edges] is the current channel
   set (empty once frozen); [union] is every edge ever assigned — the
   soundness invariant lives on the union: it must stay
   pairwise-intersecting, so all messages counted by this component
   share a process pairwise and are totally ordered by the synchronous
   semantics. *)
type comp = { mutable edges : Graph.edge list; mutable union : Graph.edge list }

type t = {
  mutable graph : Graph.t;
  mutable active : bool array;  (* length = Graph.n graph *)
  comps : (int, comp) Hashtbl.t;  (* live components, by stable id *)
  frozen : (int, int) Hashtbl.t;  (* id -> epoch it was frozen at *)
  edge_index : (Graph.edge, int) Hashtbl.t;  (* current edge -> live id *)
  slots : (int, int) Hashtbl.t;  (* id -> current slot (dropped ids absent) *)
  mutable next_id : int;
  mutable width : int;
  mutable epoch : int;
  mutable remap_chain : remap list;  (* newest first *)
  mutable log : epoch_info list;  (* newest first *)
  mutable repairs : int;
  mutable recomputes : int;
}

let epoch t = t.epoch
let width t = t.width
let processes t = Graph.n t.graph
let graph t = t.graph
let is_active t p = p >= 0 && p < Array.length t.active && t.active.(p)

let active t =
  List.filter (is_active t) (List.init (Array.length t.active) Fun.id)

let active_count t =
  Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.active

let live_components t = Hashtbl.length t.comps

let frozen_components t =
  Hashtbl.fold
    (fun id _ acc -> if Hashtbl.mem t.slots id then acc + 1 else acc)
    t.frozen 0

let slot_of_edge t u v =
  match Hashtbl.find_opt t.edge_index (Graph.normalize_edge u v) with
  | Some id -> Hashtbl.find t.slots id
  | None -> raise Not_found

let component_edges t =
  Hashtbl.fold
    (fun id c acc -> (Hashtbl.find t.slots id, List.sort compare c.edges) :: acc)
    t.comps []
  |> List.sort compare

let repairs t = t.repairs
let recomputes t = t.recomputes
let history t = List.rev t.log
let remaps t = List.rev t.remap_chain

(* -- delta rendering ------------------------------------------------- *)

let edge_to_string (u, v) = Printf.sprintf "%d-%d" u v

let delta_to_string = function
  | Join { proc; edges = [] } -> Printf.sprintf "join:%d" proc
  | Join { proc; edges } ->
      Printf.sprintf "join:%d:%s" proc
        (String.concat "," (List.map edge_to_string edges))
  | Leave p -> Printf.sprintf "leave:%d" p
  | Add_edge (u, v) -> Printf.sprintf "add:%d-%d" u v
  | Remove_edge (u, v) -> Printf.sprintf "drop:%d-%d" u v

let parse_edge s =
  match String.index_opt s '-' with
  | Some i -> (
      let a = String.sub s 0 i
      and b = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
      | Some u, Some v when u >= 0 && v >= 0 && u <> v -> Ok (u, v)
      | _ -> Error (Printf.sprintf "bad edge %S" s))
  | None -> Error (Printf.sprintf "bad edge %S (expected U-V)" s)

let delta_of_string s =
  let s = String.trim s in
  let parts = String.split_on_char ':' s in
  let int_part what p =
    match int_of_string_opt (String.trim p) with
    | Some x when x >= 0 -> Ok x
    | _ -> Error (Printf.sprintf "bad %s in delta %S" what s)
  in
  match parts with
  | [ "join"; p ] ->
      Result.map (fun proc -> Join { proc; edges = [] }) (int_part "process" p)
  | [ "join"; p; es ] -> (
      match int_part "process" p with
      | Error _ as e -> e
      | Ok proc ->
          let rec go acc = function
            | [] -> Ok (Join { proc; edges = List.rev acc })
            | e :: rest -> (
                match parse_edge e with
                | Ok edge -> go (edge :: acc) rest
                | Error m -> Error m)
          in
          go [] (String.split_on_char ',' es))
  | [ "leave"; p ] -> Result.map (fun p -> Leave p) (int_part "process" p)
  | [ "add"; e ] -> Result.map (fun (u, v) -> Add_edge (u, v)) (parse_edge e)
  | [ "drop"; e ] ->
      Result.map (fun (u, v) -> Remove_edge (u, v)) (parse_edge e)
  | _ ->
      Error
        (Printf.sprintf
           "bad delta %S (expected join:P[:U-V,..], leave:P, add:U-V or \
            drop:U-V)" s)

(* -- bound ----------------------------------------------------------- *)

(* min(beta(G), N_active - 2), computed with the exact vertex-cover
   solver when it fits its budget and the better polynomial heuristic
   otherwise; clamped to >= 1 so degenerate topologies are never flagged. *)
let vc_bound g =
  match Vertex_cover.exact ~limit:50_000 g with
  | Some c -> List.length c
  | None ->
      min
        (List.length (Vertex_cover.greedy g))
        (List.length (Vertex_cover.two_approx g))

let bound_of t = max 1 (min (vc_bound t.graph) (max 1 (active_count t - 2)))

(* -- construction ---------------------------------------------------- *)

let create g d =
  if Decomposition.graph_vertices d <> Graph.n g then
    invalid_arg "Membership.create: decomposition built for another graph";
  let t =
    {
      graph = g;
      active = Array.make (Graph.n g) true;
      comps = Hashtbl.create 16;
      frozen = Hashtbl.create 16;
      edge_index = Hashtbl.create (2 * Graph.m g);
      slots = Hashtbl.create 16;
      next_id = 0;
      width = 0;
      epoch = 0;
      remap_chain = [];
      log = [];
      repairs = 0;
      recomputes = 0;
    }
  in
  List.iter
    (fun grp ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.slots id t.width;
      t.width <- t.width + 1;
      let edges = Decomposition.edges_of_group grp in
      Hashtbl.replace t.comps id { edges; union = List.sort_uniq compare edges };
      List.iter (fun e -> Hashtbl.replace t.edge_index e id) edges)
    (Decomposition.groups d);
  if Hashtbl.length t.edge_index <> Graph.m g then
    invalid_arg "Membership.create: decomposition does not cover the graph";
  t.log <-
    [
      {
        epoch = 0;
        delta = "init";
        live = live_components t;
        width = t.width;
        active_procs = active_count t;
        bound = bound_of t;
        repaired = false;
        recomputed = false;
        compacted = false;
      };
    ];
  t

(* The candidate set both [of_graph] and the recompute fallback draw
   from. Includes a decomposition built from the exact vertex cover
   whenever the exact solver fits its budget, so the achieved size never
   exceeds the [bound_of] clamp (which uses the same cover). *)
let best_decomposition g =
  let candidates =
    Decomposition.best g
    ::
    (match Vertex_cover.exact ~limit:50_000 g with
    | Some cover -> (
        match Decomposition.of_vertex_cover g cover with
        | Ok d -> [ d ]
        | Error _ -> [])
    | None -> [])
  in
  let d =
    List.fold_left
      (fun acc d -> if Decomposition.size d < Decomposition.size acc then d else acc)
      (List.hd candidates) (List.tl candidates)
  in
  Decomposition.improve g d

let of_graph g = create g (best_decomposition g)

(* -- local repair ---------------------------------------------------- *)

(* Can [extra] join a component with historical union [union] without
   breaking the pairwise-intersection invariant?  An edge set is
   pairwise-intersecting iff it is a single star or triangle. *)
let union_accepts t union extra =
  Decomposition.group_of_edge_set (processes t)
    (List.sort_uniq compare (extra @ union))
  <> None

let live_ids t =
  List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.comps [])

(* Absorb one new edge: the first (lowest-id) live component whose union
   stays a star/triangle takes it; otherwise a fresh singleton star. *)
let absorb t e =
  t.graph <- Graph.add_edge t.graph (fst e) (snd e);
  let target =
    List.find_opt
      (fun id -> union_accepts t (Hashtbl.find t.comps id).union [ e ])
      (live_ids t)
  in
  match target with
  | Some id ->
      let c = Hashtbl.find t.comps id in
      c.edges <- e :: c.edges;
      c.union <- List.sort_uniq compare (e :: c.union);
      Hashtbl.replace t.edge_index e id
  | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.slots id t.width;
      t.width <- t.width + 1;
      Hashtbl.replace t.comps id { edges = [ e ]; union = [ e ] };
      Hashtbl.replace t.edge_index e id

let shed t e =
  t.graph <- Graph.remove_edge t.graph (fst e) (snd e);
  let id = Hashtbl.find t.edge_index e in
  Hashtbl.remove t.edge_index e;
  let c = Hashtbl.find t.comps id in
  c.edges <- List.filter (fun e' -> e' <> e) c.edges;
  if c.edges = [] then begin
    (* The component's channels are gone: freeze it. Its slot keeps
       carrying the old counts (merged, never incremented), so stamps
       from earlier epochs stay exactly comparable. *)
    Hashtbl.remove t.comps id;
    Hashtbl.replace t.frozen id (t.epoch + 1)
  end

(* -- full recompute fallback ----------------------------------------- *)

let recompose t =
  let d = best_decomposition t.graph in
  (* Match recomputed groups back onto live ids: an identical current
     edge set first, then any id whose union absorbs the whole group;
     everything unmatched freezes / is freshly allocated. *)
  let unmatched = Hashtbl.create 16 in
  Hashtbl.iter (fun id c -> Hashtbl.replace unmatched id c) t.comps;
  Hashtbl.reset t.comps;
  Hashtbl.reset t.edge_index;
  List.iter
    (fun grp ->
      let es = List.sort compare (Decomposition.edges_of_group grp) in
      let exact_match =
        Hashtbl.fold
          (fun id c acc ->
            match acc with
            | Some _ -> acc
            | None -> if List.sort compare c.edges = es then Some id else None)
          unmatched None
      in
      let compatible =
        match exact_match with
        | Some _ -> exact_match
        | None ->
            Hashtbl.fold
              (fun id c acc ->
                match acc with
                | Some best ->
                    if id < best && union_accepts t c.union es then Some id
                    else acc
                | None -> if union_accepts t c.union es then Some id else None)
              unmatched None
      in
      let id =
        match compatible with
        | Some id ->
            let c = Hashtbl.find unmatched id in
            Hashtbl.remove unmatched id;
            Hashtbl.replace t.comps id
              { edges = es; union = List.sort_uniq compare (es @ c.union) };
            id
        | None ->
            let id = t.next_id in
            t.next_id <- id + 1;
            Hashtbl.replace t.slots id t.width;
            t.width <- t.width + 1;
            Hashtbl.replace t.comps id { edges = es; union = es };
            id
      in
      List.iter (fun e -> Hashtbl.replace t.edge_index e id) es)
    (Decomposition.groups d);
  Hashtbl.iter (fun id _ -> Hashtbl.replace t.frozen id (t.epoch + 1)) unmatched

(* -- epoch commit ---------------------------------------------------- *)

let commit t ~delta ~old_width ~recomputed =
  let map = Array.init old_width Fun.id in
  let remap =
    { from_epoch = t.epoch; from_dim = old_width; to_dim = t.width; map }
  in
  t.remap_chain <- remap :: t.remap_chain;
  t.epoch <- t.epoch + 1;
  if recomputed then t.recomputes <- t.recomputes + 1
  else t.repairs <- t.repairs + 1;
  t.log <-
    {
      epoch = t.epoch;
      delta;
      live = live_components t;
      width = t.width;
      active_procs = active_count t;
      bound = bound_of t;
      repaired = not recomputed;
      recomputed;
      compacted = false;
    }
    :: t.log;
  remap

(* -- validation ------------------------------------------------------ *)

let validate t d =
  let n = processes t in
  let edge_ok (u, v) = u >= 0 && v >= 0 && u <> v in
  match d with
  | Join { proc; edges } ->
      if proc < 0 then Error "join: negative process id"
      else if is_active t proc then
        Error (Printf.sprintf "join: process %d is already active" proc)
      else
        let rec check seen = function
          | [] -> Ok ()
          | e :: rest ->
              if not (edge_ok e) then
                Error (Printf.sprintf "join: bad edge %s" (edge_to_string e))
              else
                let ne = Graph.normalize_edge (fst e) (snd e) in
                let u, v = ne in
                let other = if u = proc then v else u in
                if u <> proc && v <> proc then
                  Error
                    (Printf.sprintf "join: edge %s is not incident to %d"
                       (edge_to_string e) proc)
                else if other <> proc && not (is_active t other) then
                  Error
                    (Printf.sprintf "join: peer %d of edge %s is not active"
                       other (edge_to_string e))
                else if List.mem ne seen then
                  Error
                    (Printf.sprintf "join: duplicate edge %s" (edge_to_string e))
                else check (ne :: seen) rest
        in
        check [] edges
  | Leave p ->
      if not (is_active t p) then
        Error (Printf.sprintf "leave: process %d is not active" p)
      else Ok ()
  | Add_edge (u, v) ->
      if not (edge_ok (u, v)) then Error "add: bad edge"
      else if not (is_active t u && is_active t v) then
        Error
          (Printf.sprintf "add: both endpoints of %d-%d must be active" u v)
      else if Graph.has_edge t.graph u v then
        Error (Printf.sprintf "add: edge %d-%d already present" u v)
      else Ok ()
  | Remove_edge (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n || u = v
         || not (Graph.has_edge t.graph u v)
      then Error (Printf.sprintf "drop: edge %d-%d is not present" u v)
      else Ok ()

let grow_universe t n' =
  if n' > processes t then begin
    t.graph <- Graph.of_edges n' (Graph.edges t.graph);
    let active = Array.make n' false in
    Array.blit t.active 0 active 0 (Array.length t.active);
    t.active <- active
  end

let apply t d =
  match validate t d with
  | Error _ as e -> e
  | Ok () ->
      let old_width = t.width in
      (match d with
      | Join { proc; edges } ->
          grow_universe t (proc + 1);
          t.active.(proc) <- true;
          List.iter
            (fun (u, v) -> absorb t (Graph.normalize_edge u v))
            edges
      | Leave p ->
          List.iter
            (fun peer -> shed t (Graph.normalize_edge p peer))
            (Graph.neighbors t.graph p);
          t.active.(p) <- false
      | Add_edge (u, v) -> absorb t (Graph.normalize_edge u v)
      | Remove_edge (u, v) -> shed t (Graph.normalize_edge u v));
      let recomputed =
        if live_components t > bound_of t then begin
          recompose t;
          true
        end
        else false
      in
      Ok (commit t ~delta:(delta_to_string d) ~old_width ~recomputed)

(* -- compaction ------------------------------------------------------ *)

let compact t ~retire_before =
  let old_width = t.width in
  let dropped = Hashtbl.create 8 in
  Hashtbl.iter
    (fun id at ->
      if at < retire_before && Hashtbl.mem t.slots id then
        Hashtbl.replace dropped id ())
    t.frozen;
  (* Renumber survivors densely, preserving slot order. *)
  let by_slot =
    Hashtbl.fold (fun id slot acc -> (slot, id) :: acc) t.slots []
    |> List.sort compare
  in
  let map = Array.make old_width (-1) in
  let next = ref 0 in
  List.iter
    (fun (slot, id) ->
      if Hashtbl.mem dropped id then Hashtbl.remove t.slots id
      else begin
        map.(slot) <- !next;
        Hashtbl.replace t.slots id !next;
        incr next
      end)
    by_slot;
  t.width <- !next;
  let remap =
    { from_epoch = t.epoch; from_dim = old_width; to_dim = t.width; map }
  in
  t.remap_chain <- remap :: t.remap_chain;
  t.epoch <- t.epoch + 1;
  t.log <-
    {
      epoch = t.epoch;
      delta = Printf.sprintf "compact:%d" retire_before;
      live = live_components t;
      width = t.width;
      active_procs = active_count t;
      bound = bound_of t;
      repaired = false;
      recomputed = false;
      compacted = true;
    }
    :: t.log;
  remap

(* -- translation ----------------------------------------------------- *)

let remap_to_current t ~from_epoch =
  if from_epoch < 0 || from_epoch > t.epoch then
    invalid_arg
      (Printf.sprintf "Membership.remap_to_current: epoch %d outside 0..%d"
         from_epoch t.epoch);
  let chain = List.rev t.remap_chain in
  let steps = List.filteri (fun i _ -> i >= from_epoch) chain in
  match steps with
  | [] ->
      {
        from_epoch;
        from_dim = t.width;
        to_dim = t.width;
        map = Array.init t.width Fun.id;
      }
  | first :: rest ->
      let map =
        List.fold_left
          (fun acc r ->
            Array.map (fun s -> if s < 0 then -1 else r.map.(s)) acc)
          (Array.copy first.map) rest
      in
      { from_epoch; from_dim = first.from_dim; to_dim = t.width; map }

let translate t ~from_epoch v =
  let r = remap_to_current t ~from_epoch in
  if Array.length v <> r.from_dim then
    invalid_arg
      (Printf.sprintf
         "Membership.translate: stamp has %d slots, epoch %d has %d"
         (Array.length v) from_epoch r.from_dim);
  let out = Array.make r.to_dim 0 in
  Array.iteri (fun s x -> if r.map.(s) >= 0 then out.(r.map.(s)) <- x) v;
  out

let pp ppf t =
  Format.fprintf ppf
    "@[<v>membership epoch %d: %d active / %d procs, %d live + %d frozen \
     components, width %d@]"
    t.epoch (active_count t) (processes t) (live_components t)
    (frozen_components t) t.width
