(** The streaming offline pipeline as an {!Ingest.S} sink.

    Wraps {!Synts_core.Offline.Stream} — incremental Dilworth chain
    maintenance with bounded memory — behind the unified ingestion
    interface, so embedders written against {!Ingest.sink} (sessions, the
    [synts serve] service, the load driver) can emit offline-style
    rank-vector stamps live. Message stamps are immediate and final;
    internal events resolve through {!Synts_core.Event_stream} exactly as
    a session's do. The vector dimension grows with the streaming chain
    count (compare stamps of different widths zero-padded, e.g. via
    {!Synts_core.Offline.Stream.precedes}).

    Unlike the Fig. 5 online sinks ({!Synts_session.Session},
    [Synts_server.Engine]), stamps do {e not} depend on a topology
    decomposition — only on the observed linearization — and are
    order-equivalent to the batch {!Synts_core.Offline.timestamp_trace}
    on the same event order. *)

type t

val create : ?window:int -> n:int -> unit -> t
(** A sink over [n] processes; [window] is the live-window bound of
    {!Synts_poset.Streaming_chains}. *)

val stream : t -> Synts_core.Offline.Stream.t
(** The underlying stream, for width / memory / repair statistics. *)

val pending : t -> int
(** Resolved stamps queued awaiting {!drain} — the backpressure signal
    the admin channel reports. *)

val observe : t -> Ingest.event -> Ingest.outcome
val observe_batch : t -> Ingest.event array -> Ingest.outcome array

val drain : t -> Ingest.resolved list
val finish : t -> Ingest.resolved list

val processes : t -> int
val dimension : t -> int

module Sink : Ingest.S with type t = t

val ingest : t -> Ingest.sink
(** This stamper as a packed ingest sink. *)
