module Trace = Synts_sync.Trace

type ticket = Synts_core.Event_stream.ticket

type event =
  | Message of { src : int; dst : int }
  | Internal of { proc : int }

type outcome =
  | Stamped of Synts_clock.Vector.t
  | Deferred of ticket

type resolved = ticket * Synts_core.Internal_events.stamp

module type S = sig
  type t

  val observe : t -> event -> outcome
  val observe_batch : t -> event array -> outcome array
  val drain : t -> resolved list
  val finish : t -> resolved list
  val processes : t -> int
  val dimension : t -> int
end

type sink = Sink : (module S with type t = 'a) * 'a -> sink

let sink (type a) (module M : S with type t = a) state = Sink ((module M), state)

let observe (Sink ((module M), t)) event = M.observe t event
let observe_batch (Sink ((module M), t)) events = M.observe_batch t events
let drain (Sink ((module M), t)) = M.drain t
let finish (Sink ((module M), t)) = M.finish t
let processes (Sink ((module M), t)) = M.processes t
let dimension (Sink ((module M), t)) = M.dimension t

let event_of_step = function
  | Trace.Send (src, dst) -> Message { src; dst }
  | Trace.Local proc -> Internal { proc }

let feed_trace s trace =
  let steps = Array.of_list (Trace.steps trace) in
  observe_batch s (Array.map event_of_step steps)

let message_stamps outcomes =
  let count =
    Array.fold_left
      (fun acc -> function Stamped _ -> acc + 1 | Deferred _ -> acc)
      0 outcomes
  in
  let out = Array.make count [||] in
  let i = ref 0 in
  Array.iter
    (function
      | Stamped v ->
          out.(!i) <- v;
          incr i
      | Deferred _ -> ())
    outcomes;
  out
