(** The unified ingestion interface every stamping sink conforms to.

    PRs 1–5 grew one observation entry point per layer: [Session.observe],
    raw streaming-stamper closures, the CSP runtime's [?on_stamp] hook, the
    network replay plumbing in [bin/main.ml]. This module is the
    convergence point: an {e ingest sink} consumes a stream of
    [Session.observe]-shaped events — synchronous messages and internal
    events, in any linearization order of the real run — and answers with
    stamps (immediate for messages, deferred tickets for internal events).

    {!S} is implemented by [Synts_session.Session] (in-process monitoring),
    [Synts_server.Engine] (the sharded stamping engine behind
    [synts serve]) and [Synts_server.Client] (remote stamping over a
    socket), so embedders are written once against {!sink} and run
    unchanged against any of them. *)

type ticket = Synts_core.Event_stream.ticket
(** Deferred internal-event handles, issued in announcement order. *)

type event =
  | Message of { src : int; dst : int }
      (** The next synchronous message, in linearization order. *)
  | Internal of { proc : int }  (** An internal event of one process. *)

type outcome =
  | Stamped of Synts_clock.Vector.t
      (** A message's timestamp, available immediately. *)
  | Deferred of ticket
      (** An internal event's handle; its stamp is complete only once the
          process's next message is observed — redeem via {!drain} or
          {!finish}. *)

type resolved = ticket * Synts_core.Internal_events.stamp
(** A redeemed internal-event stamp. *)

(** The interface proper. Implementations must stamp identically to the
    deterministic single-process oracle ([Online.stamper] over the same
    decomposition and event order) — the conformance tests hold every
    conformer to that. *)
module type S = sig
  type t

  val observe : t -> event -> outcome
  (** Observe the next event of the stream. *)

  val observe_batch : t -> event array -> outcome array
  (** Observe a contiguous run of events at once (the unit of ingestion
      for batching sinks such as the server client; equivalent to
      observing each event in order). *)

  val drain : t -> resolved list
  (** Internal-event stamps resolved since the last drain, oldest
      first. *)

  val finish : t -> resolved list
  (** Flush: every still-pending internal event is resolved with
      [succ = +∞] (preceded by any undrained resolved stamps). *)

  val processes : t -> int
  val dimension : t -> int
  (** Current timestamp width (may grow for adaptive sinks). *)
end

type sink = Sink : (module S with type t = 'a) * 'a -> sink
(** A first-class sink: implementation packed with its state. *)

val sink : (module S with type t = 'a) -> 'a -> sink

(** {1 Operating on packed sinks} *)

val observe : sink -> event -> outcome
val observe_batch : sink -> event array -> outcome array
val drain : sink -> resolved list
val finish : sink -> resolved list
val processes : sink -> int
val dimension : sink -> int

(** {1 Stream helpers} *)

val event_of_step : Synts_sync.Trace.step -> event
(** [Send (src, dst)] is a [Message], [Local p] an [Internal]. *)

val feed_trace : sink -> Synts_sync.Trace.t -> outcome array
(** Observe every step of a linearized trace, in order (one outcome per
    step; does not {!finish}). *)

val message_stamps : outcome array -> Synts_clock.Vector.t array
(** The [Stamped] vectors of an outcome stream, in order — one per
    message when the outcomes came from a whole trace. *)
