module Stream = Synts_core.Offline.Stream
module Event_stream = Synts_core.Event_stream

type t = {
  stream : Stream.t;
  events : Event_stream.t;
  resolved : (Event_stream.ticket * Synts_core.Internal_events.stamp) Queue.t;
  n : int;
}

let create ?window ~n () =
  {
    stream = Stream.create ?window ~n ();
    (* The event stream accepts vectors wider than its creation dimension,
       so it follows the stream's growing chain count like an adaptive
       session's. *)
    events = Event_stream.create ~dimension:1 ~n;
    resolved = Queue.create ();
    n;
  }

let stream t = t.stream
let processes t = t.n
let dimension t = Stream.dimension t.stream
let pending t = Queue.length t.resolved

let observe t event =
  match event with
  | Ingest.Message { src; dst } ->
      let v = Stream.observe t.stream ~src ~dst in
      let enqueue = List.iter (fun r -> Queue.push r t.resolved) in
      enqueue (Event_stream.record_message t.events ~proc:src v);
      enqueue (Event_stream.record_message t.events ~proc:dst v);
      Ingest.Stamped v
  | Ingest.Internal { proc } ->
      Ingest.Deferred (Event_stream.record_internal t.events ~proc)

let observe_batch t events = Array.map (observe t) events

let drain t =
  let out = List.of_seq (Queue.to_seq t.resolved) in
  Queue.clear t.resolved;
  out

let finish t = drain t @ Event_stream.finish t.events

module Sink = struct
  type nonrec t = t

  let observe = observe
  let observe_batch = observe_batch
  let drain = drain
  let finish = finish
  let processes = processes
  let dimension = dimension
end

let ingest t = Ingest.sink (module Sink) t
