(** Edge-group partition plan for the sharded stamping engine.

    The online stamping rule is componentwise: component [j] of a
    message's timestamp is [max(clock_src.(j), clock_dst.(j))], plus one
    when [j] is the message's edge group. Components therefore shard
    perfectly — a plan assigns every edge-group index to one shard, each
    shard sweeps the same event stream updating only its own components,
    and the full stamps are reassembled by gathering the disjoint slices.

    The effective shard count is clamped to
    [max 1 (min requested dimension)] — more shards than components
    would leave workers with nothing to do ([min(β(G), N−2)] components
    is the paper's bound, so small topologies clamp hard: [N = 2] has a
    single group and always runs one shard). *)

type t

val plan : dimension:int -> shards:int -> t
(** Partition [dimension] component indices round-robin across
    [shards] shards (both clamped to ≥ 1 effective; requested values
    < 1 raise [Invalid_argument]). *)

val dimension : t -> int
val shards : t -> int
(** Effective shard count: [max 1 (min requested dimension)]. *)

val owner : t -> int -> int
(** [owner t g] is the shard that owns component [g]. *)

val components : t -> int -> int array
(** [components t s] are the component indices shard [s] owns, ascending.
    The arrays over all shards partition [0 .. dimension-1]. *)

val slot : t -> int -> int
(** [slot t g] is component [g]'s index within
    [components t (owner t g)] — its column in the owner's slab. *)
