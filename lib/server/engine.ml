module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Stamp_store = Synts_clock.Stamp_store
module Event_stream = Synts_core.Event_stream
module Ingest = Synts_ingest.Ingest
module Tm = Synts_telemetry.Telemetry

let m_batches =
  Tm.Counter.v ~help:"Batches stamped by the sharded engine"
    "server.engine.batches"

let m_events =
  Tm.Counter.v ~help:"Events stamped by the sharded engine"
    "server.engine.events"

let m_shards =
  Tm.Gauge.v ~help:"Worker shards of the most recently created engine"
    "server.engine.shards"

let m_dropped =
  Tm.Counter.v ~help:"Resolved stamps dropped to engine queue overflow"
    "server.engine.dropped_events"

(* Per-shard instrumentation. Each worker domain records only into its
   own registry, so the hot sweep never contends on a metric cell, and
   the counters are chosen to be {e shard-count invariant}: summed over
   the k shards of a run they equal the single-shard oracle's values
   (cells: each shard writes |owned components| cells per event, which
   sums to the dimension; owned messages: exactly one shard owns each
   edge group; owned-group histogram: one observation per message, made
   by its owner). That invariance is what lets [Obs.Merge] reconstruct
   the 1-domain registry bit-identically — property-tested in
   [test/test_obs.ml]. *)
type shard_stats = {
  registry : Tm.registry;
  c_cells : Tm.Counter.t;
  c_owned : Tm.Counter.t;
  h_groups : Tm.Histogram.t;
  c_internal : Tm.Counter.t option;  (* coordinator shard only *)
  mutable swept_events : int;
  scratch : int array;
      (* per-group owned-message tallies for the current batch, flushed
         into [h_groups] with one bucket walk per distinct group *)
}

let make_shard_stats ~coordinator ~dim =
  let registry = Tm.create_registry () in
  {
    registry;
    c_cells =
      Tm.Counter.v ~registry ~help:"Clock cells written by this shard"
        "server.engine.cells";
    c_owned =
      Tm.Counter.v ~registry
        ~help:"Messages whose edge group this shard owns"
        "server.engine.owned_messages";
    h_groups =
      Tm.Histogram.v ~registry
        ~help:"Edge-group ids stamped by this shard (load-skew profile)"
        "server.engine.owned_groups";
    c_internal =
      (if coordinator then
         Some
           (Tm.Counter.v ~registry
              ~help:"Internal events resolved on the coordinator"
              "server.engine.internal_events")
       else None);
    swept_events = 0;
    scratch = Array.make dim 0;
  }

(* Coordinator/worker handshake: the coordinator bumps [gen] to publish a
   batch, workers sweep their slab and bump [done_count]. The mutex
   hand-offs give the happens-before edges that make the coordinator's
   post-barrier slab reads safe. *)
type shared = {
  mutex : Mutex.t;
  go : Condition.t;
  finished : Condition.t;
  mutable gen : int;
  mutable batch : (Ingest.event array * int array) option;
  mutable done_count : int;
  mutable stopping : bool;
}

type t = {
  group_of_edge : int -> int -> int;
      (* The channel -> component-slot map of the current membership
         epoch; raises [Not_found] off-topology. *)
  n : int;
  dim : int;
  plan : Shard.t;
  slabs : Stamp_store.t array;
      (* One slab per shard: rows [0..n-1] are per-process clock slices,
         one output row per batch event is pushed above them and the slab
         is truncated back after assembly. *)
  shared : shared option;  (* None when the sweep runs inline. *)
  domains : unit Domain.t array;
  stats : shard_stats array;  (* one per shard, same indexing as slabs *)
  mutable events : Event_stream.t;
  resolved : (int * Synts_core.Internal_events.stamp) Queue.t;
  pending_cap : int;
  mutable dropped : int;
  mutable ticket_base : int;
  mutable issued : int;
  mutable stopped : bool;
}

(* One shard's pass over a batch: componentwise merge + increment on the
   columns it owns, endpoints adopt the stamp. Identical event order on
   every shard is what makes the reassembled stamps bit-identical to the
   single-domain oracle. *)
let sweep plan shard slab stats events groups =
  (* The hot loop pays only plain int bumps for telemetry; everything
     registry-visible is flushed once per batch below. Flushing group
     tallies via [observe_n] keeps the histogram structurally identical
     to per-message observes (group ids are small integers, so the
     [x *. n] sums are exact) — the merge property depends on that. *)
  let owned = ref 0 and internals = ref 0 in
  let scratch = stats.scratch in
  Array.iteri
    (fun i ev ->
      match ev with
      | Ingest.Internal _ ->
          ignore (Stamp_store.push_zero slab);
          incr internals
      | Ingest.Message { src; dst } ->
          let r = Stamp_store.push_merge slab ~a:src ~b:dst in
          let g = groups.(i) in
          if Shard.owner plan g = shard then begin
            Stamp_store.row_incr slab r (Shard.slot plan g);
            incr owned;
            scratch.(g) <- scratch.(g) + 1
          end;
          Stamp_store.blit_rows slab ~src:r ~dst:src;
          Stamp_store.blit_rows slab ~src:r ~dst:dst)
    events;
  let len = Array.length events in
  stats.swept_events <- stats.swept_events + len;
  Tm.Counter.add stats.c_cells
    (len * Array.length (Shard.components plan shard));
  Tm.Counter.add stats.c_owned !owned;
  Array.iteri
    (fun g n ->
      if n > 0 then begin
        Tm.Histogram.observe_n stats.h_groups (float_of_int g) n;
        scratch.(g) <- 0
      end)
    scratch;
  Option.iter (fun c -> Tm.Counter.add c !internals) stats.c_internal

let worker plan shard slab stats shared =
  let rec loop last =
    Mutex.lock shared.mutex;
    while shared.gen = last && not shared.stopping do
      Condition.wait shared.go shared.mutex
    done;
    if shared.stopping then Mutex.unlock shared.mutex
    else begin
      let gen = shared.gen in
      let events, groups = Option.get shared.batch in
      Mutex.unlock shared.mutex;
      sweep plan shard slab stats events groups;
      Mutex.lock shared.mutex;
      shared.done_count <- shared.done_count + 1;
      Condition.broadcast shared.finished;
      Mutex.unlock shared.mutex;
      loop gen
    end
  in
  loop 0

let make ~shards ~pending_cap ~init ~first_ticket ~n ~dim ~group_of_edge =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  if pending_cap < 1 then invalid_arg "Engine.create: pending_cap must be >= 1";
  if n < 0 then invalid_arg "Engine.create: negative process count";
  if dim < 1 then invalid_arg "Engine.create: dimension must be >= 1";
  if first_ticket < 0 then invalid_arg "Engine.create: negative first ticket";
  (match init with
  | None -> ()
  | Some rows ->
      if Array.length rows <> n then
        invalid_arg "Engine.create: init needs one row per process";
      Array.iter
        (fun r ->
          if Array.length r <> dim then
            invalid_arg "Engine.create: init row width mismatch")
        rows);
  let plan = Shard.plan ~dimension:dim ~shards in
  let k = Shard.shards plan in
  Tm.Gauge.set m_shards k;
  let slabs =
    Array.init k (fun s ->
        let comps = Shard.components plan s in
        let slab =
          Stamp_store.create ~capacity:(max 64 (2 * n)) (Array.length comps)
        in
        for p = 0 to n - 1 do
          ignore (Stamp_store.push_zero slab);
          match init with
          | None -> ()
          | Some rows ->
              Array.iteri
                (fun j c ->
                  if rows.(p).(c) <> 0 then
                    Stamp_store.row_set slab p j rows.(p).(c))
                comps
        done;
        slab)
  in
  let shared =
    if k = 1 then None
    else
      Some
        {
          mutex = Mutex.create ();
          go = Condition.create ();
          finished = Condition.create ();
          gen = 0;
          batch = None;
          done_count = 0;
          stopping = false;
        }
  in
  let stats =
    Array.init k (fun s -> make_shard_stats ~coordinator:(s = 0) ~dim)
  in
  let domains =
    match shared with
    | None -> [||]
    | Some sh ->
        (* Shard 0 sweeps on the coordinator's domain; 1..k-1 get workers. *)
        Array.init (k - 1) (fun i ->
            Domain.spawn (fun () ->
                worker plan (i + 1) slabs.(i + 1) stats.(i + 1) sh))
  in
  {
    group_of_edge;
    n;
    dim;
    plan;
    slabs;
    shared;
    domains;
    stats;
    events = Event_stream.create ~dimension:dim ~n;
    resolved = Queue.create ();
    pending_cap;
    dropped = 0;
    ticket_base = first_ticket;
    issued = 0;
    stopped = false;
  }

let create ?(shards = 1) ?(pending_cap = 65536) d =
  make ~shards ~pending_cap ~init:None ~first_ticket:0
    ~n:(Decomposition.graph_vertices d)
    ~dim:(max 1 (Decomposition.size d))
    ~group_of_edge:(fun u v -> Decomposition.group_of_edge d u v)

let of_layout ?(shards = 1) ?(pending_cap = 65536) ?init ?(first_ticket = 0) ~n
    ~dim ~group_of_edge () =
  make ~shards ~pending_cap ~init ~first_ticket ~n ~dim ~group_of_edge

let shards t = Shard.shards t.plan
let processes t = t.n
let dimension t = t.dim
let pending t = Queue.length t.resolved
let dropped t = t.dropped
let next_ticket t = t.ticket_base + t.issued

(* Reassemble the per-process clock rows from the disjoint shard slices —
   the state a membership reshard carries into the next engine. Only safe
   between batches (same discipline as observe_batch itself). *)
let process_vectors t =
  let k = Shard.shards t.plan in
  Array.init t.n (fun p ->
      let v = Array.make t.dim 0 in
      for s = 0 to k - 1 do
        let comps = Shard.components t.plan s in
        let slab = t.slabs.(s) in
        for j = 0 to Array.length comps - 1 do
          v.(comps.(j)) <- Stamp_store.unsafe_cell slab p j
        done
      done;
      v)

let telemetry_snapshots t =
  Array.to_list
    (Array.map (fun s -> Tm.snapshot ~registry:s.registry ()) t.stats)

let shard_loads t =
  Array.mapi
    (fun i s ->
      ( i,
        s.swept_events,
        Tm.Counter.value s.c_cells,
        Tm.Counter.value s.c_owned ))
    t.stats
  |> Array.to_list

let validate t events =
  Array.map
    (fun ev ->
      match ev with
      | Ingest.Internal { proc } ->
          if proc < 0 || proc >= t.n then
            invalid_arg
              (Printf.sprintf "Engine: internal event on unknown process %d"
                 proc);
          -1
      | Ingest.Message { src; dst } -> (
          try t.group_of_edge src dst
          with Not_found ->
            invalid_arg
              (Printf.sprintf
                 "Engine: channel (%d, %d) outside the decomposition" src dst)))
    events

let observe_batch t events =
  if t.stopped then invalid_arg "Engine: stopped";
  let len = Array.length events in
  if len = 0 then [||]
  else begin
    (* Validate the whole batch up front so a bad event mutates nothing. *)
    let groups = validate t events in
    Tm.Counter.incr m_batches;
    Tm.Counter.add m_events len;
    (match t.shared with
    | None -> sweep t.plan 0 t.slabs.(0) t.stats.(0) events groups
    | Some sh ->
        Mutex.lock sh.mutex;
        sh.batch <- Some (events, groups);
        sh.done_count <- 0;
        sh.gen <- sh.gen + 1;
        Condition.broadcast sh.go;
        Mutex.unlock sh.mutex;
        sweep t.plan 0 t.slabs.(0) t.stats.(0) events groups;
        Mutex.lock sh.mutex;
        while sh.done_count < Array.length t.domains do
          Condition.wait sh.finished sh.mutex
        done;
        sh.batch <- None;
        Mutex.unlock sh.mutex);
    let k = Shard.shards t.plan in
    (* Bounded like a session's pending queue: when a client never
       drains, the oldest resolved stamp is dropped (and counted) rather
       than growing the daemon without bound. *)
    let enqueue resolved =
      List.iter
        (fun (ticket, stamp) ->
          if Queue.length t.resolved >= t.pending_cap then begin
            ignore (Queue.pop t.resolved);
            t.dropped <- t.dropped + 1;
            Tm.Counter.incr m_dropped
          end;
          Queue.push (t.ticket_base + ticket, stamp) t.resolved)
        resolved
    in
    let outcomes =
      Array.mapi
        (fun i ev ->
          match ev with
          | Ingest.Internal { proc } ->
              let ticket = Event_stream.record_internal t.events ~proc in
              t.issued <- t.issued + 1;
              Ingest.Deferred (t.ticket_base + ticket)
          | Ingest.Message { src; dst } ->
              let v = Array.make t.dim 0 in
              for s = 0 to k - 1 do
                let comps = Shard.components t.plan s in
                let slab = t.slabs.(s) in
                for j = 0 to Array.length comps - 1 do
                  v.(comps.(j)) <- Stamp_store.unsafe_cell slab (t.n + i) j
                done
              done;
              enqueue (Event_stream.record_message t.events ~proc:src v);
              enqueue (Event_stream.record_message t.events ~proc:dst v);
              Ingest.Stamped v)
        events
    in
    Array.iter (fun slab -> Stamp_store.truncate slab t.n) t.slabs;
    outcomes
  end

let observe t ev = (observe_batch t [| ev |]).(0)

let drain t =
  let out = List.of_seq (Queue.to_seq t.resolved) in
  Queue.clear t.resolved;
  out

let finish t =
  let flushed =
    List.map
      (fun (ticket, stamp) -> (t.ticket_base + ticket, stamp))
      (Event_stream.finish t.events)
  in
  let out = drain t @ flushed in
  (* Event_stream.finish retires the stream; tickets keep increasing
     across the replacement via the base offset. *)
  t.ticket_base <- t.ticket_base + t.issued;
  t.issued <- 0;
  t.events <- Event_stream.create ~dimension:t.dim ~n:t.n;
  out

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    match t.shared with
    | None -> ()
    | Some sh ->
        Mutex.lock sh.mutex;
        sh.stopping <- true;
        Condition.broadcast sh.go;
        Mutex.unlock sh.mutex;
        Array.iter Domain.join t.domains
  end

module Sink = struct
  type nonrec t = t

  let observe = observe
  let observe_batch = observe_batch
  let drain = drain
  let finish = finish
  let processes = processes
  let dimension = dimension
end

let ingest t = Ingest.sink (module Sink) t
