module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Stamp_store = Synts_clock.Stamp_store
module Event_stream = Synts_core.Event_stream
module Ingest = Synts_ingest.Ingest
module Tm = Synts_telemetry.Telemetry

let m_batches =
  Tm.Counter.v ~help:"Batches stamped by the sharded engine"
    "server.engine.batches"

let m_events =
  Tm.Counter.v ~help:"Events stamped by the sharded engine"
    "server.engine.events"

let m_shards =
  Tm.Gauge.v ~help:"Worker shards of the most recently created engine"
    "server.engine.shards"

(* Coordinator/worker handshake: the coordinator bumps [gen] to publish a
   batch, workers sweep their slab and bump [done_count]. The mutex
   hand-offs give the happens-before edges that make the coordinator's
   post-barrier slab reads safe. *)
type shared = {
  mutex : Mutex.t;
  go : Condition.t;
  finished : Condition.t;
  mutable gen : int;
  mutable batch : (Ingest.event array * int array) option;
  mutable done_count : int;
  mutable stopping : bool;
}

type t = {
  decomposition : Decomposition.t;
  n : int;
  dim : int;
  plan : Shard.t;
  slabs : Stamp_store.t array;
      (* One slab per shard: rows [0..n-1] are per-process clock slices,
         one output row per batch event is pushed above them and the slab
         is truncated back after assembly. *)
  shared : shared option;  (* None when the sweep runs inline. *)
  domains : unit Domain.t array;
  mutable events : Event_stream.t;
  resolved : (int * Synts_core.Internal_events.stamp) Queue.t;
  mutable ticket_base : int;
  mutable issued : int;
  mutable stopped : bool;
}

(* One shard's pass over a batch: componentwise merge + increment on the
   columns it owns, endpoints adopt the stamp. Identical event order on
   every shard is what makes the reassembled stamps bit-identical to the
   single-domain oracle. *)
let sweep plan shard slab events groups =
  Array.iteri
    (fun i ev ->
      match ev with
      | Ingest.Internal _ -> ignore (Stamp_store.push_zero slab)
      | Ingest.Message { src; dst } ->
          let r = Stamp_store.push_merge slab ~a:src ~b:dst in
          let g = groups.(i) in
          if Shard.owner plan g = shard then
            Stamp_store.row_incr slab r (Shard.slot plan g);
          Stamp_store.blit_rows slab ~src:r ~dst:src;
          Stamp_store.blit_rows slab ~src:r ~dst:dst)
    events

let worker plan shard slab shared =
  let rec loop last =
    Mutex.lock shared.mutex;
    while shared.gen = last && not shared.stopping do
      Condition.wait shared.go shared.mutex
    done;
    if shared.stopping then Mutex.unlock shared.mutex
    else begin
      let gen = shared.gen in
      let events, groups = Option.get shared.batch in
      Mutex.unlock shared.mutex;
      sweep plan shard slab events groups;
      Mutex.lock shared.mutex;
      shared.done_count <- shared.done_count + 1;
      Condition.broadcast shared.finished;
      Mutex.unlock shared.mutex;
      loop gen
    end
  in
  loop 0

let create ?(shards = 1) d =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  let n = Decomposition.graph_vertices d in
  let dim = max 1 (Decomposition.size d) in
  let plan = Shard.plan ~dimension:dim ~shards in
  let k = Shard.shards plan in
  Tm.Gauge.set m_shards k;
  let slabs =
    Array.init k (fun s ->
        let slab =
          Stamp_store.create ~capacity:(max 64 (2 * n))
            (Array.length (Shard.components plan s))
        in
        for _ = 1 to n do
          ignore (Stamp_store.push_zero slab)
        done;
        slab)
  in
  let shared =
    if k = 1 then None
    else
      Some
        {
          mutex = Mutex.create ();
          go = Condition.create ();
          finished = Condition.create ();
          gen = 0;
          batch = None;
          done_count = 0;
          stopping = false;
        }
  in
  let domains =
    match shared with
    | None -> [||]
    | Some sh ->
        (* Shard 0 sweeps on the coordinator's domain; 1..k-1 get workers. *)
        Array.init (k - 1) (fun i ->
            Domain.spawn (fun () -> worker plan (i + 1) slabs.(i + 1) sh))
  in
  {
    decomposition = d;
    n;
    dim;
    plan;
    slabs;
    shared;
    domains;
    events = Event_stream.create ~dimension:dim ~n;
    resolved = Queue.create ();
    ticket_base = 0;
    issued = 0;
    stopped = false;
  }

let shards t = Shard.shards t.plan
let processes t = t.n
let dimension t = t.dim

let validate t events =
  Array.map
    (fun ev ->
      match ev with
      | Ingest.Internal { proc } ->
          if proc < 0 || proc >= t.n then
            invalid_arg
              (Printf.sprintf "Engine: internal event on unknown process %d"
                 proc);
          -1
      | Ingest.Message { src; dst } -> (
          try Decomposition.group_of_edge t.decomposition src dst
          with Not_found ->
            invalid_arg
              (Printf.sprintf
                 "Engine: channel (%d, %d) outside the decomposition" src dst)))
    events

let observe_batch t events =
  if t.stopped then invalid_arg "Engine: stopped";
  let len = Array.length events in
  if len = 0 then [||]
  else begin
    (* Validate the whole batch up front so a bad event mutates nothing. *)
    let groups = validate t events in
    Tm.Counter.incr m_batches;
    Tm.Counter.add m_events len;
    (match t.shared with
    | None -> sweep t.plan 0 t.slabs.(0) events groups
    | Some sh ->
        Mutex.lock sh.mutex;
        sh.batch <- Some (events, groups);
        sh.done_count <- 0;
        sh.gen <- sh.gen + 1;
        Condition.broadcast sh.go;
        Mutex.unlock sh.mutex;
        sweep t.plan 0 t.slabs.(0) events groups;
        Mutex.lock sh.mutex;
        while sh.done_count < Array.length t.domains do
          Condition.wait sh.finished sh.mutex
        done;
        sh.batch <- None;
        Mutex.unlock sh.mutex);
    let k = Shard.shards t.plan in
    let enqueue resolved =
      List.iter
        (fun (ticket, stamp) ->
          Queue.push (t.ticket_base + ticket, stamp) t.resolved)
        resolved
    in
    let outcomes =
      Array.mapi
        (fun i ev ->
          match ev with
          | Ingest.Internal { proc } ->
              let ticket = Event_stream.record_internal t.events ~proc in
              t.issued <- t.issued + 1;
              Ingest.Deferred (t.ticket_base + ticket)
          | Ingest.Message { src; dst } ->
              let v = Array.make t.dim 0 in
              for s = 0 to k - 1 do
                let comps = Shard.components t.plan s in
                let slab = t.slabs.(s) in
                for j = 0 to Array.length comps - 1 do
                  v.(comps.(j)) <- Stamp_store.unsafe_cell slab (t.n + i) j
                done
              done;
              enqueue (Event_stream.record_message t.events ~proc:src v);
              enqueue (Event_stream.record_message t.events ~proc:dst v);
              Ingest.Stamped v)
        events
    in
    Array.iter (fun slab -> Stamp_store.truncate slab t.n) t.slabs;
    outcomes
  end

let observe t ev = (observe_batch t [| ev |]).(0)

let drain t =
  let out = List.of_seq (Queue.to_seq t.resolved) in
  Queue.clear t.resolved;
  out

let finish t =
  let flushed =
    List.map
      (fun (ticket, stamp) -> (t.ticket_base + ticket, stamp))
      (Event_stream.finish t.events)
  in
  let out = drain t @ flushed in
  (* Event_stream.finish retires the stream; tickets keep increasing
     across the replacement via the base offset. *)
  t.ticket_base <- t.ticket_base + t.issued;
  t.issued <- 0;
  t.events <- Event_stream.create ~dimension:t.dim ~n:t.n;
  out

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    match t.shared with
    | None -> ()
    | Some sh ->
        Mutex.lock sh.mutex;
        sh.stopping <- true;
        Condition.broadcast sh.go;
        Mutex.unlock sh.mutex;
        Array.iter Domain.join t.domains
  end

module Sink = struct
  type nonrec t = t

  let observe = observe
  let observe_batch = observe_batch
  let drain = drain
  let finish = finish
  let processes = processes
  let dimension = dimension
end

let ingest t = Ingest.sink (module Sink) t
