module Wire = Synts_clock.Wire
module Vector = Synts_clock.Vector
module Ingest = Synts_ingest.Ingest
module Internal_events = Synts_core.Internal_events

type request =
  | Hello
  | Observe of { seq : int; events : Ingest.event array }
  | Drain
  | Finish
  | Verify
  | Stats
  | Churn of string
  | Shutdown

type response =
  | Welcome of { processes : int; dimension : int; shards : int; epoch : int }
  | Outcomes of Ingest.outcome array
  | Resolved of (Ingest.ticket * Internal_events.stamp) list
  | Verified of { ok : bool; checked : int }
  | Stats_r of {
      clients : int;
      batches : int;
      messages : int;
      internal : int;
      dropped : int;
      pending : int;
    }
  | Epoch_r of { epoch : int; processes : int; dimension : int }
  | Error_r of string
  | Bye

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let varint s off =
  match Wire.read_varint s off with
  | Some (v, off') -> (v, off')
  | None -> fail "truncated varint at byte %d" off

let byte s off =
  if off >= String.length s then fail "truncated message at byte %d" off
  else (Char.code s.[off], off + 1)

(* A vector embedded mid-message: component count, then the components —
   the same self-delimiting shape [Wire.encode] uses standalone. *)
let vector s off =
  let count, off = varint s off in
  let v = Array.make count 0 in
  let off = ref off in
  for i = 0 to count - 1 do
    let x, o = varint s !off in
    v.(i) <- x;
    off := o
  done;
  (v, !off)

let put_vector buf v = Buffer.add_string buf (Wire.encode v)

let put_string buf s =
  Wire.put_varint buf (String.length s);
  Buffer.add_string buf s

let get_string s off =
  let len, off = varint s off in
  if off + len > String.length s then fail "truncated string at byte %d" off
  else (String.sub s off len, off + len)

let finish_at s off what =
  if off <> String.length s then
    fail "%s: %d trailing bytes" what (String.length s - off)

(* {2 Requests} *)

let encode_request r =
  let buf = Buffer.create 32 in
  (match r with
  | Hello -> Buffer.add_char buf '\x00'
  | Observe { seq; events } ->
      Buffer.add_char buf '\x01';
      Wire.put_varint buf seq;
      Wire.put_varint buf (Array.length events);
      Array.iter
        (function
          | Ingest.Message { src; dst } ->
              Buffer.add_char buf '\x00';
              Wire.put_varint buf src;
              Wire.put_varint buf dst
          | Ingest.Internal { proc } ->
              Buffer.add_char buf '\x01';
              Wire.put_varint buf proc)
        events
  | Drain -> Buffer.add_char buf '\x02'
  | Finish -> Buffer.add_char buf '\x03'
  | Verify -> Buffer.add_char buf '\x04'
  | Stats -> Buffer.add_char buf '\x05'
  | Shutdown -> Buffer.add_char buf '\x06'
  | Churn delta ->
      Buffer.add_char buf '\x07';
      put_string buf delta);
  Buffer.contents buf

let decode_request s =
  try
    if s = "" then fail "empty request"
    else begin
      let tag, off = byte s 0 in
      match tag with
      | 0 ->
          finish_at s off "Hello";
          Ok Hello
      | 1 ->
          let seq, off = varint s off in
          let count, off = varint s off in
          let off = ref off in
          let events =
            Array.init count (fun _ ->
                let kind, o = byte s !off in
                match kind with
                | 0 ->
                    let src, o = varint s o in
                    let dst, o = varint s o in
                    off := o;
                    Ingest.Message { src; dst }
                | 1 ->
                    let proc, o = varint s o in
                    off := o;
                    Ingest.Internal { proc }
                | k -> fail "unknown event kind %d" k)
          in
          finish_at s !off "Observe";
          Ok (Observe { seq; events })
      | 2 ->
          finish_at s off "Drain";
          Ok Drain
      | 3 ->
          finish_at s off "Finish";
          Ok Finish
      | 4 ->
          finish_at s off "Verify";
          Ok Verify
      | 5 ->
          finish_at s off "Stats";
          Ok Stats
      | 6 ->
          finish_at s off "Shutdown";
          Ok Shutdown
      | 7 ->
          let delta, off = get_string s off in
          finish_at s off "Churn";
          Ok (Churn delta)
      | t -> fail "unknown request tag %d" t
    end
  with Fail e -> Error e

(* {2 Responses} *)

let encode_response r =
  let buf = Buffer.create 64 in
  (match r with
  | Welcome { processes; dimension; shards; epoch } ->
      Buffer.add_char buf '\x00';
      Wire.put_varint buf processes;
      Wire.put_varint buf dimension;
      Wire.put_varint buf shards;
      Wire.put_varint buf epoch
  | Outcomes outcomes ->
      Buffer.add_char buf '\x01';
      Wire.put_varint buf (Array.length outcomes);
      Array.iter
        (function
          | Ingest.Stamped v ->
              Buffer.add_char buf '\x00';
              put_vector buf v
          | Ingest.Deferred ticket ->
              Buffer.add_char buf '\x01';
              Wire.put_varint buf ticket)
        outcomes
  | Resolved resolved ->
      Buffer.add_char buf '\x02';
      Wire.put_varint buf (List.length resolved);
      List.iter
        (fun (ticket, (stamp : Internal_events.stamp)) ->
          Wire.put_varint buf ticket;
          Wire.put_varint buf stamp.proc;
          put_vector buf stamp.prev;
          (match stamp.succ with
          | None -> Buffer.add_char buf '\x00'
          | Some v ->
              Buffer.add_char buf '\x01';
              put_vector buf v);
          Wire.put_varint buf stamp.counter)
        resolved
  | Verified { ok; checked } ->
      Buffer.add_char buf '\x03';
      Buffer.add_char buf (if ok then '\x01' else '\x00');
      Wire.put_varint buf checked
  | Stats_r { clients; batches; messages; internal; dropped; pending } ->
      Buffer.add_char buf '\x04';
      Wire.put_varint buf clients;
      Wire.put_varint buf batches;
      Wire.put_varint buf messages;
      Wire.put_varint buf internal;
      Wire.put_varint buf dropped;
      Wire.put_varint buf pending
  | Error_r msg ->
      Buffer.add_char buf '\x05';
      put_string buf msg
  | Bye -> Buffer.add_char buf '\x06'
  | Epoch_r { epoch; processes; dimension } ->
      Buffer.add_char buf '\x07';
      Wire.put_varint buf epoch;
      Wire.put_varint buf processes;
      Wire.put_varint buf dimension);
  Buffer.contents buf

let decode_response s =
  try
    if s = "" then fail "empty response"
    else begin
      let tag, off = byte s 0 in
      match tag with
      | 0 ->
          let processes, off = varint s off in
          let dimension, off = varint s off in
          let shards, off = varint s off in
          let epoch, off = varint s off in
          finish_at s off "Welcome";
          Ok (Welcome { processes; dimension; shards; epoch })
      | 1 ->
          let count, off = varint s off in
          let off = ref off in
          let outcomes =
            Array.init count (fun _ ->
                let kind, o = byte s !off in
                match kind with
                | 0 ->
                    let v, o = vector s o in
                    off := o;
                    Ingest.Stamped v
                | 1 ->
                    let ticket, o = varint s o in
                    off := o;
                    Ingest.Deferred ticket
                | k -> fail "unknown outcome kind %d" k)
          in
          finish_at s !off "Outcomes";
          Ok (Outcomes outcomes)
      | 2 ->
          let count, off = varint s off in
          let off = ref off in
          let resolved =
            List.init count (fun _ ->
                let ticket, o = varint s !off in
                let proc, o = varint s o in
                let prev, o = vector s o in
                let flag, o = byte s o in
                let succ, o =
                  match flag with
                  | 0 -> (None, o)
                  | 1 ->
                      let v, o = vector s o in
                      (Some v, o)
                  | f -> fail "unknown succ flag %d" f
                in
                let counter, o = varint s o in
                off := o;
                (ticket, { Internal_events.proc; prev; succ; counter }))
          in
          finish_at s !off "Resolved";
          Ok (Resolved resolved)
      | 3 ->
          let ok, off = byte s off in
          let checked, off = varint s off in
          finish_at s off "Verified";
          Ok (Verified { ok = ok <> 0; checked })
      | 4 ->
          let clients, off = varint s off in
          let batches, off = varint s off in
          let messages, off = varint s off in
          let internal, off = varint s off in
          let dropped, off = varint s off in
          let pending, off = varint s off in
          finish_at s off "Stats_r";
          Ok (Stats_r { clients; batches; messages; internal; dropped; pending })
      | 5 ->
          let msg, off = get_string s off in
          finish_at s off "Error_r";
          Ok (Error_r msg)
      | 6 ->
          finish_at s off "Bye";
          Ok Bye
      | 7 ->
          let epoch, off = varint s off in
          let processes, off = varint s off in
          let dimension, off = varint s off in
          finish_at s off "Epoch_r";
          Ok (Epoch_r { epoch; processes; dimension })
      | t -> fail "unknown response tag %d" t
    end
  with Fail e -> Error e

let pp_request ppf = function
  | Hello -> Format.fprintf ppf "Hello"
  | Observe { seq; events } ->
      Format.fprintf ppf "Observe{seq=%d; %d events}" seq (Array.length events)
  | Drain -> Format.fprintf ppf "Drain"
  | Finish -> Format.fprintf ppf "Finish"
  | Verify -> Format.fprintf ppf "Verify"
  | Stats -> Format.fprintf ppf "Stats"
  | Churn delta -> Format.fprintf ppf "Churn{%s}" delta
  | Shutdown -> Format.fprintf ppf "Shutdown"

let pp_response ppf = function
  | Welcome { processes; dimension; shards; epoch } ->
      Format.fprintf ppf "Welcome{n=%d; d=%d; shards=%d; epoch=%d}" processes
        dimension shards epoch
  | Outcomes o -> Format.fprintf ppf "Outcomes(%d)" (Array.length o)
  | Resolved r -> Format.fprintf ppf "Resolved(%d)" (List.length r)
  | Verified { ok; checked } ->
      Format.fprintf ppf "Verified{ok=%b; checked=%d}" ok checked
  | Stats_r { clients; batches; messages; internal; dropped; pending } ->
      Format.fprintf ppf
        "Stats{clients=%d; batches=%d; msgs=%d; internal=%d; dropped=%d; \
         pending=%d}"
        clients batches messages internal dropped pending
  | Epoch_r { epoch; processes; dimension } ->
      Format.fprintf ppf "Epoch{e=%d; n=%d; d=%d}" epoch processes dimension
  | Error_r e -> Format.fprintf ppf "Error(%s)" e
  | Bye -> Format.fprintf ppf "Bye"
