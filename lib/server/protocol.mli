(** Binary request/response codec for the [synts serve] wire protocol.

    Messages are byte strings: a one-byte tag followed by LEB128 varints
    ({!Synts_clock.Wire.put_varint} — the same integer encoding vectors
    use) and length-prefixed vector payloads. On the socket every message
    travels inside a versioned {!Synts_clock.Wire.frame} under a 4-byte
    big-endian length prefix (see {!Frame}), so corruption is caught by
    the checksum before decoding and version mismatches are rejected
    with a clear error.

    [Observe] carries a client-chosen sequence number: the server
    answers a replayed (duplicated or retransmitted) sequence from its
    reply cache instead of stamping twice, which is what keeps
    at-least-once delivery exact — see {!Service}. *)

type request =
  | Hello
  | Observe of { seq : int; events : Synts_ingest.Ingest.event array }
  | Drain
  | Finish
  | Verify
  | Stats
  | Churn of string
      (** A rendered {!Synts_graph.Membership.delta}
          ([join:P:U-V,...] / [leave:P] / [add:U-V] / [drop:U-V]) to
          apply to the server's membership; answered with [Epoch_r]. *)
  | Shutdown

type response =
  | Welcome of { processes : int; dimension : int; shards : int; epoch : int }
  | Outcomes of Synts_ingest.Ingest.outcome array
  | Resolved of
      (Synts_ingest.Ingest.ticket * Synts_core.Internal_events.stamp) list
  | Verified of { ok : bool; checked : int }
  | Stats_r of {
      clients : int;
      batches : int;
      messages : int;
      internal : int;
      dropped : int;  (** Resolved stamps lost to backend queue overflow. *)
      pending : int;  (** Resolved stamps awaiting [Drain] — backpressure. *)
    }
  | Epoch_r of { epoch : int; processes : int; dimension : int }
      (** Reply to [Churn]: the epoch the delta opened and the (possibly
          grown) process count and stamp dimension clients must use from
          now on. *)
  | Error_r of string
  | Bye

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
