module Wire = Synts_clock.Wire
module Tm = Synts_telemetry.Telemetry

let m_accepted =
  Tm.Counter.v ~help:"Connections accepted by the serve daemon"
    "server.connections"

type address = Unix_socket of string | Tcp of string * int

let pp_address ppf = function
  | Unix_socket path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "%s:%d" host port

let address_of_string s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i
      and port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "bad port in address %S" s))
  | None ->
      if s = "" then Error "empty address" else Ok (Unix_socket s)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> failwith (Printf.sprintf "unknown host %S" host))

let bind_listen address =
  match address with
  | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve host, port));
      Unix.listen fd 64;
      fd

(* The only [Bye] the service ever frames answers [Shutdown]. *)
let bye = Protocol.encode_response Protocol.Bye

let is_bye reply =
  match Wire.unframe reply with Ok body -> body = bye | Error _ -> false

let loop service listen_fd address =
  let conns : (Unix.file_descr, Service.conn * Frame.buffer) Hashtbl.t =
    Hashtbl.create 8
  in
  let scratch = Bytes.create 65536 in
  let running = ref true in
  let close_conn fd =
    (match Hashtbl.find_opt conns fd with
    | Some (conn, _) -> Service.detach service conn
    | None -> ());
    Hashtbl.remove conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let serve_fd fd =
    let conn, buf = Hashtbl.find conns fd in
    match Unix.read fd scratch 0 (Bytes.length scratch) with
    | 0 -> close_conn fd
    | len ->
        Frame.feed buf scratch len;
        let rec drain () =
          match Frame.next buf with
          | None -> ()
          | Some frame ->
              let reply = Service.handle_raw service conn frame in
              Frame.send fd reply;
              if is_bye reply then running := false else drain ()
        in
        (try drain ()
         with Failure _ ->
           (* Desynchronised stream (oversized length prefix): the
              connection is unrecoverable, the daemon is not. *)
           close_conn fd)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn fd
  in
  while !running do
    let fds = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              let client, _ = Unix.accept listen_fd in
              Tm.Counter.incr m_accepted;
              Hashtbl.replace conns client
                (Service.attach service, Frame.buffer ())
            end
            else if Hashtbl.mem conns fd then
              try serve_fd fd
              with Unix.Unix_error _ | Failure _ -> close_conn fd)
          readable
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
  Hashtbl.reset conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Service.stop service

let serve ?shards ?check ?offline ?window address d =
  let listen_fd = bind_listen address in
  let service = Service.create ?shards ?check ?offline ?window d in
  loop service listen_fd address

type handle = unit Domain.t

let spawn ?shards ?check ?offline ?window address d =
  (* Bind before spawning so the caller can connect immediately. *)
  let listen_fd = bind_listen address in
  Domain.spawn (fun () ->
      let service = Service.create ?shards ?check ?offline ?window d in
      loop service listen_fd address)

let join = Domain.join
