module Wire = Synts_clock.Wire
module Tm = Synts_telemetry.Telemetry
module Log = Synts_obs.Log

let m_accepted =
  Tm.Counter.v ~help:"Connections accepted by the serve daemon"
    "server.connections"

let m_admin_accepted =
  Tm.Counter.v ~help:"Connections accepted on the admin channel"
    "server.admin.connections"

let m_admin_requests =
  Tm.Counter.v ~help:"Requests answered on the admin channel"
    "server.admin.requests"

type address = Unix_socket of string | Tcp of string * int

let pp_address ppf = function
  | Unix_socket path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "%s:%d" host port

let address_of_string s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i
      and port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "bad port in address %S" s))
  | None ->
      if s = "" then Error "empty address" else Ok (Unix_socket s)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> failwith (Printf.sprintf "unknown host %S" host))

let bind_listen address =
  match address with
  | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve host, port));
      Unix.listen fd 64;
      fd

(* The only [Bye] the service ever frames answers [Shutdown]. *)
let bye = Protocol.encode_response Protocol.Bye

let is_bye reply =
  match Wire.unframe reply with Ok body -> body = bye | Error _ -> false

(* One select loop owns the data listener, the optional admin listener
   and every connection of both planes. Admin connections carry no
   protocol state beyond a frame reassembly buffer — each admin frame is
   answered from a coherent read of the service between data-plane
   requests. *)
let loop ?admin service listen_fd address =
  let conns : (Unix.file_descr, Service.conn * Frame.buffer) Hashtbl.t =
    Hashtbl.create 8
  in
  let admin_conns : (Unix.file_descr, Frame.buffer) Hashtbl.t =
    Hashtbl.create 4
  in
  let admin_fd = Option.map fst admin in
  let scratch = Bytes.create 65536 in
  let running = ref true in
  let close_conn fd =
    (match Hashtbl.find_opt conns fd with
    | Some (conn, _) -> Service.detach service conn
    | None -> ());
    Hashtbl.remove conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let close_admin_conn fd =
    Hashtbl.remove admin_conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let serve_fd fd =
    let conn, buf = Hashtbl.find conns fd in
    match Unix.read fd scratch 0 (Bytes.length scratch) with
    | 0 -> close_conn fd
    | len ->
        Frame.feed buf scratch len;
        let rec drain () =
          match Frame.next buf with
          | None -> ()
          | Some frame ->
              let reply = Service.handle_raw service conn frame in
              Frame.send fd reply;
              if is_bye reply then running := false else drain ()
        in
        (try drain ()
         with Failure _ ->
           (* Desynchronised stream (oversized length prefix): the
              connection is unrecoverable, the daemon is not. *)
           close_conn fd)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn fd
  in
  let serve_admin_fd fd =
    let buf = Hashtbl.find admin_conns fd in
    match Unix.read fd scratch 0 (Bytes.length scratch) with
    | 0 -> close_admin_conn fd
    | len ->
        Frame.feed buf scratch len;
        let rec drain () =
          match Frame.next buf with
          | None -> ()
          | Some frame ->
              Tm.Counter.incr m_admin_requests;
              Frame.send fd (Admin_service.handle_raw service frame);
              drain ()
        in
        (try drain () with Failure _ -> close_admin_conn fd)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_admin_conn fd
  in
  while !running do
    let fds =
      listen_fd
      :: (match admin_fd with Some fd -> [ fd ] | None -> [])
      @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
      @ Hashtbl.fold (fun fd _ acc -> fd :: acc) admin_conns []
    in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              let client, _ = Unix.accept listen_fd in
              Tm.Counter.incr m_accepted;
              Log.debug ~component:"server" ~tick:(Service.batches service)
                "client connected";
              Hashtbl.replace conns client
                (Service.attach service, Frame.buffer ())
            end
            else if admin_fd = Some fd then begin
              let client, _ = Unix.accept fd in
              Tm.Counter.incr m_admin_accepted;
              Log.debug ~component:"server" ~tick:(Service.batches service)
                "admin client connected";
              Hashtbl.replace admin_conns client (Frame.buffer ())
            end
            else if Hashtbl.mem conns fd then (
              try serve_fd fd
              with Unix.Unix_error _ | Failure _ -> close_conn fd)
            else if Hashtbl.mem admin_conns fd then
              try serve_admin_fd fd
              with Unix.Unix_error _ | Failure _ -> close_admin_conn fd)
          readable
  done;
  Log.info ~component:"server" ~tick:(Service.batches service)
    ~kv:
      [
        ("batches", string_of_int (Service.batches service));
        ("messages", string_of_int (Service.messages_total service));
        ("dropped", string_of_int (Service.dropped service));
      ]
    "shutdown";
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
  Hashtbl.reset conns;
  Hashtbl.iter
    (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    admin_conns;
  Hashtbl.reset admin_conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  (match admin with
  | Some (fd, Unix_socket path) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Some (fd, Tcp _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Service.stop service

let bind_admin = Option.map (fun address -> (bind_listen address, address))

let serve ?shards ?check ?offline ?window ?admin address d =
  let listen_fd = bind_listen address in
  let admin = bind_admin admin in
  let service = Service.create ?shards ?check ?offline ?window d in
  loop ?admin service listen_fd address

type handle = unit Domain.t

let spawn ?shards ?check ?offline ?window ?admin address d =
  (* Bind before spawning so the caller can connect immediately. *)
  let listen_fd = bind_listen address in
  let admin = bind_admin admin in
  Domain.spawn (fun () ->
      let service = Service.create ?shards ?check ?offline ?window d in
      loop ?admin service listen_fd address)

let join = Domain.join
