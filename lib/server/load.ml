module Decomposition = Synts_graph.Decomposition
module Rng = Synts_util.Rng
module Ingest = Synts_ingest.Ingest

type report = {
  clients : int;
  batches : int;
  events : int;
  messages : int;
  seconds : float;
  events_per_sec : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  server_dropped : int;
  server_pending : int;
}

let edges_of d =
  List.concat_map Decomposition.edges_of_group (Decomposition.groups d)
  |> Array.of_list

let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

type worker = {
  mutable latencies : float list;
  mutable sent_messages : int;
  mutable failure : exn option;
}

let run ?(clients = 4) ?(batches = 64) ?(batch = 32) ?(internal_prob = 0.1)
    ?(seed = 0) address d =
  if clients < 1 then invalid_arg "Load.run: clients must be >= 1";
  if batches < 1 || batch < 1 then
    invalid_arg "Load.run: batches and batch must be >= 1";
  let edges = edges_of d in
  if Array.length edges = 0 then
    invalid_arg "Load.run: decomposition has no channels";
  let n = Decomposition.graph_vertices d in
  let workers =
    Array.init clients (fun _ ->
        { latencies = []; sent_messages = 0; failure = None })
  in
  let body c w =
    let rng = Rng.create ((seed * 0x9e3779b1) lxor c) in
    try
      let client = Client.connect address in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          for _ = 1 to batches do
            let events =
              Array.init batch (fun _ ->
                  if internal_prob > 0. && Rng.chance rng internal_prob then
                    Ingest.Internal { proc = Rng.int rng n }
                  else begin
                    let u, v = Rng.pick_array rng edges in
                    w.sent_messages <- w.sent_messages + 1;
                    if Rng.bool rng then Ingest.Message { src = u; dst = v }
                    else Ingest.Message { src = v; dst = u }
                  end)
            in
            let t0 = Unix.gettimeofday () in
            ignore (Client.observe_batch client events);
            w.latencies <-
              (1000. *. (Unix.gettimeofday () -. t0)) :: w.latencies
          done;
          ignore (Client.finish client))
    with e -> w.failure <- Some e
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.mapi (fun c w -> Thread.create (fun () -> body c w) ()) workers
  in
  Array.iter Thread.join threads;
  let seconds = Unix.gettimeofday () -. t0 in
  Array.iter
    (fun w -> match w.failure with Some e -> raise e | None -> ())
    workers;
  let latencies =
    Array.of_list (List.concat_map (fun w -> w.latencies) (Array.to_list workers))
  in
  Array.sort compare latencies;
  let events = clients * batches * batch in
  (* One post-run Stats round trip: loss (drops) and backpressure
     (pending) are server-side facts the latency quantiles can't show. *)
  let server_dropped, server_pending =
    match
      let c = Client.connect address in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () -> Client.server_stats c)
    with
    | Ok (s : Client.stats) -> (s.dropped, s.pending)
    | Error _ | (exception _) -> (0, 0)
  in
  {
    clients;
    batches;
    events;
    messages = Array.fold_left (fun acc w -> acc + w.sent_messages) 0 workers;
    seconds;
    events_per_sec = (if seconds > 0. then float_of_int events /. seconds else 0.);
    p50_ms = quantile latencies 0.50;
    p95_ms = quantile latencies 0.95;
    p99_ms = quantile latencies 0.99;
    server_dropped;
    server_pending;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>clients        %d@,\
     batches/client %d@,\
     events         %d (%d messages)@,\
     wall clock     %.3f s@,\
     throughput     %.0f events/s@,\
     batch latency  p50 %.3f ms   p95 %.3f ms   p99 %.3f ms@,\
     server loss    %d dropped, %d pending@]"
    r.clients r.batches r.events r.messages r.seconds r.events_per_sec r.p50_ms
    r.p95_ms r.p99_ms r.server_dropped r.server_pending
