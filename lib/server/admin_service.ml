module Tm = Synts_telemetry.Telemetry
module Wire = Synts_clock.Wire
module Admin = Synts_obs.Admin
module Merge = Synts_obs.Merge
module Tracer = Synts_trace.Tracer
module Tracelog = Synts_trace.Tracelog
module Ingest = Synts_ingest.Ingest
module Stream = Synts_core.Offline.Stream

let merged_snapshot service =
  Merge.snapshots (Tm.snapshot () :: Service.telemetry_snapshots service)

let stats service =
  let p50_ms, p90_ms, p99_ms = Service.stamp_quantiles service in
  let shards =
    match Service.backend service with
    | Service.Sharded e ->
        List.map
          (fun (shard, s_events, s_cells, s_messages) ->
            { Admin.shard; s_events; s_cells; s_messages })
          (Engine.shard_loads e)
    | Service.Offline_stream _ -> []
  in
  let conns =
    List.map
      (fun (conn, events_in, stamps_out, dedup_hits, last_seq) ->
        { Admin.conn; events_in; stamps_out; dedup_hits; last_seq })
      (Service.conn_stats service)
  in
  let stream =
    match Service.backend service with
    | Service.Sharded _ -> None
    | Service.Offline_stream sink ->
        let s = Synts_ingest.Offline_sink.stream sink in
        Some
          {
            Admin.chains = Stream.dimension s;
            live = Stream.live s;
            retired = Stream.retired s;
            width = Stream.width s;
            exact = Stream.exact_width s;
            repairs = Stream.repairs s;
          }
  in
  {
    Admin.backend = Service.backend_name service;
    clients = Service.clients service;
    batches = Service.batches service;
    messages = Service.messages_total service;
    internal = Service.internal_total service;
    dedup_hits = Service.dedup_hits service;
    errors = Service.errors service;
    dropped = Service.dropped service;
    pending = Service.pending service;
    p50_ms;
    p90_ms;
    p99_ms;
    shards;
    conns;
    stream;
  }

let handle service (req : Admin.request) : Admin.response =
  match req with
  | Admin.Health ->
      let sink =
        match Service.backend service with
        | Service.Sharded e -> Engine.ingest e
        | Service.Offline_stream s -> Synts_ingest.Offline_sink.ingest s
      in
      Health_r
        {
          ok = true;
          backend = Service.backend_name service;
          processes = Ingest.processes sink;
          dimension = Ingest.dimension sink;
          shards = Service.shards service;
        }
  | Admin.Metrics fmt ->
      let snap = merged_snapshot service in
      Metrics_r
        (match fmt with
        | Admin.Prom -> Tm.to_prometheus snap
        | Admin.Json -> Tm.to_json snap)
  | Admin.Stats -> Stats_r (stats service)
  | Admin.Tracedump ->
      let spans = Tracer.to_list () in
      let dropped = Tracer.dropped Tracer.default in
      Tracedump_r
        {
          dropped;
          spans = List.length spans;
          jsonl = Tracelog.to_string ~dropped spans;
        }

let handle_raw service raw =
  let reply resp = Wire.frame (Admin.encode_response resp) in
  match Wire.unframe raw with
  | Error e -> reply (Error_r ("bad frame: " ^ e))
  | Ok body -> (
      match Admin.decode_request body with
      | Error e -> reply (Error_r ("bad admin request: " ^ e))
      | Ok req -> reply (handle service req))
