(** Blocking client for a [synts serve] daemon.

    A connected client is one more {!Synts_ingest.Ingest.S}
    implementation: code written against the unified interface runs
    unchanged whether its sink is an in-process {!Synts_session.Session},
    the sharded {!Engine}, or this client talking to a remote daemon.

    Each request/reply round-trip is timed into the
    [server.client.rpc_ms] telemetry histogram. {!observe_batch}
    retransmits on a [bad frame]/[bad request] error reply — safe
    because the server deduplicates by sequence number and answers a
    replayed sequence from its cache. *)

type t

val connect : Server.address -> t
(** Connect and perform the [Hello]/[Welcome] exchange. Raises
    [Failure] on protocol errors (including a version-mismatch
    rejection) and [Unix.Unix_error] on transport errors. *)

val close : t -> unit
(** Close the connection (the server keeps running). *)

val shards : t -> int
(** The server's effective shard count, from [Welcome]. *)

val processes : t -> int
val dimension : t -> int
(** Process count and stamp dimension as of the last [Welcome] or
    [Epoch_r] — both can grow when churn deltas are applied. *)

val epoch : t -> int
(** The server's membership epoch as last reported to this client. *)

val churn : t -> string -> (int * int * int, string) result
(** [churn t delta] asks the server to apply a rendered membership delta
    ([join:P:U-V,...] / [leave:P] / [add:U-V] / [drop:U-V]). On [Ok
    (epoch, processes, dimension)] the client's cached layout is updated
    in place; in-flight sequence state is untouched (the server reshards
    without dropping connections). *)

val observe : t -> Synts_ingest.Ingest.event -> Synts_ingest.Ingest.outcome
val observe_batch :
  t -> Synts_ingest.Ingest.event array -> Synts_ingest.Ingest.outcome array
(** One [Observe] round trip (retransmitted on corruption errors, at
    most 5 times). Raises [Failure] on a server-side error such as a
    channel outside the decomposition. *)

val drain :
  t -> (Synts_ingest.Ingest.ticket * Synts_core.Internal_events.stamp) list

val finish :
  t -> (Synts_ingest.Ingest.ticket * Synts_core.Internal_events.stamp) list

val verify_server : t -> (bool * int, string) result
(** Ask a [--check] server to replay its whole arrival log through the
    single-domain oracle; [Ok (ok, messages_checked)]. *)

type stats = {
  clients : int;
  batches : int;
  messages : int;
  internal : int;
  dropped : int;  (** Server-side resolved-stamp drops (loss). *)
  pending : int;  (** Server-side resolved stamps awaiting drain. *)
}

val server_stats : t -> (stats, string) result

val shutdown : t -> unit
(** Request daemon shutdown, await [Bye], close the connection. *)

module Sink : Synts_ingest.Ingest.S with type t = t
val ingest : t -> Synts_ingest.Ingest.sink
