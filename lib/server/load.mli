(** Multi-client load generator for a [synts serve] daemon — the engine
    behind [synts load].

    Spawns [clients] POSIX threads, each holding its own connection and
    driving a seeded pseudo-random workload of [batches] × [batch]
    events (messages on the decomposition's channels, plus internal
    events with probability [internal_prob]). Per-batch round-trip
    latencies are collected per thread and aggregated into p50/p95/p99;
    the same latencies also land in the [server.client.rpc_ms]
    telemetry histogram. Workloads are deterministic from [seed], so
    the same seed drives the same byte stream at the server — which is
    what lets a [--check] server's {!Client.verify_server} assert
    exactness after a load run. *)

type report = {
  clients : int;
  batches : int;  (* per client *)
  events : int;  (* total sent *)
  messages : int;  (* total message events among them *)
  seconds : float;  (* wall clock for the whole run *)
  events_per_sec : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;  (* per-batch round-trip latency quantiles *)
  server_dropped : int;
      (* resolved stamps the server discarded to its queue bound — loss *)
  server_pending : int;  (* resolved stamps still queued — backpressure *)
}

val run :
  ?clients:int ->
  ?batches:int ->
  ?batch:int ->
  ?internal_prob:float ->
  ?seed:int ->
  Server.address ->
  Synts_graph.Decomposition.t ->
  report
(** Drive the daemon at [address]. Defaults: 4 clients × 64 batches of
    32 events, [internal_prob = 0.1], [seed = 0]. The decomposition
    must be the one the server was started with (it defines the legal
    channels). Re-raises the first client thread's failure, if any. *)

val pp_report : Format.formatter -> report -> unit
