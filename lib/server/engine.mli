(** The sharded streaming stamping engine behind [synts serve].

    An engine conforms to {!Synts_ingest.Ingest.S}, so everything that
    feeds a {!Synts_session.Session} can feed an engine unchanged — but
    batches are stamped by [shards] OCaml domains in parallel, each
    owning a disjoint slice of the timestamp components (see {!Shard}).

    Exactness is by construction, not by luck: the online stamping rule
    is componentwise, every shard sweeps the {e same} ordered batch over
    its own {!Synts_clock.Stamp_store} slab (per-process clock slices in
    the first [n] rows, one output row per batch event above them), and
    the coordinator reassembles full vectors from the disjoint slices.
    The result is bit-identical to the deterministic single-domain sweep
    — property-tested against {!Synts_core.Online.stamper}, which stays
    in-tree as the conformance oracle. With [shards = 1] (or a
    single-component decomposition) no domain is spawned and the sweep
    runs inline on the caller's domain.

    Internal events never touch the clocks, so they are resolved on the
    coordinator through {!Synts_core.Event_stream} using the reassembled
    message stamps; tickets and resolved stamps behave exactly as a
    session's. *)

type t

val create : ?shards:int -> ?pending_cap:int -> Synts_graph.Decomposition.t -> t
(** [create ~shards d] builds an engine over decomposition [d] with at
    most [shards] (default 1, clamped to the component count) worker
    domains. [pending_cap] (default 65536, mirroring
    {!Synts_session.Session}) bounds the resolved-stamp queue: beyond it
    the oldest entry is dropped and counted in {!dropped}. [shards < 1]
    or [pending_cap < 1] raises [Invalid_argument]. *)

val of_layout :
  ?shards:int ->
  ?pending_cap:int ->
  ?init:int array array ->
  ?first_ticket:int ->
  n:int ->
  dim:int ->
  group_of_edge:(int -> int -> int) ->
  unit ->
  t
(** An engine over an explicit layout instead of a static decomposition —
    the constructor a membership reshard uses. [group_of_edge] maps a
    channel to its component slot (raising [Not_found] off-topology;
    typically [Synts_graph.Membership.slot_of_edge] of the epoch's
    membership). [init] (default all zeros) seeds the per-process clock
    rows — the previous engine's {!process_vectors} translated into the
    new epoch — and must be [n] rows of width [dim]. [first_ticket]
    (default 0) continues the previous engine's ticket numbering
    ({!next_ticket}) so clients see one monotone ticket space across
    epochs. [dim < 1], [n < 0] or ill-shaped [init] raise
    [Invalid_argument]. *)

val shards : t -> int
(** Effective shard count after clamping. *)

val processes : t -> int
val dimension : t -> int

val pending : t -> int
(** Resolved stamps currently queued awaiting {!drain} — the engine's
    backpressure signal. *)

val dropped : t -> int
(** Resolved stamps discarded to the [pending_cap] bound since creation
    (also the ["server.engine.dropped_events"] counter). *)

val next_ticket : t -> int
(** The ticket the next deferred internal event would get — pass it as
    [first_ticket] to the successor engine when resharding so the ticket
    space stays monotone. *)

val process_vectors : t -> int array array
(** The per-process clock vectors, reassembled from the shard slices.
    Row [p] is process [p]'s current clock (width {!dimension}). Only
    meaningful between batches; this is the state {!of_layout}'s [init]
    carries across a membership epoch change. *)

val telemetry_snapshots : t -> Synts_telemetry.Telemetry.snapshot list
(** One snapshot per shard, in shard order, from the per-shard private
    registries (each worker domain records only into its own, so the hot
    sweep is contention-free). The per-shard counters are shard-count
    invariant: merging these snapshots with [Obs.Merge.snapshots]
    reconstructs the single-shard oracle registry bit-identically. *)

val shard_loads : t -> (int * int * int * int) list
(** [(shard, events swept, cells written, messages owned)] per shard —
    the admin channel's load-skew rows. *)

val observe : t -> Synts_ingest.Ingest.event -> Synts_ingest.Ingest.outcome
(** A batch of one — see {!observe_batch}. *)

val observe_batch :
  t -> Synts_ingest.Ingest.event array -> Synts_ingest.Ingest.outcome array
(** Stamp one ordered batch: every shard sweeps it in parallel, then the
    outcomes are assembled in event order. [Message] events outside the
    decomposition raise [Invalid_argument] (before any state changes). *)

val drain :
  t -> (Synts_ingest.Ingest.ticket * Synts_core.Internal_events.stamp) list

val finish :
  t -> (Synts_ingest.Ingest.ticket * Synts_core.Internal_events.stamp) list
(** Flush pending internal events ([succ = +∞]) and reset the internal
    event stream; message clocks are {e not} reset. Tickets keep
    increasing across a [finish]. *)

val stop : t -> unit
(** Join the worker domains. Idempotent; the engine must not be used
    afterwards. *)

module Sink : Synts_ingest.Ingest.S with type t = t
(** The {!Synts_ingest.Ingest.S} conformance. *)

val ingest : t -> Synts_ingest.Ingest.sink
(** This engine as a packed ingest sink. *)
