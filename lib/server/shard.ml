type t = {
  dimension : int;
  shards : int;
  owner : int array;  (* component -> shard *)
  slot : int array;  (* component -> column within its owner's slab *)
  components : int array array;  (* shard -> owned components, ascending *)
}

let plan ~dimension ~shards =
  if dimension < 1 then invalid_arg "Shard.plan: dimension must be >= 1";
  if shards < 1 then invalid_arg "Shard.plan: shards must be >= 1";
  let k = min shards dimension in
  let owner = Array.init dimension (fun g -> g mod k) in
  let counts = Array.make k 0 in
  let slot =
    Array.init dimension (fun g ->
        let s = owner.(g) in
        let j = counts.(s) in
        counts.(s) <- j + 1;
        j)
  in
  let components = Array.init k (fun s -> Array.make counts.(s) 0) in
  Array.iteri (fun g s -> components.(s).(slot.(g)) <- g) owner;
  { dimension; shards = k; owner; slot; components }

let dimension t = t.dimension
let shards t = t.shards
let owner t g = t.owner.(g)
let components t s = t.components.(s)
let slot t g = t.slot.(g)
