module Wire = Synts_clock.Wire
module Ingest = Synts_ingest.Ingest
module Tm = Synts_telemetry.Telemetry

let m_rpcs =
  Tm.Counter.v ~help:"Request/reply round trips by serve clients"
    "server.client.rpcs"

let m_retransmits =
  Tm.Counter.v ~help:"Requests retransmitted after a corruption error"
    "server.client.retransmits"

let m_latency =
  Tm.Histogram.v
    ~help:"Round-trip latency of serve client requests (milliseconds)"
    ~buckets:[| 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100. |]
    "server.client.rpc_ms"

type t = {
  fd : Unix.file_descr;
  mutable seq : int;  (* next Observe sequence number *)
  mutable processes : int;  (* grows when a churn delta joins a process *)
  mutable dimension : int;  (* follows the server's current epoch *)
  shards : int;
  mutable epoch : int;
  mutable closed : bool;
}

let connect_fd = function
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

let roundtrip fd req =
  Tm.Counter.incr m_rpcs;
  let t0 = Unix.gettimeofday () in
  Frame.send fd (Wire.frame (Protocol.encode_request req));
  let reply =
    match Frame.recv fd with
    | `Eof -> failwith "server closed the connection"
    | `Frame f -> f
  in
  Tm.Histogram.observe m_latency (1000. *. (Unix.gettimeofday () -. t0));
  match Wire.unframe reply with
  | Error e -> failwith ("corrupt reply frame: " ^ e)
  | Ok body -> (
      match Protocol.decode_response body with
      | Error e -> failwith ("bad reply: " ^ e)
      | Ok resp -> resp)

let connect address =
  let fd = connect_fd address in
  match roundtrip fd Protocol.Hello with
  | Protocol.Welcome { processes; dimension; shards; epoch } ->
      { fd; seq = 0; processes; dimension; shards; epoch; closed = false }
  | Protocol.Error_r e ->
      Unix.close fd;
      failwith ("server rejected hello: " ^ e)
  | other ->
      Unix.close fd;
      Format.kasprintf failwith "unexpected hello reply: %a"
        Protocol.pp_response other

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let shards t = t.shards
let processes t = t.processes
let dimension t = t.dimension
let epoch t = t.epoch

let churn t delta =
  match roundtrip t.fd (Protocol.Churn delta) with
  | Protocol.Epoch_r { epoch; processes; dimension } ->
      t.epoch <- epoch;
      t.processes <- processes;
      t.dimension <- dimension;
      Ok (epoch, processes, dimension)
  | Protocol.Error_r e -> Error e
  | other ->
      Format.asprintf "unexpected churn reply: %a" Protocol.pp_response other
      |> Result.error

let corruption_error e =
  let prefix p = String.length e >= String.length p
                 && String.sub e 0 (String.length p) = p in
  prefix "bad frame" || prefix "bad request"

let observe_batch t events =
  let seq = t.seq in
  t.seq <- seq + 1;
  let req = Protocol.Observe { seq; events } in
  let rec attempt tries =
    match roundtrip t.fd req with
    | Protocol.Outcomes outcomes -> outcomes
    | Protocol.Error_r e when corruption_error e && tries < 5 ->
        (* The frame was damaged in transit; the server consumed no
           sequence number, and if it did see the request the dedup
           cache answers the retry identically. *)
        Tm.Counter.incr m_retransmits;
        attempt (tries + 1)
    | Protocol.Error_r e ->
        (* A rejected batch (e.g. a channel the current epoch retired)
           consumes no sequence number server-side — hand ours back too,
           so the session survives the failure in lockstep. *)
        t.seq <- seq;
        failwith e
    | other ->
        Format.kasprintf failwith "unexpected observe reply: %a"
          Protocol.pp_response other
  in
  attempt 0

let observe t ev = (observe_batch t [| ev |]).(0)

let resolved_rpc t req name =
  match roundtrip t.fd req with
  | Protocol.Resolved resolved -> resolved
  | Protocol.Error_r e -> failwith e
  | other ->
      Format.kasprintf failwith "unexpected %s reply: %a" name
        Protocol.pp_response other

let drain t = resolved_rpc t Protocol.Drain "drain"
let finish t = resolved_rpc t Protocol.Finish "finish"

let verify_server t =
  match roundtrip t.fd Protocol.Verify with
  | Protocol.Verified { ok; checked } -> Ok (ok, checked)
  | Protocol.Error_r e -> Error e
  | other -> Format.asprintf "unexpected verify reply: %a"
               Protocol.pp_response other
             |> Result.error

type stats = {
  clients : int;
  batches : int;
  messages : int;
  internal : int;
  dropped : int;
  pending : int;
}

let server_stats t =
  match roundtrip t.fd Protocol.Stats with
  | Protocol.Stats_r { clients; batches; messages; internal; dropped; pending }
    ->
      Ok { clients; batches; messages; internal; dropped; pending }
  | Protocol.Error_r e -> Error e
  | other -> Format.asprintf "unexpected stats reply: %a"
               Protocol.pp_response other
             |> Result.error

let shutdown t =
  (match roundtrip t.fd Protocol.Shutdown with
  | Protocol.Bye -> ()
  | Protocol.Error_r e -> failwith e
  | other ->
      Format.kasprintf failwith "unexpected shutdown reply: %a"
        Protocol.pp_response other);
  close t

module Sink = struct
  type nonrec t = t

  let observe = observe
  let observe_batch = observe_batch
  let drain = drain
  let finish = finish
  let processes = processes
  let dimension = dimension
end

let ingest t = Ingest.sink (module Sink) t
