(** Blocking scraper for a daemon's admin channel — what [synts top]
    and the obs smoke tier speak.

    Unlike {!Client} there is no hello exchange: the admin channel is
    request/response from the first frame, and each call is one round
    trip. All calls raise [Failure] on protocol errors (including the
    family-mismatch rejection a data-plane port answers with) and
    [Unix.Unix_error] on transport errors. *)

type t

val connect : Server.address -> t
val close : t -> unit

val health :
  t -> bool * string * int * int * int
(** [(ok, backend, processes, dimension, shards)]. *)

val metrics : t -> Synts_obs.Admin.metrics_format -> string
(** The merged cross-shard registry snapshot, rendered as Prometheus
    text or JSON. *)

val stats : t -> Synts_obs.Admin.stats

val tracedump : t -> int * int * string
(** [(dropped, spans, jsonl)] — drains nothing; the ring keeps its
    contents. *)
