(** Length-prefixed frame transport over file descriptors.

    On the wire each protocol message is a 4-byte big-endian length
    followed by a versioned {!Synts_clock.Wire.frame} (magic, version,
    checksum, body). The length prefix delimits frames on the stream;
    the checksum frame inside authenticates the bytes; decoding happens
    one layer up ({!Service.handle_raw} / the client). *)

val max_frame : int
(** Upper bound on an accepted frame (16 MiB) — a sanity check against
    desynchronised or hostile streams. *)

val send : Unix.file_descr -> string -> unit
(** Write one already-framed message (length prefix added here). *)

val recv : Unix.file_descr -> [ `Frame of string | `Eof ]
(** Read one framed message (checksum frame included, not yet
    validated). [`Eof] on orderly close before a length prefix; raises
    [Failure] on truncation mid-frame or an oversized length. *)

(** {1 Incremental decoding} — for a non-blocking select loop. *)

type buffer

val buffer : unit -> buffer

val feed : buffer -> bytes -> int -> unit
(** Append [len] bytes just read from the socket. *)

val next : buffer -> string option
(** Extract the next complete frame, if the buffer holds one. Raises
    [Failure "frame too large"] past {!max_frame}. *)
