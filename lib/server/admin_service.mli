(** Server side of the admin channel: answers {!Synts_obs.Admin}
    requests from {!Service} state.

    Runs on the serve loop's thread between data-plane requests, so
    every read — per-connection tallies, backend queue depths, merged
    per-shard registries, the tracer ring — is a coherent snapshot;
    nothing here blocks or stamps. *)

val merged_snapshot : Service.t -> Synts_telemetry.Telemetry.snapshot
(** The default registry, the service-private registry and the engine's
    per-shard registries, merged with {!Synts_obs.Merge.snapshots}. *)

val stats : Service.t -> Synts_obs.Admin.stats
(** The [Stats] payload: totals, dedup/drop/pending counters, stamp
    latency quantiles, per-shard loads, per-connection rows and (in
    offline mode) the streaming watermarks. *)

val handle : Service.t -> Synts_obs.Admin.request -> Synts_obs.Admin.response

val handle_raw : Service.t -> string -> string
(** Byte-level path: unframe, decode (family magic + version checked),
    {!handle}, encode, re-frame. Malformed input yields a framed
    [Error_r]. A data-plane request arriving here decodes as "not an
    admin-family message". *)
