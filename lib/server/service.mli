(** Transport-independent core of the [synts serve] daemon.

    A service owns one sharded {!Engine} and the per-connection protocol
    state; the socket layer ({!Server}) only moves framed bytes. Keeping
    the core transport-free is what lets the property tests drive the
    full request path — encode, frame, (possibly corrupt), unframe,
    decode, stamp — without opening a socket.

    {2 At-least-once exactness}

    Each connection's [Observe] requests carry a client sequence number.
    The service stamps a sequence once and caches the reply: a duplicate
    delivery (network dup, or a client retransmitting after a corrupted
    frame was rejected) is answered from the cache, never re-stamped —
    so the fault injector's dup/corrupt clauses cannot skew timestamps.
    A sequence older than the cached one is answered with [Error_r]
    ("stale"), as is a gap (the client skipped a sequence). *)

type t

val create :
  ?shards:int ->
  ?check:bool ->
  ?offline:bool ->
  ?window:int ->
  Synts_graph.Decomposition.t ->
  t
(** [check] (default false) additionally logs every ingested event in
    arrival order so {!Protocol.Verify} can replay the whole stream
    against a mode-specific oracle. With [offline] false (the default)
    the backend is the sharded Fig. 5 {!Engine} and verification
    replays through the single-domain {!Synts_core.Online.stamper},
    comparing stamps bit-for-bit. With [offline] true the backend is
    the streaming Dilworth pipeline
    ({!Synts_ingest.Offline_sink}, live window [window]): stamps are
    offline-style rank vectors, and verification instead
    batch-timestamps the logged trace with
    {!Synts_core.Offline.timestamp_trace} and requires the same
    precedes/concurrent verdict on every message pair
    (order-equivalence — the streamed vectors are not bit-identical to
    the batch ones). [shards] is ignored in offline mode (reported as
    1 in [Welcome]). *)

type conn

val attach : t -> conn
(** Register a connection (fresh sequence/cache state). *)

val detach : t -> conn -> unit

val clients : t -> int
(** Currently attached connections. *)

val handle : t -> conn -> Protocol.request -> Protocol.response
(** Execute one decoded request. Never raises: engine
    [Invalid_argument]s surface as [Error_r]. [Shutdown] answers [Bye];
    the caller decides what to do with its transport. *)

val handle_raw : t -> conn -> string -> string
(** The byte-level path: {!Synts_clock.Wire.unframe}, decode, {!handle},
    encode, re-frame. Malformed or corrupted input yields a framed
    [Error_r] {e without} touching the connection's sequence state, so a
    retransmission of the damaged request still lands in the dedup
    window. *)

val stop : t -> unit
(** Stop the backend (joins the engine's worker domains; a no-op for the
    offline-stream backend, which runs inline). *)

val shards : t -> int
(** Worker domains of the sharded backend; 1 in offline-stream mode. *)

(** {2 Introspection}

    The accessors behind the admin channel ({!Admin_service}). All are
    cheap reads of coordinator-side state — safe to call between
    requests on the serve loop's thread. *)

type backend =
  | Sharded of Engine.t
  | Offline_stream of Synts_ingest.Offline_sink.t

val backend : t -> backend
(** The {e current} backend — a [Protocol.Churn] request retires the
    sharded engine and replaces it with one laid out for the new epoch
    (per-process clocks translated, ticket space continued), so do not
    cache the result across requests. *)

val epoch : t -> int
(** Current membership epoch (0 for the offline backend, which does not
    support churn). *)

val membership : t -> Synts_graph.Membership.t option
(** The churn-tolerant membership behind the sharded backend ([None] in
    offline mode) — read-only introspection for the admin channel and
    the [epoch/*] lint rules; deltas must flow through
    [Protocol.Churn]. *)

val backend_name : t -> string
(** ["sharded:k"] or ["offline-stream"]. *)

val batches : t -> int
val messages_total : t -> int
val internal_total : t -> int

val dedup_hits : t -> int
(** Observe requests answered from a reply cache (sequence replays). *)

val errors : t -> int
(** Requests answered with [Error_r], including bad frames. *)

val pending : t -> int
(** Resolved stamps queued in the backend awaiting [Drain]. *)

val dropped : t -> int
(** Resolved stamps the backend discarded to its queue bound. *)

val stamp_quantiles : t -> float * float * float
(** [(p50, p90, p99)] server-side batch stamping latency in
    milliseconds, from the service-private [server.stamp_ms]
    histogram. *)

val conn_stats : t -> (int * int * int * int * int) list
(** Per-connection [(id, events in, stamps out, dedup hits, last seq)],
    sorted by id. *)

val telemetry_snapshots : t -> Synts_telemetry.Telemetry.snapshot list
(** The service-private registry snapshot followed by the engine's
    per-shard registry snapshots (empty tail in offline mode) — merge
    with [Obs.Merge.snapshots] for the admin [metrics] view. *)
