(** Transport-independent core of the [synts serve] daemon.

    A service owns one sharded {!Engine} and the per-connection protocol
    state; the socket layer ({!Server}) only moves framed bytes. Keeping
    the core transport-free is what lets the property tests drive the
    full request path — encode, frame, (possibly corrupt), unframe,
    decode, stamp — without opening a socket.

    {2 At-least-once exactness}

    Each connection's [Observe] requests carry a client sequence number.
    The service stamps a sequence once and caches the reply: a duplicate
    delivery (network dup, or a client retransmitting after a corrupted
    frame was rejected) is answered from the cache, never re-stamped —
    so the fault injector's dup/corrupt clauses cannot skew timestamps.
    A sequence older than the cached one is answered with [Error_r]
    ("stale"), as is a gap (the client skipped a sequence). *)

type t

val create :
  ?shards:int ->
  ?check:bool ->
  ?offline:bool ->
  ?window:int ->
  Synts_graph.Decomposition.t ->
  t
(** [check] (default false) additionally logs every ingested event in
    arrival order so {!Protocol.Verify} can replay the whole stream
    against a mode-specific oracle. With [offline] false (the default)
    the backend is the sharded Fig. 5 {!Engine} and verification
    replays through the single-domain {!Synts_core.Online.stamper},
    comparing stamps bit-for-bit. With [offline] true the backend is
    the streaming Dilworth pipeline
    ({!Synts_ingest.Offline_sink}, live window [window]): stamps are
    offline-style rank vectors, and verification instead
    batch-timestamps the logged trace with
    {!Synts_core.Offline.timestamp_trace} and requires the same
    precedes/concurrent verdict on every message pair
    (order-equivalence — the streamed vectors are not bit-identical to
    the batch ones). [shards] is ignored in offline mode (reported as
    1 in [Welcome]). *)

type conn

val attach : t -> conn
(** Register a connection (fresh sequence/cache state). *)

val detach : t -> conn -> unit

val clients : t -> int
(** Currently attached connections. *)

val handle : t -> conn -> Protocol.request -> Protocol.response
(** Execute one decoded request. Never raises: engine
    [Invalid_argument]s surface as [Error_r]. [Shutdown] answers [Bye];
    the caller decides what to do with its transport. *)

val handle_raw : t -> conn -> string -> string
(** The byte-level path: {!Synts_clock.Wire.unframe}, decode, {!handle},
    encode, re-frame. Malformed or corrupted input yields a framed
    [Error_r] {e without} touching the connection's sequence state, so a
    retransmission of the damaged request still lands in the dedup
    window. *)

val stop : t -> unit
(** Stop the backend (joins the engine's worker domains; a no-op for the
    offline-stream backend, which runs inline). *)

val shards : t -> int
(** Worker domains of the sharded backend; 1 in offline-stream mode. *)
