module Wire = Synts_clock.Wire
module Admin = Synts_obs.Admin

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect_fd = function
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

let connect address = { fd = connect_fd address; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let roundtrip t req =
  Frame.send t.fd (Wire.frame (Admin.encode_request req));
  let reply =
    match Frame.recv t.fd with
    | `Eof -> failwith "admin channel closed"
    | `Frame f -> f
  in
  match Wire.unframe reply with
  | Error e -> failwith ("corrupt admin reply frame: " ^ e)
  | Ok body -> (
      match Admin.decode_response body with
      | Error e -> failwith ("bad admin reply: " ^ e)
      | Ok resp -> resp)

let unexpected what resp =
  Format.kasprintf failwith "unexpected %s reply: %a" what Admin.pp_response
    resp

let health t =
  match roundtrip t Admin.Health with
  | Admin.Health_r { ok; backend; processes; dimension; shards } ->
      (ok, backend, processes, dimension, shards)
  | Admin.Error_r e -> failwith e
  | other -> unexpected "health" other

let metrics t fmt =
  match roundtrip t (Admin.Metrics fmt) with
  | Admin.Metrics_r body -> body
  | Admin.Error_r e -> failwith e
  | other -> unexpected "metrics" other

let stats t =
  match roundtrip t Admin.Stats with
  | Admin.Stats_r st -> st
  | Admin.Error_r e -> failwith e
  | other -> unexpected "stats" other

let tracedump t =
  match roundtrip t Admin.Tracedump with
  | Admin.Tracedump_r { dropped; spans; jsonl } -> (dropped, spans, jsonl)
  | Admin.Error_r e -> failwith e
  | other -> unexpected "tracedump" other
