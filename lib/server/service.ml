module Decomposition = Synts_graph.Decomposition
module Graph = Synts_graph.Graph
module Membership = Synts_graph.Membership
module Online = Synts_core.Online
module Epoch_stamper = Synts_core.Epoch_stamper
module Wire = Synts_clock.Wire
module Ingest = Synts_ingest.Ingest
module Tm = Synts_telemetry.Telemetry

let m_churn =
  Tm.Counter.v ~help:"Membership deltas applied by the serve service"
    "server.churn.deltas"

let m_requests =
  Tm.Counter.v ~help:"Requests handled by the serve service" "server.requests"

let m_errors =
  Tm.Counter.v ~help:"Requests answered with an error" "server.errors"

let m_dups =
  Tm.Counter.v ~help:"Duplicate Observe requests answered from the reply cache"
    "server.duplicates"

type conn = {
  id : int;
  mutable last_seq : int;  (* -1 until the first Observe *)
  mutable cached : Protocol.response option;
      (* reply to [last_seq], replayed on duplicate delivery *)
  mutable events_in : int;
  mutable stamps_out : int;
  mutable dedup_hits : int;
}

(* The stamping backend behind the protocol: the sharded Fig. 5 engine,
   or the streaming offline pipeline. Both are driven through their
   packed {!Ingest.sink}; only shard count, shutdown and the verify
   oracle are backend-specific. *)
type backend =
  | Sharded of Engine.t
  | Offline_stream of Synts_ingest.Offline_sink.t

(* Check-mode arrival log: events interleaved with the membership deltas
   applied between them, so the verify replay crosses the same epoch
   boundaries at the same points the live engines did. *)
type log_item = Ev of Ingest.event | Delta of Membership.delta

type t = {
  mutable backend : backend;
      (* Re-pointed at a fresh engine on every applied churn delta; the
         connection table is untouched, so clients ride across epochs. *)
  mutable sink : Ingest.sink;
  decomposition : Decomposition.t;  (* epoch-0 layout *)
  membership : Membership.t option;  (* None for the offline backend *)
  requested_shards : int;
  mutable carry :
    (Ingest.ticket * Synts_core.Internal_events.stamp) list;
      (* Resolved stamps flushed out of a retired engine at an epoch
         boundary, owed to the client's next Drain/Finish. *)
  check : bool;
  mutable log : log_item list;  (* reversed arrival order; check mode *)
  mutable stamped : Synts_clock.Vector.t list;  (* reversed; check mode *)
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable batches : int;
  mutable messages : int;
  mutable internal : int;
  mutable dedup : int;
  mutable errors : int;
  registry : Tm.registry;
      (* Service-private, so concurrent daemons (benches spawn several)
         don't pool their latency histograms. *)
  stamp_ms : Tm.Histogram.t;
}

(* The graph a decomposition covers, rebuilt from its own groups — the
   membership's epoch-0 topology, guaranteed to match the decomposition
   exactly. *)
let graph_of_decomposition d =
  Graph.of_edges
    (Decomposition.graph_vertices d)
    (List.concat_map Decomposition.edges_of_group (Decomposition.groups d))

let create ?shards ?(check = false) ?(offline = false) ?window d =
  let backend =
    if offline then
      Offline_stream
        (Synts_ingest.Offline_sink.create ?window
           ~n:(Decomposition.graph_vertices d) ())
    else Sharded (Engine.create ?shards d)
  in
  let membership =
    if offline then None
    else Some (Membership.create (graph_of_decomposition d) d)
  in
  let sink =
    match backend with
    | Sharded e -> Engine.ingest e
    | Offline_stream s -> Synts_ingest.Offline_sink.ingest s
  in
  let registry = Tm.create_registry () in
  let stamp_ms =
    Tm.Histogram.v ~registry
      ~help:"Server-side batch stamping latency (milliseconds)"
      ~buckets:[| 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.;
                  50.; 100. |]
      "server.stamp_ms"
  in
  {
    backend;
    sink;
    decomposition = d;
    membership;
    requested_shards = (match shards with Some k -> k | None -> 1);
    carry = [];
    check;
    log = [];
    stamped = [];
    conns = Hashtbl.create 8;
    next_conn = 0;
    batches = 0;
    messages = 0;
    internal = 0;
    dedup = 0;
    errors = 0;
    registry;
    stamp_ms;
  }

let attach t =
  let conn =
    {
      id = t.next_conn;
      last_seq = -1;
      cached = None;
      events_in = 0;
      stamps_out = 0;
      dedup_hits = 0;
    }
  in
  t.next_conn <- t.next_conn + 1;
  Hashtbl.replace t.conns conn.id conn;
  conn

let detach t conn = Hashtbl.remove t.conns conn.id
let clients t = Hashtbl.length t.conns
let shards t =
  match t.backend with Sharded e -> Engine.shards e | Offline_stream _ -> 1

let stop t =
  match t.backend with Sharded e -> Engine.stop e | Offline_stream _ -> ()

let backend t = t.backend

let backend_name t =
  match t.backend with
  | Sharded e -> Printf.sprintf "sharded:%d" (Engine.shards e)
  | Offline_stream _ -> "offline-stream"

let batches t = t.batches
let messages_total t = t.messages
let internal_total t = t.internal
let dedup_hits t = t.dedup
let errors t = t.errors

let pending t =
  match t.backend with
  | Sharded e -> Engine.pending e
  | Offline_stream s -> Synts_ingest.Offline_sink.pending s

let dropped t =
  match t.backend with Sharded e -> Engine.dropped e | Offline_stream _ -> 0

let stamp_quantiles t =
  let q p = Tm.Histogram.quantile t.stamp_ms p in
  (q 0.5, q 0.9, q 0.99)

let conn_stats t =
  Hashtbl.fold
    (fun _ c acc ->
      (c.id, c.events_in, c.stamps_out, c.dedup_hits, c.last_seq) :: acc)
    t.conns []
  |> List.sort compare

let telemetry_snapshots t =
  Tm.snapshot ~registry:t.registry ()
  :: (match t.backend with
     | Sharded e -> Engine.telemetry_snapshots e
     | Offline_stream _ -> [])

let record t events outcomes =
  Array.iter
    (function
      | Ingest.Message _ -> t.messages <- t.messages + 1
      | Ingest.Internal _ -> t.internal <- t.internal + 1)
    events;
  t.batches <- t.batches + 1;
  if t.check then begin
    Array.iter (fun ev -> t.log <- Ev ev :: t.log) events;
    Array.iter
      (function
        | Ingest.Stamped v -> t.stamped <- v :: t.stamped
        | Ingest.Deferred _ -> ())
      outcomes
  end

let epoch t =
  match t.membership with Some m -> Membership.epoch m | None -> 0

let membership t = t.membership

let take_carry t =
  let out = t.carry in
  t.carry <- [];
  out

(* Apply one membership delta: retire the current engine (flushing its
   resolved queue into [carry] so nothing owed to the client is lost),
   translate the per-process clock vectors into the new epoch's layout,
   and stand up a fresh engine seeded with them, continuing the ticket
   space. Connections are not touched — the reshard is invisible to the
   protocol layer except for the new epoch in [Epoch_r]/[Welcome]. *)
let apply_churn t delta =
  match (t.backend, t.membership) with
  | Offline_stream _, _ | _, None ->
      Error "churn requires the sharded backend (run without --offline)"
  | Sharded e, Some m -> (
      let from_epoch = Membership.epoch m in
      let w_old = Membership.width m in
      match Membership.apply m delta with
      | Error _ as err -> err
      | Ok _remap ->
          let flushed = Engine.finish e in
          if flushed <> [] then t.carry <- t.carry @ flushed;
          let vecs = Engine.process_vectors e in
          let first_ticket = Engine.next_ticket e in
          Engine.stop e;
          let n' = Membership.processes m in
          let w' = Membership.width m in
          let dim' = max 1 w' in
          let init =
            Array.init n' (fun p ->
                if p < Array.length vecs && w_old > 0 && w' > 0 then
                  Membership.translate m ~from_epoch vecs.(p)
                else Array.make dim' 0)
          in
          let e' =
            Engine.of_layout ~shards:t.requested_shards ~init ~first_ticket
              ~n:n' ~dim:dim'
              ~group_of_edge:(fun u v -> Membership.slot_of_edge m u v)
              ()
          in
          t.backend <- Sharded e';
          t.sink <- Engine.ingest e';
          Tm.Counter.incr m_churn;
          if t.check then t.log <- Delta delta :: t.log;
          Ok (Membership.epoch m, n', dim'))

(* Sharded mode, no churn: replay the whole arrival log through the
   deterministic single-domain oracle and compare message stamps
   bit-for-bit.
   Internal-event stamps are functions of the surrounding message
   stamps, so message equality is the whole exactness claim. *)
let verify_sharded t =
  let oracle = Online.stamper t.decomposition in
  let stamped = ref (List.rev t.stamped) in
  let checked = ref 0 in
  let ok = ref true in
  List.iter
    (fun item ->
      match item with
      | Delta _ | Ev (Ingest.Internal _) -> ()
      | Ev (Ingest.Message { src; dst }) -> (
          incr checked;
          let expect = oracle ~src ~dst in
          match !stamped with
          | got :: rest ->
              stamped := rest;
              if got <> expect then ok := false
          | [] -> ok := false))
    (List.rev t.log);
  if !stamped <> [] then ok := false;
  Protocol.Verified { ok = !ok; checked = !checked }

(* Sharded mode with churn in the log: replay events {e and} membership
   deltas in arrival order through the single-domain epoch-aware oracle
   ({!Epoch_stamper} over a fresh membership seeded from the epoch-0
   decomposition), crossing the same epoch boundaries at the same
   points. Stamps must match bit-for-bit epoch by epoch. *)
let verify_epochs t =
  let st =
    Epoch_stamper.create
      (Membership.create (graph_of_decomposition t.decomposition)
         t.decomposition)
  in
  let stamped = ref (List.rev t.stamped) in
  let checked = ref 0 in
  let ok = ref true in
  List.iter
    (fun item ->
      match item with
      | Ev (Ingest.Internal _) -> ()
      | Delta d -> (
          match Epoch_stamper.apply st d with
          | Ok _ -> ()
          | Error _ -> ok := false)
      | Ev (Ingest.Message { src; dst }) -> (
          incr checked;
          match Epoch_stamper.stamp st ~src ~dst with
          | expect -> (
              match !stamped with
              | got :: rest ->
                  stamped := rest;
                  if got <> expect then ok := false
              | [] -> ok := false)
          | exception Invalid_argument _ -> ok := false))
    (List.rev t.log);
  if !stamped <> [] then ok := false;
  Protocol.Verified { ok = !ok; checked = !checked }

(* Offline-stream mode: the streamed stamps are not bit-identical to any
   single oracle — the claim is order-equivalence. Rebuild the message
   trace from the arrival log, batch-timestamp it with the Figure 9
   pipeline, and require the same precedes/concurrent verdict on every
   message pair. *)
let verify_offline t =
  let module Offline = Synts_core.Offline in
  let steps =
    List.rev
      (List.filter_map
         (function
           | Ev (Ingest.Message { src; dst }) ->
               Some (Synts_sync.Trace.Send (src, dst))
           | Ev (Ingest.Internal _) | Delta _ -> None)
         t.log)
  in
  let streamed = Array.of_list (List.rev t.stamped) in
  let checked = ref 0 in
  let ok = ref (List.length steps = Array.length streamed) in
  if !ok && steps <> [] then begin
    let trace =
      Synts_sync.Trace.of_steps_exn ~n:(Ingest.processes t.sink) steps
    in
    let batch = Offline.timestamp_trace trace in
    let m = Array.length batch in
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        incr checked;
        if
          Offline.precedes streamed.(i) streamed.(j)
          <> Offline.precedes batch.(i) batch.(j)
          || Offline.precedes streamed.(j) streamed.(i)
             <> Offline.precedes batch.(j) batch.(i)
        then ok := false
      done
    done
  end;
  Protocol.Verified { ok = !ok; checked = !checked }

let has_churn_log t =
  List.exists (function Delta _ -> true | Ev _ -> false) t.log

let verify t =
  match t.backend with
  | Sharded _ -> if has_churn_log t then verify_epochs t else verify_sharded t
  | Offline_stream _ -> verify_offline t

let handle t conn (req : Protocol.request) : Protocol.response =
  Tm.Counter.incr m_requests;
  let err e =
    Tm.Counter.incr m_errors;
    t.errors <- t.errors + 1;
    Protocol.Error_r e
  in
  match req with
  | Hello ->
      Welcome
        {
          processes = Ingest.processes t.sink;
          dimension = Ingest.dimension t.sink;
          shards = shards t;
          epoch = epoch t;
        }
  | Observe { seq; events } ->
      if seq < 0 then err "negative sequence number"
      else if seq <= conn.last_seq then
        if seq = conn.last_seq then begin
          (* At-least-once delivery: a dup or retransmission is answered
             from the cache, never stamped twice. *)
          Tm.Counter.incr m_dups;
          t.dedup <- t.dedup + 1;
          conn.dedup_hits <- conn.dedup_hits + 1;
          Option.value conn.cached ~default:(Protocol.Error_r "no cached reply")
        end
        else
          err
            (Printf.sprintf "stale sequence %d (last was %d)" seq conn.last_seq)
      else if seq > conn.last_seq + 1 then
        err
          (Printf.sprintf "sequence gap: got %d, expected %d" seq
             (conn.last_seq + 1))
      else begin
        let t0 = Unix.gettimeofday () in
        match Ingest.observe_batch t.sink events with
        | outcomes ->
            Tm.Histogram.observe t.stamp_ms
              (1000. *. (Unix.gettimeofday () -. t0));
            record t events outcomes;
            conn.events_in <- conn.events_in + Array.length events;
            Array.iter
              (function
                | Ingest.Stamped _ -> conn.stamps_out <- conn.stamps_out + 1
                | Ingest.Deferred _ -> ())
              outcomes;
            let resp = Protocol.Outcomes outcomes in
            conn.last_seq <- seq;
            conn.cached <- Some resp;
            resp
        | exception Invalid_argument e ->
            (* Validation rejected the batch before any state change; the
               sequence is not consumed, so a corrected retry may reuse
               it. *)
            err e
      end
  | Drain -> Resolved (take_carry t @ Ingest.drain t.sink)
  | Finish -> Resolved (take_carry t @ Ingest.finish t.sink)
  | Churn spec -> (
      match Membership.delta_of_string spec with
      | Error e -> err (Printf.sprintf "bad churn delta %S: %s" spec e)
      | Ok delta -> (
          match apply_churn t delta with
          | Ok (epoch, processes, dimension) ->
              Epoch_r { epoch; processes; dimension }
          | Error e -> err e))
  | Verify ->
      if not t.check then
        err "verification disabled (start the server with --check)"
      else verify t
  | Stats ->
      Stats_r
        {
          clients = clients t;
          batches = t.batches;
          messages = t.messages;
          internal = t.internal;
          dropped = dropped t;
          pending = pending t;
        }
  | Shutdown -> Bye

let handle_raw t conn raw =
  let reply resp = Wire.frame (Protocol.encode_response resp) in
  let err e =
    Tm.Counter.incr m_errors;
    t.errors <- t.errors + 1;
    reply (Protocol.Error_r e)
  in
  match Wire.unframe raw with
  | Error e -> err ("bad frame: " ^ e)
  | Ok body -> (
      match Protocol.decode_request body with
      | Error e -> err ("bad request: " ^ e)
      | Ok req -> reply (handle t conn req))
