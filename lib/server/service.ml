module Decomposition = Synts_graph.Decomposition
module Online = Synts_core.Online
module Wire = Synts_clock.Wire
module Ingest = Synts_ingest.Ingest
module Tm = Synts_telemetry.Telemetry

let m_requests =
  Tm.Counter.v ~help:"Requests handled by the serve service" "server.requests"

let m_errors =
  Tm.Counter.v ~help:"Requests answered with an error" "server.errors"

let m_dups =
  Tm.Counter.v ~help:"Duplicate Observe requests answered from the reply cache"
    "server.duplicates"

type conn = {
  id : int;
  mutable last_seq : int;  (* -1 until the first Observe *)
  mutable cached : Protocol.response option;
      (* reply to [last_seq], replayed on duplicate delivery *)
}

type t = {
  engine : Engine.t;
  decomposition : Decomposition.t;
  check : bool;
  mutable log : Ingest.event list;  (* reversed arrival order; check mode *)
  mutable stamped : Synts_clock.Vector.t list;  (* reversed; check mode *)
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable batches : int;
  mutable messages : int;
  mutable internal : int;
}

let create ?shards ?(check = false) d =
  {
    engine = Engine.create ?shards d;
    decomposition = d;
    check;
    log = [];
    stamped = [];
    conns = Hashtbl.create 8;
    next_conn = 0;
    batches = 0;
    messages = 0;
    internal = 0;
  }

let attach t =
  let conn = { id = t.next_conn; last_seq = -1; cached = None } in
  t.next_conn <- t.next_conn + 1;
  Hashtbl.replace t.conns conn.id conn;
  conn

let detach t conn = Hashtbl.remove t.conns conn.id
let clients t = Hashtbl.length t.conns
let engine t = t.engine
let stop t = Engine.stop t.engine

let record t events outcomes =
  Array.iter
    (function
      | Ingest.Message _ -> t.messages <- t.messages + 1
      | Ingest.Internal _ -> t.internal <- t.internal + 1)
    events;
  t.batches <- t.batches + 1;
  if t.check then begin
    Array.iter (fun ev -> t.log <- ev :: t.log) events;
    Array.iter
      (function
        | Ingest.Stamped v -> t.stamped <- v :: t.stamped
        | Ingest.Deferred _ -> ())
      outcomes
  end

(* Replay the whole arrival log through the deterministic single-domain
   oracle and compare message stamps bit-for-bit. Internal-event stamps
   are functions of the surrounding message stamps, so message equality
   is the whole exactness claim. *)
let verify t =
  let oracle = Online.stamper t.decomposition in
  let stamped = ref (List.rev t.stamped) in
  let checked = ref 0 in
  let ok = ref true in
  List.iter
    (fun ev ->
      match ev with
      | Ingest.Internal _ -> ()
      | Ingest.Message { src; dst } -> (
          incr checked;
          let expect = oracle ~src ~dst in
          match !stamped with
          | got :: rest ->
              stamped := rest;
              if got <> expect then ok := false
          | [] -> ok := false))
    (List.rev t.log);
  if !stamped <> [] then ok := false;
  Protocol.Verified { ok = !ok; checked = !checked }

let handle t conn (req : Protocol.request) : Protocol.response =
  Tm.Counter.incr m_requests;
  match req with
  | Hello ->
      Welcome
        {
          processes = Engine.processes t.engine;
          dimension = Engine.dimension t.engine;
          shards = Engine.shards t.engine;
        }
  | Observe { seq; events } ->
      if seq < 0 then begin
        Tm.Counter.incr m_errors;
        Error_r "negative sequence number"
      end
      else if seq <= conn.last_seq then
        if seq = conn.last_seq then begin
          (* At-least-once delivery: a dup or retransmission is answered
             from the cache, never stamped twice. *)
          Tm.Counter.incr m_dups;
          Option.value conn.cached ~default:(Protocol.Error_r "no cached reply")
        end
        else begin
          Tm.Counter.incr m_errors;
          Error_r (Printf.sprintf "stale sequence %d (last was %d)" seq
                     conn.last_seq)
        end
      else if seq > conn.last_seq + 1 then begin
        Tm.Counter.incr m_errors;
        Error_r
          (Printf.sprintf "sequence gap: got %d, expected %d" seq
             (conn.last_seq + 1))
      end
      else begin
        match Engine.observe_batch t.engine events with
        | outcomes ->
            record t events outcomes;
            let resp = Protocol.Outcomes outcomes in
            conn.last_seq <- seq;
            conn.cached <- Some resp;
            resp
        | exception Invalid_argument e ->
            (* Validation rejected the batch before any state change; the
               sequence is not consumed, so a corrected retry may reuse
               it. *)
            Tm.Counter.incr m_errors;
            Error_r e
      end
  | Drain -> Resolved (Engine.drain t.engine)
  | Finish -> Resolved (Engine.finish t.engine)
  | Verify ->
      if not t.check then begin
        Tm.Counter.incr m_errors;
        Error_r "verification disabled (start the server with --check)"
      end
      else verify t
  | Stats ->
      Stats_r
        {
          clients = clients t;
          batches = t.batches;
          messages = t.messages;
          internal = t.internal;
        }
  | Shutdown -> Bye

let handle_raw t conn raw =
  let reply resp = Wire.frame (Protocol.encode_response resp) in
  match Wire.unframe raw with
  | Error e ->
      Tm.Counter.incr m_errors;
      reply (Error_r ("bad frame: " ^ e))
  | Ok body -> (
      match Protocol.decode_request body with
      | Error e ->
          Tm.Counter.incr m_errors;
          reply (Error_r ("bad request: " ^ e))
      | Ok req -> reply (handle t conn req))
