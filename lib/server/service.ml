module Decomposition = Synts_graph.Decomposition
module Online = Synts_core.Online
module Wire = Synts_clock.Wire
module Ingest = Synts_ingest.Ingest
module Tm = Synts_telemetry.Telemetry

let m_requests =
  Tm.Counter.v ~help:"Requests handled by the serve service" "server.requests"

let m_errors =
  Tm.Counter.v ~help:"Requests answered with an error" "server.errors"

let m_dups =
  Tm.Counter.v ~help:"Duplicate Observe requests answered from the reply cache"
    "server.duplicates"

type conn = {
  id : int;
  mutable last_seq : int;  (* -1 until the first Observe *)
  mutable cached : Protocol.response option;
      (* reply to [last_seq], replayed on duplicate delivery *)
}

(* The stamping backend behind the protocol: the sharded Fig. 5 engine,
   or the streaming offline pipeline. Both are driven through their
   packed {!Ingest.sink}; only shard count, shutdown and the verify
   oracle are backend-specific. *)
type backend =
  | Sharded of Engine.t
  | Offline_stream of Synts_ingest.Offline_sink.t

type t = {
  backend : backend;
  sink : Ingest.sink;
  decomposition : Decomposition.t;
  check : bool;
  mutable log : Ingest.event list;  (* reversed arrival order; check mode *)
  mutable stamped : Synts_clock.Vector.t list;  (* reversed; check mode *)
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable batches : int;
  mutable messages : int;
  mutable internal : int;
}

let create ?shards ?(check = false) ?(offline = false) ?window d =
  let backend =
    if offline then
      Offline_stream
        (Synts_ingest.Offline_sink.create ?window
           ~n:(Decomposition.graph_vertices d) ())
    else Sharded (Engine.create ?shards d)
  in
  let sink =
    match backend with
    | Sharded e -> Engine.ingest e
    | Offline_stream s -> Synts_ingest.Offline_sink.ingest s
  in
  {
    backend;
    sink;
    decomposition = d;
    check;
    log = [];
    stamped = [];
    conns = Hashtbl.create 8;
    next_conn = 0;
    batches = 0;
    messages = 0;
    internal = 0;
  }

let attach t =
  let conn = { id = t.next_conn; last_seq = -1; cached = None } in
  t.next_conn <- t.next_conn + 1;
  Hashtbl.replace t.conns conn.id conn;
  conn

let detach t conn = Hashtbl.remove t.conns conn.id
let clients t = Hashtbl.length t.conns
let shards t =
  match t.backend with Sharded e -> Engine.shards e | Offline_stream _ -> 1

let stop t =
  match t.backend with Sharded e -> Engine.stop e | Offline_stream _ -> ()

let record t events outcomes =
  Array.iter
    (function
      | Ingest.Message _ -> t.messages <- t.messages + 1
      | Ingest.Internal _ -> t.internal <- t.internal + 1)
    events;
  t.batches <- t.batches + 1;
  if t.check then begin
    Array.iter (fun ev -> t.log <- ev :: t.log) events;
    Array.iter
      (function
        | Ingest.Stamped v -> t.stamped <- v :: t.stamped
        | Ingest.Deferred _ -> ())
      outcomes
  end

(* Sharded mode: replay the whole arrival log through the deterministic
   single-domain oracle and compare message stamps bit-for-bit.
   Internal-event stamps are functions of the surrounding message
   stamps, so message equality is the whole exactness claim. *)
let verify_sharded t =
  let oracle = Online.stamper t.decomposition in
  let stamped = ref (List.rev t.stamped) in
  let checked = ref 0 in
  let ok = ref true in
  List.iter
    (fun ev ->
      match ev with
      | Ingest.Internal _ -> ()
      | Ingest.Message { src; dst } -> (
          incr checked;
          let expect = oracle ~src ~dst in
          match !stamped with
          | got :: rest ->
              stamped := rest;
              if got <> expect then ok := false
          | [] -> ok := false))
    (List.rev t.log);
  if !stamped <> [] then ok := false;
  Protocol.Verified { ok = !ok; checked = !checked }

(* Offline-stream mode: the streamed stamps are not bit-identical to any
   single oracle — the claim is order-equivalence. Rebuild the message
   trace from the arrival log, batch-timestamp it with the Figure 9
   pipeline, and require the same precedes/concurrent verdict on every
   message pair. *)
let verify_offline t =
  let module Offline = Synts_core.Offline in
  let steps =
    List.rev
      (List.filter_map
         (function
           | Ingest.Message { src; dst } ->
               Some (Synts_sync.Trace.Send (src, dst))
           | Ingest.Internal _ -> None)
         t.log)
  in
  let streamed = Array.of_list (List.rev t.stamped) in
  let checked = ref 0 in
  let ok = ref (List.length steps = Array.length streamed) in
  if !ok && steps <> [] then begin
    let trace =
      Synts_sync.Trace.of_steps_exn ~n:(Ingest.processes t.sink) steps
    in
    let batch = Offline.timestamp_trace trace in
    let m = Array.length batch in
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        incr checked;
        if
          Offline.precedes streamed.(i) streamed.(j)
          <> Offline.precedes batch.(i) batch.(j)
          || Offline.precedes streamed.(j) streamed.(i)
             <> Offline.precedes batch.(j) batch.(i)
        then ok := false
      done
    done
  end;
  Protocol.Verified { ok = !ok; checked = !checked }

let verify t =
  match t.backend with
  | Sharded _ -> verify_sharded t
  | Offline_stream _ -> verify_offline t

let handle t conn (req : Protocol.request) : Protocol.response =
  Tm.Counter.incr m_requests;
  match req with
  | Hello ->
      Welcome
        {
          processes = Ingest.processes t.sink;
          dimension = Ingest.dimension t.sink;
          shards = shards t;
        }
  | Observe { seq; events } ->
      if seq < 0 then begin
        Tm.Counter.incr m_errors;
        Error_r "negative sequence number"
      end
      else if seq <= conn.last_seq then
        if seq = conn.last_seq then begin
          (* At-least-once delivery: a dup or retransmission is answered
             from the cache, never stamped twice. *)
          Tm.Counter.incr m_dups;
          Option.value conn.cached ~default:(Protocol.Error_r "no cached reply")
        end
        else begin
          Tm.Counter.incr m_errors;
          Error_r (Printf.sprintf "stale sequence %d (last was %d)" seq
                     conn.last_seq)
        end
      else if seq > conn.last_seq + 1 then begin
        Tm.Counter.incr m_errors;
        Error_r
          (Printf.sprintf "sequence gap: got %d, expected %d" seq
             (conn.last_seq + 1))
      end
      else begin
        match Ingest.observe_batch t.sink events with
        | outcomes ->
            record t events outcomes;
            let resp = Protocol.Outcomes outcomes in
            conn.last_seq <- seq;
            conn.cached <- Some resp;
            resp
        | exception Invalid_argument e ->
            (* Validation rejected the batch before any state change; the
               sequence is not consumed, so a corrected retry may reuse
               it. *)
            Tm.Counter.incr m_errors;
            Error_r e
      end
  | Drain -> Resolved (Ingest.drain t.sink)
  | Finish -> Resolved (Ingest.finish t.sink)
  | Verify ->
      if not t.check then begin
        Tm.Counter.incr m_errors;
        Error_r "verification disabled (start the server with --check)"
      end
      else verify t
  | Stats ->
      Stats_r
        {
          clients = clients t;
          batches = t.batches;
          messages = t.messages;
          internal = t.internal;
        }
  | Shutdown -> Bye

let handle_raw t conn raw =
  let reply resp = Wire.frame (Protocol.encode_response resp) in
  match Wire.unframe raw with
  | Error e ->
      Tm.Counter.incr m_errors;
      reply (Error_r ("bad frame: " ^ e))
  | Ok body -> (
      match Protocol.decode_request body with
      | Error e ->
          Tm.Counter.incr m_errors;
          reply (Error_r ("bad request: " ^ e))
      | Ok req -> reply (handle t conn req))
