let max_frame = 16 * 1024 * 1024

let put_len b off len =
  Bytes.set b off (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (len land 0xff))

let get_len b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let send fd s =
  let len = String.length s in
  if len > max_frame then failwith "frame too large";
  let b = Bytes.create (4 + len) in
  put_len b 0 len;
  Bytes.blit_string s 0 b 4 len;
  write_all fd b

(* Read exactly [len] bytes; [`Eof] only when the stream closes cleanly
   before the first byte. *)
let read_exact fd len ~allow_eof =
  let b = Bytes.create len in
  let off = ref 0 in
  let eof = ref false in
  while !off < len && not !eof do
    let k = Unix.read fd b !off (len - !off) in
    if k = 0 then
      if !off = 0 && allow_eof then eof := true
      else failwith "connection closed mid-frame"
    else off := !off + k
  done;
  if !eof then `Eof else `Bytes b

let recv fd =
  match read_exact fd 4 ~allow_eof:true with
  | `Eof -> `Eof
  | `Bytes hdr -> (
      let len = get_len hdr 0 in
      if len > max_frame then failwith "frame too large";
      match read_exact fd len ~allow_eof:false with
      | `Eof -> assert false
      | `Bytes body -> `Frame (Bytes.to_string body))

type buffer = Buffer.t

let buffer () = Buffer.create 4096
let feed buf b len = Buffer.add_subbytes buf b 0 len

let next buf =
  let have = Buffer.length buf in
  if have < 4 then None
  else begin
    let len = get_len (Buffer.to_bytes buf) 0 in
    if len > max_frame then failwith "frame too large";
    if have < 4 + len then None
    else begin
      let all = Buffer.contents buf in
      let frame = String.sub all 4 len in
      Buffer.clear buf;
      Buffer.add_substring buf all (4 + len) (have - 4 - len);
      Some frame
    end
  end
