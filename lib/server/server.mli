(** The [synts serve] daemon: a select loop over Unix or TCP sockets.

    One single-threaded loop owns the listening socket and every client
    connection; stamping parallelism lives below it, in the engine's
    worker domains. Clients speak the {!Frame} transport carrying
    {!Protocol} messages; all protocol logic is in {!Service}.

    A {!Protocol.Shutdown} request from any client answers [Bye],
    closes every connection, stops the engine and returns. *)

type address = Unix_socket of string | Tcp of string * int

val pp_address : Format.formatter -> address -> unit

val address_of_string : string -> (address, string) result
(** ["host:port"] is TCP; anything else is a Unix socket path. *)

val serve :
  ?shards:int ->
  ?check:bool ->
  ?offline:bool ->
  ?window:int ->
  ?admin:address ->
  address ->
  Synts_graph.Decomposition.t ->
  unit
(** Bind, listen and serve until a [Shutdown] request. Raises
    [Unix.Unix_error] when the address cannot be bound. A pre-existing
    Unix socket path is unlinked first and removed again on exit.
    [offline]/[window] select the streaming-offline backend — see
    {!Service.create}. [admin] additionally listens on a second address
    speaking the {!Synts_obs.Admin} frame family
    ([health]/[metrics]/[stats]/[tracedump], answered by
    {!Admin_service} on the same loop, between data-plane requests). *)

type handle
(** A daemon running in its own domain (in-process [synts serve] — used
    by [synts load --spawn] and the smoke tests). *)

val spawn :
  ?shards:int ->
  ?check:bool ->
  ?offline:bool ->
  ?window:int ->
  ?admin:address ->
  address ->
  Synts_graph.Decomposition.t ->
  handle
(** Bind in the calling domain — the address is connectable as soon as
    this returns — then serve from a fresh domain. *)

val join : handle -> unit
(** Wait for the daemon to exit (i.e. for a [Shutdown] request). *)
