(** Discrete-event asynchronous network simulator.

    The substrate under the rendezvous protocol: point-to-point packets
    with pseudo-random delivery delays (deterministic from the seed),
    optionally FIFO per directed channel. Protocols are callback-driven:
    {!run} drains the event queue, invoking the handler for each delivery;
    the handler may {!send} further packets.

    A {!Synts_fault.Injector.t} can be attached at creation: the network
    then additionally drops packets crossing a partition window,
    duplicates or corrupts packets, and stretches transit delays, all
    from the injector's own random stream — a fault plan never perturbs
    the delays or losses a given seed produces without one. *)

type 'p t

val create :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?fifo:bool ->
  ?loss:float ->
  ?faults:Synts_fault.Injector.t ->
  ?corrupt:('p -> 'p) ->
  n:int ->
  unit ->
  'p t
(** [n] processes. Delays are uniform in [\[min_delay, max_delay\]]
    (defaults 1.0 and 10.0); [fifo] (default true) forces per-channel
    in-order delivery; [loss] (default 0) drops each packet independently
    with that probability — [loss = 1.0] is allowed and drops everything
    (timers never drop). [faults] enables plan-driven partition drops,
    duplication, delay spikes and — when [corrupt] supplies a payload
    mutator — bit-flip corruption. *)

val n : 'p t -> int

val send : 'p t -> src:int -> dst:int -> 'p -> unit
(** Schedule a packet delivery. Raises [Invalid_argument] on bad
    endpoints (self-sends included — the network is for remote pairs). *)

val now : 'p t -> float
(** Current simulation time (the delivery time of the packet being
    handled, or 0 before the first). *)

val packets : 'p t -> int
(** Packets sent so far (lost ones included — they consumed bandwidth). *)

val lost : 'p t -> int
(** Packets dropped by the network (random loss and partition windows). *)

val duplicated : 'p t -> int
(** Packets delivered twice by fault injection. *)

val corrupted : 'p t -> int
(** Packets whose payload was mutated by fault injection. *)

val timer : 'p t -> delay:float -> proc:int -> 'p -> unit
(** Schedule a local timer: after exactly [delay], the handler fires with
    [src = dst = proc] and the payload. Timers are reliable, bypass FIFO
    ordering, and are immune to fault injection. *)

val run : 'p t -> on_deliver:(src:int -> dst:int -> 'p -> unit) -> float
(** Drain the queue; returns the makespan (time of the last delivery).
    The handler runs sequentially — one delivery at a time — so protocol
    state needs no synchronization. *)
