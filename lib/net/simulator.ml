module Rng = Synts_util.Rng
module Heap = Synts_util.Heap
module Injector = Synts_fault.Injector
module Tm = Synts_telemetry.Telemetry
module Tracer = Synts_trace.Tracer

let m_packets =
  Tm.Counter.v ~help:"Packets handed to the network (lost ones included)"
    "net.packets_sent"

let m_lost = Tm.Counter.v ~help:"Packets dropped by the network" "net.packets_lost"

let m_delivered =
  Tm.Counter.v ~help:"Packets delivered to their destination"
    "net.packets_delivered"

let m_duplicated =
  Tm.Counter.v ~help:"Packets delivered twice by fault injection"
    "net.packets_duplicated"

let m_corrupted =
  Tm.Counter.v ~help:"Packets whose payload was bit-flipped by fault injection"
    "net.packets_corrupted"

let m_timers = Tm.Counter.v ~help:"Local timers scheduled" "net.timers_scheduled"

let m_latency =
  Tm.Histogram.v
    ~help:"Virtual-time delay between send and delivery of a packet"
    ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500. |]
    "net.delivery_latency"

type 'p pending = { src : int; dst : int; sent_at : float; payload : 'p }

type 'p t = {
  n : int;
  rng : Rng.t;
  min_delay : float;
  max_delay : float;
  fifo : bool;
  loss : float;
  faults : Injector.t option;
  corrupt : ('p -> 'p) option;
  queue : 'p pending Heap.t;
  last_delivery : float array array;  (* per (src, dst) for FIFO ordering *)
  mutable clock : float;
  mutable packets : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable corrupted : int;
}

let create ?(seed = 0) ?(min_delay = 1.0) ?(max_delay = 10.0) ?(fifo = true)
    ?(loss = 0.0) ?faults ?corrupt ~n () =
  if n < 1 then invalid_arg "Simulator.create: need n >= 1";
  if min_delay < 0.0 || max_delay < min_delay then
    invalid_arg "Simulator.create: bad delay range";
  if loss < 0.0 || loss > 1.0 then
    invalid_arg "Simulator.create: loss must be in [0, 1]";
  {
    n;
    rng = Rng.create seed;
    min_delay;
    max_delay;
    fifo;
    loss;
    faults;
    corrupt;
    queue = Heap.create ();
    last_delivery = Array.make_matrix n n 0.0;
    clock = 0.0;
    packets = 0;
    lost = 0;
    duplicated = 0;
    corrupted = 0;
  }

let n t = t.n
let now t = t.clock
let packets t = t.packets
let lost t = t.lost
let duplicated t = t.duplicated
let corrupted t = t.corrupted

let drop t ~src ~dst reason =
  t.lost <- t.lost + 1;
  Tm.Counter.incr m_lost;
  if Tracer.enabled () then
    Tracer.instant ~cat:"net" ~pid:src ~tick:t.clock ~a:src ~b:dst reason

(* Draw a transit delay and enqueue one delivery of [payload]. The delay
   is FIFO-adjusted per directed channel, so duplicates and spiked
   packets still respect in-order delivery when [fifo] is on. *)
let enqueue t ~src ~dst ~factor payload =
  let delay =
    t.min_delay +. (Rng.float t.rng *. (t.max_delay -. t.min_delay))
  in
  let arrival = t.clock +. (delay *. factor) in
  let arrival =
    if t.fifo then begin
      let at = Float.max arrival (t.last_delivery.(src).(dst) +. 1e-9) in
      t.last_delivery.(src).(dst) <- at;
      at
    end
    else arrival
  in
  Heap.push t.queue ~priority:arrival { src; dst; sent_at = t.clock; payload }

let send t ~src ~dst payload =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src = dst then
    invalid_arg "Simulator.send: bad endpoints";
  t.packets <- t.packets + 1;
  Tm.Counter.incr m_packets;
  if Tracer.enabled () then
    Tracer.instant ~cat:"net" ~pid:src ~tick:t.clock ~a:src ~b:dst "send";
  (* Partition windows are deterministic (no random draw), so checking
     them first keeps fault-free runs byte-identical to the seed. *)
  let partitioned =
    match t.faults with
    | Some inj -> Injector.blocks inj ~now:t.clock ~src ~dst
    | None -> false
  in
  if partitioned then drop t ~src ~dst "partition"
  else if t.loss > 0.0 && Rng.chance t.rng t.loss then drop t ~src ~dst "drop"
  else begin
    let payload =
      match (t.faults, t.corrupt) with
      | Some inj, Some flip when Injector.roll_corrupt inj ->
          t.corrupted <- t.corrupted + 1;
          Tm.Counter.incr m_corrupted;
          if Tracer.enabled () then
            Tracer.instant ~cat:"fault" ~pid:src ~tick:t.clock ~a:src ~b:dst
              "corrupt";
          flip payload
      | _ -> payload
    in
    let factor =
      match t.faults with Some inj -> Injector.delay_factor inj | None -> 1.0
    in
    enqueue t ~src ~dst ~factor payload;
    match t.faults with
    | Some inj when Injector.roll_duplicate inj ->
        t.duplicated <- t.duplicated + 1;
        Tm.Counter.incr m_duplicated;
        if Tracer.enabled () then
          Tracer.instant ~cat:"fault" ~pid:src ~tick:t.clock ~a:src ~b:dst
            "duplicate";
        enqueue t ~src ~dst ~factor:1.0 payload
    | _ -> ()
  end

let timer t ~delay ~proc payload =
  if proc < 0 || proc >= t.n then invalid_arg "Simulator.timer: bad process";
  if delay < 0.0 then invalid_arg "Simulator.timer: negative delay";
  Tm.Counter.incr m_timers;
  if Tracer.enabled () then
    Tracer.instant ~cat:"net" ~pid:proc ~tick:t.clock "timer";
  Heap.push t.queue ~priority:(t.clock +. delay)
    { src = proc; dst = proc; sent_at = t.clock; payload }

let run t ~on_deliver =
  let continue = ref true in
  while !continue do
    match Heap.pop t.queue with
    | None -> continue := false
    | Some (at, { src; dst; sent_at; payload }) ->
        t.clock <- at;
        (* Timers (src = dst) are local alarms, not network traffic. *)
        if src <> dst then begin
          Tm.Counter.incr m_delivered;
          Tm.Histogram.observe m_latency (at -. sent_at);
          (* The transit span lives on the receiver's track: it ends at
             the delivery it explains. *)
          if Tracer.enabled () then
            Tracer.complete ~cat:"net" ~pid:dst ~tick:sent_at
              ~dur:(at -. sent_at) ~a:src ~b:dst "transit"
        end;
        on_deliver ~src ~dst payload
  done;
  t.clock
