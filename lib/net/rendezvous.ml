module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Wire = Synts_clock.Wire
module Decomposition = Synts_graph.Decomposition
module Edge_clock = Synts_core.Edge_clock
module Plan = Synts_fault.Plan
module Injector = Synts_fault.Injector
module Tm = Synts_telemetry.Telemetry
module Tracer = Synts_trace.Tracer

let m_messages =
  Tm.Counter.v ~help:"Rendezvous completed (REQs consumed)"
    "net.rendezvous.messages"

let m_retransmissions =
  Tm.Counter.v ~help:"REQ retransmissions after a timeout"
    "net.rendezvous.retransmissions"

let m_dup_requests =
  Tm.Counter.v ~help:"Duplicate REQs answered from the dedup table"
    "net.rendezvous.dup_requests"

let m_gave_up =
  Tm.Counter.v ~help:"Senders that exhausted max_retransmits and aborted"
    "net.rendezvous.gave_up"

let m_rejected =
  Tm.Counter.v ~help:"Packets rejected by the receiver (checksum or dimension)"
    "net.rendezvous.rejected_packets"

let m_crashes =
  Tm.Counter.v ~help:"Process crash events injected" "proc.crashes"

let m_recoveries =
  Tm.Counter.v ~help:"Process recoveries from a checkpoint" "proc.recoveries"

let m_piggyback =
  Tm.Counter.v
    ~help:"Bytes of timestamp vectors piggybacked on REQ and ACK packets"
    "net.rendezvous.piggyback_bytes"

let m_msg_bytes =
  Tm.Histogram.v
    ~help:"Piggyback bytes per completed message (REQ vector + ACK vector)"
    ~buckets:[| 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]
    "net.rendezvous.piggyback_bytes_per_message"

let count_piggyback = function
  | Some v when Tm.enabled () ->
      let b = Wire.encoded_bytes v in
      Tm.Counter.add m_piggyback b;
      b
  | _ -> 0

(* Vectors travel as decoded values on the fast path; under fault
   injection they travel wire-encoded (optionally checksum-framed) so
   bit-flip corruption acts on real bytes and is caught on receipt. *)
type body = Plain of Vector.t option | Wired of string

(* Sequence numbers make REQ/ACK idempotent under loss and
   retransmission: seq is unique per sender, the receiver remembers what
   it already consumed and replays the stored ACK for duplicates. *)
type packet =
  | Req of { seq : int; body : body }
  | Ack of { seq : int; body : body }
  | Timeout of { dst : int; seq : int; attempts : int; backoff : float }
  | Crash_evt
  | Recover_evt

type status =
  | Idle
  | Awaiting_ack of { dst : int; seq : int; vector : Vector.t option }
  | Awaiting_req of int option  (* receive filter *)
  | Finished
  | Gave_up of int  (* the peer the aborted send was addressed to *)

type process = {
  pid : int;
  mutable script : Script.t;
  mutable status : status;
  mutable inbox : (int * int * Vector.t option) list;
      (* queued REQs: (src, seq, vector), arrival order, deduplicated *)
  mutable next_seq : int;
  completed : (int * int, Vector.t option) Hashtbl.t;
      (* (src, seq) -> stored ACK payload, for duplicate REQs *)
  clock : Edge_clock.t option;
  mutable alive : bool;
  mutable recovered : bool;
  mutable ckpt : Edge_clock.checkpoint option;
      (* durable snapshot of the Figure 5 vector, refreshed after every
         clock update while fault injection is on *)
}

type outcome = {
  trace : Trace.t;
  timestamps : Vector.t array option;
  deadlocked : int list;
  gave_up : int list;
  crashed : int list;
  recovered : int list;
  packets : int;
  lost : int;
  duplicated : int;
  corrupted : int;
  makespan : float;
}

let filter_accepts filter src =
  match filter with None -> true | Some p -> p = src

let backoff_cap = 64.0

let run ?(seed = 0) ?min_delay ?max_delay ?fifo ?(loss = 0.0)
    ?(retransmit = 40.0) ?(max_retransmits = 60) ?faults ?(checksum = true)
    ?decomposition ?sink scripts =
  let n = Array.length scripts in
  if n < 1 then invalid_arg "Rendezvous.run: need at least one process";
  (match faults with
  | Some inj -> (
      match Plan.validate ~n (Injector.plan inj) with
      | Ok () -> ()
      | Error e -> invalid_arg ("Rendezvous.run: " ^ e))
  | None -> ());
  (* Timestamps only cross the (simulated) wire in encoded form when
     faults are in play: corruption needs bytes to flip. *)
  let wired = faults <> None && decomposition <> None in
  let encode_vec =
    if checksum then fun v -> Wire.encode_framed v else Wire.encode
  in
  let decode_vec = if checksum then Wire.decode_framed else Wire.decode in
  let make_body v =
    match v with Some vec when wired -> Wired (encode_vec vec) | v -> Plain v
  in
  let dim = Option.map Decomposition.size decomposition in
  let decode_body = function
    | Plain v -> Ok v
    | Wired s -> (
        match decode_vec s with
        | Error _ as e -> e
        | Ok v -> (
            match dim with
            | Some d when Vector.size v <> d -> Error "dimension mismatch"
            | _ -> Ok (Some v)))
  in
  let corrupt_packet =
    match faults with
    | Some inj when wired ->
        Some
          (function
          | Req { seq; body = Wired s } ->
              Req { seq; body = Wired (Injector.flip_bit inj s) }
          | Ack { seq; body = Wired s } ->
              Ack { seq; body = Wired (Injector.flip_bit inj s) }
          | other -> other)
    | _ -> None
  in
  let net =
    Simulator.create ~seed ?min_delay ?max_delay ?fifo ~loss ?faults
      ?corrupt:corrupt_packet ~n ()
  in
  (* Retransmission timers are pure overhead on a reliable network; arm
     them whenever packets can fail to complete a rendezvous. *)
  let unreliable = loss > 0.0 || faults <> None in
  let procs =
    Array.init n (fun pid ->
        let clock =
          Option.map (fun d -> Edge_clock.create d ~pid) decomposition
        in
        {
          pid;
          script = scripts.(pid);
          status = Idle;
          inbox = [];
          next_seq = 0;
          completed = Hashtbl.create 16;
          clock;
          alive = true;
          recovered = false;
          ckpt =
            (if faults <> None then Option.map Edge_clock.checkpoint clock
             else None);
        })
  in
  let save_ckpt p =
    if faults <> None then
      match p.clock with
      | Some c -> p.ckpt <- Some (Edge_clock.checkpoint c)
      | None -> ()
  in
  let reject ~src p =
    Tm.Counter.incr m_rejected;
    if Tracer.enabled () then
      Tracer.instant ~cat:"fault" ~pid:p.pid ~tick:(Simulator.now net) ~a:src
        ~b:p.pid "reject"
  in
  let steps = ref [] and stamps = ref [] in
  let msg_count = ref 0 in
  (* Receiver half of a rendezvous: record the message, update the clock,
     store and send the ACK. *)
  let consume_req receiver ~src ~seq payload =
    steps := Trace.Send (src, receiver.pid) :: !steps;
    Option.iter
      (fun s ->
        ignore
          (Synts_ingest.Ingest.(observe s (Message { src; dst = receiver.pid }))))
      sink;
    Tm.Counter.incr m_messages;
    let ack_payload, timestamp =
      match (receiver.clock, payload) with
      | Some clock, Some v ->
          let `Ack ack, timestamp = Edge_clock.receive clock ~src v in
          stamps := timestamp :: !stamps;
          (Some ack, Some timestamp)
      | None, _ -> (None, None)
      | Some _, None ->
          invalid_arg "Rendezvous: REQ without a vector while timestamping"
    in
    save_ckpt receiver;
    (* The REQ's consumption is the rendezvous instant; its id follows
       trace order, so flow edges line up with the oracle's message ids. *)
    let id = !msg_count in
    incr msg_count;
    if Tracer.enabled () then
      Tracer.message ~cat:"net" ~src ~dst:receiver.pid
        ~tick:(Simulator.now net) ~id
        ~cells:(match timestamp with Some v -> Array.length v | None -> 0)
        ~stamp:(Option.value ~default:[||] timestamp)
        ();
    Hashtbl.replace receiver.completed (src, seq) ack_payload;
    if Tm.enabled () then begin
      let req_bytes =
        match payload with Some v -> Wire.encoded_bytes v | None -> 0
      in
      let ack_bytes = count_piggyback ack_payload in
      if req_bytes + ack_bytes > 0 then
        Tm.Histogram.observe m_msg_bytes (float_of_int (req_bytes + ack_bytes))
    end;
    Simulator.send net ~src:receiver.pid ~dst:src
      (Ack { seq; body = make_body ack_payload })
  in
  let send_req p ~dst ~seq vector =
    ignore (count_piggyback vector);
    Simulator.send net ~src:p.pid ~dst (Req { seq; body = make_body vector });
    if unreliable then
      Simulator.timer net ~delay:retransmit ~proc:p.pid
        (Timeout { dst; seq; attempts = 1; backoff = retransmit *. 2.0 })
  in
  let rec advance p =
    match p.script with
    | [] -> p.status <- Finished
    | Script.Internal :: rest ->
        steps := Trace.Local p.pid :: !steps;
        Option.iter
          (fun s ->
            ignore
              (Synts_ingest.Ingest.(observe s (Internal { proc = p.pid }))))
          sink;
        p.script <- rest;
        advance p
    | Script.Send_to dst :: rest ->
        let vector =
          Option.map (fun clock -> Edge_clock.on_send clock ~dst) p.clock
        in
        let seq = p.next_seq in
        p.next_seq <- seq + 1;
        send_req p ~dst ~seq vector;
        p.script <- rest;
        p.status <- Awaiting_ack { dst; seq; vector }
    | (Script.Recv_from _ | Script.Recv_any) :: rest as all -> (
        let filter =
          match all with
          | Script.Recv_from src :: _ -> Some src
          | _ -> None
        in
        let rec split acc = function
          | [] -> None
          | ((src, _, _) as hd) :: tl when filter_accepts filter src ->
              Some (hd, List.rev_append acc tl)
          | hd :: tl -> split (hd :: acc) tl
        in
        match split [] p.inbox with
        | Some ((src, seq, payload), remaining) ->
            p.inbox <- remaining;
            p.script <- rest;
            consume_req p ~src ~seq payload;
            advance p
        | None -> p.status <- Awaiting_req filter)
  in
  (* Crash: the volatile state (inbox, live vector) is lost; the durable
     state (script position, sequence counter, dedup table, checkpoint)
     survives. Packets addressed to a crashed process evaporate. *)
  let crash p =
    if p.alive then begin
      p.alive <- false;
      p.inbox <- [];
      Option.iter Edge_clock.reset p.clock;
      (match faults with Some inj -> Injector.note_crash inj | None -> ());
      Tm.Counter.incr m_crashes;
      if Tracer.enabled () then
        Tracer.instant ~cat:"fault" ~pid:p.pid ~tick:(Simulator.now net)
          "crash"
    end
  in
  let recover p =
    if not p.alive then begin
      p.alive <- true;
      p.recovered <- true;
      (match (p.clock, p.ckpt) with
      | Some c, Some ck -> Edge_clock.restore c ck
      | _ -> ());
      (match faults with Some inj -> Injector.note_recovery inj | None -> ());
      Tm.Counter.incr m_recoveries;
      if Tracer.enabled () then
        Tracer.instant ~cat:"fault" ~pid:p.pid ~tick:(Simulator.now net)
          "recover";
      match p.status with
      | Awaiting_ack { dst; seq; vector } ->
          (* The ACK (or the REQ itself) may have evaporated while this
             process was down: retransmit with a fresh timeout budget.
             The receiver's dedup table absorbs the duplicate if the
             original rendezvous already happened. *)
          Tm.Counter.incr m_retransmissions;
          send_req p ~dst ~seq vector
      | Idle -> advance p
      | Awaiting_req _ | Finished | Gave_up _ -> ()
    end
  in
  let on_deliver ~src ~dst packet =
    let p = procs.(dst) in
    match packet with
    | Crash_evt -> crash p
    | Recover_evt -> recover p
    | _ when not p.alive -> ()
    | Req { seq; body } -> (
        match decode_body body with
        | Error _ -> reject ~src p
        | Ok vector -> (
            if Hashtbl.mem p.completed (src, seq) then begin
              (* Duplicate of an already-consumed REQ: the ACK was lost;
                 replay it. *)
              Tm.Counter.incr m_dup_requests;
              let stored = Hashtbl.find p.completed (src, seq) in
              ignore (count_piggyback stored);
              Simulator.send net ~src:p.pid ~dst:src
                (Ack { seq; body = make_body stored })
            end
            else
              match p.status with
              | Awaiting_req filter when filter_accepts filter src ->
                  p.script <- List.tl p.script;
                  p.status <- Idle;
                  consume_req p ~src ~seq vector;
                  advance p
              | Idle | Awaiting_ack _ | Awaiting_req _ | Finished | Gave_up _
                ->
                  if
                    not
                      (List.exists
                         (fun (s, q, _) -> s = src && q = seq)
                         p.inbox)
                  then p.inbox <- p.inbox @ [ (src, seq, vector) ]))
    | Ack { seq; body } -> (
        match p.status with
        | Awaiting_ack { dst = expected; seq = awaited; vector = _ }
          when expected = src && awaited = seq -> (
            match decode_body body with
            | Error _ ->
                (* Corrupted ACK: drop it; the retransmit timer replays
                   the REQ and the dedup table replays a clean ACK. *)
                reject ~src p
            | Ok vector ->
                (match (p.clock, vector) with
                | Some clock, Some ack ->
                    ignore (Edge_clock.on_ack clock ~dst:src ack)
                | None, _ -> ()
                | Some _, None ->
                    invalid_arg
                      "Rendezvous: ACK without a vector while timestamping");
                save_ckpt p;
                p.status <- Idle;
                advance p)
        | _ -> () (* stale duplicate ACK *))
    | Timeout { dst = to_; seq; attempts; backoff } -> (
        match p.status with
        | Awaiting_ack { dst = expected; seq = awaited; vector }
          when expected = to_ && awaited = seq ->
            if attempts < max_retransmits then begin
              Tm.Counter.incr m_retransmissions;
              if Tracer.enabled () then
                Tracer.instant ~cat:"net" ~pid:p.pid
                  ~tick:(Simulator.now net) ~a:p.pid ~b:to_ "retransmit";
              ignore (count_piggyback vector);
              Simulator.send net ~src:p.pid ~dst:to_
                (Req { seq; body = make_body vector });
              Simulator.timer net ~delay:backoff ~proc:p.pid
                (Timeout
                   {
                     dst = to_;
                     seq;
                     attempts = attempts + 1;
                     backoff = Float.min (backoff *. 2.0) (retransmit *. backoff_cap);
                   })
            end
            else begin
              (* Out of retransmits: abort the send and fail-stop the
                 script. Continuing past an unacknowledged synchronous
                 send would fork this process's causal history away from
                 what the receiver may later consume. *)
              Tm.Counter.incr m_gave_up;
              if Tracer.enabled () then
                Tracer.instant ~cat:"fault" ~pid:p.pid
                  ~tick:(Simulator.now net) ~a:p.pid ~b:to_ "gave-up";
              p.status <- Gave_up to_
            end
        | _ -> () (* completed meanwhile *))
  in
  (match faults with
  | Some inj ->
      List.iter
        (fun (proc, at, after) ->
          Simulator.timer net ~delay:at ~proc Crash_evt;
          match after with
          | Some d -> Simulator.timer net ~delay:(at +. d) ~proc Recover_evt
          | None -> ())
        (Injector.crashes inj)
  | None -> ());
  Array.iter advance procs;
  let makespan = Simulator.run net ~on_deliver in
  let collect pred = List.filter (fun pid -> pred procs.(pid)) (List.init n Fun.id) in
  let deadlocked =
    collect (fun p ->
        p.alive
        && (match p.status with Finished | Gave_up _ -> false | _ -> true))
  in
  let gave_up =
    collect (fun p -> match p.status with Gave_up _ -> true | _ -> false)
  in
  let crashed = collect (fun p -> not p.alive) in
  let recovered = collect (fun p -> p.recovered) in
  let trace = Trace.of_steps_exn ~n (List.rev !steps) in
  let timestamps =
    Option.map (fun _ -> Array.of_list (List.rev !stamps)) decomposition
  in
  {
    trace;
    timestamps;
    deadlocked;
    gave_up;
    crashed;
    recovered;
    packets = Simulator.packets net;
    lost = Simulator.lost net;
    duplicated = Simulator.duplicated net;
    corrupted = Simulator.corrupted net;
    makespan;
  }
