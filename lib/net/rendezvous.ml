module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Wire = Synts_clock.Wire
module Edge_clock = Synts_core.Edge_clock
module Tm = Synts_telemetry.Telemetry
module Tracer = Synts_trace.Tracer

let m_messages =
  Tm.Counter.v ~help:"Rendezvous completed (REQs consumed)"
    "net.rendezvous.messages"

let m_retransmissions =
  Tm.Counter.v ~help:"REQ retransmissions after a timeout"
    "net.rendezvous.retransmissions"

let m_dup_requests =
  Tm.Counter.v ~help:"Duplicate REQs answered from the dedup table"
    "net.rendezvous.dup_requests"

let m_piggyback =
  Tm.Counter.v
    ~help:"Bytes of timestamp vectors piggybacked on REQ and ACK packets"
    "net.rendezvous.piggyback_bytes"

let m_msg_bytes =
  Tm.Histogram.v
    ~help:"Piggyback bytes per completed message (REQ vector + ACK vector)"
    ~buckets:[| 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]
    "net.rendezvous.piggyback_bytes_per_message"

let count_piggyback = function
  | Some v when Tm.enabled () ->
      let b = Wire.encoded_bytes v in
      Tm.Counter.add m_piggyback b;
      b
  | _ -> 0

(* Sequence numbers make REQ/ACK idempotent under loss and
   retransmission: seq is unique per sender, the receiver remembers what
   it already consumed and replays the stored ACK for duplicates. *)
type packet =
  | Req of { seq : int; vector : Vector.t option }
  | Ack of { seq : int; vector : Vector.t option }
  | Timeout of { dst : int; seq : int; attempts : int }

type status =
  | Idle
  | Awaiting_ack of { dst : int; seq : int; vector : Vector.t option }
  | Awaiting_req of int option  (* receive filter *)
  | Finished

type process = {
  pid : int;
  mutable script : Script.t;
  mutable status : status;
  mutable inbox : (int * int * Vector.t option) list;
      (* queued REQs: (src, seq, vector), arrival order, deduplicated *)
  mutable next_seq : int;
  completed : (int * int, Vector.t option) Hashtbl.t;
      (* (src, seq) -> stored ACK payload, for duplicate REQs *)
  clock : Edge_clock.t option;
}

type outcome = {
  trace : Trace.t;
  timestamps : Vector.t array option;
  deadlocked : int list;
  packets : int;
  lost : int;
  makespan : float;
}

let filter_accepts filter src =
  match filter with None -> true | Some p -> p = src

let run ?(seed = 0) ?min_delay ?max_delay ?fifo ?(loss = 0.0)
    ?(retransmit = 40.0) ?(max_retransmits = 60) ?decomposition scripts =
  let n = Array.length scripts in
  if n < 1 then invalid_arg "Rendezvous.run: need at least one process";
  let net = Simulator.create ~seed ?min_delay ?max_delay ?fifo ~loss ~n () in
  let procs =
    Array.init n (fun pid ->
        {
          pid;
          script = scripts.(pid);
          status = Idle;
          inbox = [];
          next_seq = 0;
          completed = Hashtbl.create 16;
          clock =
            Option.map (fun d -> Edge_clock.create d ~pid) decomposition;
        })
  in
  let steps = ref [] and stamps = ref [] in
  let msg_count = ref 0 in
  (* Receiver half of a rendezvous: record the message, update the clock,
     store and send the ACK. *)
  let consume_req receiver ~src ~seq payload =
    steps := Trace.Send (src, receiver.pid) :: !steps;
    Tm.Counter.incr m_messages;
    let ack_payload, timestamp =
      match (receiver.clock, payload) with
      | Some clock, Some v ->
          let `Ack ack, timestamp = Edge_clock.receive clock ~src v in
          stamps := timestamp :: !stamps;
          (Some ack, Some timestamp)
      | None, _ -> (None, None)
      | Some _, None ->
          invalid_arg "Rendezvous: REQ without a vector while timestamping"
    in
    (* The REQ's consumption is the rendezvous instant; its id follows
       trace order, so flow edges line up with the oracle's message ids. *)
    let id = !msg_count in
    incr msg_count;
    if Tracer.enabled () then
      Tracer.message ~cat:"net" ~src ~dst:receiver.pid
        ~tick:(Simulator.now net) ~id
        ~cells:(match timestamp with Some v -> Array.length v | None -> 0)
        ~stamp:(Option.value ~default:[||] timestamp)
        ();
    Hashtbl.replace receiver.completed (src, seq) ack_payload;
    if Tm.enabled () then begin
      let req_bytes =
        match payload with Some v -> Wire.encoded_bytes v | None -> 0
      in
      let ack_bytes = count_piggyback ack_payload in
      if req_bytes + ack_bytes > 0 then
        Tm.Histogram.observe m_msg_bytes (float_of_int (req_bytes + ack_bytes))
    end;
    Simulator.send net ~src:receiver.pid ~dst:src (Ack { seq; vector = ack_payload })
  in
  let rec advance p =
    match p.script with
    | [] -> p.status <- Finished
    | Script.Internal :: rest ->
        steps := Trace.Local p.pid :: !steps;
        p.script <- rest;
        advance p
    | Script.Send_to dst :: rest ->
        let vector =
          Option.map (fun clock -> Edge_clock.on_send clock ~dst) p.clock
        in
        let seq = p.next_seq in
        p.next_seq <- seq + 1;
        ignore (count_piggyback vector);
        Simulator.send net ~src:p.pid ~dst (Req { seq; vector });
        if loss > 0.0 then
          Simulator.timer net ~delay:retransmit ~proc:p.pid
            (Timeout { dst; seq; attempts = 1 });
        p.script <- rest;
        p.status <- Awaiting_ack { dst; seq; vector }
    | (Script.Recv_from _ | Script.Recv_any) :: rest as all -> (
        let filter =
          match all with
          | Script.Recv_from src :: _ -> Some src
          | _ -> None
        in
        let rec split acc = function
          | [] -> None
          | ((src, _, _) as hd) :: tl when filter_accepts filter src ->
              Some (hd, List.rev_append acc tl)
          | hd :: tl -> split (hd :: acc) tl
        in
        match split [] p.inbox with
        | Some ((src, seq, payload), remaining) ->
            p.inbox <- remaining;
            p.script <- rest;
            consume_req p ~src ~seq payload;
            advance p
        | None -> p.status <- Awaiting_req filter)
  in
  let on_deliver ~src ~dst packet =
    let p = procs.(dst) in
    match packet with
    | Req { seq; vector } -> (
        if Hashtbl.mem p.completed (src, seq) then begin
          (* Duplicate of an already-consumed REQ: the ACK was lost;
             replay it. *)
          Tm.Counter.incr m_dup_requests;
          let stored = Hashtbl.find p.completed (src, seq) in
          ignore (count_piggyback stored);
          Simulator.send net ~src:p.pid ~dst:src (Ack { seq; vector = stored })
        end
        else
          match p.status with
          | Awaiting_req filter when filter_accepts filter src ->
              p.script <- List.tl p.script;
              p.status <- Idle;
              consume_req p ~src ~seq vector;
              advance p
          | Idle | Awaiting_ack _ | Awaiting_req _ | Finished ->
              if
                not
                  (List.exists
                     (fun (s, q, _) -> s = src && q = seq)
                     p.inbox)
              then p.inbox <- p.inbox @ [ (src, seq, vector) ])
    | Ack { seq; vector } -> (
        match p.status with
        | Awaiting_ack { dst = expected; seq = awaited; vector = _ }
          when expected = src && awaited = seq ->
            (match (p.clock, vector) with
            | Some clock, Some ack -> ignore (Edge_clock.on_ack clock ~dst:src ack)
            | None, _ -> ()
            | Some _, None ->
                invalid_arg "Rendezvous: ACK without a vector while timestamping");
            p.status <- Idle;
            advance p
        | _ -> () (* stale duplicate ACK *))
    | Timeout { dst = to_; seq; attempts } -> (
        match p.status with
        | Awaiting_ack { dst = expected; seq = awaited; vector }
          when expected = to_ && awaited = seq ->
            if attempts < max_retransmits then begin
              Tm.Counter.incr m_retransmissions;
              if Tracer.enabled () then
                Tracer.instant ~cat:"net" ~pid:p.pid
                  ~tick:(Simulator.now net) ~a:p.pid ~b:to_ "retransmit";
              ignore (count_piggyback vector);
              Simulator.send net ~src:p.pid ~dst:to_ (Req { seq; vector });
              Simulator.timer net ~delay:retransmit ~proc:p.pid
                (Timeout { dst = to_; seq; attempts = attempts + 1 })
            end
        | _ -> () (* completed meanwhile *))
  in
  Array.iter advance procs;
  let makespan = Simulator.run net ~on_deliver in
  let deadlocked =
    List.filter
      (fun pid -> procs.(pid).status <> Finished)
      (List.init n Fun.id)
  in
  let trace = Trace.of_steps_exn ~n (List.rev !steps) in
  let timestamps =
    Option.map (fun _ -> Array.of_list (List.rev !stamps)) decomposition
  in
  {
    trace;
    timestamps;
    deadlocked;
    packets = Simulator.packets net;
    lost = Simulator.lost net;
    makespan;
  }
