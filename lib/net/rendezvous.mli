(** Synchronous messaging over an asynchronous network — the protocol
    layer the paper presupposes.

    Synchronous sends are implemented the standard way (Murty & Garg,
    paper ref. [16]): the sender transmits a REQ packet and {e blocks};
    the receiver, once it reaches a matching receive, consumes the REQ and
    replies with an ACK, unblocking the sender. The paper's Figure 5
    piggybacks its vectors on exactly these two packets: the REQ carries
    the sender's vector, the ACK the receiver's pre-merge vector, and both
    sides then agree on the message's timestamp.

    Running a set of {!Script} processes yields the {e induced}
    synchronous computation: messages ordered by their rendezvous instants
    (the moment the receiver consumes the REQ). The sender is blocked
    around that instant, so per-process event orders are consistent and
    the induced computation is always synchronizable — property-tested.

    Deadlock note: scripts projected from a valid synchronous trace with
    [Recv_from] pairing never deadlock (the original linearization
    schedules them); with [Recv_any] matching is first-come-first-served
    and remains deadlock-free for projected scripts, but hand-written
    scripts can of course deadlock — the outcome reports who got stuck and
    the induced prefix is still a valid computation.

    {2 Fault injection}

    Passing [?faults] (a {!Synts_fault.Injector.t}) subjects the run to
    a declarative fault plan: crash-stop and crash-recover of processes,
    partition windows, packet duplication, bit-flip corruption and delay
    spikes. The protocol degrades gracefully rather than hanging or
    losing exactness:

    - Timestamps travel wire-encoded with a checksum frame; a corrupted
      packet is rejected on receipt and behaves like a loss —
      retransmission (with exponential backoff) and the dedup table
      recover the rendezvous.
    - A sender that exhausts [max_retransmits] {e aborts} the send and
      fail-stops its script; it is reported in [gave_up], never silently
      among the deadlocked.
    - A crash erases a process's volatile state (packet inbox, live
      vector); its durable state — script position, sequence counter,
      dedup table, and a checkpoint of the Figure 5 vector refreshed
      after every clock update — survives. On recovery the vector is
      restored and any in-flight send is retransmitted, so the recovered
      process resumes with {e exact} timestamps (property tested: every
      delivered message's vector equals the offline oracle's under any
      generated plan). *)

type outcome = {
  trace : Synts_sync.Trace.t;
      (** The induced synchronous computation (rendezvous order), including
          the prefix executed before any deadlock, crash or abort. *)
  timestamps : Synts_clock.Vector.t array option;
      (** Per message of [trace], when a decomposition was supplied. *)
  deadlocked : int list;
      (** Live processes whose script did not complete (excludes
          [gave_up] and [crashed]). *)
  gave_up : int list;
      (** Senders that exhausted [max_retransmits] and aborted. *)
  crashed : int list;  (** Processes down at the end of the run. *)
  recovered : int list;  (** Processes that crashed and came back. *)
  packets : int;  (** Packets transmitted (2 per message when lossless). *)
  lost : int;  (** Packets dropped (random loss + partition windows). *)
  duplicated : int;  (** Packets delivered twice by fault injection. *)
  corrupted : int;  (** Packets bit-flipped by fault injection. *)
  makespan : float;  (** Simulated completion time. *)
}

val run :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?fifo:bool ->
  ?loss:float ->
  ?retransmit:float ->
  ?max_retransmits:int ->
  ?faults:Synts_fault.Injector.t ->
  ?checksum:bool ->
  ?decomposition:Synts_graph.Decomposition.t ->
  ?sink:Synts_ingest.Ingest.sink ->
  Script.t array ->
  outcome
(** Execute the scripts (index = process id) over the simulated network.
    Deterministic from [seed] (and the injector's own seed when faults
    are supplied).

    [sink] shadows the run through the unified
    {!Synts_ingest.Ingest.S} interface: each rendezvous instant is
    forwarded as [Message {src; dst}] and each internal step as
    [Internal {proc}], in induced-computation order, so a session or the
    sharded [synts serve] engine can independently stamp the same
    computation the protocol layer executes.

    With [loss > 0] (default 0; [1.0] allowed — everything drops), each
    packet independently drops with that probability; senders then
    retransmit unacknowledged REQs, starting [retransmit] time units out
    (default 40) and doubling the interval on every attempt (capped),
    up to [max_retransmits] attempts (default 60) before giving up.
    Receivers deduplicate by per-sender sequence number, replaying the
    stored ACK for already-consumed requests — so each rendezvous still
    happens exactly once and timestamps stay exact (property tested).

    [faults] attaches a fault plan (validated against the process count
    — raises [Invalid_argument] on a bad plan); [checksum] (default
    true) frames wire-encoded vectors with a {!Synts_clock.Wire.checksum}
    so corrupted payloads are rejected instead of silently skewing
    timestamps — turning it off under a corrupting plan is how the
    degradation is demonstrated. *)
