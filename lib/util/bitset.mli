(** Fixed-capacity bitsets backed by [Bytes]-free int arrays.

    Used heavily for transitive closures (posets over thousands of messages)
    where word-parallel [union]/[subset] make the Warshall closure feasible,
    and as dense vertex/edge sets in graph algorithms. *)

type t
(** A set of integers in [\[0, capacity)]. Mutable. *)

val create : int -> t
(** [create n] is the empty set with capacity [n] ([n >= 0]). *)

val capacity : t -> int
(** Maximum element count the set can hold. *)

val mem : t -> int -> bool
(** Membership test; raises [Invalid_argument] when out of range. *)

val add : t -> int -> unit
(** Insert an element. *)

val remove : t -> int -> unit
(** Delete an element. *)

val cardinal : t -> int
(** Number of elements (popcount). *)

val is_empty : t -> bool

val copy : t -> t
(** Independent copy. *)

val clear : t -> unit
(** Remove all elements. *)

val fill : t -> unit
(** Add every element of [\[0, capacity)]. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src]. Capacities must match. *)

val inter_into : dst:t -> t -> unit
(** [inter_into ~dst src] sets [dst := dst ∩ src]. Capacities must match. *)

val diff_into : dst:t -> t -> unit
(** [diff_into ~dst src] sets [dst := dst \ src]. Capacities must match. *)

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val exists : (int -> bool) -> t -> bool
(** Short-circuiting search in increasing order: true as soon as [f]
    accepts an element. The augmenting-path searches of the incremental
    matching kernels use this as their adjacency scan. *)

val exists_diff : (int -> bool) -> t -> t -> bool
(** [exists_diff f a b] is {!exists} over [a \ b] without materialising
    the difference — visited bits are skipped at word granularity. [f]
    may add elements to [b] while the search runs (the membership is
    re-read after every call), which is how the streaming matching kernel
    marks nodes visited: each element of [a] is then presented at most
    once per search {e across all rows} sharing the same [b].
    Capacities must match. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over elements in increasing order. *)

val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n l] is the set with capacity [n] holding the elements of
    [l]. *)

val choose_opt : t -> int option
(** Smallest element, if any. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 7}]. *)
