type t = { words : int array; n : int; stride : int }

let bits_per_word = Sys.int_size

let create n =
  if n < 0 then invalid_arg "Bitmatrix.create: negative dimension";
  let stride = (n + bits_per_word - 1) / bits_per_word in
  { words = Array.make (max 1 (n * stride)) 0; n; stride }

let dim t = t.n

let check t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg "Bitmatrix: index out of range"

let get t i j =
  check t i j;
  t.words.((i * t.stride) + (j / bits_per_word))
  land (1 lsl (j mod bits_per_word))
  <> 0

let set t i j v =
  check t i j;
  let w = (i * t.stride) + (j / bits_per_word) in
  let bit = 1 lsl (j mod bits_per_word) in
  if v then t.words.(w) <- t.words.(w) lor bit
  else t.words.(w) <- t.words.(w) land lnot bit

let copy t = { t with words = Array.copy t.words }

(* Monomorphic word loop; the polymorphic [a.words = b.words] funnels
   every comparison through caml_compare. *)
let equal a b =
  if a.n <> b.n then invalid_arg "Bitmatrix.equal: dimension mismatch";
  let wa = a.words and wb = b.words in
  let k = ref 0 and len = Array.length wa in
  while !k < len && Array.unsafe_get wa !k = Array.unsafe_get wb !k do
    incr k
  done;
  !k = len

let or_row_into t ~dst ~src =
  if dst < 0 || dst >= t.n || src < 0 || src >= t.n then
    invalid_arg "Bitmatrix.or_row_into: row out of range";
  let d = dst * t.stride and s = src * t.stride in
  for w = 0 to t.stride - 1 do
    t.words.(d + w) <- t.words.(d + w) lor t.words.(s + w)
  done

let row_iter t i f =
  if i < 0 || i >= t.n then invalid_arg "Bitmatrix.row_iter: row out of range";
  let base = i * t.stride in
  for w = 0 to t.stride - 1 do
    let word = ref t.words.(base + w) in
    (* Shift the word down as bits are consumed: the loop ends at the
       highest set bit instead of always scanning all word positions. *)
    let j = ref (w * bits_per_word) in
    while !word <> 0 do
      if !word land 1 <> 0 then f !j;
      word := !word lsr 1;
      incr j
    done
  done

let row_find t i f =
  if i < 0 || i >= t.n then invalid_arg "Bitmatrix.row_find: row out of range";
  let base = i * t.stride in
  let found = ref false in
  let w = ref 0 in
  while (not !found) && !w < t.stride do
    let word = ref t.words.(base + !w) in
    let j = ref (!w * bits_per_word) in
    while (not !found) && !word <> 0 do
      if !word land 1 <> 0 && f !j then found := true
      else begin
        word := !word lsr 1;
        incr j
      end
    done;
    incr w
  done;
  !found

let transitive_closure t =
  for k = 0 to t.n - 1 do
    for i = 0 to t.n - 1 do
      if get t i k then or_row_into t ~dst:i ~src:k
    done
  done

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_acyclic t =
  (* Kahn's algorithm on the digraph of true cells. *)
  let indeg = Array.make t.n 0 in
  for i = 0 to t.n - 1 do
    row_iter t i (fun j -> indeg.(j) <- indeg.(j) + 1)
  done;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let removed = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr removed;
    row_iter t v (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
  done;
  !removed = t.n

let pp ppf t =
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      Format.pp_print_char ppf (if get t i j then '1' else '0')
    done;
    Format.pp_print_newline ppf ()
  done
