type t = { words : int array; n : int }

let bits_per_word = Sys.int_size (* 63 on 64-bit systems *)

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let copy t = { words = Array.copy t.words; n = t.n }
let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  clear t;
  for i = 0 to t.n - 1 do
    let w = i / bits_per_word in
    t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))
  done

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into ~dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into ~dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let diff_into ~dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
  done

let subset a b =
  same_capacity a b;
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok

let equal a b =
  same_capacity a b;
  let rec go w =
    w >= Array.length a.words || (a.words.(w) = b.words.(w) && go (w + 1))
  in
  go 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let exists f t =
  let found = ref false in
  let w = ref 0 in
  let nwords = Array.length t.words in
  while (not !found) && !w < nwords do
    let word = ref t.words.(!w) in
    while (not !found) && !word <> 0 do
      (* Isolate the lowest set bit, test it, then strip it. *)
      let b =
        let rec lowest i x = if x land 1 <> 0 then i else lowest (i + 1) (x lsr 1) in
        lowest 0 !word
      in
      if f ((!w * bits_per_word) + b) then found := true
      else word := !word land (!word - 1)
    done;
    incr w
  done;
  !found

let exists_diff f a b =
  same_capacity a b;
  let found = ref false in
  let w = ref 0 in
  let nwords = Array.length a.words in
  while (not !found) && !w < nwords do
    (* Re-mask after every call: [f] may add elements to [b] (e.g. a
       visited set growing during a recursive search), and those must not
       be presented again. *)
    let word = ref (a.words.(!w) land lnot b.words.(!w)) in
    while (not !found) && !word <> 0 do
      let b' =
        let rec lowest i x = if x land 1 <> 0 then i else lowest (i + 1) (x lsr 1) in
        lowest 0 !word
      in
      if f ((!w * bits_per_word) + b') then found := true
      else word := a.words.(!w) land lnot b.words.(!w) land (!word land (!word - 1))
    done;
    incr w
  done;
  !found

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let choose_opt t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements t)
