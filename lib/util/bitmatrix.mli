(** Square boolean matrices with word-parallel row operations.

    The poset library stores order relations as an [n × n] reachability
    matrix; Warshall's transitive closure then runs in O(n³ / word-size)
    thanks to [or_row_into]. *)

type t
(** An [n × n] boolean matrix, all-false initially. Mutable. *)

val create : int -> t
(** [create n] is the [n × n] zero matrix. *)

val dim : t -> int
(** The side length [n]. *)

val get : t -> int -> int -> bool
(** [get m i j] reads cell [(i, j)]. Raises [Invalid_argument] if out of
    range. *)

val set : t -> int -> int -> bool -> unit
(** [set m i j v] writes cell [(i, j)]. *)

val copy : t -> t
(** Deep copy. *)

val equal : t -> t -> bool
(** Structural equality; dimensions must match. *)

val or_row_into : t -> dst:int -> src:int -> unit
(** [or_row_into m ~dst ~src] sets row [dst] to the bitwise OR of rows [dst]
    and [src]. The workhorse of [transitive_closure]. *)

val row_iter : t -> int -> (int -> unit) -> unit
(** [row_iter m i f] calls [f j] for each true cell [(i, j)], increasing
    [j]. *)

val row_find : t -> int -> (int -> bool) -> bool
(** [row_find m i f] calls [f j] on the true cells [(i, j)] in increasing
    [j] and stops at the first [j] with [f j = true]; returns whether one
    was found. The early-exit counterpart of {!row_iter} (augmenting-path
    search in {!Synts_poset.Matching} is the intended caller). *)

val transitive_closure : t -> unit
(** In-place Warshall closure: afterwards [get m i j] is true iff [j] was
    reachable from [i] through true cells (not reflexive unless cycles make
    it so). *)

val count : t -> int
(** Number of true cells. *)

val is_acyclic : t -> bool
(** True iff the relation, viewed as a digraph, has no directed cycle.
    Leaves the matrix unmodified. *)

val pp : Format.formatter -> t -> unit
(** Grid of [0]/[1] rows, for debugging. *)
