module Script = Synts_net.Script
module Vector = Synts_clock.Vector
module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Membership = Synts_graph.Membership
module Trace = Synts_sync.Trace
module Explorer = Synts_explorer.Explorer

type mutation = Skip_increment | Stale_ack | Forget_checkpoint

let mutations =
  [
    ("skip-increment", Skip_increment);
    ("stale-ack", Stale_ack);
    ("forget-checkpoint", Forget_checkpoint);
  ]

let mutation_to_string m = fst (List.find (fun (_, x) -> x = m) mutations)

let mutation_of_string s =
  match List.assoc_opt s mutations with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown mutation %S (expected one of %s)" s
           (String.concat ", " (List.map fst mutations)))

type config = {
  procs : int;
  events : int;
  faults : int;
  mutation : mutation option;
  system : Script.t array option;
  churn : (int * string) list;
      (* (threshold, rendered membership delta): the delta is applied as
         soon as [threshold] messages have completed, in listed order
         for equal thresholds. *)
}

let default =
  {
    procs = 3;
    events = 6;
    faults = 0;
    mutation = None;
    system = None;
    churn = [];
  }

let scenario ~procs:n ~events =
  if n < 2 then invalid_arg "Protocol.scenario: need at least 2 processes";
  if events < 0 then invalid_arg "Protocol.scenario: negative event count";
  (* Round-robin senders over P0..P(n-2), each distributing its messages
     round-robin over the higher-numbered processes but emitting them in
     ascending destination order. Near destinations finish their inbound
     receives early and start their own sends while lower senders are
     still running, so several senders compete for the same wildcard
     receives (matching nondeterminism) and, for n >= 4, disjoint pairs
     rendezvous concurrently (DPOR independence). *)
  let sends = Array.make_matrix n n 0 in
  let count = Array.make n 0 in
  for e = 0 to events - 1 do
    let src = e mod (n - 1) in
    let k = count.(src) in
    count.(src) <- k + 1;
    let dst = src + 1 + (k mod (n - 1 - src)) in
    sends.(src).(dst) <- sends.(src).(dst) + 1
  done;
  let recvs = Array.make n 0 in
  Array.iteri
    (fun _ row -> Array.iteri (fun d c -> recvs.(d) <- recvs.(d) + c) row)
    sends;
  (* All receives before all sends, sends only upward: the lowest process
     with work remaining always has an enabled action, so the layering is
     deadlock-free under every schedule and matching. Each send is
     followed by an internal event — local work whose placement is the
     runtime's third source of schedule nondeterminism (and the only
     commutation that exists at n = 3). *)
  Array.init n (fun p ->
      List.init recvs.(p) (fun _ -> Script.Recv_any)
      @ List.concat
          (List.concat_map
             (fun d ->
               List.init sends.(p).(d) (fun _ ->
                   [ Script.Send_to d; Script.Internal ]))
             (List.init (n - 1 - p) (fun i -> p + 1 + i))))

(* -- config file codec ---------------------------------------------- *)

let header = "synts-model 1"

let to_string cfg =
  let b = Buffer.create 128 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "procs %d\n" cfg.procs);
  Buffer.add_string b (Printf.sprintf "events %d\n" cfg.events);
  Buffer.add_string b (Printf.sprintf "faults %d\n" cfg.faults);
  (match cfg.mutation with
  | Some m -> Buffer.add_string b ("mutate " ^ mutation_to_string m ^ "\n")
  | None -> ());
  List.iter
    (fun (k, spec) ->
      Buffer.add_string b (Printf.sprintf "churn @%d %s\n" k spec))
    cfg.churn;
  (match cfg.system with
  | Some scripts ->
      Buffer.add_string b (Script.system_to_string scripts);
      Buffer.add_char b '\n'
  | None -> ());
  Buffer.contents b

let of_string text =
  let lines = String.split_on_char '\n' text in
  let significant l =
    let l = String.trim l in
    l <> "" && l.[0] <> '#'
    && not (String.length l >= 2 && l.[0] = '/' && l.[1] = '/')
  in
  match List.filter significant lines with
  | [] -> Error (Printf.sprintf "empty input (expected %S header)" header)
  | first :: rest when String.trim first = header ->
      let cfg = ref default in
      let sys_lines = ref [] in
      let err = ref None in
      List.iter
        (fun line ->
          if !err = None then
            let line = String.trim line in
            if String.length line > 0 && line.[0] = 'P' then
              sys_lines := line :: !sys_lines
            else
              let fail msg = err := Some msg in
              match String.index_opt line ' ' with
              | None -> fail (Printf.sprintf "malformed line %S" line)
              | Some i -> (
                  let k = String.sub line 0 i in
                  let v =
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1))
                  in
                  let int_field set =
                    match int_of_string_opt v with
                    | Some x when x >= 0 -> set x
                    | _ ->
                        fail
                          (Printf.sprintf "%s wants a non-negative integer, \
                                           got %S" k v)
                  in
                  match k with
                  | "procs" -> int_field (fun x -> cfg := { !cfg with procs = x })
                  | "events" ->
                      int_field (fun x -> cfg := { !cfg with events = x })
                  | "faults" ->
                      int_field (fun x -> cfg := { !cfg with faults = x })
                  | "mutate" -> (
                      match mutation_of_string v with
                      | Ok m -> cfg := { !cfg with mutation = Some m }
                      | Error e -> fail e)
                  | "churn" -> (
                      let bad () =
                        fail
                          (Printf.sprintf
                             "churn wants \"@N <delta>\", got %S" v)
                      in
                      match String.index_opt v ' ' with
                      | Some i when String.length v > 1 && v.[0] = '@' -> (
                          match int_of_string_opt (String.sub v 1 (i - 1)) with
                          | Some at when at >= 0 -> (
                              let spec =
                                String.trim
                                  (String.sub v (i + 1)
                                     (String.length v - i - 1))
                              in
                              match Membership.delta_of_string spec with
                              | Ok _ ->
                                  cfg :=
                                    { !cfg with churn = !cfg.churn @ [ (at, spec) ] }
                              | Error e -> fail e)
                          | _ -> bad ())
                      | _ -> bad ())
                  | _ -> fail (Printf.sprintf "unknown key %S" k)))
        rest;
      (match (!err, !sys_lines) with
      | Some e, _ -> Error e
      | None, [] -> Ok !cfg
      | None, ls -> (
          match Script.parse_system (String.concat "\n" (List.rev ls)) with
          | Ok scripts ->
              Ok
                {
                  !cfg with
                  system = Some scripts;
                  procs = Array.length scripts;
                }
          | Error e -> Error e))
  | first :: _ ->
      Error
        (Printf.sprintf "not a model config: expected %S, got %S" header
           (String.trim first))

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

(* -- transition system ---------------------------------------------- *)

type action =
  | Rendezvous of { src : int; dst : int }
  | Internal of int
  | Crash of int
  | Recover of int

let action_to_string = function
  | Rendezvous { src; dst } -> Printf.sprintf "P%d -> P%d" src dst
  | Internal p -> Printf.sprintf "internal P%d" p
  | Crash p -> Printf.sprintf "crash P%d" p
  | Recover p -> Printf.sprintf "recover P%d" p

let participants = function
  | Rendezvous { src; dst } -> [ src; dst ]
  | Internal p | Crash p | Recover p -> [ p ]

let steps_of_actions actions =
  List.filter_map
    (function
      | Rendezvous { src; dst } -> Some (Trace.Send (src, dst))
      | Internal p -> Some (Trace.Local p)
      | Crash _ | Recover _ -> None)
    actions

type violation_kind =
  | Missed_order of { earlier : int; later : int }
  | False_order of { a : int; b : int }
  | Disagreement of { msg : int }
  | Deadlock of { blocked : int list }

type violation = { kind : violation_kind; recovery : bool; detail : string }

type t = {
  cfg : config;
  raw_scripts : Script.t array;
  scripts : Script.intent array array;
  n : int;
  decomp : Decomposition.t;
  dim : int;  (* stamping width: final-epoch membership width under churn *)
  churn : (int * Membership.delta) list;  (* sorted by threshold *)
  egraphs : Graph.t array;  (* per-epoch topologies; singleton churn-free *)
  eslots : (int * int, int) Hashtbl.t array;  (* per-epoch channel->slot *)
}

let config m = m.cfg
let scripts m = m.raw_scripts
let decomposition m = m.decomp
let n m = m.n

let compile cfg =
  let raw_scripts =
    match cfg.system with
    | Some s -> s
    | None -> scenario ~procs:cfg.procs ~events:cfg.events
  in
  let n = Array.length raw_scripts in
  if n < 1 then Error "model needs at least one process"
  else if n > 62 then Error "model supports at most 62 processes"
  else if cfg.faults < 0 then Error "negative fault budget"
  else begin
    let bad = ref None in
    Array.iteri
      (fun p script ->
        List.iter
          (fun intent ->
            match intent with
            | Script.Send_to q | Script.Recv_from q ->
                if (q < 0 || q >= n || q = p) && !bad = None then
                  bad :=
                    Some
                      (Printf.sprintf
                         "P%d names peer P%d, which is %s — fix the system \
                          (synts lint reports this as csp/peer-range)" p q
                         (if q = p then "itself" else "outside 0..N-1"))
            | _ -> ())
          script)
      raw_scripts;
    match !bad with
    | Some e -> Error e
    | None -> (
        let edges = ref [] in
        Array.iteri
          (fun p script ->
            List.iter
              (function
                | Script.Send_to q -> edges := (p, q) :: !edges
                | _ -> ())
              script)
          raw_scripts;
        let topology = Graph.of_edges n !edges in
        let decomp = Decomposition.best topology in
        let scripts = Array.map Array.of_list raw_scripts in
        (* channel -> slot table of one membership epoch, both
           orientations *)
        let snap m =
          let g = Membership.graph m in
          let h = Hashtbl.create 16 in
          List.iter
            (fun (u, v) ->
              let s = Membership.slot_of_edge m u v in
              Hashtbl.replace h (u, v) s;
              Hashtbl.replace h (v, u) s)
            (Graph.edges g);
          (g, h)
        in
        match cfg.churn with
        | [] ->
            (* Static topology: stamp straight off the decomposition, as
               Figure 5 assumes. *)
            let table = Hashtbl.create 16 in
            List.iter
              (fun (u, v) ->
                let s = Decomposition.group_of_edge decomp u v in
                Hashtbl.replace table (u, v) s;
                Hashtbl.replace table (v, u) s)
              (Graph.edges topology);
            Ok
              {
                cfg;
                raw_scripts;
                scripts;
                n;
                decomp;
                dim = Decomposition.size decomp;
                churn = [];
                egraphs = [| topology |];
                eslots = [| table |];
              }
        | clauses -> (
            (* Churn: precompute the whole epoch sequence. Epochs advance
               deterministically with the completed-message count, so the
               transition system stays pure; since the per-epoch remaps
               are identity injections (no compaction here), every epoch's
               slots embed unchanged in final-width vectors and all
               stamping runs at the final width from the start. *)
            let parse (at, spec) =
              match Membership.delta_of_string spec with
              | Ok d -> Ok (at, spec, d)
              | Error e -> Error (Printf.sprintf "churn @%d %s: %s" at spec e)
            in
            let rec parse_all = function
              | [] -> Ok []
              | c :: rest -> (
                  match parse c with
                  | Error _ as e -> e
                  | Ok p -> Result.map (fun ps -> p :: ps) (parse_all rest))
            in
            match
              parse_all
                (List.stable_sort
                   (fun (a, _) (b, _) -> compare a b)
                   clauses)
            with
            | Error e -> Error e
            | Ok parsed -> (
                let joiners =
                  List.sort_uniq compare
                    (List.filter_map
                       (fun (_, _, d) ->
                         match d with
                         | Membership.Join { proc; _ } -> Some proc
                         | _ -> None)
                       parsed)
                in
                let n0 = n - List.length joiners in
                if joiners <> List.init (List.length joiners) (fun i -> n0 + i)
                then
                  Error
                    (Printf.sprintf
                       "churn joins must use the highest process ids \
                        (P%d..P%d): earlier joiners would start outside \
                        the membership universe" n0 (n - 1))
                else begin
                  let added_later =
                    List.concat_map
                      (fun (_, _, d) ->
                        match d with
                        | Membership.Join { edges; _ } ->
                            List.map
                              (fun (u, v) -> Graph.normalize_edge u v)
                              edges
                        | Membership.Add_edge (u, v) ->
                            [ Graph.normalize_edge u v ]
                        | _ -> [])
                      parsed
                  in
                  let e0 =
                    List.filter
                      (fun (u, v) ->
                        u < n0 && v < n0
                        && not (List.mem (u, v) added_later))
                      (List.sort_uniq compare
                         (List.map
                            (fun (u, v) -> Graph.normalize_edge u v)
                            !edges))
                  in
                  let mem = Membership.of_graph (Graph.of_edges n0 e0) in
                  let snaps = ref [ snap mem ] and bad = ref None in
                  List.iter
                    (fun (at, spec, d) ->
                      if !bad = None then
                        match Membership.apply mem d with
                        | Ok _ -> snaps := snap mem :: !snaps
                        | Error e ->
                            bad :=
                              Some
                                (Printf.sprintf "churn @%d %s: %s" at spec e))
                    parsed;
                  match !bad with
                  | Some e -> Error e
                  | None ->
                      let snaps = Array.of_list (List.rev !snaps) in
                      Ok
                        {
                          cfg;
                          raw_scripts;
                          scripts;
                          n;
                          decomp;
                          dim = max 1 (Membership.width mem);
                          churn = List.map (fun (at, _, d) -> (at, d)) parsed;
                          egraphs = Array.map fst snaps;
                          eslots = Array.map snd snaps;
                        }
                end)))
  end

let compile_exn cfg =
  match compile cfg with Ok m -> m | Error e -> invalid_arg e

type pstate = { idx : int; up : bool; vec : Vector.t; chk : Vector.t }
type msg = { stamp : Vector.t; mask : int }

type state = {
  ps : pstate array;
  msgs : msg list;  (* newest first; ids are completion order *)
  nmsgs : int;
  crashes_left : int;
  ever_crashed : int;
  viol : violation option;
}

let violation st = st.viol
let message_count st = st.nmsgs
let stamps st = Array.of_list (List.rev_map (fun o -> o.stamp) st.msgs)

let initial m =
  {
    ps =
      Array.init m.n (fun _ ->
          { idx = 0; up = true; vec = Vector.zero m.dim; chk = Vector.zero m.dim });
    msgs = [];
    nmsgs = 0;
    crashes_left = m.cfg.faults;
    ever_crashed = 0;
    viol = None;
  }

(* The membership epoch the state is in: deterministic in the number of
   completed messages, so churn stays compatible with pure steps and
   state hashing. *)
let epoch_of m st =
  List.length (List.filter (fun (at, _) -> at <= st.nmsgs) m.churn)

let channel_up m st p q =
  let g = m.egraphs.(epoch_of m st) in
  p < Graph.n g && q < Graph.n g && Graph.has_edge g p q

let head m st p =
  let idx = st.ps.(p).idx in
  if idx < Array.length m.scripts.(p) then Some m.scripts.(p).(idx) else None

let finished m st =
  let ok = ref true in
  Array.iteri
    (fun p s ->
      if s.idx < Array.length m.scripts.(p) || not s.up then ok := false)
    st.ps;
  !ok

let blocked m st =
  List.filter
    (fun p -> st.ps.(p).idx < Array.length m.scripts.(p))
    (List.init m.n Fun.id)

let raw_enabled m st =
  begin
    let rdv = ref [] and internals = ref [] in
    let crashes = ref [] and recovers = ref [] in
    for p = m.n - 1 downto 0 do
      let s = st.ps.(p) in
      if not s.up then recovers := Recover p :: !recovers
      else begin
        (match head m st p with
        | Some Script.Internal -> internals := Internal p :: !internals
        | Some (Script.Send_to q) when st.ps.(q).up && channel_up m st p q -> (
            match head m st q with
            | Some (Script.Recv_from r) when r = p ->
                rdv := Rendezvous { src = p; dst = q } :: !rdv
            | Some Script.Recv_any ->
                rdv := Rendezvous { src = p; dst = q } :: !rdv
            | _ -> ())
        | _ -> ());
        if st.crashes_left > 0 && s.idx < Array.length m.scripts.(p) then
          crashes := Crash p :: !crashes
      end
    done;
    !rdv @ !internals @ !crashes @ !recovers
  end

let enabled m st = if st.viol <> None then [] else raw_enabled m st
let bit p = 1 lsl p

let rendezvous m st ~src:p ~dst:q =
  let sp = st.ps.(p) and sq = st.ps.(q) in
  let g = Hashtbl.find m.eslots.(epoch_of m st) (p, q) in
  let bump v = if m.cfg.mutation <> Some Skip_increment then Vector.incr v g in
  (* Receiver: merge the piggybacked sender vector, bump the group. *)
  let ts_recv = Vector.merge sq.vec sp.vec in
  bump ts_recv;
  (* Fig. 5 line 04: the ack carries the receiver's pre-merge vector.
     The stale-ack mutation ships the post-merge timestamp instead. *)
  let ack =
    match m.cfg.mutation with Some Stale_ack -> ts_recv | _ -> sq.vec
  in
  let ts_send = Vector.merge sp.vec ack in
  bump ts_send;
  let id = st.nmsgs in
  let bits = bit p lor bit q in
  let recovery = st.ever_crashed land bits <> 0 in
  let viol = ref st.viol in
  let set kind detail =
    if !viol = None then viol := Some { kind; recovery; detail }
  in
  let disagrees = not (Vector.equal ts_send ts_recv) in
  if disagrees then
    set
      (Disagreement { msg = id })
      (Printf.sprintf
         "message #%d (P%d -> P%d): sender derived %s but receiver derived %s"
         id p q (Vector.to_string ts_send) (Vector.to_string ts_recv));
  (* Record the sender's derivation when the two disagree: it is the
     deviant one, so the violation survives serialization to a
     (trace, stamps) witness that the sanitizer re-checks. *)
  let stamp = if disagrees then ts_send else ts_recv in
  if !viol = None then
    (* Exactness against every completed message: a prior message is in
       the new one's causal past iff its past already reached P{p,q}. *)
    List.iteri
      (fun i o ->
        if !viol = None then begin
          let i = st.nmsgs - 1 - i in
          let related = o.mask land bits <> 0 in
          match (Vector.compare_order o.stamp stamp, related) with
          | `Lt, true | `Concurrent, false -> ()
          | _, true ->
              set
                (Missed_order { earlier = i; later = id })
                (Printf.sprintf
                   "message #%d causally precedes #%d but stamps %s !< %s" i
                   id
                   (Vector.to_string o.stamp)
                   (Vector.to_string stamp))
          | _, false ->
              set
                (False_order { a = i; b = id })
                (Printf.sprintf
                   "messages #%d and #%d are concurrent but stamps %s / %s \
                    are ordered" i id
                   (Vector.to_string o.stamp)
                   (Vector.to_string stamp))
        end)
      st.msgs;
  let ps = Array.copy st.ps in
  ps.(p) <- { idx = sp.idx + 1; up = true; vec = ts_send; chk = Vector.copy ts_send };
  ps.(q) <- { idx = sq.idx + 1; up = true; vec = ts_recv; chk = Vector.copy ts_recv };
  let msgs =
    { stamp; mask = bits }
    :: List.map
         (fun o ->
           if o.mask land bits <> 0 then { o with mask = o.mask lor bits }
           else o)
         st.msgs
  in
  { st with ps; msgs; nmsgs = id + 1; viol = !viol }

let step m st = function
  | Rendezvous { src; dst } -> rendezvous m st ~src ~dst
  | Internal p ->
      let ps = Array.copy st.ps in
      ps.(p) <- { (ps.(p)) with idx = ps.(p).idx + 1 };
      { st with ps }
  | Crash p ->
      let ps = Array.copy st.ps in
      (* Fail-stop: the volatile vector is lost; the checkpoint survives. *)
      ps.(p) <- { (ps.(p)) with up = false; vec = Vector.zero m.dim };
      {
        st with
        ps;
        crashes_left = st.crashes_left - 1;
        ever_crashed = st.ever_crashed lor bit p;
      }
  | Recover p ->
      let ps = Array.copy st.ps in
      let vec =
        match m.cfg.mutation with
        | Some Forget_checkpoint -> Vector.zero m.dim
        | _ -> Vector.copy ps.(p).chk
      in
      ps.(p) <- { (ps.(p)) with up = true; vec };
      { st with ps }

let key st =
  let b = Buffer.create 160 in
  if st.viol <> None then Buffer.add_string b "V!";
  Array.iter
    (fun s ->
      Buffer.add_string b (string_of_int s.idx);
      Buffer.add_char b (if s.up then 'u' else 'd');
      Array.iter
        (fun x ->
          Buffer.add_char b '.';
          Buffer.add_string b (string_of_int x))
        s.vec;
      Buffer.add_char b ';';
      Array.iter
        (fun x ->
          Buffer.add_char b '.';
          Buffer.add_string b (string_of_int x))
        s.chk;
      Buffer.add_char b '|')
    st.ps;
  Buffer.add_string b (string_of_int st.crashes_left);
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int st.ever_crashed);
  (* Completed messages as a canonical multiset: future verdicts depend
     on their stamps and causal-past masks, not on their id order. *)
  let sigs =
    List.sort compare
      (List.map (fun o -> (Array.to_list o.stamp, o.mask)) st.msgs)
  in
  List.iter
    (fun (s, mask) ->
      Buffer.add_char b '!';
      List.iter
        (fun x ->
          Buffer.add_string b (string_of_int x);
          Buffer.add_char b ',')
        s;
      Buffer.add_string b (string_of_int mask))
    sigs;
  Buffer.contents b

let action_key = function
  | Rendezvous { src; dst } -> Printf.sprintf "r%d>%d" src dst
  | Internal p -> Printf.sprintf "i%d" p
  | Crash p -> Printf.sprintf "c%d" p
  | Recover p -> Printf.sprintf "v%d" p

let independent a b =
  let pa = participants a and pb = participants b in
  List.for_all (fun p -> not (List.mem p pb)) pa
  &&
  (* Two crashes share the global fault budget: one can disable the
     other, so they are never independent. *)
  match (a, b) with Crash _, Crash _ -> false | _ -> true

let system m =
  (* Under churn a completed rendezvous can cross an epoch threshold and
     change both enabledness and the slot every later rendezvous
     increments, so no pair involving a rendezvous commutes: DPOR falls
     back to conservative (correct, just less pruning). *)
  let independent =
    if m.churn = [] then independent
    else fun a b ->
      match (a, b) with
      | Rendezvous _, _ | _, Rendezvous _ -> false
      | _ -> independent a b
  in
  {
    Explorer.initial = initial m;
    enabled = enabled m;
    step = step m;
    key;
    action_key;
    independent;
  }

let run_schedule m actions =
  List.fold_left
    (fun st a ->
      (* A shrunk witness can trip its violation before its last action;
         keep executing so every kept message's stamp is recomputed. *)
      if List.mem a (raw_enabled m st) then step m st a
      else
        invalid_arg
          (Printf.sprintf "Protocol.run_schedule: %S is not enabled"
             (action_to_string a)))
    (initial m) actions
