(** A generic explicit-state exploration engine.

    One state-space engine, many clients: the [synts.model] checker of the
    Figure 5 protocol and [Synts_lint.Csp_lint]'s rendezvous deadlock
    analysis both drive this module. A client describes its transition
    system as a {!system} record — initial state, enabled actions, a pure
    successor function, a canonical state key — and the engine runs a
    deterministic depth-first search over it with two optional, orthogonal
    reductions:

    - {b state hashing} ([hashing], default on): states are memoized by
      their canonical key, so schedules that reconverge on the same state
      are explored once. Sound whenever the key captures everything the
      client's [visit] verdicts and the future behaviour depend on.
    - {b sleep sets} ([dpor], default off): dynamic partial-order
      reduction in the Godefroid style. After exploring action [a] from a
      state, [a] is put to sleep for the exploration of its siblings and
      stays asleep along any path of actions independent of it, pruning
      the redundant interleavings of commuting actions. Requires
      [independent] to be a valid independence relation: independent
      enabled actions must commute (same resulting state either order)
      and neither may disable the other. Combined with hashing, the
      visited table stores the sleep set each state was first expanded
      with and re-expands a state only when reached with a strictly
      weaker sleep constraint (Godefroid's state-caching refinement), so
      the combination stays sound.

    The explored state graph must be acyclic (true for bounded scripts:
    indices only advance); the engine does not detect cycles. *)

type ('s, 'a) system = {
  initial : 's;
  enabled : 's -> 'a list;
      (** Enabled actions, in a deterministic order (the DFS follows it). *)
  step : 's -> 'a -> 's;  (** Pure successor; must not mutate ['s]. *)
  key : 's -> string;
      (** Canonical state key for hashing; two states with equal keys must
          have identical futures (and identical [visit] verdicts). *)
  action_key : 'a -> string;  (** Canonical action identity (sleep sets). *)
  independent : 'a -> 'a -> bool;
      (** Commutation test for DPOR; must be symmetric. Ignored unless
          [dpor] is on. *)
}

type decision =
  | Continue  (** Expand this state's successors. *)
  | Prune  (** Keep searching, but not below this state. *)
  | Stop  (** Abort the whole search (e.g. first violation found). *)

type stats = {
  expanded : int;
      (** States expanded — distinct states when hashing, schedule-tree
          nodes when not. The "explored states" count reported to users. *)
  transitions : int;  (** [step] calls taken. *)
  hash_hits : int;  (** Revisits pruned by the visited table. *)
  sleep_pruned : int;  (** Enabled transitions skipped by sleep sets. *)
  truncated : bool;  (** The state budget was exhausted. *)
}

val run :
  ?budget:int ->
  ?hashing:bool ->
  ?dpor:bool ->
  visit:('s -> path:'a list -> enabled:'a list -> decision) ->
  ('s, 'a) system ->
  stats
(** Depth-first exploration from [sys.initial]. [visit] is called once per
    expanded state, with the action path from the initial state ({e newest
    first}) and the enabled actions; its {!decision} controls expansion.
    [budget] (default [1_000_000]) bounds the number of expanded states;
    exceeding it sets [truncated] and prunes the remaining frontier.
    Deterministic: same system, same traversal. *)
