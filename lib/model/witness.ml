module Script = Synts_net.Script
module Vector = Synts_clock.Vector
module Trace = Synts_sync.Trace

type t = {
  rule : string;
  detail : string;
  procs : int;
  mutation : Protocol.mutation option;
  scripts : Script.t array;
  actions : Protocol.action list;
  stamps : Vector.t array;
}

let header = "synts-witness 1"

let trace w =
  Trace.of_steps ~n:w.procs (Protocol.steps_of_actions w.actions)

let events w = List.length w.actions

let is_witness_text text =
  let rec first = function
    | [] -> ""
    | l :: rest ->
        let l = String.trim l in
        if l = "" || l.[0] = '#' then first rest else l
  in
  first (String.split_on_char '\n' text) = header

let oneline s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let action_line = function
  | Protocol.Rendezvous { src; dst } -> Printf.sprintf "a s %d %d" src dst
  | Protocol.Internal p -> Printf.sprintf "a i %d" p
  | Protocol.Crash p -> Printf.sprintf "a c %d" p
  | Protocol.Recover p -> Printf.sprintf "a v %d" p

let vec_to_csv v =
  String.concat "," (List.map string_of_int (Array.to_list v))

let to_string w =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" header;
  line "rule %s" w.rule;
  line "detail %s" (oneline w.detail);
  line "procs %d" w.procs;
  (match w.mutation with
  | Some m -> line "mutate %s" (Protocol.mutation_to_string m)
  | None -> ());
  Array.iteri
    (fun p s ->
      line "script P%d:%s" p
        (if s = [] then ""
         else
           " "
           ^ String.concat " . "
               (List.map
                  (function
                    | Script.Send_to q -> Printf.sprintf "!%d" q
                    | Script.Recv_from q -> Printf.sprintf "?%d" q
                    | Script.Recv_any -> "?*"
                    | Script.Internal -> "#")
                  s)))
    w.scripts;
  List.iter (fun a -> line "%s" (action_line a)) w.actions;
  Array.iteri (fun id v -> line "stamp %d %s" id (vec_to_csv v)) w.stamps;
  Buffer.contents b

let of_string text =
  let lines = String.split_on_char '\n' text in
  let significant l =
    let l = String.trim l in
    l <> "" && l.[0] <> '#'
  in
  match List.filter significant lines with
  | [] -> Error (Printf.sprintf "empty input (expected %S header)" header)
  | first :: rest when String.trim first = header -> (
      let rule = ref "" and detail = ref "" and procs = ref 0 in
      let mutation = ref None in
      let script_lines = ref [] and actions = ref [] and stamps = ref [] in
      let err = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
      let split line =
        match String.index_opt line ' ' with
        | None -> (line, "")
        | Some i ->
            ( String.sub line 0 i,
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            )
      in
      let int_of s k =
        match int_of_string_opt s with
        | Some x -> k x
        | None -> fail "expected an integer, got %S" s
      in
      List.iter
        (fun line ->
          if !err = None then
            let line = String.trim line in
            let k, v = split line in
            match k with
            | "rule" -> rule := v
            | "detail" -> detail := v
            | "procs" -> int_of v (fun x -> procs := x)
            | "mutate" -> (
                match Protocol.mutation_of_string v with
                | Ok m -> mutation := Some m
                | Error e -> fail "%s" e)
            | "script" -> script_lines := v :: !script_lines
            | "a" -> (
                match String.split_on_char ' ' v with
                | [ "s"; a; b ] ->
                    int_of a (fun src ->
                        int_of b (fun dst ->
                            actions := Protocol.Rendezvous { src; dst } :: !actions))
                | [ "i"; a ] -> int_of a (fun p -> actions := Protocol.Internal p :: !actions)
                | [ "c"; a ] -> int_of a (fun p -> actions := Protocol.Crash p :: !actions)
                | [ "v"; a ] -> int_of a (fun p -> actions := Protocol.Recover p :: !actions)
                | _ -> fail "malformed action line %S" line)
            | "stamp" -> (
                match String.split_on_char ' ' v with
                | [ id; csv ] ->
                    int_of id (fun id ->
                        let comps = if csv = "" then [] else String.split_on_char ',' csv in
                        let vec = Array.make (List.length comps) 0 in
                        List.iteri
                          (fun i c -> int_of c (fun x -> vec.(i) <- x))
                          comps;
                        stamps := (id, vec) :: !stamps)
                | [ id ] -> int_of id (fun id -> stamps := (id, [||]) :: !stamps)
                | _ -> fail "malformed stamp line %S" line)
            | _ -> fail "unknown key %S" k)
        rest;
      match !err with
      | Some e -> Error e
      | None -> (
          let scripts_r =
            match !script_lines with
            | [] -> Ok (Array.make (max !procs 0) [])
            | ls -> Script.parse_system (String.concat "\n" (List.rev ls))
          in
          match scripts_r with
          | Error e -> Error e
          | Ok scripts ->
              let procs = max !procs (Array.length scripts) in
              let scripts =
                if Array.length scripts < procs then
                  Array.init procs (fun p ->
                      if p < Array.length scripts then scripts.(p) else [])
                else scripts
              in
              let stamps = List.sort compare (List.rev !stamps) in
              (* Stamp ids must be 0..k-1 in order. *)
              let ok =
                List.for_all2
                  (fun i (id, _) -> i = id)
                  (List.init (List.length stamps) Fun.id)
                  stamps
              in
              if not ok then Error "stamp ids are not contiguous from 0"
              else if !rule = "" then Error "missing rule line"
              else
                Ok
                  {
                    rule = !rule;
                    detail = !detail;
                    procs;
                    mutation = !mutation;
                    scripts;
                    actions = List.rev !actions;
                    stamps = Array.of_list (List.map snd stamps);
                  }))
  | first :: _ ->
      Error
        (Printf.sprintf "not a witness: expected %S, got %S" header
           (String.trim first))

let save path w = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (to_string w))

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
