(** The [synts.model] checker: exhaustive schedule exploration of the
    Figure 5 protocol.

    {!check} drives the {!Synts_explorer.Explorer} engine over a compiled
    {!Protocol} model and verifies, on every explored transition and
    state:

    - {b exactness} — each new message's stamp orders it against every
      completed message exactly as the causal relation prescribes
      (Equation (1)), with a brute-force oracle-poset re-validation of
      the first {!val-check} terminals as an independent spot-check;
    - {b agreement} — sender and receiver derive the same stamp
      (Figure 5);
    - {b deadlock-freedom} — no reachable state has work remaining and
      nothing enabled;
    - {b crash/recover} — stamp violations touching a crashed process are
      classified as recovery loss (PR 5 checkpoint contract).

    The first violation stops the search and is shrunk to a minimal
    witness schedule (backward causal cone), re-executed stand-alone to
    confirm it reproduces, and packaged as a {!Witness.t}. {!replay}
    cross-validates a witness against the {e real} CSP runtime and the
    lint sanitizer — the checker never gets to grade its own homework. *)

type violation = {
  rule : string;  (** [model/*] rule id. *)
  detail : string;
  witness : Witness.t;  (** Shrunk, re-derived counterexample. *)
}

type report = {
  config : Protocol.config;
  dpor : bool;
  budget : int;
  stats : Synts_explorer.Explorer.stats;
  terminals : int;  (** Completed schedules reached (distinct states). *)
  oracle_checked : int;
      (** Terminals re-validated against the brute-force oracle poset. *)
  violation : violation option;
}

val default_budget : int
(** 250_000 expanded states. *)

val check : ?budget:int -> ?dpor:bool -> Protocol.t -> report
(** Explore every schedule of the model. [dpor] (default on) enables
    sleep-set partial-order reduction {e and} state hashing; with
    [~dpor:false] the engine enumerates the plain schedule tree — the
    honest "all interleavings" baseline the reduction factor is measured
    against. Deterministic. *)

val findings : report -> Synts_lint.Finding.t list
(** The report as lint findings: the violation under its [model/*] rule,
    plus [model/state-budget] when the search was truncated. *)

type replay = {
  sanitizer : Synts_lint.Finding.t list;
      (** {!Synts_lint.Sanitizer.check_trace} over the witness stamps —
          the independent Figure 5 shadow. *)
  runtime_messages : int;
  runtime_divergences : int;
      (** Messages whose stamp from the {e real} CSP runtime (replaying
          the witness trace) differs from the witness's stamp. *)
}

val replay : Witness.t -> (replay, string) result
(** Cross-validate a witness: run the sanitizer over its stamps and
    replay its trace through {!Synts_csp.Runtime} under the same
    (re-derived) decomposition. A protocol-violation witness must show
    sanitizer errors and runtime divergences; a clean replay means the
    witness does not actually exhibit a bug. *)
