(** The Figure 5 msg/ack protocol as an explicit-state model.

    A model instance is a small system of per-process communication
    scripts (either the built-in deadlock-free {!scenario} or an explicit
    {!Synts_net.Script} system) running the paper's edge-group protocol:
    every rendezvous merges the two endpoint vectors and increments the
    channel's group component, exactly as Figure 5 prescribes, and both
    endpoints checkpoint their vector when the rendezvous completes (the
    PR 5 crash/recover semantics). The transition system exposes every
    source of nondeterminism the runtime has — which enabled rendezvous
    fires next, which pending sender a wildcard receive matches, and
    where crash/recover transitions strike — so the {!Checker} can
    quantify over {e all} schedules rather than the sampled ones.

    Protocol {!mutation}s seed known bugs (for counterexample tests and
    the [synts model] CLI): each breaks one line of Figure 5 or of the
    crash/recover extension. *)

type mutation =
  | Skip_increment
      (** Drop Figure 5 line 06: the channel's group component is never
          incremented, so related messages get non-increasing stamps. *)
  | Stale_ack
      (** Violate Figure 5 line 04: the receiver acknowledges with its
          {e post}-merge vector, so sender and receiver derive different
          stamps for the same message. *)
  | Forget_checkpoint
      (** Break the PR 5 recovery contract: a recovering process resumes
          from a zero vector instead of its checkpoint, losing its causal
          history. *)

val mutations : (string * mutation) list
(** CLI-name / constructor pairs (["skip-increment"], ["stale-ack"],
    ["forget-checkpoint"]). *)

val mutation_to_string : mutation -> string
val mutation_of_string : string -> (mutation, string) result

type config = {
  procs : int;  (** N; scenario configs need [2 <= procs]. *)
  events : int;  (** Rendezvous count of the built-in scenario. *)
  faults : int;  (** Crash/recover pairs the explorer may inject. *)
  mutation : mutation option;
  system : Synts_net.Script.t array option;
      (** Explicit scripts; when present, [procs]/[events] are derived
          from it and the scenario generator is not used. *)
  churn : (int * string) list;
      (** Membership deltas ([churn @N <delta>] lines): after the [N]th
          completed message the rendered {!Synts_graph.Membership.delta}
          is applied, opening a new epoch. The epoch is a deterministic
          function of the completed-message count, so the transition
          system stays pure. Joining processes must take the highest
          process ids; their sends/receives only become enabled once
          their epoch opens. All stamps run at the final epoch's width
          (churn remaps are identity injections, so earlier epochs'
          vectors are the final-width ones with frozen slots at 0). *)
}

val default : config
(** [{procs = 3; events = 6; faults = 0; mutation = None; system = None;
    churn = []}]. *)

val scenario : procs:int -> events:int -> Synts_net.Script.t array
(** The canonical staged-relay workload: process [p < procs-1] sends
    [events]-round-robin many messages, distributed over the
    higher-numbered processes and emitted in ascending destination order;
    every process performs all its (wildcard) receives before its sends,
    and every send is followed by an internal event. The layering makes
    the system deadlock-free under {e every} schedule, while wildcard
    receives with competing senders, overlapping sender lifetimes and
    free-floating internal events give the full nondeterminism menu the
    runtime has. *)

val to_string : config -> string
(** The [synts-model 1] config file format (inverse of {!of_string}):
    header line, [procs]/[events]/[faults]/[mutate] key-value lines, and
    an optional embedded [P<id>: intents] system. *)

val of_string : string -> (config, string) result
val load : string -> (config, string) result

(** {1 The transition system} *)

type action =
  | Rendezvous of { src : int; dst : int }
  | Internal of int
  | Crash of int
  | Recover of int

val action_to_string : action -> string
val participants : action -> int list

val steps_of_actions : action list -> Synts_sync.Trace.step list
(** Chronological actions to trace steps; crash/recover transitions are
    not trace steps and are dropped. *)

(** A violation detected while taking a transition. Message ids index the
    completion order of the schedule explored. *)
type violation_kind =
  | Missed_order of { earlier : int; later : int }
      (** [earlier ↦ later] but the stamps do not order them (Eq. 1 ⇐
          direction broken). *)
  | False_order of { a : int; b : int }
      (** Concurrent messages whose stamps are ordered or equal (Eq. 1 ⇒
          direction broken). *)
  | Disagreement of { msg : int }
      (** Sender and receiver computed different stamps for one message
          (the Figure 5 agreement invariant). *)
  | Deadlock of { blocked : int list }
      (** No transition is enabled but processes still have work. Raised
          by the checker, not by {!step}. *)

type violation = { kind : violation_kind; recovery : bool; detail : string }
(** [recovery] marks violations whose message involves a process that
    crashed earlier — stamp loss across crash/recover rather than a
    plain protocol bug. *)

type t
(** A compiled model: scripts, topology, decomposition, mutation. *)

val compile : config -> (t, string) result
val compile_exn : config -> t
val config : t -> config
val scripts : t -> Synts_net.Script.t array
val decomposition : t -> Synts_graph.Decomposition.t
val n : t -> int

type state

val system : t -> (state, action) Synts_explorer.Explorer.system
(** The explorer client: deterministic enabled-action order, pure steps,
    a canonical key covering everything future verdicts depend on
    (script positions, vectors, checkpoints, crash state, and the
    stamp/causal-past summary of completed messages), and the
    disjoint-participants independence relation for DPOR. *)

val violation : state -> violation option
(** Set on the state a violating transition produced. *)

val finished : t -> state -> bool
(** Every script ran to completion and every process is up. *)

val blocked : t -> state -> int list
(** Processes with script steps remaining. *)

val message_count : state -> int

val stamps : state -> Synts_clock.Vector.t array
(** Stamps of the completed messages, indexed by completion order. *)

val run_schedule : t -> action list -> state
(** Execute a chronological action sequence directly (no exploration) —
    used to re-derive a witness's stamps and violation. Raises
    [Invalid_argument] if an action is not enabled when reached. *)
