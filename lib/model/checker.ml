module Explorer = Synts_explorer.Explorer
module Script = Synts_net.Script
module Vector = Synts_clock.Vector
module Trace = Synts_sync.Trace
module Decomposition = Synts_graph.Decomposition
module Validate = Synts_check.Validate
module Finding = Synts_lint.Finding
module Rules = Synts_lint.Rules
module Sanitizer = Synts_lint.Sanitizer
module Runtime = Synts_csp.Runtime
module Tm = Synts_telemetry.Telemetry

let default_budget = 250_000

(* Terminal states fully re-validated against the brute-force oracle
   poset, per run. The incremental per-message check covers every state;
   this is an independent spot-check of the checker itself. *)
let oracle_limit = 64

let m_runs = Tm.Counter.v ~help:"Model-checker runs" "model.runs"
let m_states = Tm.Counter.v ~help:"Model states expanded" "model.states"

let m_transitions =
  Tm.Counter.v ~help:"Model transitions taken" "model.transitions"

let m_hash_hits =
  Tm.Counter.v ~help:"Model states deduplicated by hashing" "model.hash_hits"

let m_sleep_pruned =
  Tm.Counter.v ~help:"Model transitions pruned by sleep sets"
    "model.sleep_pruned"

let m_violations =
  Tm.Counter.v ~help:"Model-checker violations found" "model.violations"

type violation = { rule : string; detail : string; witness : Witness.t }

type report = {
  config : Protocol.config;
  dpor : bool;
  budget : int;
  stats : Explorer.stats;
  terminals : int;
  oracle_checked : int;
  violation : violation option;
}

let rule_of (v : Protocol.violation) =
  match v.kind with
  | Protocol.Deadlock _ -> "model/deadlock"
  | Protocol.Disagreement _ -> "model/agreement"
  | Protocol.Missed_order _ | Protocol.False_order _ ->
      if v.recovery then "model/recovery-loss" else "model/exactness"

(* Keep a crash/recover only while it can still influence a stamp: once a
   process has no rendezvous or internal event left in the schedule, its
   fault transitions are dead weight (and would not re-execute, since
   Crash needs script steps remaining). *)
let drop_idle_faults actions =
  let arr = Array.of_list actions in
  let len = Array.length arr in
  let live i p =
    let rec scan j =
      j < len
      &&
      match arr.(j) with
      | (Protocol.Rendezvous _ | Protocol.Internal _) as a ->
          List.mem p (Protocol.participants a) || scan (j + 1)
      | _ -> scan (j + 1)
    in
    scan (i + 1)
  in
  List.filteri
    (fun i a ->
      match a with
      | Protocol.Crash p | Protocol.Recover p -> live i p
      | _ -> true)
    actions

let count_crashes actions =
  List.length
    (List.filter (function Protocol.Crash _ -> true | _ -> false) actions)

(* Re-execute a candidate schedule as a self-contained model: scripts
   projected from its own trace, decomposition re-derived from that
   trace's topology — exactly the decomposition `synts lint` will use on
   the witness. Returns None when the schedule does not reproduce a
   violation on its own. *)
let rederive ~procs ~mutation shrunk =
  let steps = Protocol.steps_of_actions shrunk in
  match Trace.of_steps ~n:procs steps with
  | Error _ -> None
  | Ok tr -> (
      let scripts = Script.of_trace tr in
      let cfg =
        {
          Protocol.procs;
          events = 0;
          faults = count_crashes shrunk;
          mutation;
          system = Some scripts;
          churn = [];
        }
      in
      match Protocol.compile cfg with
      | Error _ -> None
      | Ok m2 -> (
          match Protocol.run_schedule m2 shrunk with
          | st -> (
              match Protocol.violation st with
              | Some v2 -> Some (v2, st, m2)
              | None -> None)
          | exception Invalid_argument _ -> None))

(* Backward causal-cone shrinking. Seeds are the violating action plus,
   for pairwise stamp violations, the action that produced the partner
   message; the cone then absorbs every earlier action sharing a process
   with it. The kept actions are per-process prefixes whose causal pasts
   are fully kept, so re-execution reproduces the kept stamps exactly. *)
let shrink (v : Protocol.violation) actions =
  let arr = Array.of_list actions in
  let len = Array.length arr in
  let msg_action =
    (* message id -> index of the rendezvous that completed it *)
    let tbl = Hashtbl.create 16 in
    let id = ref 0 in
    Array.iteri
      (fun i a ->
        match a with
        | Protocol.Rendezvous _ ->
            Hashtbl.replace tbl !id i;
            incr id
        | _ -> ())
      arr;
    tbl
  in
  let partner =
    match v.kind with
    | Protocol.Missed_order { earlier; _ } -> Hashtbl.find_opt msg_action earlier
    | Protocol.False_order { a; _ } -> Hashtbl.find_opt msg_action a
    | _ -> None
  in
  let seeds = (len - 1) :: Option.to_list partner in
  let keep = Array.make len false in
  let s = ref 0 in
  let mask ps = List.fold_left (fun acc p -> acc lor (1 lsl p)) 0 ps in
  for i = len - 1 downto 0 do
    let ps = mask (Protocol.participants arr.(i)) in
    if List.mem i seeds || !s land ps <> 0 then begin
      keep.(i) <- true;
      s := !s lor ps
    end
  done;
  (* Internal events never touch a vector; they only pad the witness. *)
  List.filteri (fun i _ -> keep.(i)) actions
  |> List.filter (function Protocol.Internal _ -> false | _ -> true)
  |> drop_idle_faults

let build_witness m (v : Protocol.violation) actions =
  let procs = Protocol.n m in
  let mutation = (Protocol.config m).Protocol.mutation in
  match v.kind with
  | Protocol.Deadlock _ ->
      (* A deadlock needs the whole system as context: the witness keeps
         the original scripts, which `synts lint` re-explores. *)
      let st = Protocol.run_schedule m actions in
      {
        rule = rule_of v;
        detail = v.detail;
        witness =
          {
            Witness.rule = rule_of v;
            detail = v.detail;
            procs;
            mutation;
            scripts = Protocol.scripts m;
            actions;
            stamps = Protocol.stamps st;
          };
      }
  | _ -> (
      let attempt schedule =
        Option.map
          (fun ((v2 : Protocol.violation), st, m2) ->
            {
              rule = rule_of v2;
              detail = v2.detail;
              witness =
                {
                  Witness.rule = rule_of v2;
                  detail = v2.detail;
                  procs;
                  mutation;
                  scripts = Protocol.scripts m2;
                  actions = schedule;
                  stamps = Protocol.stamps st;
                };
            })
          (rederive ~procs ~mutation schedule)
      in
      let shrunk = shrink v actions in
      match attempt shrunk with
      | Some w -> w
      | None -> (
          match attempt (drop_idle_faults actions) with
          | Some w -> w
          | None ->
              (* Last resort: the schedule as explored, stamps from the
                 original model. *)
              let st = Protocol.run_schedule m actions in
              {
                rule = rule_of v;
                detail = v.detail;
                witness =
                  {
                    Witness.rule = rule_of v;
                    detail = v.detail;
                    procs;
                    mutation;
                    scripts = Protocol.scripts m;
                    actions;
                    stamps = Protocol.stamps st;
                  };
              }))

let check ?(budget = default_budget) ?(dpor = true) m =
  let sys = Protocol.system m in
  let terminals = ref 0 and oracle_checked = ref 0 in
  let found = ref None in
  let visit st ~path ~enabled =
    match Protocol.violation st with
    | Some v ->
        found := Some (v, List.rev path);
        Explorer.Stop
    | None ->
        if Protocol.finished m st then begin
          incr terminals;
          if !oracle_checked < oracle_limit then begin
            incr oracle_checked;
            let chron = List.rev path in
            match
              Trace.of_steps ~n:(Protocol.n m)
                (Protocol.steps_of_actions chron)
            with
            | Error _ -> Explorer.Continue
            | Ok tr ->
                let verdict =
                  Validate.message_timestamps tr (Protocol.stamps st)
                in
                if Validate.ok verdict then Explorer.Continue
                else begin
                  let kind, detail =
                    match verdict.Validate.examples with
                    | (i, j) :: _ when verdict.Validate.missed_orders > 0 ->
                        ( Protocol.Missed_order { earlier = i; later = j },
                          Printf.sprintf
                            "oracle poset orders messages #%d and #%d but \
                             the stamps do not" i j )
                    | (i, j) :: _ ->
                        ( Protocol.False_order { a = i; b = j },
                          Printf.sprintf
                            "stamps order messages #%d and #%d but the \
                             oracle poset does not" i j )
                    | [] ->
                        ( Protocol.False_order { a = 0; b = 0 },
                          "oracle poset disagrees with the stamps" )
                  in
                  found :=
                    Some
                      ( { Protocol.kind; recovery = false; detail },
                        chron );
                  Explorer.Stop
                end
          end
          else Explorer.Continue
        end
        else if enabled = [] then begin
          let blocked = Protocol.blocked m st in
          found :=
            Some
              ( {
                  Protocol.kind = Protocol.Deadlock { blocked };
                  recovery = false;
                  detail =
                    Printf.sprintf "schedule deadlocks with %s blocked"
                      (String.concat ", "
                         (List.map (Printf.sprintf "P%d") blocked));
                },
                List.rev path );
          Explorer.Stop
        end
        else Explorer.Continue
  in
  (* --no-dpor is the honest baseline: no sleep sets and no state
     hashing, i.e. plain enumeration of the schedule tree. *)
  let stats = Explorer.run ~budget ~hashing:dpor ~dpor ~visit sys in
  let violation = Option.map (fun (v, a) -> build_witness m v a) !found in
  Tm.Counter.incr m_runs;
  Tm.Counter.add m_states stats.Explorer.expanded;
  Tm.Counter.add m_transitions stats.Explorer.transitions;
  Tm.Counter.add m_hash_hits stats.Explorer.hash_hits;
  Tm.Counter.add m_sleep_pruned stats.Explorer.sleep_pruned;
  if violation <> None then Tm.Counter.incr m_violations;
  {
    config = Protocol.config m;
    dpor;
    budget;
    stats;
    terminals = !terminals;
    oracle_checked = !oracle_checked;
    violation;
  }

let findings r =
  let fs = ref [] in
  if r.stats.Explorer.truncated then
    fs :=
      Rules.finding "model/state-budget" Finding.Global
        (Printf.sprintf
           "state budget %d exhausted after %d states; verdicts cover only \
            the explored schedules" r.budget r.stats.Explorer.expanded)
      :: !fs;
  (match r.violation with
  | Some v -> fs := Rules.finding v.rule Finding.Global v.detail :: !fs
  | None -> ());
  !fs

(* -- cross-validation ------------------------------------------------ *)

type replay = {
  sanitizer : Finding.t list;
  runtime_messages : int;
  runtime_divergences : int;
}

module R = Runtime.Make (struct
  type msg = unit
end)

let replay (w : Witness.t) =
  match Witness.trace w with
  | Error e -> Error e
  | Ok tr -> (
      let d = Decomposition.best (Trace.topology tr) in
      let sanitizer = Sanitizer.check_trace d tr w.Witness.stamps in
      let programs =
        Array.map
          (fun script (api : R.api) ->
            List.iter
              (function
                | Script.Send_to q -> ignore (api.send q ())
                | Script.Recv_from q -> ignore (api.recv_from q)
                | Script.Recv_any -> ignore (api.recv ())
                | Script.Internal -> api.internal ())
              script)
          (Script.of_trace tr)
      in
      let collected = ref [] in
      match
        R.replay ~decomposition:d
          ~on_stamp:(fun ~src:_ ~dst:_ v -> collected := v :: !collected)
          ~trace:tr programs
      with
      | (_ : R.outcome) ->
          let rt = Array.of_list (List.rev !collected) in
          let n_rt = Array.length rt
          and n_w = Array.length w.Witness.stamps in
          let divergences = ref (abs (n_rt - n_w)) in
          for i = 0 to min n_rt n_w - 1 do
            let wv = w.Witness.stamps.(i) in
            if Vector.size rt.(i) <> Vector.size wv then incr divergences
            else if not (Vector.equal rt.(i) wv) then incr divergences
          done;
          Ok
            {
              sanitizer;
              runtime_messages = n_rt;
              runtime_divergences = !divergences;
            }
      | exception R.Replay_divergence e ->
          Error ("runtime replay diverged: " ^ e))
