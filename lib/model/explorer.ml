type ('s, 'a) system = {
  initial : 's;
  enabled : 's -> 'a list;
  step : 's -> 'a -> 's;
  key : 's -> string;
  action_key : 'a -> string;
  independent : 'a -> 'a -> bool;
}

type decision = Continue | Prune | Stop

type stats = {
  expanded : int;
  transitions : int;
  hash_hits : int;
  sleep_pruned : int;
  truncated : bool;
}

exception Stop_search

let run ?(budget = 1_000_000) ?(hashing = true) ?(dpor = false) ~visit sys =
  let expanded = ref 0
  and transitions = ref 0
  and hash_hits = ref 0
  and sleep_pruned = ref 0
  and truncated = ref false in
  (* Canonical state key -> sorted action keys of the sleep set the state
     was last expanded with. *)
  let visited : (string, string list) Hashtbl.t = Hashtbl.create 1024 in
  let sleep_keys sleep =
    List.sort_uniq compare (List.map sys.action_key sleep)
  in
  let subset small big = List.for_all (fun x -> List.mem x big) small in
  let expand state path sleep explore =
    if !expanded >= budget then begin
      truncated := true;
      `Over_budget
    end
    else begin
      incr expanded;
      let en = sys.enabled state in
      (match visit state ~path ~enabled:en with
      | Stop -> raise Stop_search
      | Prune -> ()
      | Continue ->
          if dpor then begin
            (* Godefroid sleep sets: an explored action sleeps for its
               later siblings and stays asleep along independent paths. *)
            let cur = ref sleep in
            List.iter
              (fun a ->
                let ak = sys.action_key a in
                if List.exists (fun b -> sys.action_key b = ak) !cur then
                  incr sleep_pruned
                else begin
                  incr transitions;
                  explore (sys.step state a) (a :: path)
                    (List.filter (fun b -> sys.independent a b) !cur);
                  cur := a :: !cur
                end)
              en
          end
          else
            List.iter
              (fun a ->
                incr transitions;
                explore (sys.step state a) (a :: path) [])
              en);
      `Expanded
    end
  in
  let rec explore state path sleep =
    if not hashing then ignore (expand state path sleep explore)
    else begin
      let k = sys.key state in
      let sk = sleep_keys sleep in
      match Hashtbl.find_opt visited k with
      | Some stored when subset stored sk ->
          (* Everything we would explore here was already explored under
             weaker (or equal) sleep constraints. *)
          incr hash_hits
      | Some stored ->
          (* Reached again with a weaker sleep constraint: re-expand with
             the intersection so actions slept on either visit alone are
             covered, and remember the refinement. *)
          let sleep =
            List.filter (fun a -> List.mem (sys.action_key a) stored) sleep
          in
          if expand state path sleep explore = `Expanded then
            Hashtbl.replace visited k (sleep_keys sleep)
      | None ->
          if expand state path sleep explore = `Expanded then
            Hashtbl.replace visited k sk
    end
  in
  (try explore sys.initial [] [] with Stop_search -> ());
  {
    expanded = !expanded;
    transitions = !transitions;
    hash_hits = !hash_hits;
    sleep_pruned = !sleep_pruned;
    truncated = !truncated;
  }
