(** Counterexample schedules, serialized.

    A witness is the checker's shrunk evidence for one violation: the
    schedule (including crash/recover transitions), the stamps the
    protocol derived along it, the mutation that was active, and the
    process system it ran against. The [synts-witness 1] text format
    carries all of it, so a witness file is self-contained: [synts lint]
    re-derives the verdict from the raw materials (sanitizer replay of
    the stamps for protocol violations, rendezvous exploration of the
    scripts for deadlocks) without trusting the checker. *)

type t = {
  rule : string;  (** The [model/*] rule id the schedule violates. *)
  detail : string;  (** One-line description of the violation. *)
  procs : int;
  mutation : Protocol.mutation option;
  scripts : Synts_net.Script.t array;
      (** The system the schedule belongs to (shrunk projection for stamp
          violations, the full system for deadlocks). *)
  actions : Protocol.action list;  (** Chronological schedule. *)
  stamps : Synts_clock.Vector.t array;
      (** Stamps of the schedule's messages, by completion order. *)
}

val trace : t -> (Synts_sync.Trace.t, string) result
(** The schedule as a synchronous trace (crash/recover dropped). *)

val events : t -> int
(** Schedule length. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val save : string -> t -> unit
val load : string -> (t, string) result

val is_witness_text : string -> bool
(** Does the text lead with the [synts-witness 1] header? (Format
    sniffing for [synts lint].) *)
