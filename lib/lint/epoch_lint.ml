module Membership = Synts_graph.Membership

let audit m =
  let fs = ref [] in
  let add rule epoch msg =
    fs := Rules.finding rule (Finding.Epoch epoch) msg :: !fs
  in
  let history = Membership.history m in
  List.iter
    (fun (i : Membership.epoch_info) ->
      if i.live > i.bound then
        add "epoch/size-bound" i.epoch
          (Printf.sprintf
             "%d live components after %s, min(beta(G), N-2) allows %d"
             i.live i.delta i.bound))
    history;
  (* Which target epochs were opened by a compaction (the only remaps
     allowed to retire or renumber slots). *)
  let compacted =
    List.filter_map
      (fun (i : Membership.epoch_info) ->
        if i.compacted then Some i.epoch else None)
      history
  in
  let remaps = Membership.remaps m in
  let prev_to = ref None in
  List.iteri
    (fun i (r : Membership.remap) ->
      let ep = r.from_epoch in
      if ep <> i then
        add "epoch/remap-consistency" ep
          (Printf.sprintf "remap %d claims source epoch %d" i ep);
      if Array.length r.map <> r.from_dim then
        add "epoch/remap-consistency" ep
          (Printf.sprintf "remap %d->%d has %d entries for width %d" ep (ep + 1)
             (Array.length r.map) r.from_dim);
      (match !prev_to with
      | Some d when d <> r.from_dim ->
          add "epoch/remap-consistency" ep
            (Printf.sprintf
               "remap %d->%d starts from width %d but the previous step ended \
                at %d"
               ep (ep + 1) r.from_dim d)
      | _ -> ());
      prev_to := Some r.to_dim;
      let is_compaction = List.mem (ep + 1) compacted in
      let seen = Hashtbl.create 16 in
      Array.iteri
        (fun s target ->
          if target < 0 then begin
            if not is_compaction then
              add "epoch/remap-consistency" ep
                (Printf.sprintf
                   "slot %d retired outside a compaction (remap %d->%d)" s ep
                   (ep + 1))
          end
          else if target >= r.to_dim then
            add "epoch/remap-consistency" ep
              (Printf.sprintf "slot %d maps to %d, past target width %d" s
                 target r.to_dim)
          else begin
            if Hashtbl.mem seen target then
              add "epoch/remap-consistency" ep
                (Printf.sprintf "slots alias: %d and %d both map to %d"
                   (Hashtbl.find seen target) s target);
            Hashtbl.replace seen target s;
            if (not is_compaction) && target <> s then
              add "epoch/remap-consistency" ep
                (Printf.sprintf
                   "slot %d renumbered to %d outside a compaction (remap \
                    %d->%d)"
                   s target ep (ep + 1))
          end)
        r.map)
    remaps;
  (match !prev_to with
  | Some d when d <> Membership.width m ->
      add "epoch/remap-consistency" (Membership.epoch m)
        (Printf.sprintf
           "remap chain ends at width %d but the membership is at width %d" d
           (Membership.width m))
  | _ -> ());
  List.rev !fs
