module Trace = Synts_sync.Trace
module Async_trace = Synts_sync.Async_trace
module Synchronous = Synts_sync.Synchronous
module Graph = Synts_graph.Graph

let check_steps ~n steps =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  if n < 1 then
    add
      (Rules.finding "trace/process-range" Finding.Global
         (Printf.sprintf "process count %d; a trace needs at least one process"
            n));
  List.iteri
    (fun i step ->
      let bad p role =
        if p < 0 || p >= n then
          add
            (Rules.finding "trace/process-range" (Finding.Step i)
               (Printf.sprintf "%s P%d is outside 0..%d" role p (n - 1)))
      in
      match step with
      | Trace.Send (src, dst) ->
          bad src "sender";
          bad dst "receiver";
          if src = dst then
            add
              (Rules.finding "trace/self-message" (Finding.Step i)
                 (Printf.sprintf
                    "message P%d -> P%d: a synchronous message needs two \
                     distinct endpoints"
                    src dst))
      | Trace.Local p -> bad p "process")
    steps;
  List.rev !fs

(* ---------- asynchronous realizability ---------- *)

(* Direct precedence digraph over message ids; adjacency from the
   consecutive per-process pairs (their closure is the full relation). *)
let direct_adjacency at =
  let k = Async_trace.message_count at in
  let adj = Array.make k [] in
  List.iter
    (fun (m1, m2) -> adj.(m1) <- m2 :: adj.(m1))
    (Synchronous.direct_message_pairs at);
  adj

let crown_witness at =
  let k = Async_trace.message_count at in
  let adj = direct_adjacency at in
  (* DFS cycle detection with an explicit path for the witness. *)
  let state = Array.make k `White in
  let cycle = ref None in
  let rec dfs path m =
    if !cycle = None then begin
      state.(m) <- `Grey;
      List.iter
        (fun m' ->
          if !cycle = None then
            match state.(m') with
            | `Grey ->
                (* Path back to m' closes the cycle. *)
                let rec take = function
                  | [] -> []
                  | x :: rest -> if x = m' then [ x ] else x :: take rest
                in
                cycle := Some (List.rev (take (m :: path)))
            | `White -> dfs (m :: path) m'
            | `Black -> ())
        adj.(m);
      if !cycle = None then state.(m) <- `Black
    end
  in
  for m = 0 to k - 1 do
    if state.(m) = `White then dfs [] m
  done;
  !cycle

let check_async at =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let n = Async_trace.n at in
  (* FIFO: for each ordered pair (p, q), the order in which q receives
     p's messages must equal the order in which p sent them. *)
  let sends = Hashtbl.create 16 and recvs = Hashtbl.create 16 in
  let push tbl key m =
    Hashtbl.replace tbl key (m :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  for p = 0 to n - 1 do
    List.iter
      (fun ev ->
        match ev with
        | Async_trace.ASend m -> push sends (p, Async_trace.receiver at m) m
        | Async_trace.ARecv m -> push recvs (Async_trace.sender at m, p) m
        | Async_trace.ALocal -> ())
      (Async_trace.history at p)
  done;
  Hashtbl.iter
    (fun (p, q) ms ->
      let sent = List.rev ms in
      let received = List.rev (Option.value ~default:[] (Hashtbl.find_opt recvs (p, q))) in
      (* Both lists hold exactly the p->q messages; compare orders. *)
      let order l = List.mapi (fun i m -> (m, i)) l in
      let pos = order received in
      let rec scan last = function
        | [] -> ()
        | m :: rest -> (
            match List.assoc_opt m pos with
            | None -> scan last rest
            | Some i ->
                (match last with
                | Some (m0, i0) when i < i0 ->
                    add
                      (Rules.finding "trace/fifo" (Finding.Message m)
                         (Printf.sprintf
                            "P%d -> P%d: m%d was sent after m%d but received \
                             before it"
                            p q m m0))
                | _ -> ());
                scan (Some (m, i)) rest)
      in
      scan None sent)
    sends;
  (* Crown detection: a cycle in the direct precedence digraph. *)
  (match crown_witness at with
  | None -> ()
  | Some cycle ->
      let head = match cycle with m :: _ -> m | [] -> 0 in
      add
        (Rules.finding "trace/crown" (Finding.Message head)
           (Printf.sprintf
              "not synchronously realizable: crown %s"
              (String.concat " > "
                 (List.map (fun m -> Printf.sprintf "m%d" m)
                    (cycle @ [ head ]))))));
  List.rev !fs

let check ?topology trace =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let n = Trace.n trace in
  if Trace.message_count trace = 0 then
    add (Rules.finding "trace/empty" Finding.Global "the trace has no messages");
  (* Defensive re-check of the constructor's invariants. *)
  List.iter (fun f -> add f) (check_steps ~n (Trace.steps trace));
  for p = 0 to n - 1 do
    let history = Trace.process_history trace p in
    if history = [] then
      add
        (Rules.finding "trace/isolated-process" (Finding.Process p)
           (Printf.sprintf "P%d never sends, receives or acts" p));
    let pos = function
      | Trace.Msg m -> m.Trace.pos
      | Trace.Int e -> e.Trace.pos
    in
    let rec mono index = function
      | a :: (b :: _ as rest) ->
          if pos b <= pos a then
            add
              (Rules.finding "trace/order"
                 (Finding.Event { proc = p; index = index + 1 })
                 (Printf.sprintf
                    "P%d: occurrence %d (position %d) does not come after \
                     occurrence %d (position %d)"
                    p (index + 1) (pos b) index (pos a)));
          mono (index + 1) rest
      | _ -> ()
    in
    mono 0 history
  done;
  (match topology with
  | None -> ()
  | Some g ->
      Array.iter
        (fun (m : Trace.message) ->
          let src = m.Trace.src and dst = m.Trace.dst in
          let in_range p = p >= 0 && p < Graph.n g in
          if
            (not (in_range src)) || (not (in_range dst)) || src = dst
            || not (Graph.has_edge g src dst)
          then
            add
              (Rules.finding "trace/unknown-channel" (Finding.Message m.Trace.id)
                 (Printf.sprintf
                    "m%d travels P%d -> P%d but the topology has no edge \
                     (%d,%d)"
                    m.Trace.id src dst (min src dst) (max src dst))))
        (Trace.messages trace));
  (* Realizability proof: the asynchronous view must be crown-free. *)
  List.iter (fun f -> add f) (check_async (Async_trace.of_trace trace));
  List.rev !fs
