type meta = {
  id : string;
  severity : Finding.severity;
  summary : string;
  rationale : string;
  paper : string;
}

let e = Finding.Error
let w = Finding.Warning
let i = Finding.Info

let all =
  [
    {
      id = "trace/parse";
      severity = e;
      summary = "the input could not be parsed into a trace or system";
      rationale =
        "A trace file that fails to parse (or whose steps are rejected by \
         the trace constructor) cannot be analyzed at all; every guarantee \
         downstream is void. The parse error is surfaced as a finding so \
         lint pipelines fail closed instead of crashing.";
      paper = "Input validation; no specific paper claim.";
    };
    {
      id = "trace/process-range";
      severity = e;
      summary = "a step names a process outside 0..N-1";
      rationale =
        "Every message endpoint and internal event must name one of the N \
         declared processes. A dangling process id silently indexes out of \
         every derived array (local vectors, histories, timestamps) and \
         turns stamping into undefined behaviour.";
      paper = "Paper Sec. 2 model: a fixed set of N processes.";
    };
    {
      id = "trace/self-message";
      severity = e;
      summary = "a message has the same process as sender and receiver";
      rationale =
        "Synchronous messages atomically involve two distinct endpoint \
         processes; a self-message has no rendezvous partner, corresponds \
         to no channel of the topology, and breaks the one-edge-per-pair \
         mapping the decomposition relies on.";
      paper = "Paper Sec. 2 model; topology edges are irreflexive.";
    };
    {
      id = "trace/order";
      severity = e;
      summary = "a process's local history is not strictly increasing";
      rationale =
        "Per-process event orders are projections of the global sequence, \
         so local positions must be strictly increasing. A violation means \
         the trace data structure is internally corrupt and every poset \
         and clock built from it is meaningless.";
      paper = "Paper Sec. 2: local orders are total.";
    };
    {
      id = "trace/empty";
      severity = i;
      summary = "the trace contains no messages";
      rationale =
        "Not an error — but every timestamping question is vacuous, so an \
         empty trace in a pipeline usually indicates a generator or \
         recording bug worth knowing about.";
      paper = "None.";
    };
    {
      id = "trace/isolated-process";
      severity = i;
      summary = "a declared process never participates in any event";
      rationale =
        "Silent processes are legal but often indicate an off-by-one in \
         the declared process count; they also inflate Fidge-Mattern \
         baselines (N components) without contributing any ordering.";
      paper = "None.";
    };
    {
      id = "trace/unknown-channel";
      severity = e;
      summary = "a message uses a channel absent from the topology";
      rationale =
        "The online algorithm dedicates vector components to edge groups \
         of the agreed topology; a message over an undeclared channel \
         belongs to no group, so its increment is undefined and Theorem 4 \
         no longer applies.";
      paper = "Paper Def. 2 and Theorem 4 (decomposition covers E).";
    };
    {
      id = "trace/fifo";
      severity = w;
      summary = "two same-channel messages are received out of send order";
      rationale =
        "Non-FIFO delivery between one ordered pair of processes reverses \
         the two endpoints' views of the same message pair. In a \
         computation claimed synchronous this is always part of a crown \
         and is reported separately as the most actionable witness.";
      paper =
        "Charron-Bost, Mattern & Tel: RSC computations are FIFO; paper \
         Sec. 2.";
    };
    {
      id = "trace/crown";
      severity = e;
      summary = "the computation contains a crown (not synchronizable)";
      rationale =
        "A computation is realizable with synchronous (instantaneous) \
         messages iff its direct message-precedence digraph is acyclic - \
         equivalently, iff it is crown-free. On a crowned input the order \
         (M, \\mapsto) is not a partial order and no vector assignment can \
         encode it; stamping must not run.";
      paper =
        "Paper Sec. 2 (vertical-arrow drawability); Charron-Bost et al. \
         crown criterion; cf. Skeen-style realizability specs.";
    };
    {
      id = "decomp/malformed-group";
      severity = e;
      summary = "a group is not a well-formed star or triangle";
      rationale =
        "Each group must be a star (a center with a non-empty, duplicate- \
         free leaf set excluding the center) or a triangle on three \
         distinct vertices. A malformed group breaks the bijection between \
         channels and vector components.";
      paper = "Paper Def. 2 (stars and triangles).";
    };
    {
      id = "decomp/foreign-edge";
      severity = e;
      summary = "a group contains an edge that is not in the topology";
      rationale =
        "Groups must partition exactly the topology's edge set E. An edge \
         outside E wastes a component at best; at worst it signals the \
         decomposition was computed for a different topology than the one \
         being stamped.";
      paper = "Paper Def. 2: {E1..Ed} is a partition of E.";
    };
    {
      id = "decomp/duplicate-edge";
      severity = e;
      summary = "an edge is covered by more than one group";
      rationale =
        "If an edge lies in two groups, the protocol's increment step is \
         ambiguous: the two endpoints may bump different components and \
         derive different timestamps for the same message, breaking the \
         agreement invariant of Figure 5.";
      paper = "Paper Def. 2 (partition) and Fig. 5 lines 05-07.";
    };
    {
      id = "decomp/uncovered-edge";
      severity = e;
      summary = "a topology edge is covered by no group";
      rationale =
        "A message over an uncovered edge has no component to increment; \
         the online algorithm either crashes or silently produces vectors \
         that miss orderings through that channel. Coverage of every edge \
         exactly once is the precondition of Theorem 4.";
      paper = "Paper Def. 2 and Theorem 4.";
    };
    {
      id = "decomp/size-bound";
      severity = w;
      summary = "the decomposition exceeds the min(beta(G), N-2) guarantee";
      rationale =
        "Theorem 5 guarantees a decomposition of size at most min(beta(G), \
         N-2) (beta = minimum vertex cover); the Figure 7 algorithm stays \
         within twice the optimum (Theorem 6). A decomposition above the \
         constructive bound is wasting timestamp components - rebuild it \
         with the paper algorithm or a vertex-cover star decomposition.";
      paper = "Paper Theorems 5-7.";
    };
    {
      id = "decomp/loose";
      severity = i;
      summary = "bound-tightness report: gap between size and lower bound";
      rationale =
        "A maximal matching lower-bounds the optimal decomposition size \
         (matched edges must lie in pairwise distinct groups). This \
         informational finding reports d against that lower bound and \
         against min(beta(G), N-2), quantifying how much of the timestamp \
         width is provably necessary.";
      paper = "Paper Theorems 5-7; matching bound.";
    };
    {
      id = "epoch/size-bound";
      severity = w;
      summary = "a membership epoch's live components exceed min(beta(G), N-2)";
      rationale =
        "Under churn the incremental maintenance must keep every epoch's \
         decomposition within the same min(beta(G), N-2) guarantee a \
         from-scratch rebuild would achieve (falling back to a full \
         recompute when local repair cannot). An epoch above the bound \
         means the repair heuristic leaked width: timestamps carry more \
         components than the topology of that epoch justifies.";
      paper = "Paper Theorems 5-7, applied per membership epoch.";
    };
    {
      id = "epoch/remap-consistency";
      severity = e;
      summary = "the epoch remap chain is not a width-consistent injection";
      rationale =
        "Exact comparison of stamps across epochs relies on the remap \
         chain: each step must map every old slot either to a distinct \
         slot below the new width or retire it (compaction only), and \
         consecutive steps must agree on the widths they hand each other. \
         A hole in the chain silently aliases or drops clock components, \
         so translated stamps stop being comparable and Equation (1) \
         fails without any visible protocol error.";
      paper = "Eq. (1) exactness across membership epochs.";
    };
    {
      id = "csp/peer-range";
      severity = e;
      summary = "a script intent targets an invalid process";
      rationale =
        "A send or directed receive naming a process outside 0..N-1, or \
         the process itself, can never rendezvous: the runtime fails the \
         fiber at execution time, and the intent invalidates any static \
         matching argument before that.";
      paper = "CSP rendezvous semantics (paper Sec. 1 target model).";
    };
    {
      id = "csp/unmatched-send";
      severity = e;
      summary = "sends to a process exceed its receive capacity";
      rationale =
        "Synchronous sends block until matched. If the total number of \
         sends directed at a process exceeds its directed receives from \
         the matching peers plus its wildcard receives, some sender blocks \
         forever under every schedule.";
      paper = "CSP rendezvous semantics; counting argument.";
    };
    {
      id = "csp/unmatched-recv";
      severity = e;
      summary = "receives at a process exceed the sends directed at it";
      rationale =
        "A directed receive from p completes only if p sends; a wildcard \
         receive needs some sender. If a process's receive count exceeds \
         the sends aimed at it (per peer for directed receives, in total \
         for wildcards), some receiver blocks forever under every \
         schedule.";
      paper = "CSP rendezvous semantics; counting argument.";
    };
    {
      id = "csp/deadlock";
      severity = e;
      summary = "every schedule of the scripts deadlocks";
      rationale =
        "Exploring the rendezvous-matching state space found no schedule \
         that completes all scripts: every maximal execution ends with \
         blocked processes, i.e. the program deadlocks deterministically. \
         The finding names a blocked wait-for cycle as witness.";
      paper = "Static wait-for-graph / state-space analysis of rendezvous.";
    };
    {
      id = "csp/may-deadlock";
      severity = w;
      summary = "some schedule of the scripts deadlocks";
      rationale =
        "The matching state space contains both completing and deadlocking \
         executions - typically a wildcard-receive race. The program works \
         under lucky schedules and hangs under others; the finding names a \
         reachable blocked state's wait-for cycle.";
      paper = "Static wait-for-graph / state-space analysis of rendezvous.";
    };
    {
      id = "csp/analysis-budget";
      severity = i;
      summary = "deadlock exploration was truncated by its state budget";
      rationale =
        "The rendezvous state space grows with the antichain structure of \
         the scripts; past the exploration budget the analysis degrades to \
         the schedules it did visit. Absence of a deadlock finding is then \
         only evidence, not proof.";
      paper = "None (analysis engineering).";
    };
    {
      id = "model/exactness";
      severity = e;
      summary = "a schedule exists whose stamps do not encode the poset";
      rationale =
        "The model checker found a reachable schedule of the Figure 5 \
         msg/ack protocol in which some message pair's timestamps \
         disagree with the causal relation - a related pair left \
         unordered or a concurrent pair ordered, breaking Equation (1). \
         Because the checker quantifies over every interleaving, \
         matching choice and fault placement, this is a protocol bug, \
         not scheduler luck; the witness schedule replays the failure \
         deterministically.";
      paper = "Paper Fig. 5 and Theorem 4 (Equation (1)).";
    };
    {
      id = "model/agreement";
      severity = e;
      summary = "a schedule exists where sender and receiver stamps differ";
      rationale =
        "In Figure 5 both endpoints of a rendezvous derive the message's \
         timestamp from the same two vectors: the sender merges the \
         acknowledged pre-merge receiver vector, the receiver merges the \
         piggybacked sender vector, and both increment the channel's \
         group component - so the two derivations are equal by \
         construction. A schedule where they differ (e.g. an ack carrying \
         a post-merge vector) gives the two parties inconsistent views of \
         the same message and poisons every later comparison.";
      paper = "Paper Fig. 5 lines 03-07 (agreement invariant).";
    };
    {
      id = "model/deadlock";
      severity = e;
      summary = "the model reached a state with work left and nothing enabled";
      rationale =
        "Exhaustive exploration of the rendezvous/matching/fault state \
         space reached a state where some process still has script steps \
         but no transition is enabled. Unlike the budget-bounded \
         csp/deadlock heuristic, this verdict quantifies over every \
         schedule of the model, so the witness schedule is a definite \
         hang of the system under test.";
      paper = "Paper Sec. 2 model; crown-free topologies deadlock-free.";
    };
    {
      id = "model/recovery-loss";
      severity = e;
      summary = "a crash/recover schedule loses or corrupts stamp history";
      rationale =
        "The PR 5 crash/recover extension checkpoints each process's \
         vector at every completed rendezvous, so a recovering process \
         resumes with exactly the causal history it had - Figure 5 stamps \
         stay exact under any crash placement. A violation here means \
         recovery restored too little (lost history makes later stamps \
         miss orderings) or too much (duplicated history orders \
         concurrent messages); the witness names the crashed process and \
         the offending message pair.";
      paper = "Paper Fig. 5 under the PR 5 crash/recover extension.";
    };
    {
      id = "model/state-budget";
      severity = i;
      summary = "model exploration was truncated by its state budget";
      rationale =
        "The schedule space grows exponentially with events and fault \
         budget; past the configured state budget the checker degrades \
         from proof over all schedules to evidence over the explored \
         ones. Raise --budget, shrink --procs/--events, or keep --dpor \
         on (sleep sets plus state hashing) to restore exhaustiveness.";
      paper = "None (analysis engineering).";
    };
    {
      id = "san/dimension";
      severity = e;
      summary = "an observed timestamp has the wrong number of components";
      rationale =
        "Every timestamp must have exactly one component per edge group of \
         the agreed decomposition. A dimension mismatch means sender and \
         receiver disagree on the decomposition itself, and no comparison \
         is meaningful.";
      paper = "Paper Fig. 5 (vectors of size d).";
    };
    {
      id = "san/unknown-channel";
      severity = e;
      summary = "a stamped message travelled over an undecomposed channel";
      rationale =
        "The sanitizer cannot attribute the message to an edge group, so \
         the mandatory increment (Fig. 5 line 06) has no target component. \
         The run is using a decomposition of the wrong topology.";
      paper = "Paper Def. 2 and Fig. 5.";
    };
    {
      id = "san/stale-component";
      severity = e;
      summary = "a timestamp component went backwards";
      rationale =
        "Local vectors only grow: each message's timestamp is the \
         componentwise maximum of both endpoints' vectors plus an \
         increment, so every component must dominate both endpoints' \
         previous values. A shrinking component is the classic symptom of \
         a lost or reordered clock update and destroys the order \
         embedding.";
      paper =
        "Paper Fig. 5 lines 05-07; monotonicity invariant as exploited by \
         Vaidya & Kulkarni 2016 (Efficient Timestamps for Capturing \
         Causality).";
    };
    {
      id = "san/mismatch";
      severity = e;
      summary = "a timestamp differs from the Figure 5 protocol's value";
      rationale =
        "Replaying the edge-clock protocol in the sanitizer's shadow state \
         yields the unique correct timestamp for each rendezvous: \
         max(v_src, v_dst) with the channel's group component incremented. \
         Any deviation - even one component - can flip a precedence answer \
         (Eq. 1) for some message pair.";
      paper = "Paper Fig. 5 and Theorem 4 (Equation (1)).";
    };
    {
      id = "fault/unobserved";
      severity = w;
      summary = "a plan-declared fault kind never fired during the run";
      rationale =
        "A chaos plan is a schedule input, and a robustness verdict is \
         only as strong as the faults that actually happened. A clause \
         that never fired — a partition window after the makespan, a \
         corruption probability that never rolled true, a crash aimed at \
         a process that was already done — means the run exercised less \
         than the plan claims. The finding names the idle fault kinds so \
         the plan can be tightened or the workload lengthened.";
      paper =
        "Fault schedules as first-class inputs, cf. deterministic \
         synchronizers under failures (arXiv:2305.06452).";
    };
  ]
  |> List.sort (fun a b -> compare a.id b.id)

let find id = List.find_opt (fun m -> m.id = id) all

let finding id loc msg =
  match find id with
  | None -> invalid_arg (Printf.sprintf "Rules.finding: unknown rule %S" id)
  | Some m -> Finding.make ~rule:id ~severity:m.severity loc msg

(* Classic two-row Levenshtein, for --explain suggestions. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggestions id =
  all
  |> List.map (fun m -> (edit_distance id m.id, m.id))
  |> List.sort compare
  |> List.filteri (fun i (d, _) -> i < 3 && d <= max 3 (String.length id / 2))
  |> List.map snd

let wrap width text =
  let words = String.split_on_char ' ' text in
  let b = Buffer.create (String.length text + 16) in
  let line = ref 0 in
  List.iter
    (fun w ->
      if w <> "" then begin
        let add = String.length w + if !line = 0 then 0 else 1 in
        if !line > 0 && !line + add > width then begin
          Buffer.add_char b '\n';
          line := 0
        end
        else if !line > 0 then begin
          Buffer.add_char b ' ';
          incr line
        end;
        Buffer.add_string b w;
        line := !line + String.length w
      end)
    words;
  Buffer.contents b

let explain id =
  match find id with
  | Some m ->
      Ok
        (Printf.sprintf "%s (%s)\n  %s\n\nRationale:\n%s\n\nEnforces:\n%s\n"
           m.id
           (Finding.severity_label m.severity)
           m.summary
           (wrap 72 m.rationale)
           (wrap 72 m.paper))
  | None ->
      let base = Printf.sprintf "unknown rule id %S" id in
      Error
        (match suggestions id with
        | [] ->
            base ^ "\nknown rules:\n  "
            ^ String.concat "\n  " (List.map (fun m -> m.id) all)
        | s -> base ^ "\ndid you mean:\n  " ^ String.concat "\n  " s)
