module Script = Synts_net.Script

type exploration = {
  completed : bool;
  stuck : int list option;
  truncated : bool;
}

let default_budget = 4096

(* Scripts as arrays, for O(1) head access during exploration. *)
let to_arrays scripts = Array.map Array.of_list scripts

(* Advance every process past its internal events (they never block). *)
let normalize scripts state =
  let state = Array.copy state in
  Array.iteri
    (fun p i ->
      let len = Array.length scripts.(p) in
      let i = ref i in
      while !i < len && scripts.(p).(!i) = Script.Internal do
        incr i
      done;
      state.(p) <- !i)
    state;
  state

let finished scripts state =
  let ok = ref true in
  Array.iteri
    (fun p i -> if i < Array.length scripts.(p) then ok := false)
    state;
  !ok

let head scripts state p =
  if state.(p) < Array.length scripts.(p) then Some scripts.(p).(state.(p))
  else None

(* Enabled rendezvous in a (normalized) state. *)
let transitions scripts state =
  let n = Array.length scripts in
  let moves = ref [] in
  for p = 0 to n - 1 do
    match head scripts state p with
    | Some (Script.Send_to q) when q >= 0 && q < n && q <> p -> (
        match head scripts state q with
        | Some (Script.Recv_from r) when r = p -> moves := (p, q) :: !moves
        | Some Script.Recv_any -> moves := (p, q) :: !moves
        | _ -> ())
    | _ -> ()
  done;
  List.rev !moves

let apply state (p, q) =
  let state = Array.copy state in
  state.(p) <- state.(p) + 1;
  state.(q) <- state.(q) + 1;
  state

let blocked scripts state =
  List.filter
    (fun p -> state.(p) < Array.length scripts.(p))
    (List.init (Array.length scripts) Fun.id)

(* Memoized search over matching states via the shared exploration
   engine (one engine, two clients: this deadlock analysis and the
   synts.model checker); returns the raw verdicts plus an example stuck
   state for witness extraction. State hashing reproduces the old
   memoized DFS exactly; sleep sets stay off so verdict order (and the
   stuck example chosen) is unchanged. *)
module Explorer = Synts_explorer.Explorer

let explore_states ?(budget = default_budget) raw_scripts =
  let scripts = to_arrays raw_scripts in
  let completed = ref false in
  let stuck_state = ref None in
  let sys =
    {
      Explorer.initial = normalize scripts (Array.make (Array.length scripts) 0);
      enabled = transitions scripts;
      step = (fun state mv -> normalize scripts (apply state mv));
      key =
        (fun state ->
          String.concat ","
            (List.map string_of_int (Array.to_list state)));
      action_key = (fun (p, q) -> Printf.sprintf "%d>%d" p q);
      independent =
        (fun (p, q) (r, s) -> p <> r && p <> s && q <> r && q <> s);
    }
  in
  let stats =
    Explorer.run ~budget ~hashing:true ~dpor:false
      ~visit:(fun state ~path:_ ~enabled ->
        if finished scripts state then completed := true
        else if enabled = [] && !stuck_state = None then
          stuck_state := Some state;
        Explorer.Continue)
      sys
  in
  (scripts, !completed, !stuck_state, stats.Explorer.truncated)

let explore ?budget raw_scripts =
  let scripts, completed, stuck_state, truncated =
    explore_states ?budget raw_scripts
  in
  {
    completed;
    stuck = Option.map (blocked scripts) stuck_state;
    truncated;
  }

(* Who a blocked process is waiting for in a stuck state. A wildcard
   receive waits on any process that could still send to it. *)
let waits_on scripts state p =
  match head scripts state p with
  | Some (Script.Send_to q) | Some (Script.Recv_from q) -> [ q ]
  | Some Script.Recv_any ->
      List.filter
        (fun q ->
          q <> p
          && Array.exists
               (fun intent -> intent = Script.Send_to p)
               (Array.sub scripts.(q) state.(q)
                  (Array.length scripts.(q) - state.(q))))
        (List.init (Array.length scripts) Fun.id)
  | _ -> []

(* Walk first wait-for edges from some blocked process until a repeat:
   the repeated suffix is a wait cycle. *)
let wait_cycle scripts state =
  match blocked scripts state with
  | [] -> None
  | start :: _ ->
      let n = Array.length scripts in
      let rec walk path p steps =
        if steps > n then None
        else if List.mem p path then
          (* Cycle = path from the first occurrence of p. *)
          let rec from = function
            | [] -> []
            | x :: rest -> if x = p then x :: rest else from rest
          in
          Some (from (List.rev (p :: path)))
        else
          match waits_on scripts state p with
          | q :: _ when q >= 0 && q < n -> walk (p :: path) q (steps + 1)
          | _ -> None
      in
      walk [] start 0

let pids ps = String.concat ", " (List.map (fun p -> Printf.sprintf "P%d" p) ps)

let cycle_text = function
  | None -> ""
  | Some cycle ->
      "; wait cycle " ^ String.concat " -> "
        (List.map (fun p -> Printf.sprintf "P%d" p) cycle)

let check ?budget raw_scripts =
  let n = Array.length raw_scripts in
  let fs = ref [] in
  let add f = fs := f :: !fs in
  (* 1. Intent sanity. *)
  let peer_errors = ref false in
  Array.iteri
    (fun p script ->
      List.iteri
        (fun index intent ->
          let bad q verb =
            peer_errors := true;
            add
              (Rules.finding "csp/peer-range"
                 (Finding.Event { proc = p; index })
                 (Printf.sprintf "P%d %s P%d, which is %s" p verb q
                    (if q = p then "itself" else "outside 0..N-1")))
          in
          match intent with
          | Script.Send_to q when q < 0 || q >= n || q = p -> bad q "sends to"
          | Script.Recv_from q when q < 0 || q >= n || q = p ->
              bad q "receives from"
          | _ -> ())
        script)
    raw_scripts;
  (* 2. Counting: capacity arguments that hold under every schedule. *)
  let sends = Array.make_matrix n n 0 in
  let recv_from = Array.make_matrix n n 0 in
  let recv_any = Array.make n 0 in
  Array.iteri
    (fun p script ->
      List.iter
        (fun intent ->
          match intent with
          | Script.Send_to q when q >= 0 && q < n && q <> p ->
              sends.(p).(q) <- sends.(p).(q) + 1
          | Script.Recv_from q when q >= 0 && q < n && q <> p ->
              recv_from.(p).(q) <- recv_from.(p).(q) + 1
          | Script.Recv_any -> recv_any.(p) <- recv_any.(p) + 1
          | _ -> ())
        script)
    raw_scripts;
  for q = 0 to n - 1 do
    let total_in = ref 0 and directed = ref 0 in
    for p = 0 to n - 1 do
      total_in := !total_in + sends.(p).(q);
      directed := !directed + recv_from.(q).(p);
      if recv_from.(q).(p) > sends.(p).(q) then
        add
          (Rules.finding "csp/unmatched-recv" (Finding.Process q)
             (Printf.sprintf
                "P%d expects %d message(s) from P%d but P%d only sends %d"
                q recv_from.(q).(p) p p sends.(p).(q)))
    done;
    let capacity = !directed + recv_any.(q) in
    if !total_in > capacity then
      add
        (Rules.finding "csp/unmatched-send" (Finding.Process q)
           (Printf.sprintf
              "%d message(s) are sent to P%d but it only receives %d (%d \
               directed + %d wildcard)"
              !total_in q capacity !directed recv_any.(q)))
    else if capacity > !total_in && recv_any.(q) > 0 && !directed <= !total_in
    then
      add
        (Rules.finding "csp/unmatched-recv" (Finding.Process q)
           (Printf.sprintf
              "P%d has %d receive(s) (%d directed + %d wildcard) but only %d \
               message(s) are sent to it"
              q capacity !directed recv_any.(q) !total_in))
  done;
  (* 3. Rendezvous deadlock, when the intents themselves are sane. *)
  if not !peer_errors then begin
    let scripts, completed, stuck_state, truncated =
      explore_states ?budget raw_scripts
    in
    (match stuck_state with
    | Some state when not completed ->
        add
          (Rules.finding "csp/deadlock" Finding.Global
             (Printf.sprintf "every explored schedule deadlocks with %s blocked%s"
                (pids (blocked scripts state))
                (cycle_text (wait_cycle scripts state))))
    | Some state ->
        add
          (Rules.finding "csp/may-deadlock" Finding.Global
             (Printf.sprintf
                "some schedules deadlock with %s blocked%s (others complete)"
                (pids (blocked scripts state))
                (cycle_text (wait_cycle scripts state))))
    | None -> ());
    if truncated then
      add
        (Rules.finding "csp/analysis-budget" Finding.Global
           "state budget exhausted; deadlock verdicts cover only the \
            explored schedules")
  end;
  List.rev !fs
