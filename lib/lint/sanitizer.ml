module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Trace = Synts_sync.Trace
module Tm = Synts_telemetry.Telemetry

let m_violations =
  Tm.Counter.v ~help:"Sanitizer findings of error severity"
    "lint.sanitizer_violations"

let m_observed =
  Tm.Counter.v ~help:"Message timestamps observed by sanitizers"
    "lint.sanitizer_observations"

type t = {
  decomposition : Decomposition.t;
  n : int;
  dim : int;
  local : Vector.t array;  (** Shadow vector per process. *)
  mutable seen : int;  (** Messages observed. *)
  mutable findings : Finding.t list;  (** Reversed. *)
}

let create decomposition ~n =
  let dim = Decomposition.size decomposition in
  {
    decomposition;
    n;
    dim;
    local = Array.init n (fun _ -> Vector.zero dim);
    seen = 0;
    findings = [];
  }

let record t f =
  t.findings <- f :: t.findings;
  if f.Finding.severity = Finding.Error then Tm.Counter.incr m_violations

let observe t ~src ~dst observed =
  let id = t.seen in
  t.seen <- t.seen + 1;
  Tm.Counter.incr m_observed;
  let in_range p = p >= 0 && p < t.n in
  if (not (in_range src)) || (not (in_range dst)) || src = dst then
    record t
      (Rules.finding "san/unknown-channel" (Finding.Message id)
         (Printf.sprintf "message P%d -> P%d names no valid channel" src dst))
  else if Vector.size observed <> t.dim then
    record t
      (Rules.finding "san/dimension" (Finding.Message id)
         (Printf.sprintf "timestamp has %d component(s), decomposition has %d"
            (Vector.size observed) t.dim))
  else
    match Decomposition.group_of_edge t.decomposition src dst with
    | exception Not_found ->
        record t
          (Rules.finding "san/unknown-channel" (Finding.Message id)
             (Printf.sprintf
                "channel (%d,%d) belongs to no edge group of the \
                 decomposition"
                (min src dst) (max src dst)))
    | group ->
        let expected = Vector.merge t.local.(src) t.local.(dst) in
        (* Monotonicity first: a shrinking component is the sharper
           diagnosis than a bare mismatch. *)
        let stale = ref None in
        for k = t.dim - 1 downto 0 do
          if observed.(k) < expected.(k) then stale := Some k
        done;
        Vector.incr expected group;
        (match !stale with
        | Some k ->
            record t
              (Rules.finding "san/stale-component" (Finding.Message id)
                 (Printf.sprintf
                    "component %d went backwards: observed %d < %d known to \
                     both P%d and P%d"
                    k observed.(k)
                    (expected.(k) - if k = group then 1 else 0)
                    src dst))
        | None ->
            if not (Vector.equal observed expected) then
              record t
                (Rules.finding "san/mismatch" (Finding.Message id)
                   (Printf.sprintf
                      "m%d P%d -> P%d: observed %s, Fig. 5 protocol derives %s"
                      id src dst
                      (Vector.to_string observed)
                      (Vector.to_string expected))));
        (* Adopt the observed vector (joined with the expectation) so one
           corruption is one finding, not a cascade. *)
        let adopted = Vector.merge expected observed in
        t.local.(src) <- Vector.copy adopted;
        t.local.(dst) <- adopted

let observe_internal _ ~proc:_ = ()

let hook t ~src ~dst v = observe t ~src ~dst v

let wrap t stamper ~src ~dst =
  let v = stamper ~src ~dst in
  observe t ~src ~dst v;
  v

let findings t = List.rev t.findings

let violations t =
  List.length
    (List.filter (fun f -> f.Finding.severity = Finding.Error) t.findings)

let messages_observed t = t.seen

let check_trace decomposition trace timestamps =
  let t = create decomposition ~n:(Trace.n trace) in
  if Array.length timestamps <> Trace.message_count trace then
    record t
      (Rules.finding "san/dimension" Finding.Global
         (Printf.sprintf "%d timestamp(s) for %d message(s)"
            (Array.length timestamps)
            (Trace.message_count trace)))
  else
    Array.iter
      (fun (m : Trace.message) ->
        observe t ~src:m.Trace.src ~dst:m.Trace.dst timestamps.(m.Trace.id))
      (Trace.messages trace);
  findings t
