(** The `synts.lint` engine: one call per analysis family, a whole-pipeline
    audit, reports, exit policies and telemetry.

    Rule catalog and [--explain] live in {!Rules}; the families are
    {!Trace_lint}, {!Decomp_lint}, {!Csp_lint} and the runtime
    {!Sanitizer}. This module composes them: {!audit} takes a trace and
    runs everything the paper's preconditions require before timestamps
    can be trusted — trace well-formedness and crown-freedom, the
    decomposition's Def. 2 obligations, the projected scripts' rendezvous
    deadlock analysis, and a sanitized online-stamping replay. *)

module Finding = Finding
module Rules = Rules
module Trace_lint = Trace_lint
module Decomp_lint = Decomp_lint
module Epoch_lint = Epoch_lint
module Csp_lint = Csp_lint
module Sanitizer = Sanitizer

val audit :
  ?decomposition:Synts_graph.Decomposition.t ->
  Synts_sync.Trace.t ->
  Finding.t list
(** The full pipeline over one trace. The topology is the trace's own
    communication graph; [decomposition] defaults to
    [Decomposition.best] of it. Runs, in order: {!Trace_lint.check} (with
    topology), {!Decomp_lint.check_decomposition},
    {!Csp_lint.check} on the projected scripts, and
    {!Sanitizer.check_trace} over a fresh online stamping. *)

val audit_scripts : Synts_net.Script.t array -> Finding.t list
(** The CSP family alone, for process-system files. *)

val audit_stamped :
  ?decomposition:Synts_graph.Decomposition.t ->
  Synts_sync.Trace.t ->
  Synts_clock.Vector.t array ->
  Finding.t list
(** {!audit} plus {!Sanitizer.check_trace} over {e externally observed}
    stamps (per message id) — the entry point for auditing a recorded run
    or a model-checker witness, where the timestamps under suspicion come
    from outside rather than from a fresh stamping. *)

type fail_on = [ `Error | `Warning | `Never ]

val exit_code : fail_on:fail_on -> Finding.t list -> int
(** 0, or 1 when a finding at or above the threshold exists. *)

val record : Finding.t list -> unit
(** Mirror severity counts into [synts.telemetry]
    (["lint.findings_error"], ["lint.findings_warning"],
    ["lint.findings_info"], plus a ["lint.runs"] counter). *)

val pp_report : Format.formatter -> Finding.t list -> unit
(** Sorted findings (errors first) followed by a one-line summary. *)

val summary : Finding.t list -> string
(** ["3 errors, 1 warning, 2 infos"] (or ["clean"]). *)

val to_json : Finding.t list -> string
(** [{"findings": [...], "errors": e, "warnings": w, "infos": i}]. *)
