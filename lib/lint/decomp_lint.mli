(** Static verification of edge decompositions (paper Def. 2, Thms. 5-7).

    Works on a {e raw} group list rather than a validated
    {!Synts_graph.Decomposition.t}, so it can diagnose exactly the inputs
    the strict constructor rejects: uncovered edges, doubly covered edges,
    edges foreign to the topology, groups that are not genuine stars or
    triangles — and, beyond well-formedness, whether the group count
    respects the min(beta(G), N-2) guarantee, with a bound-tightness
    report against the matching lower bound. *)

val check :
  Synts_graph.Graph.t ->
  Synts_graph.Decomposition.group list ->
  Finding.t list
(** Rules: [decomp/malformed-group], [decomp/foreign-edge],
    [decomp/duplicate-edge], [decomp/uncovered-edge], [decomp/size-bound],
    [decomp/loose]. Vertex-cover bounds use the exact branch-and-bound
    solver on small graphs and the best polynomial heuristic otherwise. *)

val check_decomposition :
  Synts_graph.Graph.t -> Synts_graph.Decomposition.t -> Finding.t list
(** {!check} on the decomposition's groups — constructor-validated input,
    so only the bound rules can fire. *)
