(** Runtime sanitizer for vector timestamps (the "run under" mode).

    A sanitizer shadows the Figure 5 protocol: it keeps its own per-process
    vectors for an agreed decomposition and, for every observed message
    timestamp, checks (1) {e monotonicity} — every component dominates both
    endpoints' previous vectors, none goes backwards; and (2) {e edge-clock
    consistency} — the timestamp equals max(v_src, v_dst) with the
    channel's group component incremented, the unique value the protocol
    derives. Violations become findings instead of crashes, so a corrupted
    run keeps executing and yields a diagnosis; after a deviation the
    shadow state adopts the observed vector so one corruption does not
    cascade into a finding per subsequent message.

    Hook it into the CSP runtime via [Runtime.run ~on_stamp:(hook s)], wrap
    any streaming stamper with {!wrap}, or audit a whole offline run with
    {!check_trace}. Violation counts are mirrored into [synts.telemetry]
    (["lint.sanitizer_violations"]). *)

type t

val create : Synts_graph.Decomposition.t -> n:int -> t
(** [n] is the process count; must equal the decomposed topology's vertex
    count for channels to resolve. *)

val observe : t -> src:int -> dst:int -> Synts_clock.Vector.t -> unit
(** Feed the next message timestamp, in rendezvous order. Rules:
    [san/dimension], [san/unknown-channel], [san/stale-component],
    [san/mismatch] — recorded, never raised. *)

val observe_internal : t -> proc:int -> unit
(** Internal events carry no vector and nothing to check; accepted so an
    observation stream can forward every event uniformly. *)

val hook : t -> src:int -> dst:int -> Synts_clock.Vector.t -> unit
(** {!observe} with the labelled-argument shape of the CSP runtime's
    [on_stamp] callback. *)

val wrap :
  t ->
  (src:int -> dst:int -> Synts_clock.Vector.t) ->
  src:int ->
  dst:int ->
  Synts_clock.Vector.t
(** Run a streaming stamper under the sanitizer: same results, every
    stamp observed. *)

val findings : t -> Finding.t list
(** Everything recorded so far, in observation order. *)

val violations : t -> int
(** Error-severity findings recorded so far. *)

val messages_observed : t -> int

val check_trace :
  Synts_graph.Decomposition.t ->
  Synts_sync.Trace.t ->
  Synts_clock.Vector.t array ->
  Finding.t list
(** Audit a completed run: drive a fresh sanitizer over the trace's
    messages in occurrence order against [timestamps.(id)]. *)
