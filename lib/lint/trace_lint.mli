(** Static analysis of synchronous and asynchronous traces.

    Three entry points, from rawest to richest input:

    - {!check_steps} lints a raw step list before it is ever promoted to a
      {!Synts_sync.Trace.t} — this is where dangling process ids and
      self-messages are caught, since the trace constructor rejects them;
    - {!check} lints a constructed trace: defensive well-formedness
      (per-process order, silent processes) plus, when a topology is
      supplied, channel coverage;
    - {!check_async} decides synchronous realizability of an asynchronous
      computation: FIFO violations and {e crown} detection (a cycle in the
      direct message-precedence digraph), reporting a witness cycle. *)

val check_steps : n:int -> Synts_sync.Trace.step list -> Finding.t list
(** [trace/process-range] and [trace/self-message], located by step
    index. [n < 1] is itself a [trace/process-range] finding. *)

val check :
  ?topology:Synts_graph.Graph.t -> Synts_sync.Trace.t -> Finding.t list
(** [trace/order], [trace/empty], [trace/isolated-process]; with
    [topology], [trace/unknown-channel] for every message over an edge the
    graph lacks. Also re-runs the realizability analysis of {!check_async}
    on the trace's asynchronous view — a constructed trace is always
    crown-free, so a [trace/crown] here means memory corruption, but the
    proof is the point: stamping is only justified on a crown-free input. *)

val check_async : Synts_sync.Async_trace.t -> Finding.t list
(** [trace/fifo] (same-channel messages received out of send order) and
    [trace/crown] (the computation is not synchronously realizable), the
    latter with a [m_a > m_b > ... > m_a] witness cycle in the message. *)

val crown_witness : Synts_sync.Async_trace.t -> int list option
(** A cycle of message ids in the direct-precedence digraph when the
    computation is not synchronizable; [None] when it is. *)
