(** Audit of a churn-tolerant membership's epoch history (paper Thms.
    5-7 and Eq. (1), applied per epoch).

    Two rule families over {!Synts_graph.Membership} state:

    - [epoch/size-bound]: every epoch's live-component count must stay
      within the min(beta(G), N-2) clamp the membership recorded for
      that epoch's topology — incremental repair is not allowed to leak
      width a from-scratch rebuild would avoid.
    - [epoch/remap-consistency]: the per-epoch remap chain must be a
      width-consistent injection — consecutive steps agree on widths,
      no two surviving slots alias, nothing maps past the target width,
      and only compaction epochs may retire slots or renumber them.

    The audit is read-only and cheap (linear in epochs x width), so
    [synts churn] runs it after every harness run and [synts serve]
    can run it on demand. *)

val audit : Synts_graph.Membership.t -> Finding.t list
(** Findings anchored at [Finding.Epoch e]. Empty on a healthy
    membership. *)
