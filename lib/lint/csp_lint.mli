(** Static analysis of CSP-style communication scripts.

    Given the per-process scripts of a system (the communication skeleton
    of a CSP program, cf. {!Synts_net.Script}), three layers of checks:

    - {b intent sanity}: sends/directed receives naming an invalid peer;
    - {b counting}: a process whose receive capacity cannot absorb the
      sends directed at it (or vice versa) blocks under {e every}
      schedule;
    - {b rendezvous deadlock}: a memoized, budget-bounded exploration of
      the matching state space — the static wait-for analysis. If no
      explored schedule completes, the system definitely deadlocks
      ([csp/deadlock], with a blocked wait-for cycle as witness); if both
      completing and deadlocking schedules exist (typically a wildcard
      race), it may deadlock ([csp/may-deadlock]). *)

val check : ?budget:int -> Synts_net.Script.t array -> Finding.t list
(** [budget] bounds the number of distinct matching states explored
    (default 4096); exceeding it yields a [csp/analysis-budget] info
    finding and deadlock verdicts degrade to the visited schedules. *)

type exploration = {
  completed : bool;  (** Some explored schedule finishes every script. *)
  stuck : int list option;
      (** Blocked process ids of some reachable deadlock state. *)
  truncated : bool;  (** The state budget was exhausted. *)
}

val explore : ?budget:int -> Synts_net.Script.t array -> exploration
(** The raw state-space verdicts behind the deadlock rules. *)
