(** The rule catalog.

    Every lint rule is registered here with its id, default severity, a
    one-line summary, a rationale paragraph and the paper theorem or
    definition it enforces — the material behind [synts lint --explain].
    Analysis modules create findings through {!finding} so a rule id can
    never fire without being documented. *)

type meta = {
  id : string;  (** e.g. ["decomp/uncovered-edge"]. *)
  severity : Finding.severity;
  summary : string;  (** One line. *)
  rationale : string;  (** Why this matters; wrapped on output. *)
  paper : string;  (** Theorem/definition/source enforced. *)
}

val all : meta list
(** Sorted by id. *)

val find : string -> meta option

val finding : string -> Finding.location -> string -> Finding.t
(** [finding id loc msg] with the registered severity. Raises
    [Invalid_argument] on an unregistered id — a library bug, not a user
    error. *)

val explain : string -> (string, string) result
(** [Ok text] renders the rule's documentation; [Error msg] for an unknown
    id, with a "did you mean" suggestion list of the closest ids. *)
