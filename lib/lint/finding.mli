(** Diagnostics shared by every lint rule.

    A finding is one diagnostic: the rule that fired, its severity, where
    in the analyzed artifact it points (a process, an event of a process's
    local history, a message id, a step of the global sequence, a channel,
    or a decomposition group), and a human-readable message. All analysis
    families ({!Trace_lint}, {!Decomp_lint}, {!Csp_lint}, {!Sanitizer})
    report through this one type so reports, exit-code policies and
    telemetry see a uniform stream. *)

type severity = Error | Warning | Info

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare_severity : severity -> severity -> int
(** [Error] is most severe (smallest). *)

type location =
  | Global  (** The artifact as a whole. *)
  | Process of int
  | Event of { proc : int; index : int }
      (** Index into a process's local history. *)
  | Message of int  (** A message id. *)
  | Step of int  (** An index into the global step sequence. *)
  | Channel of int * int  (** A (normalized) topology edge. *)
  | Group of int  (** A decomposition group index. *)
  | Epoch of int  (** A membership epoch. *)

type t = {
  rule : string;  (** Rule id, e.g. ["trace/self-message"]. *)
  severity : severity;
  location : location;
  message : string;
}

val make : rule:string -> severity:severity -> location -> string -> t

val errors : t list -> int
val warnings : t list -> int
val infos : t list -> int

val by_severity : severity -> t list -> t list
(** The findings with exactly that severity, original order preserved. *)

val sort : t list -> t list
(** Stable sort by decreasing severity (errors first). *)

val pp_location : Format.formatter -> location -> unit
val pp : Format.formatter -> t -> unit
(** [error[trace/self-message] step 3: message P2 -> P2]. *)

val to_json : t list -> string
(** A JSON array of [{rule, severity, location, message}] objects. *)
