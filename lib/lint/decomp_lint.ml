module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Vertex_cover = Synts_graph.Vertex_cover

(* The edges a (possibly malformed) group claims, tolerating malformed
   input: duplicates and self-loops are reported separately, so here we
   enumerate whatever pairs the group spells out. *)
let claimed_edges = function
  | Decomposition.Star { center; leaves } ->
      List.filter_map
        (fun leaf -> if leaf = center then None else Some (Graph.normalize_edge center leaf))
        leaves
  | Decomposition.Triangle (x, y, z) ->
      List.filter_map
        (fun (u, v) -> if u = v then None else Some (Graph.normalize_edge u v))
        [ (x, y); (y, z); (x, z) ]

let group_shape_findings g idx group =
  let n = Graph.n g in
  let fs = ref [] in
  let add msg =
    fs := Rules.finding "decomp/malformed-group" (Finding.Group idx) msg :: !fs
  in
  let range v = v >= 0 && v < n in
  (match group with
  | Decomposition.Star { center; leaves } ->
      if not (range center) then
        add (Printf.sprintf "star center %d is outside 0..%d" center (n - 1));
      if leaves = [] then add "star with no leaves";
      List.iter
        (fun leaf ->
          if not (range leaf) then
            add (Printf.sprintf "star leaf %d is outside 0..%d" leaf (n - 1));
          if leaf = center then
            add (Printf.sprintf "star leaf %d equals its center" leaf))
        leaves;
      let sorted = List.sort_uniq compare leaves in
      if List.length sorted <> List.length leaves then
        add "star leaves contain duplicates"
      else if sorted <> leaves then add "star leaves are not sorted"
  | Decomposition.Triangle (x, y, z) ->
      List.iter
        (fun v ->
          if not (range v) then
            add (Printf.sprintf "triangle vertex %d is outside 0..%d" v (n - 1)))
        [ x; y; z ];
      if not (x < y && y < z) then
        add
          (Printf.sprintf
             "triangle vertices (%d,%d,%d) are not strictly increasing" x y z));
  List.rev !fs

let check g groups =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  (* 1. Shape of each group. *)
  List.iteri
    (fun idx group -> List.iter add (group_shape_findings g idx group))
    groups;
  (* 2. Exact coverage: every topology edge in exactly one group, no
     foreign edges. *)
  let cover : (Graph.edge, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun idx group ->
      List.iter
        (fun e ->
          Hashtbl.replace cover e
            (idx :: Option.value ~default:[] (Hashtbl.find_opt cover e)))
        (claimed_edges group))
    groups;
  Hashtbl.iter
    (fun (u, v) idxs ->
      let idxs = List.rev idxs in
      if not (Graph.has_edge g u v) then
        List.iter
          (fun idx ->
            add
              (Rules.finding "decomp/foreign-edge" (Finding.Group idx)
                 (Printf.sprintf "edge (%d,%d) is not in the topology" u v)))
          idxs
      else if List.length idxs > 1 then
        add
          (Rules.finding "decomp/duplicate-edge" (Finding.Channel (u, v))
             (Printf.sprintf "edge (%d,%d) is covered by groups %s" u v
                (String.concat ", " (List.map string_of_int idxs)))))
    cover;
  List.iter
    (fun (u, v) ->
      if not (Hashtbl.mem cover (u, v)) then
        add
          (Rules.finding "decomp/uncovered-edge" (Finding.Channel (u, v))
             (Printf.sprintf
                "edge (%d,%d) belongs to no group; messages on it cannot be \
                 stamped"
                u v)))
    (Graph.edges g);
  (* 3. Bounds. Only meaningful when the partition itself is sane. *)
  let d = List.length groups in
  let n = Graph.n g in
  if Graph.m g > 0 && d > 0 then begin
    let cover_bound =
      (* An upper bound on beta(G): exact on small instances, else the
         better of the two polynomial heuristics. *)
      let heuristic =
        min
          (List.length (Vertex_cover.greedy g))
          (List.length (Vertex_cover.two_approx g))
      in
      match
        if n <= 16 then Vertex_cover.exact ~limit:200_000 g else None
      with
      | Some c -> List.length c
      | None -> heuristic
    in
    let theorem5 = min cover_bound (max 1 (n - 2)) in
    if d > theorem5 then
      add
        (Rules.finding "decomp/size-bound" Finding.Global
           (Printf.sprintf
              "%d groups, but a decomposition with at most %d exists \
               (min(beta(G) <= %d, N-2 = %d)); rebuild with the Fig. 7 \
               algorithm"
              d theorem5 cover_bound (max 1 (n - 2))));
    let lower = Decomposition.min_size_lower_bound g in
    if d > lower then
      add
        (Rules.finding "decomp/loose" Finding.Global
           (Printf.sprintf
              "bound tightness: d = %d vs matching lower bound %d and \
               min(beta(G) <= %d, N-2 = %d) = %d; at most %d component(s) \
               above the provable optimum"
              d lower cover_bound (max 1 (n - 2)) theorem5 (d - lower)))
  end;
  List.rev !fs

let check_decomposition g d = check g (Decomposition.groups d)
