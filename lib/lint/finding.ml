type severity = Error | Warning | Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

type location =
  | Global
  | Process of int
  | Event of { proc : int; index : int }
  | Message of int
  | Step of int
  | Channel of int * int
  | Group of int
  | Epoch of int

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
}

let make ~rule ~severity location message =
  { rule; severity; location; message }

let count s fs = List.length (List.filter (fun f -> f.severity = s) fs)
let errors fs = count Error fs
let warnings fs = count Warning fs
let infos fs = count Info fs
let by_severity s fs = List.filter (fun f -> f.severity = s) fs

let sort fs =
  List.stable_sort (fun a b -> compare_severity a.severity b.severity) fs

let pp_location ppf = function
  | Global -> Format.pp_print_string ppf "global"
  | Process p -> Format.fprintf ppf "P%d" p
  | Event { proc; index } -> Format.fprintf ppf "P%d event %d" proc index
  | Message m -> Format.fprintf ppf "m%d" m
  | Step i -> Format.fprintf ppf "step %d" i
  | Channel (u, v) -> Format.fprintf ppf "channel (%d,%d)" u v
  | Group g -> Format.fprintf ppf "group %d" g
  | Epoch e -> Format.fprintf ppf "epoch %d" e

let pp ppf f =
  Format.fprintf ppf "%s[%s] %a: %s"
    (severity_label f.severity)
    f.rule pp_location f.location f.message

(* Minimal JSON string escaping: the messages are ASCII diagnostics. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let location_json = function
  | Global -> {|{"kind":"global"}|}
  | Process p -> Printf.sprintf {|{"kind":"process","proc":%d}|} p
  | Event { proc; index } ->
      Printf.sprintf {|{"kind":"event","proc":%d,"index":%d}|} proc index
  | Message m -> Printf.sprintf {|{"kind":"message","id":%d}|} m
  | Step i -> Printf.sprintf {|{"kind":"step","index":%d}|} i
  | Channel (u, v) -> Printf.sprintf {|{"kind":"channel","u":%d,"v":%d}|} u v
  | Group g -> Printf.sprintf {|{"kind":"group","index":%d}|} g
  | Epoch e -> Printf.sprintf {|{"kind":"epoch","index":%d}|} e

let to_json fs =
  let one f =
    Printf.sprintf {|{"rule":"%s","severity":"%s","location":%s,"message":"%s"}|}
      (escape f.rule)
      (severity_label f.severity)
      (location_json f.location)
      (escape f.message)
  in
  "[" ^ String.concat "," (List.map one fs) ^ "]"
