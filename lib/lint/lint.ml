module Finding = Finding
module Rules = Rules
module Trace_lint = Trace_lint
module Decomp_lint = Decomp_lint
module Epoch_lint = Epoch_lint
module Csp_lint = Csp_lint
module Sanitizer = Sanitizer
module Trace = Synts_sync.Trace
module Decomposition = Synts_graph.Decomposition
module Online = Synts_core.Online
module Script = Synts_net.Script
module Tm = Synts_telemetry.Telemetry

let m_runs = Tm.Counter.v ~help:"Lint runs recorded" "lint.runs"

let m_errors =
  Tm.Counter.v ~help:"Lint findings of severity error" "lint.findings_error"

let m_warnings =
  Tm.Counter.v ~help:"Lint findings of severity warning"
    "lint.findings_warning"

let m_infos =
  Tm.Counter.v ~help:"Lint findings of severity info" "lint.findings_info"

let audit ?decomposition trace =
  let topology = Trace.topology trace in
  let d =
    match decomposition with
    | Some d -> d
    | None -> Decomposition.best topology
  in
  let trace_findings = Trace_lint.check ~topology trace in
  let decomp_findings = Decomp_lint.check_decomposition topology d in
  let script_findings = Csp_lint.check (Script.of_trace trace) in
  (* Only stamp when the preconditions hold: stamping a trace whose
     channels escape the decomposition would raise, which is exactly what
     the findings above already diagnose. *)
  let sanitizer_findings =
    if Finding.errors (trace_findings @ decomp_findings) > 0 then []
    else Sanitizer.check_trace d trace (Online.timestamp_trace d trace)
  in
  trace_findings @ decomp_findings @ script_findings @ sanitizer_findings

let audit_scripts scripts = Csp_lint.check scripts

let audit_stamped ?decomposition trace stamps =
  let d =
    match decomposition with
    | Some d -> d
    | None -> Decomposition.best (Trace.topology trace)
  in
  audit ~decomposition:d trace @ Sanitizer.check_trace d trace stamps

type fail_on = [ `Error | `Warning | `Never ]

let exit_code ~fail_on findings =
  match fail_on with
  | `Never -> 0
  | `Error -> if Finding.errors findings > 0 then 1 else 0
  | `Warning ->
      if Finding.errors findings > 0 || Finding.warnings findings > 0 then 1
      else 0

let record findings =
  Tm.Counter.incr m_runs;
  Tm.Counter.add m_errors (Finding.errors findings);
  Tm.Counter.add m_warnings (Finding.warnings findings);
  Tm.Counter.add m_infos (Finding.infos findings)

let summary findings =
  let e = Finding.errors findings
  and w = Finding.warnings findings
  and i = Finding.infos findings in
  if e = 0 && w = 0 && i = 0 then "clean"
  else
    let plural n word =
      Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s")
    in
    String.concat ", "
      [ plural e "error"; plural w "warning"; plural i "info" ]

let pp_report ppf findings =
  List.iter
    (fun f -> Format.fprintf ppf "%a@." Finding.pp f)
    (Finding.sort findings);
  Format.fprintf ppf "lint: %s@." (summary findings)

let to_json findings =
  Printf.sprintf {|{"findings":%s,"errors":%d,"warnings":%d,"infos":%d}|}
    (Finding.to_json (Finding.sort findings))
    (Finding.errors findings)
    (Finding.warnings findings)
    (Finding.infos findings)
