(** The Figure 5 protocol lifted over a churning membership.

    A single-domain, whole-system stamper that owns a
    {!Synts_graph.Membership.t} and one vector per process, all kept in
    the membership's {e current} epoch. Messages are stamped exactly as
    in {!Online.stamper} — componentwise max of the endpoints, then
    increment the channel's slot — and every applied delta atomically
    rebases all live vectors through the returned remap. Because the
    per-epoch remaps are identity injections (until {!compact}), a run
    with churn produces stamps whose comparison outcomes are identical
    to rebuilding the decomposition from scratch each epoch; this module
    is the oracle the churn property tests and [synts serve]'s
    epoch-aware verification replay against. *)

type t

val create : Synts_graph.Membership.t -> t
(** Takes ownership of the membership (deltas must flow through
    {!apply}, not around it). Every process starts with a zero vector at
    the current width. *)

val of_graph : Synts_graph.Graph.t -> t

val membership : t -> Synts_graph.Membership.t
val epoch : t -> int
val width : t -> int

val stamp : t -> src:int -> dst:int -> int array
(** Stamp one message on channel [(src, dst)] in the current epoch:
    both endpoints adopt the resulting vector; a fresh copy is returned.
    Raises [Invalid_argument] when the channel is not in the current
    topology. *)

val apply :
  t -> Synts_graph.Membership.delta -> (Synts_graph.Membership.remap, string) result
(** Apply a topology delta and rebase every process vector into the new
    epoch's layout. On [Error] nothing changes. *)

val compact :
  t -> retire_before:int -> Synts_graph.Membership.remap
(** {!Synts_graph.Membership.compact} plus the same vector rebase. *)

val vector : t -> int -> int array
(** Copy of process [p]'s current vector (current epoch layout). *)

val checkpoint : t -> int -> int * int array
(** [(epoch, vector)] snapshot of one process — the durable state a
    crash-recover scheme persists. *)

val restore : t -> int -> int * int array -> unit
(** Restore a possibly stale-epoch snapshot: the vector is translated
    through the membership's remap chain into the current epoch. Raises
    [Invalid_argument] on a future epoch or wrong snapshot width. *)

val reset : t -> int -> unit
(** Zero process [p]'s vector — volatile-state loss on crash. *)
