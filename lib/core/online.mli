(** The online algorithm over whole traces (paper Sec. 3, Theorem 4).

    Timestamps every message of a synchronous computation with a
    [d]-component vector, [d] the size of the chosen edge decomposition,
    such that [m1 ↦ m2 ⟺ v(m1) < v(m2)]. Two implementations are
    provided: a direct one (both endpoints' merge + increment collapsed
    into one step of a left-to-right sweep) and a packet-faithful one that
    drives two {!Edge_clock} state machines through the explicit
    message/ack exchange; the test suite asserts they agree. *)

val timestamp_trace :
  Synts_graph.Decomposition.t -> Synts_sync.Trace.t -> Synts_clock.Vector.t array
(** One vector per message id. Raises [Invalid_argument] when some used
    channel is absent from the decomposition. *)

val timestamp_store :
  ?store:Synts_clock.Stamp_store.t ->
  ?rows:int array ->
  Synts_graph.Decomposition.t ->
  Synts_sync.Trace.t ->
  Synts_clock.Stamp_store.t * int array
(** Zero-allocation form of {!timestamp_trace}: stamps land in a flat
    {!Synts_clock.Stamp_store} slab and the returned array maps message
    id to slab row. Pass [?store] (cleared, dimension must match) and a
    [?rows] scratch array (length ≥ message count) to reuse buffers
    across traces — then the sweep allocates nothing per message. *)

val timestamp_trace_reference :
  Synts_graph.Decomposition.t -> Synts_sync.Trace.t -> Synts_clock.Vector.t array
(** The pre-slab seed implementation (merge + two copies per message).
    Kept as the equivalence oracle for the kernel tests; not a hot path. *)

val timestamp_trace_protocol :
  Synts_graph.Decomposition.t -> Synts_sync.Trace.t -> Synts_clock.Vector.t array
(** Same result via the explicit Figure 5 protocol (message then
    acknowledgement); additionally asserts that sender and receiver derive
    the same timestamp. *)

val stamper :
  Synts_graph.Decomposition.t -> (src:int -> dst:int -> Synts_clock.Vector.t)
(** A stateful streaming stamper: feed messages in a linearization order,
    get each message's timestamp. Useful for online monitoring loops.
    Internally stamps into a compacting slab whose size stays O(n·d)
    regardless of stream length; each call returns a fresh copy of the
    stamp. *)

val stamper_reference :
  Synts_graph.Decomposition.t -> (src:int -> dst:int -> Synts_clock.Vector.t)
(** The pre-slab seed stamper, kept as the equivalence oracle. *)

val precedes : Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
(** The O(d) precedence test: [m1 ↦ m2 ⟺ precedes v1 v2]. *)

val concurrent : Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool

val for_topology :
  Synts_graph.Graph.t ->
  Synts_graph.Decomposition.t * (src:int -> dst:int -> Synts_clock.Vector.t)
(** Convenience: pick the best polynomial decomposition for a topology and
    return it with a streaming stamper. *)
