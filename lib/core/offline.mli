(** The offline algorithm (paper Sec. 4, Figure 9).

    Given a completed computation: (1) the message poset has width
    [w ≤ ⌊N/2⌋] because every message occupies two of the N processes
    (Theorem 8); (2) a Dilworth chain partition yields a realizer
    [{L1, …, Lw}] with [∩ Li = (M, ↦)]; (3) message [m] is timestamped
    with [V_m], [V_m[i]] = number of elements below [m] in [Li] (its
    rank). Then [m1 ↦ m2 ⟺ V_m1 < V_m2]. *)

val width_bound : n:int -> int
(** [⌊N/2⌋]. *)

val timestamp_poset : Synts_poset.Poset.t -> Synts_clock.Vector.t array
(** Rank vectors from the Dilworth realizer of an arbitrary poset, shifted
    to 1-based so every timestamp is strictly above the zero vector (the
    bottom element used by the internal-event stamps of Sec. 5). *)

val timestamp_trace : Synts_sync.Trace.t -> Synts_clock.Vector.t array
(** Timestamps for all messages of a synchronous trace; vector size is
    [max 1 (width of the message poset)] ≤ ⌊N/2⌋. *)

val dimension_used : Synts_sync.Trace.t -> int
(** The realizer size the offline algorithm would use on this trace. *)

(** {1 Streaming pipeline}

    The batch path above re-solves closure + matching over the whole
    poset; [Stream] emits offline-style rank-vector stamps {e as messages
    arrive}, with memory bounded by the live window of
    {!Synts_poset.Streaming_chains} (O(window²/word + chains), not O(M²)
    closure bits) — per-process state is just the last message stamp of
    each process. Streamed stamps are {e order-equivalent} to
    {!timestamp_trace} on any trace: same {!precedes} / {!concurrent}
    verdicts, with the batch path kept as the property-test oracle. The
    vector dimension is the streaming chain count: equal to the width
    reached by the batch realizer on chain-friendly arrival orders, and
    never more than a small factor above it — still bounded by the
    messages seen, not by N. *)
module Stream : sig
  type t

  val create : ?window:int -> n:int -> unit -> t
  (** A streaming stamper over [n] processes. [window] is forwarded to
      {!Synts_poset.Streaming_chains.create}. *)

  val observe : t -> src:int -> dst:int -> Synts_clock.Vector.t
  (** Stamp the next message of the linearization — O(live window) worst
      case, O(chains) typical. The returned stamp is final. Raises
      [Invalid_argument] on a bad channel. *)

  val processes : t -> int
  val messages : t -> int

  val dimension : t -> int
  (** Current stamp width (grows as chains open; ≥ 1). *)

  val width : t -> int
  (** The message poset's width — exact while {!exact_width}, an upper
      bound after window retirement began. *)

  val exact_width : t -> bool

  val live : t -> int
  (** Elements currently held in the live window. *)

  val retired : t -> int
  (** Elements evicted from the live window so far. *)

  val repairs : t -> int
  (** Insertions that ran the full augmenting-path repair. *)

  val live_words : t -> int
  (** Estimated heap words held live — bounded by the window, independent
      of {!messages}. *)

  val peak_live_words : t -> int

  val precedes : t -> Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
  val concurrent : t -> Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
  (** Zero-padded comparisons, valid across the stream's whole lifetime
      (stamps emitted at different dimensions compare correctly). *)
end

val stream_trace :
  ?window:int -> Synts_sync.Trace.t -> Synts_clock.Vector.t array
(** All message stamps of a trace through the streaming pipeline, padded
    to the final dimension (directly comparable with {!precedes} /
    {!concurrent}, like {!timestamp_trace} — the two are order-equivalent
    message for message). *)

val precedes : Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
val concurrent : Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
(** Strict vector order / incomparability with implicit zero-padding, so
    batch stamps, streamed stamps and stamps emitted at different stream
    dimensions are all directly comparable. *)
