module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Wire = Synts_clock.Wire
module Stamper = Synts_clock.Stamper

let edge decomposition : Stamper.t =
  (module struct
    type state = Edge_clock.t array
    type stamp = Vector.t

    let name =
      Printf.sprintf "edge-clock-d%d" (Decomposition.size decomposition)

    let exact = true

    let init () =
      Array.init
        (Decomposition.graph_vertices decomposition)
        (fun pid -> Edge_clock.create decomposition ~pid)

    let on_send state ~src ~dst =
      Wire.encode (Edge_clock.on_send state.(src) ~dst)

    let on_receive state ~src ~dst req =
      let incoming =
        match Wire.decode req with
        | Ok v -> v
        | Error e -> invalid_arg (Printf.sprintf "%s: bad payload (%s)" name e)
      in
      let `Ack ack, ts = Edge_clock.receive state.(dst) ~src incoming in
      let ts' = Edge_clock.on_ack state.(src) ~dst ack in
      assert (Vector.equal ts ts');
      (Wire.encode ack, ts)

    let stamp_size_bytes = Wire.encoded_bytes
    let precedes _ = Vector.lt
  end)

let all g =
  let d = Decomposition.best g in
  edge d
  :: Stamper.baselines ~n:(Graph.n g) ~r:(max 1 (Decomposition.size d)) ()
