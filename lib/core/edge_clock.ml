module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Wire = Synts_clock.Wire
module Tm = Synts_telemetry.Telemetry

let m_sends =
  Tm.Counter.v ~help:"Edge-clock REQ payloads produced" "core.edge_clock.sends"

let m_receives =
  Tm.Counter.v ~help:"Edge-clock messages received" "core.edge_clock.receives"

let m_acks =
  Tm.Counter.v ~help:"Edge-clock acknowledgements processed"
    "core.edge_clock.acks"

let m_piggyback =
  Tm.Counter.v ~help:"Bytes of vectors piggybacked on REQ and ACK packets"
    "core.edge_clock.piggyback_bytes"

let m_component_updates =
  Tm.Counter.v ~help:"Vector components written during merge-and-increment"
    "core.edge_clock.component_updates"

type t = { pid : int; v : Vector.t; decomposition : Decomposition.t }

let create decomposition ~pid =
  if pid < 0 || pid >= Decomposition.graph_vertices decomposition then
    invalid_arg "Edge_clock.create: pid out of range";
  { pid; v = Vector.zero (Decomposition.size decomposition); decomposition }

let pid t = t.pid
let vector t = Vector.copy t.v
let dimension t = Vector.size t.v

let group t peer =
  match Decomposition.group_of_edge t.decomposition t.pid peer with
  | g -> g
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf
           "Edge_clock: channel (%d,%d) is not in the edge decomposition"
           t.pid peer)

let on_send t ~dst =
  ignore (group t dst);
  Tm.Counter.incr m_sends;
  if Tm.enabled () then Tm.Counter.add m_piggyback (Wire.encoded_bytes t.v);
  Vector.copy t.v

let merge_and_increment t peer incoming =
  Vector.max_into ~dst:t.v incoming;
  Vector.incr t.v (group t peer);
  Tm.Counter.add m_component_updates (Vector.size t.v + 1);
  Vector.copy t.v

let receive t ~src incoming =
  let ack = Vector.copy t.v in
  Tm.Counter.incr m_receives;
  if Tm.enabled () then Tm.Counter.add m_piggyback (Wire.encoded_bytes ack);
  let timestamp = merge_and_increment t src incoming in
  (`Ack ack, timestamp)

let on_ack t ~dst ack =
  Tm.Counter.incr m_acks;
  merge_and_increment t dst ack

type checkpoint = { c_pid : int; c_v : Vector.t }

let checkpoint t = { c_pid = t.pid; c_v = Vector.copy t.v }

let restore t ck =
  if ck.c_pid <> t.pid || Vector.size ck.c_v <> Vector.size t.v then
    invalid_arg "Edge_clock.restore: checkpoint from a different clock";
  Vector.blit_into ~dst:t.v ck.c_v

let reset t = Array.fill t.v 0 (Vector.size t.v) 0
