module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Wire = Synts_clock.Wire
module Tm = Synts_telemetry.Telemetry

let m_sends =
  Tm.Counter.v ~help:"Edge-clock REQ payloads produced" "core.edge_clock.sends"

let m_receives =
  Tm.Counter.v ~help:"Edge-clock messages received" "core.edge_clock.receives"

let m_acks =
  Tm.Counter.v ~help:"Edge-clock acknowledgements processed"
    "core.edge_clock.acks"

let m_piggyback =
  Tm.Counter.v ~help:"Bytes of vectors piggybacked on REQ and ACK packets"
    "core.edge_clock.piggyback_bytes"

let m_component_updates =
  Tm.Counter.v ~help:"Vector components written during merge-and-increment"
    "core.edge_clock.component_updates"

let m_rebases =
  Tm.Counter.v ~help:"Edge-clock epoch rebases (vector remapped in place)"
    "core.edge_clock.rebases"

type t = {
  pid : int;
  mutable v : Vector.t;
  mutable group_of : int -> int -> int;  (* raises Not_found off-topology *)
  mutable epoch : int;
}

let create decomposition ~pid =
  if pid < 0 || pid >= Decomposition.graph_vertices decomposition then
    invalid_arg "Edge_clock.create: pid out of range";
  {
    pid;
    v = Vector.zero (Decomposition.size decomposition);
    group_of = Decomposition.group_of_edge decomposition;
    epoch = 0;
  }

let pid t = t.pid
let vector t = Vector.copy t.v
let dimension t = Vector.size t.v
let epoch t = t.epoch

let group t peer =
  match t.group_of t.pid peer with
  | g -> g
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf
           "Edge_clock: channel (%d,%d) is not in the edge decomposition"
           t.pid peer)

let on_send t ~dst =
  ignore (group t dst);
  Tm.Counter.incr m_sends;
  if Tm.enabled () then Tm.Counter.add m_piggyback (Wire.encoded_bytes t.v);
  Vector.copy t.v

let merge_and_increment t peer incoming =
  Vector.max_into ~dst:t.v incoming;
  Vector.incr t.v (group t peer);
  Tm.Counter.add m_component_updates (Vector.size t.v + 1);
  Vector.copy t.v

let receive t ~src incoming =
  let ack = Vector.copy t.v in
  Tm.Counter.incr m_receives;
  if Tm.enabled () then Tm.Counter.add m_piggyback (Wire.encoded_bytes ack);
  let timestamp = merge_and_increment t src incoming in
  (`Ack ack, timestamp)

let on_ack t ~dst ack =
  Tm.Counter.incr m_acks;
  merge_and_increment t dst ack

let translate ~dim ~map v =
  let out = Array.make dim 0 in
  Array.iteri (fun s x -> if map.(s) >= 0 then out.(map.(s)) <- x) v;
  out

let rebase t ~epoch ~dim ~map ~group_of =
  if epoch < t.epoch then invalid_arg "Edge_clock.rebase: epoch went backwards";
  if Array.length map <> Vector.size t.v then
    invalid_arg "Edge_clock.rebase: remap width does not match the vector";
  t.v <- translate ~dim ~map t.v;
  t.group_of <- group_of;
  t.epoch <- epoch;
  Tm.Counter.incr m_rebases

type checkpoint = { c_pid : int; c_v : Vector.t; c_epoch : int }

let checkpoint t = { c_pid = t.pid; c_v = Vector.copy t.v; c_epoch = t.epoch }
let checkpoint_epoch ck = ck.c_epoch

let restore t ck =
  if ck.c_pid <> t.pid || Vector.size ck.c_v <> Vector.size t.v
     || ck.c_epoch <> t.epoch
  then invalid_arg "Edge_clock.restore: checkpoint from a different clock";
  Vector.blit_into ~dst:t.v ck.c_v

let restore_rebased t ck ~map =
  if ck.c_pid <> t.pid then
    invalid_arg "Edge_clock.restore_rebased: checkpoint from a different clock";
  if Array.length map <> Vector.size ck.c_v then
    invalid_arg "Edge_clock.restore_rebased: remap width mismatch";
  t.v <- translate ~dim:(Vector.size t.v) ~map ck.c_v

let reset t = Array.fill t.v 0 (Vector.size t.v) 0
