(** The per-process protocol of the paper's online algorithm (Figure 5).

    Each process keeps a vector with one component per edge group of an
    agreed-upon edge decomposition. To send a synchronous message it
    piggybacks its vector; the receiver first replies with an
    acknowledgement carrying its own {e pre-merge} vector (Figure 5 line
    04), then both sides take the componentwise maximum and increment the
    component of the group containing the channel. Both sides thus compute
    the same vector — the message's timestamp.

    This module is the faithful, packet-level state machine (used by the
    CSP runtime middleware); {!Online} provides the equivalent whole-trace
    stamper. *)

type t
(** The clock state of one process. *)

val create : Synts_graph.Decomposition.t -> pid:int -> t
(** [pid] must be a vertex of the decomposed topology. *)

val pid : t -> int

val vector : t -> Synts_clock.Vector.t
(** A copy of the current local vector [v_i]. *)

val dimension : t -> int
(** Number of components = decomposition size. *)

val on_send : t -> dst:int -> Synts_clock.Vector.t
(** Figure 5 lines 01–02: the payload to piggyback on a message to [dst].
    Does not modify the state (the sender completes the protocol in
    {!on_ack}). *)

val receive :
  t -> src:int -> Synts_clock.Vector.t ->
  [ `Ack of Synts_clock.Vector.t ] * Synts_clock.Vector.t
(** Figure 5 lines 03–07: process a message from [src] carrying the
    sender's vector. Returns the acknowledgement payload (the receiver's
    pre-merge vector) and the message's timestamp; the local vector is
    updated to that timestamp. Raises [Invalid_argument] when the channel
    [(src, pid)] belongs to no edge group. *)

val on_ack : t -> dst:int -> Synts_clock.Vector.t -> Synts_clock.Vector.t
(** Figure 5 lines 08–11: process the acknowledgement (carrying the
    receiver's pre-merge vector) for a message this process sent to [dst];
    returns the message's timestamp and updates the local vector. *)

(** {1 Checkpoint / restore} — crash recovery of the Figure 5 state.

    The entire protocol state of a process is its vector [v_i]: a
    checkpoint taken after an {!on_ack}/{!receive} and restored later
    resumes the protocol exactly (the next timestamp computed equals the
    one an uncrashed process would have produced), which is what makes
    crash-recover fault injection exactness-preserving. *)

type checkpoint
(** Immutable snapshot of one clock's vector. *)

val checkpoint : t -> checkpoint

val restore : t -> checkpoint -> unit
(** Overwrite the live vector with the snapshot. Raises
    [Invalid_argument] when the checkpoint came from a clock with a
    different [pid] or dimension. *)

val reset : t -> unit
(** Zero the vector — what a crash does to the volatile state. A process
    that restarts without {!restore} has lost its causal history. *)
