(** The per-process protocol of the paper's online algorithm (Figure 5).

    Each process keeps a vector with one component per edge group of an
    agreed-upon edge decomposition. To send a synchronous message it
    piggybacks its vector; the receiver first replies with an
    acknowledgement carrying its own {e pre-merge} vector (Figure 5 line
    04), then both sides take the componentwise maximum and increment the
    component of the group containing the channel. Both sides thus compute
    the same vector — the message's timestamp.

    This module is the faithful, packet-level state machine (used by the
    CSP runtime middleware); {!Online} provides the equivalent whole-trace
    stamper. *)

type t
(** The clock state of one process. *)

val create : Synts_graph.Decomposition.t -> pid:int -> t
(** [pid] must be a vertex of the decomposed topology. *)

val pid : t -> int

val vector : t -> Synts_clock.Vector.t
(** A copy of the current local vector [v_i]. *)

val dimension : t -> int
(** Number of components = decomposition size (grows across {!rebase}). *)

val epoch : t -> int
(** The membership epoch whose slot layout the vector uses; [0] at
    {!create} and for any static-topology run. *)

val on_send : t -> dst:int -> Synts_clock.Vector.t
(** Figure 5 lines 01–02: the payload to piggyback on a message to [dst].
    Does not modify the state (the sender completes the protocol in
    {!on_ack}). *)

val receive :
  t -> src:int -> Synts_clock.Vector.t ->
  [ `Ack of Synts_clock.Vector.t ] * Synts_clock.Vector.t
(** Figure 5 lines 03–07: process a message from [src] carrying the
    sender's vector. Returns the acknowledgement payload (the receiver's
    pre-merge vector) and the message's timestamp; the local vector is
    updated to that timestamp. Raises [Invalid_argument] when the channel
    [(src, pid)] belongs to no edge group. *)

val on_ack : t -> dst:int -> Synts_clock.Vector.t -> Synts_clock.Vector.t
(** Figure 5 lines 08–11: process the acknowledgement (carrying the
    receiver's pre-merge vector) for a message this process sent to [dst];
    returns the message's timestamp and updates the local vector. *)

(** {1 Epochs} — rebasing the clock across membership changes.

    When the topology changes under a running clock
    ({!Synts_graph.Membership}), the vector layout changes with it. A
    {!rebase} translates the live vector into the new epoch's layout in
    place — surviving slots move by the remap, retired slots are
    dropped, new slots start at zero — and swaps in the new epoch's
    channel→slot function, so the Figure 5 protocol continues without
    losing any counts a live component still carries. *)

val rebase :
  t ->
  epoch:int ->
  dim:int ->
  map:int array ->
  group_of:(int -> int -> int) ->
  unit
(** Move the clock to [epoch] with vector width [dim]. [map] is the
    composed remap from the clock's current epoch ([map.(s)] = new slot
    of old slot [s], [-1] = retired) — typically
    [Membership.remap_to_current]. [group_of u v] must give the new
    epoch's slot for channel [(u,v)] (raising [Not_found] off-topology).
    Raises [Invalid_argument] when [epoch] goes backwards or [map] does
    not match the current width. *)

(** {1 Checkpoint / restore} — crash recovery of the Figure 5 state.

    The entire protocol state of a process is its vector [v_i]: a
    checkpoint taken after an {!on_ack}/{!receive} and restored later
    resumes the protocol exactly (the next timestamp computed equals the
    one an uncrashed process would have produced), which is what makes
    crash-recover fault injection exactness-preserving. *)

type checkpoint
(** Immutable snapshot of one clock's vector, tagged with the epoch it
    was taken in. *)

val checkpoint : t -> checkpoint

val checkpoint_epoch : checkpoint -> int
(** The epoch the snapshot's layout belongs to — compare against the
    live clock's {!epoch} to decide between {!restore} and
    {!restore_rebased}. *)

val restore : t -> checkpoint -> unit
(** Overwrite the live vector with the snapshot. Raises
    [Invalid_argument] when the checkpoint came from a clock with a
    different [pid], dimension, or epoch (a stale-epoch checkpoint needs
    {!restore_rebased}). *)

val restore_rebased : t -> checkpoint -> map:int array -> unit
(** Restore a checkpoint taken in an older epoch into the clock's
    current layout: [map] is the composed remap from the checkpoint's
    epoch to the clock's epoch ([Membership.remap_to_current]); the
    clock's epoch and dimension are unchanged. Raises
    [Invalid_argument] on a [pid] mismatch or when [map] does not match
    the checkpoint's width. *)

val reset : t -> unit
(** Zero the vector — what a crash does to the volatile state. A process
    that restarts without {!restore} has lost its causal history. *)
