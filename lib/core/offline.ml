module Poset = Synts_poset.Poset
module Realizer = Synts_poset.Realizer
module Dilworth = Synts_poset.Dilworth
module Message_poset = Synts_sync.Message_poset
module Vector = Synts_clock.Vector
module Tracer = Synts_trace.Tracer

let width_bound ~n = n / 2

(* When tracing, the pipeline is run phase by phase (matching, chain
   extraction, extension construction) through the primitives Realizer
   composes — identical results by construction, but each phase lands as
   its own span on the offline recorder's pipeline clock, with span
   durations measuring work units (elements, matched pairs, chains). *)
let traced_realizer p =
  let n = Poset.size p in
  if n = 0 then [ [||] ]
  else begin
    let phase name work f =
      let tick = Tracer.pipeline_tick () in
      let result = f () in
      let dur = float_of_int (work result) in
      Tracer.complete ~cat:"poset" ~tick ~dur name;
      Tracer.pipeline_advance dur;
      result
    in
    let m = phase "matching" (fun m -> m.Synts_poset.Matching.size) (fun () -> Dilworth.matching p) in
    let chains =
      phase "chain-extraction" List.length (fun () -> Dilworth.chains_of_matching n m)
    in
    phase "extension"
      (fun exts -> List.length exts * n)
      (fun () -> Realizer.of_chain_partition p chains)
  end

let timestamp_poset p =
  let realizer =
    if Tracer.enabled () then traced_realizer p else Realizer.dilworth p
  in
  let vecs = Realizer.vectors realizer in
  (* Shift ranks to 1-based so the all-zero vector stays strictly below
     every timestamp — the Section 5 internal-event stamps use zero as the
     "no preceding message" bottom element. *)
  Array.map (Array.map succ) vecs

let timestamp_trace trace =
  let p =
    if Tracer.enabled () then begin
      let tick = Tracer.pipeline_tick () in
      let p = Message_poset.of_trace trace in
      let dur = float_of_int (Poset.size p) in
      Tracer.complete ~cat:"poset" ~tick ~dur "closure";
      Tracer.pipeline_advance dur;
      p
    end
    else Message_poset.of_trace trace
  in
  timestamp_poset p

let dimension_used trace =
  max 1 (Dilworth.width (Message_poset.of_trace trace))

(* ---------- streaming pipeline ---------- *)

module Streaming_chains = Synts_poset.Streaming_chains

module Stream = struct
  type t = {
    chains : Streaming_chains.t;
    n : int;
    last : Vector.t option array;  (* per process, last message stamp *)
    mutable messages : int;
    mutable peak_live_words : int;
  }

  let create ?window ~n () =
    if n < 1 then invalid_arg "Offline.Stream.create: n must be >= 1";
    let chains = Streaming_chains.create ?window () in
    {
      chains;
      n;
      last = Array.make n None;
      messages = 0;
      peak_live_words = Streaming_chains.live_words chains;
    }

  let processes t = t.n
  let messages t = t.messages
  let dimension t = max 1 (Streaming_chains.chains t.chains)
  let width t = Streaming_chains.width t.chains
  let exact_width t = Streaming_chains.exact t.chains
  let live t = Streaming_chains.live t.chains
  let retired t = Streaming_chains.retired t.chains
  let repairs t = Streaming_chains.repairs t.chains

  let live_words t =
    Streaming_chains.live_words t.chains + (2 * (t.n + 1)) + 8

  let peak_live_words t = max t.peak_live_words (live_words t)

  (* Each observe lands as up to four spans on the pipeline clock —
     insert (chain placement), repair (the augmenting search, when the
     patience tier missed), retire (window eviction, when it happened)
     and emit (stamp materialisation) — so [synts trace report] shows
     p50/p90/p99 per-phase cost of the streaming pipeline. *)
  let trace_phases t (info : Streaming_chains.info) =
    let span name dur =
      if dur > 0.0 then begin
        let tick = Tracer.pipeline_tick () in
        Tracer.complete ~cat:"offline-stream" ~tick ~dur name;
        Tracer.pipeline_advance dur
      end
    in
    let dim = float_of_int (dimension t) in
    span "insert" dim;
    span "repair" (float_of_int info.Streaming_chains.visited);
    span "retire" (float_of_int info.Streaming_chains.retired);
    span "emit" dim

  let observe t ~src ~dst =
    if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src = dst then
      invalid_arg "Offline.Stream.observe: bad channel";
    let preds =
      match (t.last.(src), t.last.(dst)) with
      | Some a, Some b -> [ a; b ]
      | Some a, None | None, Some a -> [ a ]
      | None, None -> []
    in
    let v = Streaming_chains.insert t.chains ~preds in
    t.last.(src) <- Some v;
    t.last.(dst) <- Some v;
    t.messages <- t.messages + 1;
    let words = live_words t in
    if words > t.peak_live_words then t.peak_live_words <- words;
    if Tracer.enabled () then
      trace_phases t (Streaming_chains.last_info t.chains);
    v

  let pad v dim =
    if Vector.size v >= dim then v
    else begin
      let w = Vector.zero dim in
      Array.blit v 0 w 0 (Vector.size v);
      w
    end

  let precedes t u v =
    let dim = max (dimension t) (max (Vector.size u) (Vector.size v)) in
    Vector.lt (pad u dim) (pad v dim)

  let concurrent t u v =
    let dim = max (dimension t) (max (Vector.size u) (Vector.size v)) in
    Vector.concurrent (pad u dim) (pad v dim)
end

let stream_trace ?window trace =
  let stream = Stream.create ?window ~n:(Synts_sync.Trace.n trace) () in
  let stamps =
    Array.map
      (fun (m : Synts_sync.Trace.message) ->
        Stream.observe stream ~src:m.Synts_sync.Trace.src
          ~dst:m.Synts_sync.Trace.dst)
      (Synts_sync.Trace.messages trace)
  in
  (* Early stamps may predate later chains; pad to one final width so the
     result is directly comparable with Vector.lt, like the batch path. *)
  let dim = Stream.dimension stream in
  Array.map (fun v -> Stream.pad v dim) stamps

let precedes u v =
  let d = max (Vector.size u) (Vector.size v) in
  Vector.lt (Stream.pad u d) (Stream.pad v d)

let concurrent u v =
  let d = max (Vector.size u) (Vector.size v) in
  Vector.concurrent (Stream.pad u d) (Stream.pad v d)
