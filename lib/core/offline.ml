module Poset = Synts_poset.Poset
module Realizer = Synts_poset.Realizer
module Dilworth = Synts_poset.Dilworth
module Message_poset = Synts_sync.Message_poset
module Vector = Synts_clock.Vector
module Tracer = Synts_trace.Tracer

let width_bound ~n = n / 2

(* When tracing, the pipeline is run phase by phase (matching, chain
   extraction, extension construction) through the primitives Realizer
   composes — identical results by construction, but each phase lands as
   its own span on the offline recorder's pipeline clock, with span
   durations measuring work units (elements, matched pairs, chains). *)
let traced_realizer p =
  let n = Poset.size p in
  if n = 0 then [ [||] ]
  else begin
    let phase name work f =
      let tick = Tracer.pipeline_tick () in
      let result = f () in
      let dur = float_of_int (work result) in
      Tracer.complete ~cat:"poset" ~tick ~dur name;
      Tracer.pipeline_advance dur;
      result
    in
    let m = phase "matching" (fun m -> m.Synts_poset.Matching.size) (fun () -> Dilworth.matching p) in
    let chains =
      phase "chain-extraction" List.length (fun () -> Dilworth.chains_of_matching n m)
    in
    phase "extension"
      (fun exts -> List.length exts * n)
      (fun () -> Realizer.of_chain_partition p chains)
  end

let timestamp_poset p =
  let realizer =
    if Tracer.enabled () then traced_realizer p else Realizer.dilworth p
  in
  let vecs = Realizer.vectors realizer in
  (* Shift ranks to 1-based so the all-zero vector stays strictly below
     every timestamp — the Section 5 internal-event stamps use zero as the
     "no preceding message" bottom element. *)
  Array.map (Array.map succ) vecs

let timestamp_trace trace =
  let p =
    if Tracer.enabled () then begin
      let tick = Tracer.pipeline_tick () in
      let p = Message_poset.of_trace trace in
      let dur = float_of_int (Poset.size p) in
      Tracer.complete ~cat:"poset" ~tick ~dur "closure";
      Tracer.pipeline_advance dur;
      p
    end
    else Message_poset.of_trace trace
  in
  timestamp_poset p

let dimension_used trace =
  max 1 (Dilworth.width (Message_poset.of_trace trace))

let precedes = Vector.lt
let concurrent = Vector.concurrent
