module Membership = Synts_graph.Membership

type t = {
  m : Membership.t;
  mutable vecs : int array array;  (* one per universe slot, current width *)
}

let create m =
  let width = Membership.width m in
  { m; vecs = Array.init (Membership.processes m) (fun _ -> Array.make width 0) }

let of_graph g = create (Membership.of_graph g)
let membership t = t.m
let epoch t = Membership.epoch t.m
let width t = Membership.width t.m

let stamp t ~src ~dst =
  let slot =
    match Membership.slot_of_edge t.m src dst with
    | s -> s
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf
             "Epoch_stamper.stamp: channel (%d,%d) is not in epoch %d" src dst
             (Membership.epoch t.m))
  in
  let a = t.vecs.(src) and b = t.vecs.(dst) in
  let ts = Array.init (Array.length a) (fun i -> max a.(i) b.(i)) in
  ts.(slot) <- ts.(slot) + 1;
  t.vecs.(src) <- Array.copy ts;
  t.vecs.(dst) <- Array.copy ts;
  ts

(* Rebase every vector through one delta's remap: surviving slots move,
   retired slots drop, fresh slots are zero. The universe may also have
   grown (a join of a new process): new slots get zero vectors. *)
let rebase t (r : Membership.remap) =
  let dim = Membership.width t.m in
  let procs = Membership.processes t.m in
  let old = t.vecs in
  t.vecs <-
    Array.init procs (fun p ->
        let out = Array.make dim 0 in
        if p < Array.length old then
          Array.iteri
            (fun s x -> if r.map.(s) >= 0 then out.(r.map.(s)) <- x)
            old.(p);
        out)

let apply t delta =
  match Membership.apply t.m delta with
  | Error _ as e -> e
  | Ok r ->
      rebase t r;
      Ok r

let compact t ~retire_before =
  let r = Membership.compact t.m ~retire_before in
  rebase t r;
  r

let vector t p = Array.copy t.vecs.(p)
let checkpoint t p = (Membership.epoch t.m, Array.copy t.vecs.(p))

let restore t p (e, v) =
  t.vecs.(p) <- Membership.translate t.m ~from_epoch:e v

let reset t p = Array.fill t.vecs.(p) 0 (Array.length t.vecs.(p)) 0
