(** First-class {!Synts_clock.Stamper.S} instances for the paper's own
    scheme, plus the bundle of every scheme for a topology.

    The clock library defines the interface and the five baselines; the
    edge-decomposition instance lives here because it needs
    [Synts_graph.Decomposition], which the clock library is below in
    the dependency order. *)

val edge : Synts_graph.Decomposition.t -> Synts_clock.Stamper.t
(** The paper's online algorithm (Figure 5) driven through
    {!Edge_clock}: d-component vectors, exact. *)

val all : Synts_graph.Graph.t -> Synts_clock.Stamper.t list
(** The edge-decomposition scheme (via [Decomposition.best]) followed
    by {!Synts_clock.Stamper.baselines}, with the plausible comb sized
    to the decomposition for a like-for-like comparison. Everything
    `check/validate`, the experiments and the benchmarks iterate
    over. *)
