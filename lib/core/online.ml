module Decomposition = Synts_graph.Decomposition
module Graph = Synts_graph.Graph
module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Stamp_store = Synts_clock.Stamp_store
module Tm = Synts_telemetry.Telemetry

let m_stamps =
  Tm.Counter.v ~help:"Message stamps issued by the online algorithm"
    "core.online.stamps"

let m_entries =
  Tm.Counter.v ~help:"Vector entries across all online stamps (sum of d)"
    "core.online.vector_entries"

let group decomposition u v =
  match Decomposition.group_of_edge decomposition u v with
  | g -> g
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf
           "Online: channel (%d,%d) is not in the edge decomposition" u v)

(* The one stamping step both whole-trace and streaming paths share: the
   new stamp is max(local src, local dst) bumped at the channel's group,
   appended as a slab row; both endpoints then point at that row. No
   per-message vector is allocated — stamps live in the store and the
   per-process state is just a row index. *)
let stamp_kernel decomposition store local_row ~src ~dst =
  let row =
    Stamp_store.push_merge store ~a:local_row.(src) ~b:local_row.(dst)
  in
  Stamp_store.row_incr store row (group decomposition src dst);
  local_row.(src) <- row;
  local_row.(dst) <- row;
  row

let timestamp_store ?store ?rows decomposition trace =
  let n = Trace.n trace in
  if n > Decomposition.graph_vertices decomposition then
    invalid_arg "Online.timestamp_store: more processes than topology vertices";
  let d = Decomposition.size decomposition in
  let mcount = Trace.message_count trace in
  let store =
    match store with
    | Some s ->
        if Stamp_store.dim s <> d then
          invalid_arg "Online.timestamp_store: store dimension mismatch";
        Stamp_store.clear s;
        s
    | None -> Stamp_store.create ~capacity:(mcount + n + 1) d
  in
  let row_of_id =
    match rows with
    | Some r when Array.length r >= mcount -> r
    | Some _ -> invalid_arg "Online.timestamp_store: rows array too short"
    | None -> Array.make (max mcount 1) (-1)
  in
  let zero = Stamp_store.push_zero store in
  let local_row = Array.make (max n 1) zero in
  Array.iter
    (fun (m : Trace.message) ->
      row_of_id.(m.Trace.id) <-
        stamp_kernel decomposition store local_row ~src:m.Trace.src
          ~dst:m.Trace.dst)
    (Trace.messages trace);
  Tm.Counter.add m_stamps mcount;
  Tm.Counter.add m_entries (mcount * d);
  (store, row_of_id)

let timestamp_trace decomposition trace =
  let store, row_of_id = timestamp_store decomposition trace in
  Array.init (Trace.message_count trace) (fun id ->
      Stamp_store.get store row_of_id.(id))

(* Seed implementation, kept verbatim as the qcheck oracle for the slab
   kernel (one merge + two copies per message). *)
let timestamp_trace_reference decomposition trace =
  let n = Trace.n trace in
  if n > Decomposition.graph_vertices decomposition then
    invalid_arg "Online.timestamp_trace: more processes than topology vertices";
  let d = Decomposition.size decomposition in
  let local = Array.init n (fun _ -> Vector.zero d) in
  let out = Array.make (Trace.message_count trace) [||] in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let v = Vector.merge local.(src) local.(dst) in
      Vector.incr v (group decomposition src dst);
      local.(src) <- Vector.copy v;
      local.(dst) <- v;
      Tm.Counter.incr m_stamps;
      Tm.Counter.add m_entries d;
      out.(m.Trace.id) <- Vector.copy v)
    (Trace.messages trace);
  out

let timestamp_trace_protocol decomposition trace =
  let n = Trace.n trace in
  let clocks = Array.init n (fun pid -> Edge_clock.create decomposition ~pid) in
  let out = Array.make (Trace.message_count trace) [||] in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let payload = Edge_clock.on_send clocks.(src) ~dst in
      let `Ack ack, ts_receiver = Edge_clock.receive clocks.(dst) ~src payload in
      let ts_sender = Edge_clock.on_ack clocks.(src) ~dst ack in
      assert (Vector.equal ts_sender ts_receiver);
      out.(m.Trace.id) <- ts_receiver)
    (Trace.messages trace);
  out

let stamper decomposition =
  let n = Decomposition.graph_vertices decomposition in
  let d = Decomposition.size decomposition in
  (* The stream is unbounded but only the ≤ n rows reachable from
     [local_row] matter; once the slab holds [watermark] rows the live
     ones are compacted to the front and the rest dropped, so the store
     stays O(n·d) forever. *)
  let watermark = max 64 (4 * (n + 1)) in
  let store = Stamp_store.create ~capacity:(watermark + 1) d in
  let zero = Stamp_store.push_zero store in
  let local_row = Array.make (max n 1) zero in
  let scratch = Array.make (max n 1) 0 in
  let compact () =
    let count = ref 0 in
    for p = 0 to n - 1 do
      let r = local_row.(p) in
      let seen = ref false in
      for j = 0 to !count - 1 do
        if scratch.(j) = r then seen := true
      done;
      if not !seen then begin
        scratch.(!count) <- r;
        incr count
      end
    done;
    let count = !count in
    (* Moving in increasing source order keeps dst ≤ src, so no live row
       is overwritten before it is copied. *)
    let live = Array.sub scratch 0 count in
    Array.sort Int.compare live;
    Array.iteri
      (fun j r -> if j <> r then Stamp_store.blit_rows store ~src:r ~dst:j)
      live;
    for p = 0 to n - 1 do
      let r = local_row.(p) in
      let j = ref 0 in
      while live.(!j) <> r do
        incr j
      done;
      local_row.(p) <- !j
    done;
    Stamp_store.truncate store count
  in
  fun ~src ~dst ->
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Online.stamper: process out of range";
    if Stamp_store.rows store >= watermark then compact ();
    let row = stamp_kernel decomposition store local_row ~src ~dst in
    Tm.Counter.incr m_stamps;
    Tm.Counter.add m_entries d;
    Stamp_store.get store row

(* Seed implementation of the streaming stamper, kept as the qcheck
   oracle for the compacting slab version. *)
let stamper_reference decomposition =
  let n = Decomposition.graph_vertices decomposition in
  let d = Decomposition.size decomposition in
  let local = Array.init n (fun _ -> Vector.zero d) in
  fun ~src ~dst ->
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Online.stamper: process out of range";
    let v = Vector.merge local.(src) local.(dst) in
    Vector.incr v (group decomposition src dst);
    local.(src) <- Vector.copy v;
    local.(dst) <- v;
    Tm.Counter.incr m_stamps;
    Tm.Counter.add m_entries d;
    Vector.copy v

let precedes = Vector.lt
let concurrent = Vector.concurrent

let for_topology g =
  let d = Decomposition.best g in
  (d, stamper d)
