module Decomposition = Synts_graph.Decomposition
module Graph = Synts_graph.Graph
module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Tm = Synts_telemetry.Telemetry

let m_stamps =
  Tm.Counter.v ~help:"Message stamps issued by the online algorithm"
    "core.online.stamps"

let m_entries =
  Tm.Counter.v ~help:"Vector entries across all online stamps (sum of d)"
    "core.online.vector_entries"

let group decomposition u v =
  match Decomposition.group_of_edge decomposition u v with
  | g -> g
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf
           "Online: channel (%d,%d) is not in the edge decomposition" u v)

let timestamp_trace decomposition trace =
  let n = Trace.n trace in
  if n > Decomposition.graph_vertices decomposition then
    invalid_arg "Online.timestamp_trace: more processes than topology vertices";
  let d = Decomposition.size decomposition in
  let local = Array.init n (fun _ -> Vector.zero d) in
  let out = Array.make (Trace.message_count trace) [||] in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let v = Vector.merge local.(src) local.(dst) in
      Vector.incr v (group decomposition src dst);
      local.(src) <- Vector.copy v;
      local.(dst) <- v;
      Tm.Counter.incr m_stamps;
      Tm.Counter.add m_entries d;
      out.(m.Trace.id) <- Vector.copy v)
    (Trace.messages trace);
  out

let timestamp_trace_protocol decomposition trace =
  let n = Trace.n trace in
  let clocks = Array.init n (fun pid -> Edge_clock.create decomposition ~pid) in
  let out = Array.make (Trace.message_count trace) [||] in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let payload = Edge_clock.on_send clocks.(src) ~dst in
      let `Ack ack, ts_receiver = Edge_clock.receive clocks.(dst) ~src payload in
      let ts_sender = Edge_clock.on_ack clocks.(src) ~dst ack in
      assert (Vector.equal ts_sender ts_receiver);
      out.(m.Trace.id) <- ts_receiver)
    (Trace.messages trace);
  out

let stamper decomposition =
  let n = Decomposition.graph_vertices decomposition in
  let d = Decomposition.size decomposition in
  let local = Array.init n (fun _ -> Vector.zero d) in
  fun ~src ~dst ->
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Online.stamper: process out of range";
    let v = Vector.merge local.(src) local.(dst) in
    Vector.incr v (group decomposition src dst);
    local.(src) <- Vector.copy v;
    local.(dst) <- v;
    Tm.Counter.incr m_stamps;
    Tm.Counter.add m_entries d;
    Vector.copy v

let precedes = Vector.lt
let concurrent = Vector.concurrent

let for_topology g =
  let d = Decomposition.best g in
  (d, stamper d)
