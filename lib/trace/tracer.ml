module Telemetry = Synts_telemetry.Telemetry

type kind = Complete | Instant | Message

type span = {
  kind : kind;
  name : string;
  cat : string;
  pid : int;
  tick : float;
  dur : float;
  a : int;
  b : int;
  id : int;
  cells : int;
  stamp : int array;
}

let dummy =
  {
    kind = Instant;
    name = "";
    cat = "";
    pid = -1;
    tick = 0.0;
    dur = 0.0;
    a = -1;
    b = -1;
    id = -1;
    cells = 0;
    stamp = [||];
  }

type t = {
  buf : span array;
  cap : int;
  mutable head : int; (* index of the oldest retained span *)
  mutable len : int;
  mutable drops : int;
  mutable pclock : float;
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity < 1";
  { buf = Array.make capacity dummy; cap = capacity; head = 0; len = 0; drops = 0; pclock = 0.0 }

let default = create ()
let on = ref false
let enabled () = !on
let set_enabled b = on := b
let capacity r = r.cap
let length r = r.len
let dropped r = r.drops

let clear ?(r = default) () =
  Array.fill r.buf 0 r.cap dummy;
  r.head <- 0;
  r.len <- 0;
  r.drops <- 0;
  r.pclock <- 0.0

let to_list ?(r = default) () =
  List.init r.len (fun i -> r.buf.((r.head + i) mod r.cap))

let c_recorded =
  Telemetry.Counter.v ~help:"Spans recorded into trace ring buffers" "trace.recorded_spans"

let c_dropped =
  Telemetry.Counter.v ~help:"Spans lost to trace ring buffer overflow" "trace.dropped_spans"

let push r s =
  Telemetry.Counter.incr c_recorded;
  if r.len < r.cap then begin
    r.buf.((r.head + r.len) mod r.cap) <- s;
    r.len <- r.len + 1
  end
  else begin
    (* Full: overwrite the oldest span. Count the loss loudly — the
       exporters turn a non-zero drop count into a warning line. *)
    r.buf.(r.head) <- s;
    r.head <- (r.head + 1) mod r.cap;
    r.drops <- r.drops + 1;
    Telemetry.Counter.incr c_dropped
  end

let complete ?(r = default) ~cat ?(pid = -1) ~tick ~dur ?(a = -1) ?(b = -1) name =
  if !on then push r { dummy with kind = Complete; name; cat; pid; tick; dur; a; b }

let instant ?(r = default) ~cat ?(pid = -1) ~tick ?(a = -1) ?(b = -1) name =
  if !on then push r { dummy with kind = Instant; name; cat; pid; tick; a; b }

let message ?(r = default) ~cat ~src ~dst ~tick ~id ?(cells = 0) ?(stamp = [||]) () =
  if !on then
    push r
      {
        kind = Message;
        name = "message";
        cat;
        pid = src;
        tick;
        dur = 0.0;
        a = src;
        b = dst;
        id;
        cells;
        stamp;
      }

type active = { mutable aopen : bool; ar : t; aname : string; acat : string; apid : int; atick : float }

let null = { aopen = false; ar = default; aname = ""; acat = ""; apid = -1; atick = 0.0 }

let begin_span ?(r = default) ~cat ?(pid = -1) ~tick name =
  if !on then { aopen = true; ar = r; aname = name; acat = cat; apid = pid; atick = tick }
  else null

let end_span act ~tick =
  if act.aopen then begin
    act.aopen <- false;
    if !on then
      push act.ar
        {
          dummy with
          kind = Complete;
          name = act.aname;
          cat = act.acat;
          pid = act.apid;
          tick = act.atick;
          dur = Float.max 0.0 (tick -. act.atick);
        }
  end

module Profile = struct
  let with_span ?r ~cat ?pid ~tick name f =
    if not !on then f ()
    else begin
      let act = begin_span ?r ~cat ?pid ~tick:(tick ()) name in
      Fun.protect ~finally:(fun () -> end_span act ~tick:(tick ())) f
    end
end

let pipeline_tick ?(r = default) () = r.pclock
let pipeline_advance ?(r = default) d = r.pclock <- r.pclock +. d

let flow_edges spans =
  (* Per layer, consecutive participations of each process in that
     layer's messages — the generating pairs of the direct relation ▷. A
     message touches both endpoints, so when two messages share both a
     source and a destination process the two per-process edges coincide;
     deduplicate by (cat, id, id). Iteration walks the span list, never a
     hash table, so the result is deterministic. *)
  let last : (string * int, span) Hashtbl.t = Hashtbl.create 64 in
  let cats = ref [] in
  let edges : (string, (span * span) list ref) Hashtbl.t = Hashtbl.create 8 in
  let seen : (string * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if s.kind = Message then begin
        let bucket =
          match Hashtbl.find_opt edges s.cat with
          | Some b -> b
          | None ->
              let b = ref [] in
              Hashtbl.add edges s.cat b;
              cats := s.cat :: !cats;
              b
        in
        let participate proc =
          (match Hashtbl.find_opt last (s.cat, proc) with
          | Some prev when prev.id <> s.id ->
              if not (Hashtbl.mem seen (s.cat, prev.id, s.id)) then begin
                Hashtbl.add seen (s.cat, prev.id, s.id) ();
                bucket := (prev, s) :: !bucket
              end
          | _ -> ());
          Hashtbl.replace last (s.cat, proc) s
        in
        participate s.a;
        if s.b <> s.a then participate s.b
      end)
    spans;
  List.rev_map
    (fun cat -> (cat, List.rev !(Hashtbl.find edges cat)))
    !cats
