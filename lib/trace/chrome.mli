(** Chrome trace-event / Perfetto exporter.

    Emits the object form [{"traceEvents":[...], ...}] of the trace-event
    format, loadable by [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}. The mapping:

    - each traced process becomes a trace [pid] (named ["P0"], ["P1"], …
      by ["M"] metadata events); each layer ([cat]) a [tid] within it;
    - {!Tracer.Complete} spans become ["X"] (complete) events with [ts]
      and [dur] in the layer's logical ticks; {!Tracer.Instant} become
      ["i"] events; {!Tracer.Message} become zero-duration ["X"] slices
      carrying [src]/[dst]/[id]/[cells]/[stamp] args;
    - causal flow arrows: every {!Tracer.flow_edges} pair — the
      generating pairs of the paper's [▷], whose transitive closure is
      [↦] — becomes an ["s"]/["f"] flow-event pair named
      ["sync_precedes"], bound to the two message slices;
    - recorder-global spans ([pid = -1], e.g. the offline pipeline's
      phase spans) land under a pseudo-process named ["pipeline"].

    Ticks are emitted as microseconds (the format's unit) verbatim — the
    absolute scale is meaningless, only the per-layer order is. *)

val to_json : ?dropped:int -> Tracer.span list -> Synts_bench_io.Json.t
(** The full trace document. [dropped] (default 0) is recorded as a
    top-level ["dropped_spans"] member — viewers ignore it, {!of_json}
    round-trips it. *)

val to_string : ?dropped:int -> Tracer.span list -> string

val of_json : Synts_bench_io.Json.t -> (Tracer.span list * int, string) result
(** Reconstruct the spans from an exported document (metadata and flow
    events are derived data and are skipped). Chronological re-sort is
    not attempted: events come back in document order, which for our own
    exports is recording order. *)

val of_string : string -> (Tracer.span list * int, string) result
val save : string -> ?dropped:int -> Tracer.span list -> unit

val flow_edge_pairs : Synts_bench_io.Json.t -> (int * int) list
(** The [(from, to)] message-id pairs of the document's flow events — the
    exported image of [▷]'s generating pairs, used by the qcheck property
    that checks them against the {!Synts_check.Oracle} poset. *)
