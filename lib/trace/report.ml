module Telemetry = Synts_telemetry.Telemetry

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text ->
      (* Sniff: a tracelog's first line is its own JSON document with the
         tracelog schema; anything else is treated as a Chrome document. *)
      let first_line =
        match String.index_opt text '\n' with
        | Some i -> String.sub text 0 i
        | None -> text
      in
      let is_tracelog =
        match Synts_bench_io.Json.of_string first_line with
        | Ok j -> (
            match Synts_bench_io.Json.member "schema" j with
            | Some (Synts_bench_io.Json.Str s) -> s = "synts-tracelog/1"
            | _ -> false)
        | Error _ -> false
      in
      if is_tracelog then Tracelog.of_string text else Chrome.of_string text

let fnum v =
  (* %g is deterministic and compact; our ticks are small integers or
     sums of them, so 6 significant digits never truncate surprisingly. *)
  Printf.sprintf "%g" v

(* Ordered grouping: keys in first-appearance order, values accumulated in
   a hashtable — iteration order never depends on hashing. *)
let group_by key items =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt tbl k with
      | Some cell -> cell := item :: !cell
      | None ->
          Hashtbl.add tbl k (ref [ item ]);
          order := k :: !order)
    items;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let attribution_rows spans =
  let completes = List.filter (fun (s : Tracer.span) -> s.kind = Tracer.Complete) spans in
  List.map
    (fun ((cat, name), group) ->
      let durs = List.map (fun (s : Tracer.span) -> s.dur) group in
      let count = List.length durs in
      let total = List.fold_left ( +. ) 0.0 durs in
      let hi = List.fold_left Float.max 0.0 durs in
      (* A throwaway registry per group so bucket bounds can be fitted to
         the group's range — quantiles stay sharp without a global choice. *)
      let registry = Telemetry.create_registry () in
      let buckets =
        if hi <= 0.0 then [| 1.0 |]
        else Array.init 16 (fun i -> hi *. float_of_int (i + 1) /. 16.0)
      in
      let h = Telemetry.Histogram.v ~registry ~buckets "report.durations" in
      List.iter (Telemetry.Histogram.observe h) durs;
      let q p = Telemetry.Histogram.quantile h p in
      ( cat,
        name,
        count,
        total,
        total /. float_of_int count,
        q 0.5,
        q 0.9,
        q 0.99 ))
    (group_by (fun (s : Tracer.span) -> (s.cat, s.name)) completes)

let width_over_time messages =
  (* Feed the layer's messages, in recording order, into the online width
     structure: each message's immediate predecessors are the previous
     participations of its two endpoint processes — the generating pairs
     of ▷ — so the tracked poset is exactly the message poset. *)
  let iw = Synts_poset.Incremental_width.create () in
  let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun (s : Tracer.span) ->
      let preds =
        List.sort_uniq compare
          (List.filter_map (fun p -> Hashtbl.find_opt last p) [ s.a; s.b ])
      in
      let id = Synts_poset.Incremental_width.add iw ~preds in
      Hashtbl.replace last s.a id;
      Hashtbl.replace last s.b id;
      (s.tick, Synts_poset.Incremental_width.width iw))
    messages

let render ?(dropped = 0) spans =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let count k = List.length (List.filter (fun (s : Tracer.span) -> s.kind = k) spans) in
  let n_x = count Tracer.Complete and n_i = count Tracer.Instant and n_m = count Tracer.Message in
  pr "synts trace report — %d spans (%d complete, %d instant, %d messages)\n"
    (List.length spans) n_x n_i n_m;
  if dropped > 0 then
    pr "WARNING: %d spans were dropped (ring buffer overflow) — totals are lower bounds.\n"
      dropped;
  let rows = attribution_rows spans in
  if rows <> [] then begin
    pr "\nPer-layer logical-time attribution (complete spans, ticks):\n";
    pr "  %-8s %-18s %7s %10s %10s %10s %10s %10s\n" "layer" "span" "count" "total" "mean"
      "p50" "p90" "p99";
    List.iter
      (fun (cat, name, count, total, mean, p50, p90, p99) ->
        pr "  %-8s %-18s %7d %10s %10s %10s %10s %10s\n" cat name count (fnum total)
          (fnum mean) (fnum p50) (fnum p90) (fnum p99))
      rows
  end;
  let msg_groups =
    group_by
      (fun (s : Tracer.span) -> s.cat)
      (List.filter (fun (s : Tracer.span) -> s.kind = Tracer.Message) spans)
  in
  if msg_groups <> [] then begin
    pr "\nMessages:\n";
    pr "  %-8s %9s %17s\n" "layer" "messages" "mean stamp cells";
    List.iter
      (fun (cat, msgs) ->
        let n = List.length msgs in
        let cells =
          List.fold_left (fun acc (s : Tracer.span) -> acc + s.cells) 0 msgs
        in
        pr "  %-8s %9d %17s\n" cat n (fnum (float_of_int cells /. float_of_int n)))
      msg_groups
  end;
  let slowest =
    List.filter (fun (s : Tracer.span) -> s.kind = Tracer.Complete) spans
    |> List.stable_sort (fun (x : Tracer.span) (y : Tracer.span) -> compare y.dur x.dur)
    |> List.filteri (fun i _ -> i < 5)
  in
  if slowest <> [] then begin
    pr "\nSlowest spans:\n";
    List.iteri
      (fun i (s : Tracer.span) ->
        pr "  %d. %s/%s pid=%d tick=%s dur=%s\n" (i + 1) s.cat s.name s.pid (fnum s.tick)
          (fnum s.dur))
      slowest
  end;
  (match
     List.stable_sort
       (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
       msg_groups
   with
  | (cat, msgs) :: _ when List.length msgs > 0 ->
      let points = width_over_time msgs in
      let n = List.length points in
      let final = snd (List.nth points (n - 1)) in
      pr "\nWidth over time (%s messages; final width %d ≤ ⌊N/2⌋ by Thm. 8):\n" cat final;
      let samples = min 12 n in
      let picked =
        List.init samples (fun i -> List.nth points (i * (n - 1) / max 1 (samples - 1)))
      in
      List.iter (fun (tick, w) -> pr "  tick %-8s width %d\n" (fnum tick) w) picked
  | _ -> ());
  Buffer.contents buf
