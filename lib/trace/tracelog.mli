(** The streaming [synts-tracelog v1] format: self-describing JSONL.

    Line 1 is a header object
    [{"schema":"synts-tracelog/1","spans":K,"dropped":D}]; each following
    line is one minified JSON object per span, oldest first. Being
    line-oriented, a recorder can stream spans out as they retire from
    the ring, and a reader can process a multi-gigabyte log without
    parsing it whole. The format round-trips exactly
    ([of_string (to_string spans) = Ok spans], property-tested), using the
    {!Synts_bench_io.Json} codec both ways.

    Span keys: [k] (["X"] complete / ["i"] instant / ["m"] message),
    [name], [cat], [pid], [ts]; [dur] on complete spans; [a]/[b] when
    present (≥ 0); [id], [cells] and [stamp] on messages. Unknown keys
    are ignored on read, so the format is forward-extensible. *)

val to_string : ?dropped:int -> Tracer.span list -> string
(** Render, oldest first. [dropped] (default 0) lands in the header so a
    truncated log declares itself. *)

val of_string : string -> (Tracer.span list * int, string) result
(** Parse a full log; returns the spans and the header's drop count.
    Blank lines are ignored; a bad header, schema or span line is an
    [Error] naming the line. *)

val save : string -> ?dropped:int -> Tracer.span list -> unit
(** Write {!to_string} to a file. *)

val load : string -> (Tracer.span list * int, string) result
