module Json = Synts_bench_io.Json

let schema = "synts-trace-chrome/1"

let num i = Json.Num (float_of_int i)

let to_json ?(dropped = 0) spans =
  (* Deterministic pid / tid assignment: real pids keep their number,
     recorder-global spans (pid = -1) share a pseudo-process one past the
     largest real pid; each layer (cat) is a tid, numbered in order of
     first appearance. *)
  let max_pid = List.fold_left (fun m (s : Tracer.span) -> max m s.pid) (-1) spans in
  let pipeline_pid = max_pid + 1 in
  let map_pid p = if p < 0 then pipeline_pid else p in
  let cats = ref [] in
  let tid_of : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let tid cat =
    match Hashtbl.find_opt tid_of cat with
    | Some t -> t
    | None ->
        let t = Hashtbl.length tid_of in
        Hashtbl.add tid_of cat t;
        cats := (cat, t) :: !cats;
        t
  in
  let threads : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
  let thread_order = ref [] in
  let note_thread pid cat t =
    if not (Hashtbl.mem threads (pid, t)) then begin
      Hashtbl.add threads (pid, t) cat;
      thread_order := (pid, t, cat) :: !thread_order
    end
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  let common (s : Tracer.span) ph =
    let t = tid s.cat in
    let pid = map_pid s.pid in
    note_thread pid s.cat t;
    [
      ("name", Json.Str s.name);
      ("cat", Json.Str s.cat);
      ("ph", Json.Str ph);
      ("pid", num pid);
      ("tid", num t);
      ("ts", Json.Num s.tick);
    ]
  in
  let int_args (s : Tracer.span) =
    (if s.a >= 0 then [ ("a", num s.a) ] else [])
    @ if s.b >= 0 then [ ("b", num s.b) ] else []
  in
  List.iter
    (fun (s : Tracer.span) ->
      match s.kind with
      | Tracer.Complete ->
          let args = int_args s in
          emit
            (Json.Obj
               (common s "X"
               @ [ ("dur", Json.Num s.dur) ]
               @ if args = [] then [] else [ ("args", Json.Obj args) ]))
      | Tracer.Instant ->
          let args = int_args s in
          emit
            (Json.Obj
               (common s "i"
               @ [ ("s", Json.Str "t") ]
               @ if args = [] then [] else [ ("args", Json.Obj args) ]))
      | Tracer.Message ->
          (* A zero-duration slice rather than an instant: flow events
             bind to slices, and this is what the arrows attach to. *)
          emit
            (Json.Obj
               (common s "X"
               @ [
                   ("dur", Json.Num 0.0);
                   ( "args",
                     Json.Obj
                       [
                         ("src", num s.a);
                         ("dst", num s.b);
                         ("id", num s.id);
                         ("cells", num s.cells);
                         ( "stamp",
                           Json.Arr (Array.to_list (Array.map num s.stamp)) );
                       ] );
                 ])))
    spans;
  let flow_id = ref 0 in
  List.iter
    (fun (_cat, edges) ->
      List.iter
        (fun ((u : Tracer.span), (v : Tracer.span)) ->
          incr flow_id;
          let point (s : Tracer.span) ph extra =
            Json.Obj
              ([
                 ("name", Json.Str "sync_precedes");
                 ("cat", Json.Str s.cat);
                 ("ph", Json.Str ph);
                 ("pid", num (map_pid s.pid));
                 ("tid", num (tid s.cat));
                 ("ts", Json.Num s.tick);
                 ("id", num !flow_id);
               ]
              @ extra
              @ [ ("args", Json.Obj [ ("from", num u.id); ("to", num v.id) ]) ])
          in
          emit (point u "s" []);
          emit (point v "f" [ ("bp", Json.Str "e") ]))
        edges)
    (Tracer.flow_edges spans);
  let metadata =
    let procs =
      List.sort_uniq compare
        (List.filter_map
           (fun (s : Tracer.span) -> if s.pid >= 0 then Some s.pid else None)
           spans)
    in
    let pseudo =
      if List.exists (fun (s : Tracer.span) -> s.pid < 0) spans then
        [ (pipeline_pid, "pipeline") ]
      else []
    in
    List.map
      (fun (pid, pname) ->
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", num pid);
            ("args", Json.Obj [ ("name", Json.Str pname) ]);
          ])
      (List.map (fun p -> (p, Printf.sprintf "P%d" p)) procs @ pseudo)
    @ List.rev_map
        (fun (pid, t, cat) ->
          Json.Obj
            [
              ("name", Json.Str "thread_name");
              ("ph", Json.Str "M");
              ("pid", num pid);
              ("tid", num t);
              ("args", Json.Obj [ ("name", Json.Str cat) ]);
            ])
        !thread_order
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("displayTimeUnit", Json.Str "ms");
      ("dropped_spans", num dropped);
      ("pipeline_pid", num pipeline_pid);
      ("traceEvents", Json.Arr (metadata @ List.rev !events));
    ]

let to_string ?dropped spans = Json.to_string (to_json ?dropped spans)

let int_field ?(default = -1) key j =
  match Json.member key j with
  | Some v -> ( match Json.to_num v with Some f -> int_of_float f | None -> default)
  | None -> default

let num_field ?(default = 0.0) key j =
  match Json.member key j with
  | Some v -> ( match Json.to_num v with Some f -> f | None -> default)
  | None -> default

let str_field key j = match Json.member key j with Some v -> Json.to_str v | None -> None

let of_json doc =
  match Json.member "traceEvents" doc with
  | Some (Json.Arr events) ->
      let dropped = int_field ~default:0 "dropped_spans" doc in
      let pipeline_pid = int_field ~default:min_int "pipeline_pid" doc in
      let restore_pid p = if p = pipeline_pid then -1 else p in
      let span_of ev : Tracer.span option =
        match (str_field "ph" ev, str_field "name" ev, str_field "cat" ev) with
        | Some "M", _, _ | Some "s", _, _ | Some "f", _, _ -> None
        | Some ph, Some name, Some cat ->
            let args = Option.value ~default:(Json.Obj []) (Json.member "args" ev) in
            let pid = restore_pid (int_field "pid" ev) in
            let tick = num_field "ts" ev in
            if ph = "i" then
              Some
                {
                  Tracer.kind = Tracer.Instant;
                  name;
                  cat;
                  pid;
                  tick;
                  dur = 0.0;
                  a = int_field "a" args;
                  b = int_field "b" args;
                  id = -1;
                  cells = 0;
                  stamp = [||];
                }
            else if ph = "X" then
              if Json.member "id" args <> None then
                let stamp =
                  match Json.member "stamp" args with
                  | Some (Json.Arr cells) ->
                      Array.of_list
                        (List.filter_map
                           (fun c -> Option.map int_of_float (Json.to_num c))
                           cells)
                  | _ -> [||]
                in
                Some
                  {
                    Tracer.kind = Tracer.Message;
                    name;
                    cat;
                    pid;
                    tick;
                    dur = 0.0;
                    a = int_field "src" args;
                    b = int_field "dst" args;
                    id = int_field "id" args;
                    cells = int_field ~default:0 "cells" args;
                    stamp;
                  }
              else
                Some
                  {
                    Tracer.kind = Tracer.Complete;
                    name;
                    cat;
                    pid;
                    tick;
                    dur = num_field "dur" ev;
                    a = int_field "a" args;
                    b = int_field "b" args;
                    id = -1;
                    cells = 0;
                    stamp = [||];
                  }
            else None
        | _ -> None
      in
      Ok (List.filter_map span_of events, dropped)
  | _ -> Error "chrome trace: missing traceEvents array"

let of_string text =
  match Json.of_string text with
  | Error e -> Error ("chrome trace: " ^ e)
  | Ok doc -> of_json doc

let save path ?dropped spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?dropped spans))

let flow_edge_pairs doc =
  match Json.member "traceEvents" doc with
  | Some (Json.Arr events) ->
      List.filter_map
        (fun ev ->
          match str_field "ph" ev with
          | Some "s" -> (
              match Json.member "args" ev with
              | Some args -> Some (int_field "from" args, int_field "to" args)
              | None -> None)
          | _ -> None)
        events
  | _ -> []
