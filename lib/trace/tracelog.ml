module Json = Synts_bench_io.Json

let schema = "synts-tracelog/1"

let span_to_json (s : Tracer.span) =
  let base =
    [
      ( "k",
        Json.Str
          (match s.kind with Tracer.Complete -> "X" | Tracer.Instant -> "i" | Tracer.Message -> "m")
      );
      ("name", Json.Str s.name);
      ("cat", Json.Str s.cat);
      ("pid", Json.Num (float_of_int s.pid));
      ("ts", Json.Num s.tick);
    ]
  in
  let dur = if s.kind = Tracer.Complete then [ ("dur", Json.Num s.dur) ] else [] in
  let arg key v = if v >= 0 then [ (key, Json.Num (float_of_int v)) ] else [] in
  let msg =
    if s.kind = Tracer.Message then
      [
        ("id", Json.Num (float_of_int s.id));
        ("cells", Json.Num (float_of_int s.cells));
        ( "stamp",
          Json.Arr (Array.to_list (Array.map (fun c -> Json.Num (float_of_int c)) s.stamp)) );
      ]
    else []
  in
  Json.Obj (base @ dur @ arg "a" s.a @ arg "b" s.b @ msg)

let to_string ?(dropped = 0) spans =
  let buf = Buffer.create 4096 in
  Json.to_buffer ~minify:true buf
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ("spans", Json.Num (float_of_int (List.length spans)));
         ("dropped", Json.Num (float_of_int dropped));
       ]);
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Json.to_buffer ~minify:true buf (span_to_json s);
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

let int_field ?(default = -1) key j =
  match Json.member key j with
  | Some v -> ( match Json.to_num v with Some f -> int_of_float f | None -> default)
  | None -> default

let num_field ?(default = 0.0) key j =
  match Json.member key j with
  | Some v -> ( match Json.to_num v with Some f -> f | None -> default)
  | None -> default

let str_field key j =
  match Json.member key j with Some v -> Json.to_str v | None -> None

let span_of_json j : (Tracer.span, string) result =
  match (str_field "k" j, str_field "name" j, str_field "cat" j) with
  | Some k, Some name, Some cat ->
      let kind =
        match k with
        | "X" -> Ok Tracer.Complete
        | "i" -> Ok Tracer.Instant
        | "m" -> Ok Tracer.Message
        | other -> Error (Printf.sprintf "unknown span kind %S" other)
      in
      Result.map
        (fun kind ->
          let stamp =
            match Json.member "stamp" j with
            | Some (Json.Arr cells) ->
                Array.of_list
                  (List.filter_map (fun c -> Option.map int_of_float (Json.to_num c)) cells)
            | _ -> [||]
          in
          {
            Tracer.kind;
            name;
            cat;
            pid = int_field "pid" j;
            tick = num_field "ts" j;
            dur = num_field "dur" j;
            a = int_field "a" j;
            b = int_field "b" j;
            id = int_field "id" j;
            cells = int_field ~default:0 "cells" j;
            stamp;
          })
        kind
  | _ -> Error "span line missing k/name/cat"

let of_string text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty tracelog"
  | header :: rest -> (
      match Json.of_string header with
      | Error e -> Error ("tracelog header: " ^ e)
      | Ok h when str_field "schema" h <> Some schema ->
          Error (Printf.sprintf "tracelog header: expected schema %S" schema)
      | Ok h ->
          let dropped = int_field ~default:0 "dropped" h in
          let rec go lineno acc = function
            | [] -> Ok (List.rev acc, dropped)
            | line :: rest -> (
                match Json.of_string line with
                | Error e -> Error (Printf.sprintf "tracelog line %d: %s" lineno e)
                | Ok j -> (
                    match span_of_json j with
                    | Error e -> Error (Printf.sprintf "tracelog line %d: %s" lineno e)
                    | Ok s -> go (lineno + 1) (s :: acc) rest))
          in
          go 2 [] rest)

let save path ?dropped spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?dropped spans))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
