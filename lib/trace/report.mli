(** The [synts trace report] renderer: per-layer logical-time attribution
    from a recorded trace.

    The report groups {!Tracer.Complete} spans by layer and name and
    attributes logical time to each (count, total, mean and
    p50/p90/p99 via {!Synts_telemetry.Telemetry.Histogram.quantile});
    summarises message counts and mean stamp cost per layer; lists the
    slowest spans; and replays the busiest layer's messages through
    {!Synts_poset.Incremental_width} to show how the width of the message
    poset — the paper's bound on timestamp size — evolved over the run.
    Deterministic: same trace, same report. *)

val load : string -> (Tracer.span list * int, string) result
(** Read a trace from disk in either format, sniffing between
    [synts-tracelog v1] JSONL ({!Tracelog}) and a Chrome trace-event
    document ({!Chrome}). *)

val render : ?dropped:int -> Tracer.span list -> string
(** The full report. A non-zero [dropped] adds a warning line: the
    buffer held only a suffix of the run, so totals are lower bounds. *)
