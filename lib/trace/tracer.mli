(** The causal tracing backbone: a deterministic, bounded, ring-buffer
    span recorder.

    Where {!Synts_telemetry.Telemetry} keeps {e aggregates} (counters,
    histograms), this recorder keeps {e individual events}: begin/end
    span pairs, instants and message records, each keyed by a logical
    tick from the layer that recorded it — the CSP scheduler's dispatch
    counter, the network simulator's virtual clock, a session's message
    sequence numbers, the offline pipeline's work-unit clock — never the
    wall clock, so two runs from the same seed record byte-identical
    logs. Message records carry the message's paper timestamp, which is
    exactly the data exporters need to draw causal flow arrows: the
    timestamps capture [↦] precisely (paper Thm. 4), so the trace is its
    own causality index.

    Design rules, mirroring telemetry's:

    - {b switchable}: {!set_enabled}[ false] (the default — tracing is
      opt-in, unlike telemetry) turns every recording site into a single
      boolean test (defended by the [trace-overhead] bench group);
    - {b bounded}: each recorder owns a fixed-capacity ring; once full,
      the oldest span is overwritten and {!dropped} (plus the
      [trace.dropped_spans] telemetry counter) is incremented — the
      exporters warn, so truncation never reads as full coverage;
    - {b allocation-light}: recording one span is one record allocation
      and a ring store; nothing is resized or copied on the hot path. *)

(** What one ring slot holds. *)
type kind =
  | Complete  (** A span with a start tick and a duration. *)
  | Instant  (** A point event. *)
  | Message  (** A message instant carrying its paper timestamp. *)

type span = {
  kind : kind;
  name : string;  (** E.g. ["wait"], ["transit"], ["message"]. *)
  cat : string;  (** The recording layer: ["csp"], ["net"], ["session"], ["poset"]. *)
  pid : int;  (** Owning process, [-1] for global/pipeline spans. *)
  tick : float;  (** Start tick, in the layer's logical-tick domain. *)
  dur : float;  (** Duration in ticks ({!Complete} only, else [0.]). *)
  a : int;  (** First argument (message source), [-1] when absent. *)
  b : int;  (** Second argument (message destination), [-1] when absent. *)
  id : int;  (** Message id, unique within [cat]; [-1] when absent. *)
  cells : int;  (** Stamp cost in slab cells touched, [0] when absent. *)
  stamp : int array;  (** The paper timestamp, [[||]] when absent. *)
}

type t
(** A recorder (ring buffer + its drop count + a pipeline clock). *)

val default : t
(** The process-wide recorder every built-in instrumentation site uses. *)

val create : ?capacity:int -> unit -> t
(** A private recorder. [capacity] (default 65536) is the ring size in
    spans; it is fixed for the recorder's lifetime. Raises
    [Invalid_argument] when [capacity < 1]. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Global switch (default [false]). When disabled, every recording
    operation returns after one boolean test. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Spans overwritten since the last {!clear} — when non-zero the buffer
    holds only a suffix of the run. *)

val clear : ?r:t -> unit -> unit
(** Forget all spans, zero {!dropped} and reset the pipeline clock. *)

val to_list : ?r:t -> unit -> span list
(** The retained spans, oldest first. *)

(** {1 Recording} *)

val complete :
  ?r:t ->
  cat:string ->
  ?pid:int ->
  tick:float ->
  dur:float ->
  ?a:int ->
  ?b:int ->
  string ->
  unit

val instant :
  ?r:t -> cat:string -> ?pid:int -> tick:float -> ?a:int -> ?b:int -> string -> unit

val message :
  ?r:t ->
  cat:string ->
  src:int ->
  dst:int ->
  tick:float ->
  id:int ->
  ?cells:int ->
  ?stamp:int array ->
  unit ->
  unit
(** Record one message occurrence ([pid] = [src]). [id] must be unique
    within [cat] — exporters derive the causal flow edges from per-process
    consecutive participations, matching the generating pairs of the
    paper's direct relation [▷]. *)

(** {2 Begin/end pairs}

    [begin_span]/[end_span] bracket work whose two ends live at different
    call sites; the pair lands in the ring as one {!Complete} span at
    [end_span] time, so no unbalanced records can exist. *)

type active

val null : active
(** An inert handle: {!end_span} on it is a no-op. Instrumentation sites
    that park actives in an array use it as the initial value. *)

val begin_span : ?r:t -> cat:string -> ?pid:int -> tick:float -> string -> active
(** Returns {!null} when recording is disabled. *)

val end_span : active -> tick:float -> unit
(** Records the {!Complete} span. Ending twice is a no-op. *)

(** {2 The hook API} *)

module Profile : sig
  val with_span :
    ?r:t -> cat:string -> ?pid:int -> tick:(unit -> float) -> string -> (unit -> 'a) -> 'a
  (** [with_span ~cat ~tick name f] runs [f ()] bracketed by a span whose
      start and end ticks are read from [tick] (exception-safe). When
      recording is disabled the cost is one boolean test — [tick] is not
      even called. *)
end

(** {1 The pipeline clock}

    Layers with no natural tick domain (the offline Dilworth pipeline)
    advance this per-recorder logical clock by the work units each phase
    performed, so their phase spans are totally ordered and their
    durations measure work, not wall time. *)

val pipeline_tick : ?r:t -> unit -> float
val pipeline_advance : ?r:t -> float -> unit

(** {1 Derived structure} *)

val flow_edges : span list -> (string * (span * span) list) list
(** Per layer ([cat], in first-appearance order), the causal flow edges
    between its {!Message} spans: one edge per pair of consecutive
    participations of a process, i.e. the generating pairs of the direct
    relation [▷] — their transitive closure is exactly [↦]
    (property-tested against {!Synts_check.Oracle}). Deterministic. *)
