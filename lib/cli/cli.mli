(** Shared command-line pieces for the [synts] subcommands.

    Every subcommand that takes a topology, a seed, or telemetry/report
    output used to declare its own copy of these flags; [Flags] is the
    single definition ([serve], [load], [simulate], [chaos], [lint], ...
    all pull from here), so names, defaults and help text cannot drift
    between subcommands. *)

module Flags : sig
  (** A topology argument: a generator spec, or [@FILE] pointing at a
      saved adjacency list. *)
  type topo_arg =
    | Spec of Synts_graph.Topology.spec
    | From_file of string

  val topo_to_string : topo_arg -> string

  val realize_topology : int -> topo_arg -> Synts_graph.Graph.t
  (** Build the graph ([Spec] generators are seeded); prints the error
      and exits 1 on an unreadable file. *)

  val topology_conv : topo_arg Cmdliner.Arg.conv

  val seed_t : int Cmdliner.Term.t
  (** [--seed SEED], default 42. *)

  val metrics_format_conv : [ `Json | `Prom | `Text ] Cmdliner.Arg.conv

  val metrics_t : [ `Json | `Prom | `Text ] option Cmdliner.Term.t
  (** [--metrics FMT]: dump the telemetry snapshot after the run. *)

  val dump_metrics : [ `Json | `Prom | `Text ] -> unit

  val report_format_t : [ `Json | `Text ] Cmdliner.Term.t
  (** [--format text|json] (default text) for report-style output. *)

  val check_loss : float -> unit
  (** Exit 1 unless the probability is in [0, 1]. *)
end
