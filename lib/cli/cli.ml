module Rng = Synts_util.Rng
module Topology = Synts_graph.Topology
module Telemetry = Synts_telemetry.Telemetry
module Log = Synts_obs.Log
open Cmdliner

module Flags = struct
  type topo_arg = Spec of Topology.spec | From_file of string

  let topo_to_string = function
    | Spec spec -> Topology.spec_to_string spec
    | From_file path -> "@" ^ path

  (* Fatal CLI diagnostics go through the structured logger (the one
     sanctioned stderr path in lib/) so they carry level + component
     like every other record. *)
  let die msg =
    Log.error ~component:"cli" msg;
    exit 1

  let realize_topology seed = function
    | Spec spec -> Topology.build ~rng:(Rng.create seed) spec
    | From_file path -> (
        match Topology.load_graph path with Ok g -> g | Error e -> die e)

  let topology_conv =
    let parse s =
      if String.length s > 1 && s.[0] = '@' then
        Ok (From_file (String.sub s 1 (String.length s - 1)))
      else
        Topology.spec_of_string s
        |> Result.map (fun spec -> Spec spec)
        |> Result.map_error (fun e -> `Msg e)
    in
    let print ppf t = Format.pp_print_string ppf (topo_to_string t) in
    Arg.conv (parse, print)

  let seed_t =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

  let metrics_format_conv =
    Arg.enum [ ("json", `Json); ("prom", `Prom); ("text", `Text) ]

  let metrics_t =
    Arg.(
      value
      & opt (some metrics_format_conv) None
      & info [ "metrics" ] ~docv:"FMT"
          ~doc:
            "Dump the telemetry snapshot after the run, as $(b,json), \
             $(b,prom) (Prometheus text format) or $(b,text) (one line per \
             metric, histograms with p50/p90/p99).")

  let dump_metrics fmt =
    let snap = Telemetry.snapshot () in
    match fmt with
    | `Prom -> print_string (Telemetry.to_prometheus snap)
    | `Json -> print_string (Telemetry.to_json snap)
    | `Text -> Format.printf "%a" Telemetry.pp snap

  let report_format_t =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format"; "f" ] ~docv:"FMT"
          ~doc:"Report as $(b,text) or $(b,json).")

  let check_loss loss =
    if loss < 0.0 || loss > 1.0 then die "--loss must be in [0, 1]"
end
