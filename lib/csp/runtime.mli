(** A CSP-style synchronous message-passing runtime on OCaml effects.

    The paper targets programs written against synchronous communication —
    CSP, Ada rendezvous, synchronous RPC. This runtime provides exactly
    that substrate: processes are cooperative fibers (one-shot
    continuations via effect handlers), [send] blocks until the matching
    [recv] (rendezvous), scheduling is deterministic from a seed, and every
    rendezvous is recorded so a finished run yields the synchronous
    {!Synts_sync.Trace.t} it denotes.

    When an edge decomposition is supplied, the runtime runs the paper's
    Figure 5 protocol as middleware: each rendezvous piggybacks the
    sender's vector, acknowledges with the receiver's, and hands both
    parties the message's timestamp.

    The runtime is a functor over the payload type, since OCaml effect
    declarations are monomorphic. *)

module Make (M : sig
  type msg
end) : sig
  type api = {
    self : int;  (** This process's id. *)
    send : int -> M.msg -> Synts_clock.Vector.t option;
        (** [send dst m] blocks until [dst] receives; returns the message's
            timestamp when timestamping is on. *)
    recv : unit -> int * M.msg * Synts_clock.Vector.t option;
        (** Receive from any process (blocking). *)
    recv_from : int -> M.msg * Synts_clock.Vector.t option;
        (** Receive from one specific process (blocking). *)
    yield : unit -> unit;  (** Let another fiber run. *)
    internal : unit -> unit;  (** Record an internal event in the trace. *)
  }

  type outcome = {
    trace : Synts_sync.Trace.t;
        (** The synchronous computation that was executed. *)
    timestamps : Synts_clock.Vector.t array option;
        (** Per message id, when a decomposition was supplied. *)
    deadlocked : int list;
        (** Pids blocked forever (empty = every fiber terminated).
            Includes fibers left waiting on a crashed peer. *)
    crashed : int list;  (** Fibers fail-stopped by the fault plan. *)
    failures : (int * exn) list;  (** Fibers that raised. *)
  }

  exception Step_limit_exceeded

  val run :
    ?seed:int ->
    ?decomposition:Synts_graph.Decomposition.t ->
    ?on_stamp:(src:int -> dst:int -> Synts_clock.Vector.t -> unit) ->
    ?sink:Synts_ingest.Ingest.sink ->
    ?max_steps:int ->
    ?faults:Synts_fault.Plan.t ->
    n:int ->
    (api -> unit) array ->
    outcome
  (** [run ~n programs] executes [programs.(p)] as process [p]
      ([Array.length programs = n]). Scheduling and rendezvous matching
      are pseudo-random but fully determined by [seed] (default 0).
      [max_steps] (scheduler dispatches) guards against divergence; raises
      {!Step_limit_exceeded} beyond it. [on_stamp] observes every
      message's timestamp as its rendezvous completes (only called when
      timestamping is on) — the hook point for running the runtime under a
      sanitizer such as [Synts_lint.Lint.Sanitizer], which needs the
      runtime's own stamps rather than an independent re-stamping.

      [sink] is the {!Synts_ingest.Ingest.S} convergence path: every
      rendezvous is forwarded as [Message {src; dst}] and every internal
      event as [Internal {proc}], in scheduler order, so any ingest
      implementation — a {!Synts_session.Session}, the sharded
      [synts serve] engine, or a remote server client — can shadow the
      run and stamp the same computation.

      [faults] (default empty; validated against [n]) applies the crash
      clauses of a fault plan, with crash times read as scheduler
      dispatch counts: the fiber is fail-stopped, reported in [crashed],
      and peers blocked on it surface in [deadlocked]. Fibers hold
      one-shot continuations — there is no process image to restore — so
      [Crash_recover] degrades to crash-stop here; network-level clauses
      (loss, duplication, corruption, partitions, spikes) do not apply
      to an in-memory rendezvous and are ignored. Full crash-{e recover}
      semantics live in {!Synts_net.Rendezvous}. *)

  val explore :
    ?decomposition:Synts_graph.Decomposition.t ->
    ?max_steps:int ->
    n:int ->
    seeds:int list ->
    (api -> unit) array ->
    (int * outcome) list
  (** Run the same programs under many seeded schedules and return one
      [(seed, outcome)] per {e distinct} trace (first seed wins) — a
      lightweight schedule-space search, e.g. for hunting rendezvous
      deadlocks. Programs must be rerunnable (no shared mutable state
      across runs). *)

  exception Replay_divergence of string
  (** The program did something other than what the trace prescribes. *)

  val replay :
    ?decomposition:Synts_graph.Decomposition.t ->
    ?on_stamp:(src:int -> dst:int -> Synts_clock.Vector.t -> unit) ->
    ?sink:Synts_ingest.Ingest.sink ->
    trace:Synts_sync.Trace.t ->
    (api -> unit) array ->
    outcome
  (** Deterministic replay: re-execute the programs forcing every
      rendezvous, internal event and matching decision to follow [trace]
      (recorded by an earlier {!run}). Yields are transparent. Raises
      {!Replay_divergence} when a program's next action contradicts the
      trace — which also makes replay a conformance check between a
      program and a log. Fibers with actions remaining after the trace is
      exhausted are reported in [deadlocked]. *)

  (** Reusable program fragments for the communication shapes the paper
      discusses (synchronous RPC, pipelines, broadcast trees). *)
  module Pattern : sig
    val rpc_server :
      requests:int -> handler:(int -> M.msg -> M.msg) -> api -> unit
    (** Serve exactly [requests] calls: receive from anyone, apply
        [handler client payload], reply synchronously. *)

    val rpc_call :
      api -> server:int -> M.msg -> M.msg * Synts_clock.Vector.t option
    (** One synchronous call: send, then block for the reply; returns the
        reply and the reply message's timestamp. *)

    val relay :
      next:int -> items:int -> transform:(M.msg -> M.msg) -> api -> unit
    (** Pipeline stage: forward [items] transformed messages downstream. *)

    val broadcast : api -> int list -> M.msg -> unit
    (** Send the same payload to each listed process, in order (each send
        is a separate rendezvous). *)

    val gather : api -> int -> (int * M.msg) list
    (** Receive [k] messages from anyone; returns (sender, payload) in
        arrival order. *)
  end
end
