module Rng = Synts_util.Rng
module Ingest = Synts_ingest.Ingest
module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Edge_clock = Synts_core.Edge_clock
module Plan = Synts_fault.Plan
module Tm = Synts_telemetry.Telemetry
module Tracer = Synts_trace.Tracer

let m_dispatches =
  Tm.Counter.v ~help:"Fiber dispatches by the CSP scheduler" "csp.dispatches"

let m_rendezvous =
  Tm.Counter.v ~help:"Rendezvous completed by the CSP runtime" "csp.rendezvous"

let m_internal =
  Tm.Counter.v ~help:"Internal events recorded by CSP fibers"
    "csp.internal_events"

let m_failures =
  Tm.Counter.v ~help:"Fibers that terminated with an exception" "csp.failures"

let m_crashes =
  Tm.Counter.v ~help:"Process crash events injected" "proc.crashes"

let m_wait =
  Tm.Span.v
    ~help:"Scheduler steps a fiber spent blocked before its rendezvous"
    ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200. |]
    "csp.rendezvous_wait_steps"

module Make (M : sig
  type msg
end) =
struct
  type api = {
    self : int;
    send : int -> M.msg -> Vector.t option;
    recv : unit -> int * M.msg * Vector.t option;
    recv_from : int -> M.msg * Vector.t option;
    yield : unit -> unit;
    internal : unit -> unit;
  }

  type outcome = {
    trace : Trace.t;
    timestamps : Vector.t array option;
    deadlocked : int list;
    crashed : int list;
    failures : (int * exn) list;
  }

  exception Step_limit_exceeded

  type _ Effect.t +=
    | Send : int * M.msg -> Vector.t option Effect.t
    | Recv : int option -> (int * M.msg * Vector.t option) Effect.t
    | Yield : unit Effect.t
    | Internal : unit Effect.t

  (* What a fiber is doing between scheduler dispatches. *)
  type step =
    | Finished
    | Failed of exn
    | Wants_send of int * M.msg * (Vector.t option, step) Effect.Deep.continuation
    | Wants_recv of
        int option * (int * M.msg * Vector.t option, step) Effect.Deep.continuation
    | Wants_yield of (unit, step) Effect.Deep.continuation
    | Wants_internal of (unit, step) Effect.Deep.continuation

  type status =
    | Runnable of (unit -> step)
    | Send_blocked of int * M.msg * (Vector.t option, step) Effect.Deep.continuation
    | Recv_blocked of
        int option * (int * M.msg * Vector.t option, step) Effect.Deep.continuation
    | Done

  let start program api () =
    Effect.Deep.match_with program api
      {
        retc = (fun () -> Finished);
        exnc = (fun e -> Failed e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Send (dst, m) ->
                Some
                  (fun (k : (a, step) Effect.Deep.continuation) ->
                    Wants_send (dst, m, k))
            | Recv filter ->
                Some (fun k -> Wants_recv (filter, k))
            | Yield -> Some (fun k -> Wants_yield k)
            | Internal -> Some (fun k -> Wants_internal k)
            | _ -> None);
      }

  let api_of pid =
    {
      self = pid;
      send = (fun dst m -> Effect.perform (Send (dst, m)));
      recv = (fun () -> Effect.perform (Recv None));
      recv_from =
        (fun src ->
          let s, m, ts = Effect.perform (Recv (Some src)) in
          assert (s = src);
          (m, ts));
      yield = (fun () -> Effect.perform Yield);
      internal = (fun () -> Effect.perform Internal);
    }

  (* The Figure 5 exchange for one rendezvous; both sides must agree. *)
  let protocol_stamp clocks ~src ~dst =
    let payload = Edge_clock.on_send clocks.(src) ~dst in
    let `Ack ack, ts = Edge_clock.receive clocks.(dst) ~src payload in
    let ts' = Edge_clock.on_ack clocks.(src) ~dst ack in
    assert (Vector.equal ts ts');
    ts

  let run ?(seed = 0) ?decomposition ?on_stamp ?sink ?max_steps ?(faults = [])
      ~n programs =
    if Array.length programs <> n then
      invalid_arg "Runtime.run: need exactly one program per process";
    (match Plan.validate ~n faults with
    | Ok () -> ()
    | Error e -> invalid_arg ("Runtime.run: " ^ e));
    (* The scheduler has no virtual clock, so crash times are read as
       dispatch counts. Fibers hold one-shot continuations — there is no
       process image to checkpoint — so crash-recover degrades to
       crash-stop here; full recovery lives in the network layer. *)
    let crash_schedule =
      List.filter_map
        (function
          | Plan.Crash_stop { proc; at } | Plan.Crash_recover { proc; at; _ }
            ->
              Some (proc, at)
          | _ -> None)
        faults
    in
    let rng = Rng.create seed in
    let clocks =
      Option.map
        (fun d -> Array.init n (fun pid -> Edge_clock.create d ~pid))
        decomposition
    in
    let status = Array.make n Done in
    let steps = ref [] and message_stamps = ref [] in
    let failures = ref [] in
    let dispatches = ref 0 in
    (* Open wait spans, one per currently blocked fiber; the tick is the
       scheduler's dispatch counter, so wait depth is measured in
       scheduling steps, not wall time. *)
    let waits : Tm.Span.active option array = Array.make n None in
    (* Trace wait spans parallel the telemetry ones: same tick domain
       (the dispatch counter), but individually retained so the profiler
       can attribute blocked time per process, not just in aggregate. *)
    let twaits : Tracer.active array = Array.make n Tracer.null in
    let messages = ref 0 in
    let block pid =
      if Tm.enabled () then
        waits.(pid) <- Some (Tm.Span.start m_wait ~tick:(float_of_int !dispatches));
      if Tracer.enabled () then
        twaits.(pid) <-
          Tracer.begin_span ~cat:"csp" ~pid ~tick:(float_of_int !dispatches) "wait"
    in
    let unblock pid =
      (match waits.(pid) with
      | None -> ()
      | Some a ->
          waits.(pid) <- None;
          Tm.Span.stop a ~tick:(float_of_int !dispatches));
      Tracer.end_span twaits.(pid) ~tick:(float_of_int !dispatches);
      twaits.(pid) <- Tracer.null
    in
    let record_rendezvous ~src ~dst =
      steps := Trace.Send (src, dst) :: !steps;
      Tm.Counter.incr m_rendezvous;
      unblock src;
      unblock dst;
      let id = !messages in
      incr messages;
      Option.iter
        (fun s -> ignore (Ingest.observe s (Ingest.Message { src; dst })))
        sink;
      let ts =
        match clocks with
        | None -> None
        | Some clocks ->
            let ts = protocol_stamp clocks ~src ~dst in
            Option.iter (fun f -> f ~src ~dst ts) on_stamp;
            message_stamps := ts :: !message_stamps;
            Some ts
      in
      if Tracer.enabled () then begin
        let cells = match ts with Some v -> Array.length v | None -> 0 in
        let stamp = Option.value ~default:[||] ts in
        Tracer.message ~cat:"csp" ~src ~dst
          ~tick:(float_of_int !dispatches)
          ~id ~cells ~stamp ()
      end;
      ts
    in
    let filter_accepts filter src =
      match filter with None -> true | Some p -> p = src
    in
    (* Advance one fiber and act on the step it returns. *)
    let rec handle pid = function
      | Finished -> status.(pid) <- Done
      | Failed e ->
          failures := (pid, e) :: !failures;
          Tm.Counter.incr m_failures;
          status.(pid) <- Done
      | Wants_yield k ->
          status.(pid) <- Runnable (fun () -> Effect.Deep.continue k ())
      | Wants_internal k ->
          steps := Trace.Local pid :: !steps;
          Tm.Counter.incr m_internal;
          Option.iter
            (fun s -> ignore (Ingest.observe s (Ingest.Internal { proc = pid })))
            sink;
          if Tracer.enabled () then
            Tracer.instant ~cat:"csp" ~pid
              ~tick:(float_of_int !dispatches)
              "internal";
          status.(pid) <- Runnable (fun () -> Effect.Deep.continue k ())
      | Wants_send (dst, m, k) ->
          if dst < 0 || dst >= n || dst = pid then
            (* Resume the fiber with the error so its own handler reports
               it as a failure (or lets the program catch it). *)
            handle pid
              (Effect.Deep.discontinue k
                 (Invalid_argument "Runtime.send: bad destination"))
          else begin
            match status.(dst) with
            | Recv_blocked (filter, krecv) when filter_accepts filter pid ->
                let ts = record_rendezvous ~src:pid ~dst in
                status.(dst) <-
                  Runnable (fun () -> Effect.Deep.continue krecv (pid, m, ts));
                status.(pid) <- Runnable (fun () -> Effect.Deep.continue k ts)
            | _ ->
                block pid;
                status.(pid) <- Send_blocked (dst, m, k)
          end
      | Wants_recv (filter, k) ->
          (* Look for a sender already blocked on us. *)
          let candidates = ref [] in
          for p = n - 1 downto 0 do
            match status.(p) with
            | Send_blocked (dst, _, _) when dst = pid && filter_accepts filter p
              ->
                candidates := p :: !candidates
            | _ -> ()
          done;
          (match !candidates with
          | [] ->
              block pid;
              status.(pid) <- Recv_blocked (filter, k)
          | cs ->
              let src = Rng.pick rng cs in
              (match status.(src) with
              | Send_blocked (_, m, ksend) ->
                  let ts = record_rendezvous ~src ~dst:pid in
                  status.(src) <-
                    Runnable (fun () -> Effect.Deep.continue ksend ts);
                  status.(pid) <-
                    Runnable (fun () -> Effect.Deep.continue k (src, m, ts))
              | _ -> assert false))
    in
    (* Boot every fiber. *)
    for pid = 0 to n - 1 do
      status.(pid) <- Runnable (start programs.(pid) (api_of pid))
    done;
    let runnable () =
      List.filter
        (fun p -> match status.(p) with Runnable _ -> true | _ -> false)
        (List.init n Fun.id)
    in
    let crashed = ref [] in
    (* Fail-stop a fiber: discard its continuation, close its wait span.
       A peer blocked on the dead fiber stays blocked and surfaces in
       [deadlocked] — the degradation is visible, not silent. *)
    let kill pid =
      match status.(pid) with
      | Done -> () (* finished before its crash time; nothing to kill *)
      | _ ->
          unblock pid;
          status.(pid) <- Done;
          crashed := pid :: !crashed;
          Tm.Counter.incr m_crashes;
          if Tracer.enabled () then
            Tracer.instant ~cat:"fault" ~pid
              ~tick:(float_of_int !dispatches)
              "crash"
    in
    let pending_crashes = ref crash_schedule in
    let continue = ref true in
    while !continue do
      let now = float_of_int !dispatches in
      (match
         List.partition (fun (_, at) -> at <= now) !pending_crashes
       with
      | [], _ -> ()
      | due, later ->
          pending_crashes := later;
          List.iter (fun (p, _) -> kill p) due);
      match runnable () with
      | [] -> continue := false
      | rs ->
          incr dispatches;
          Tm.Counter.incr m_dispatches;
          (match max_steps with
          | Some lim when !dispatches > lim -> raise Step_limit_exceeded
          | _ -> ());
          let pid = Rng.pick rng rs in
          (match status.(pid) with
          | Runnable thunk ->
              status.(pid) <- Done;
              (* placeholder during execution *)
              handle pid (thunk ())
          | _ -> assert false)
    done;
    let deadlocked =
      List.filter
        (fun p -> match status.(p) with Done -> false | _ -> true)
        (List.init n Fun.id)
    in
    let trace = Trace.of_steps_exn ~n (List.rev !steps) in
    let timestamps =
      Option.map
        (fun _ -> Array.of_list (List.rev !message_stamps))
        clocks
    in
    {
      trace;
      timestamps;
      deadlocked;
      crashed = List.sort compare !crashed;
      failures = List.rev !failures;
    }

  let explore ?decomposition ?max_steps ~n ~seeds programs =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun seed ->
        let outcome = run ~seed ?decomposition ?max_steps ~n programs in
        let key = Trace.steps outcome.trace in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.replace seen key ();
          Some (seed, outcome)
        end)
      seeds

  exception Replay_divergence of string

  let replay ?decomposition ?on_stamp ?sink ~trace programs =
    let n = Trace.n trace in
    if Array.length programs <> n then
      invalid_arg "Runtime.replay: need exactly one program per process";
    let clocks =
      Option.map
        (fun d -> Array.init n (fun pid -> Edge_clock.create d ~pid))
        decomposition
    in
    let failures = ref [] and message_stamps = ref [] in
    (* Each fiber's current request; None once finished or failed. *)
    let wants : step option array = Array.make n None in
    let rec settle pid = function
      | Finished -> wants.(pid) <- None
      | Failed e ->
          failures := (pid, e) :: !failures;
          wants.(pid) <- None
      | Wants_yield k -> settle pid (Effect.Deep.continue k ())
      | other -> wants.(pid) <- Some other
    in
    let diverge fmt = Printf.ksprintf (fun s -> raise (Replay_divergence s)) fmt in
    for pid = 0 to n - 1 do
      settle pid (start programs.(pid) (api_of pid) ())
    done;
    let executed = ref [] in
    List.iter
      (fun step ->
        (match step with
        | Trace.Local p -> (
            match wants.(p) with
            | Some (Wants_internal k) ->
                Option.iter
                  (fun s ->
                    ignore (Ingest.observe s (Ingest.Internal { proc = p })))
                  sink;
                settle p (Effect.Deep.continue k ())
            | _ -> diverge "P%d: trace expects an internal event" p)
        | Trace.Send (src, dst) -> (
            match (wants.(src), wants.(dst)) with
            | Some (Wants_send (d, m, ks)), Some (Wants_recv (filter, kr))
              when d = dst
                   && (match filter with None -> true | Some p -> p = src) ->
                Option.iter
                  (fun s ->
                    ignore (Ingest.observe s (Ingest.Message { src; dst })))
                  sink;
                let ts =
                  match clocks with
                  | None -> None
                  | Some clocks ->
                      let ts = protocol_stamp clocks ~src ~dst in
                      Option.iter (fun f -> f ~src ~dst ts) on_stamp;
                      message_stamps := ts :: !message_stamps;
                      Some ts
                in
                settle dst (Effect.Deep.continue kr (src, m, ts));
                settle src (Effect.Deep.continue ks ts)
            | _ -> diverge "trace expects rendezvous P%d -> P%d" src dst));
        executed := step :: !executed)
      (Trace.steps trace);
    let deadlocked =
      List.filter (fun p -> wants.(p) <> None) (List.init n Fun.id)
    in
    {
      trace = Trace.of_steps_exn ~n (List.rev !executed);
      timestamps =
        Option.map (fun _ -> Array.of_list (List.rev !message_stamps)) clocks;
      deadlocked;
      crashed = [];
      failures = List.rev !failures;
    }

  module Pattern = struct
    let rpc_server ~requests ~handler api =
      for _ = 1 to requests do
        let client, payload, _ = api.recv () in
        ignore (api.send client (handler client payload))
      done

    let rpc_call api ~server payload =
      ignore (api.send server payload);
      api.recv_from server

    let relay ~next ~items ~transform api =
      for _ = 1 to items do
        let _, payload, _ = api.recv () in
        ignore (api.send next (transform payload))
      done

    let broadcast api recipients payload =
      List.iter (fun dst -> ignore (api.send dst payload)) recipients

    let gather api k =
      List.init k (fun _ ->
          let src, payload, _ = api.recv () in
          (src, payload))
  end
end
