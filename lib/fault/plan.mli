(** Declarative fault plans.

    A plan is a list of faults to inject into a run — process crashes
    (with or without recovery), partition windows, packet duplication,
    bit-flip corruption and delay spikes. Plans are plain data: they can
    be built programmatically, parsed from the CLI grammar below, and
    validated against a topology before a run. The {!Injector} turns a
    plan plus a seed into concrete, reproducible decisions.

    Concrete grammar (one fault per clause, clauses separated by [;]):

    {v
    crash:P@T          crash-stop process P at virtual time T
    recover:P@T+D      crash process P at time T, recover it D later
    partition:A,B@T1-T2  isolate processes {A,B,...} from the rest
                         during the window [T1, T2)
    dup:PROB           duplicate each delivered packet with prob. PROB
    corrupt:PROB       flip one payload bit with probability PROB
    spike:PROB*F       multiply a packet's delay by F with prob. PROB
    join:P:U-V,..@T    process P joins at time T with the given channels
    join:P@T           ... with no channels yet
    leave:P@T          process P leaves (all its channels drop) at T
    flap:P@T+D         P leaves at T and rejoins D later with the
                       channels it had (peers that left meanwhile are
                       skipped)
    v}

    Example: ["recover:2@25+30; dup:0.1; spike:0.2*5"]. The churn
    clauses ([join]/[leave]/[flap]) drive membership epochs
    ({!Synts_graph.Membership}) and are executed by the [synts churn]
    harness ({!Churn}); the packet-level chaos runner rejects plans
    containing them. *)

type fault =
  | Crash_stop of { proc : int; at : float }
      (** [proc] fail-stops at virtual time [at]: its volatile state is
          lost and it never acts again. *)
  | Crash_recover of { proc : int; at : float; after : float }
      (** [proc] crashes at [at] and recovers [after] time units later
          from its last checkpoint. *)
  | Partition of { island : int list; from_ : float; until_ : float }
      (** Packets crossing the cut between [island] and its complement
          are dropped during [[from_, until_)]. *)
  | Duplicate of { prob : float }
      (** Each successfully transmitted packet is delivered twice with
          probability [prob]. *)
  | Corrupt of { prob : float }
      (** Each transmitted packet has one payload bit flipped with
          probability [prob]. *)
  | Delay_spike of { prob : float; factor : float }
      (** Each packet's transit delay is multiplied by [factor] with
          probability [prob] (a congestion burst). *)
  | Join_proc of { proc : int; edges : (int * int) list; at : float }
      (** Membership delta: [proc] joins at [at] with the listed
          channels (each incident to [proc]). [proc] may name a process
          the initial topology has never seen. *)
  | Leave_proc of { proc : int; at : float }
      (** Membership delta: [proc] and all its channels leave at [at]. *)
  | Flap of { proc : int; at : float; after : float }
      (** [proc] leaves at [at] and rejoins [after] later with the
          channels it held at departure (restricted to peers still
          active at rejoin time). *)

type t = fault list

val validate : n:int -> t -> (unit, string) result
(** Check a plan against a system of [n] processes: process ids in
    range, probabilities in [[0,1]], windows well ordered, spike factor
    ≥ 1, at most one [Duplicate]/[Corrupt]/[Delay_spike] clause and at
    most one crash per process. Churn clauses are checked for shape only
    (their process ids may exceed [n-1] — joins grow the system);
    whether a delta applies is a runtime membership question. *)

val kinds : t -> string list
(** The fault kinds the plan declares, deduplicated, in first-appearance
    order. Kinds: ["crash"], ["recovery"], ["partition"],
    ["duplicate"], ["corrupt"], ["delay-spike"], ["join"], ["leave"],
    ["flap"]. *)

val kind : fault -> string
(** The kind name of one clause (as in {!kinds}; a [Crash_recover] is
    ["crash"] — its recovery leg is tallied separately). *)

val is_churn : fault -> bool
val has_churn : t -> bool
(** Whether the plan contains membership churn clauses — such plans run
    under [synts churn], not the packet-level chaos runner. *)

val fault_to_string : fault -> string
val fault_of_string : string -> (fault, string) result

val to_string : t -> string
(** Clauses joined with ["; "]; inverse of {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse a [;]-separated clause list (empty clauses are skipped; an
    empty string is the empty plan). *)

val pp : Format.formatter -> t -> unit
