(** Distributed churn harness: the Figure 5 protocol under membership
    churn, crashes and partitions, with per-process {e stale} epoch
    views.

    Unlike {!Synts_core.Epoch_stamper} (which rebases every vector the
    instant a delta applies), this harness models what a real deployment
    sees: each process keeps its own view of the epoch and only catches
    up when it next communicates. Stamps travel as epoch-tagged checksum
    frames ({!Synts_clock.Wire.encode_epoch_framed}); a receiver on a
    newer epoch decodes the stale frame and translates it through the
    membership remap chain instead of rejecting it. Crashes lose
    volatile state and recover from epoch-tagged checkpoints (possibly
    several epochs stale — exercised deliberately); partition windows
    veto send attempts.

    Virtual time is the attempt index: the [@T] of a plan clause fires
    before the [⌈T⌉]-th send attempt, so windows expire even when no
    message can be delivered.

    With [~check] (default true) the run verifies exactness internally:
    all delivered stamps are translated into the final epoch and every
    ordered pair is compared against an independently tracked causal
    past — Eq. 1 of the paper, across epoch boundaries. *)

type outcome = {
  delivered : int;  (** messages delivered (≤ requested) *)
  skipped : int;  (** attempts with no live channel available *)
  blocked : int;  (** attempts vetoed by a partition window *)
  deltas_applied : int;
  delta_failures : int;  (** churn clauses whose delta did not validate *)
  translated_frames : int;  (** stale-epoch frames translated on receipt *)
  view_syncs : int;  (** process views caught up to the current epoch *)
  crashes : int;
  recoveries : int;
  final_epoch : int;
  final_width : int;
  comparisons : int;  (** ordered stamp pairs checked (0 when unchecked) *)
  mismatches : int;  (** pairs where stamp order ≠ causality *)
  stamps : (int * int array) array;
      (** per delivered message, [(epoch, stamp)] as stamped *)
  final_stamps : int array array;
      (** the same stamps translated into the final epoch *)
}

val exact : outcome -> bool
(** [comparisons > 0 && mismatches = 0] — the run was checked and every
    comparison outcome matched causality. *)

val run :
  ?seed:int ->
  ?faults:Injector.t ->
  ?check:bool ->
  graph:Synts_graph.Graph.t ->
  messages:int ->
  unit ->
  (Synts_graph.Membership.t * outcome, string) result
(** Run [messages] random rendezvous over the churning topology seeded
    from [graph]. [seed] drives workload choice (channel picks),
    independent of the injector's stream. Returns the final membership
    (for lint auditing) with the outcome; [Error] only on internal wire
    failures, which a fault-free frame path never produces. *)
