module Rng = Synts_util.Rng

type t = {
  plan : Plan.t;
  rng : Rng.t;
  dup_prob : float;
  corrupt_prob : float;
  spike_prob : float;
  spike_factor : float;
  partitions : (int list * float * float) list;
  crash_schedule : (int * float * float option) list;
  tally : (string, int) Hashtbl.t;
}

let create ?(seed = 0) plan =
  let dup_prob = ref 0.0
  and corrupt_prob = ref 0.0
  and spike_prob = ref 0.0
  and spike_factor = ref 1.0
  and partitions = ref []
  and crash_schedule = ref [] in
  List.iter
    (fun (f : Plan.fault) ->
      match f with
      | Duplicate { prob } -> dup_prob := prob
      | Corrupt { prob } -> corrupt_prob := prob
      | Delay_spike { prob; factor } ->
          spike_prob := prob;
          spike_factor := factor
      | Partition { island; from_; until_ } ->
          partitions := (island, from_, until_) :: !partitions
      | Crash_stop { proc; at } ->
          crash_schedule := (proc, at, None) :: !crash_schedule
      | Crash_recover { proc; at; after } ->
          crash_schedule := (proc, at, Some after) :: !crash_schedule)
    plan;
  let tally = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace tally k 0) (Plan.kinds plan);
  {
    plan;
    rng = Rng.create seed;
    dup_prob = !dup_prob;
    corrupt_prob = !corrupt_prob;
    spike_prob = !spike_prob;
    spike_factor = !spike_factor;
    partitions = List.rev !partitions;
    crash_schedule = List.rev !crash_schedule;
    tally;
  }

let plan t = t.plan

let note t k =
  Hashtbl.replace t.tally k (1 + Option.value ~default:0 (Hashtbl.find_opt t.tally k))

let roll_duplicate t =
  t.dup_prob > 0.0
  && Rng.chance t.rng t.dup_prob
  &&
  (note t "duplicate";
   true)

let roll_corrupt t =
  t.corrupt_prob > 0.0
  && Rng.chance t.rng t.corrupt_prob
  &&
  (note t "corrupt";
   true)

let delay_factor t =
  if t.spike_prob > 0.0 && Rng.chance t.rng t.spike_prob then begin
    note t "delay-spike";
    t.spike_factor
  end
  else 1.0

let blocks t ~now ~src ~dst =
  let separated (island, from_, until_) =
    now >= from_ && now < until_
    && List.mem src island <> List.mem dst island
  in
  List.exists separated t.partitions
  &&
  (note t "partition";
   true)

let flip_bit t s =
  let len = String.length s in
  if len = 0 then s
  else begin
    let bit = Rng.int t.rng (8 * len) in
    let b = Bytes.of_string s in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Bytes.to_string b
  end

let crashes t = t.crash_schedule
let note_crash t = note t "crash"
let note_recovery t = note t "recovery"

let fired t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tally []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let unobserved t =
  List.filter_map (fun (k, v) -> if v = 0 then Some k else None) (fired t)
