module Rng = Synts_util.Rng

type t = {
  plan : Plan.t;
  rng : Rng.t;
  dup_prob : float;
  corrupt_prob : float;
  spike_prob : float;
  spike_factor : float;
  partitions : (int list * float * float) list;
  crash_schedule : (int * float * float option) list;
  churn_schedule : (float * Plan.fault) list;
  tally : (string, int) Hashtbl.t;
  rolls : (string, int) Hashtbl.t;
}

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let create ?(seed = 0) plan =
  let dup_prob = ref 0.0
  and corrupt_prob = ref 0.0
  and spike_prob = ref 0.0
  and spike_factor = ref 1.0
  and partitions = ref []
  and crash_schedule = ref []
  and churn_schedule = ref [] in
  let tally = Hashtbl.create 8 and rolls = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace tally k 0; Hashtbl.replace rolls k 0)
    (Plan.kinds plan);
  List.iter
    (fun (f : Plan.fault) ->
      match f with
      | Duplicate { prob } -> dup_prob := prob
      | Corrupt { prob } -> corrupt_prob := prob
      | Delay_spike { prob; factor } ->
          spike_prob := prob;
          spike_factor := factor
      | Partition { island; from_; until_ } ->
          partitions := (island, from_, until_) :: !partitions
      | Crash_stop { proc; at } ->
          bump rolls "crash";
          crash_schedule := (proc, at, None) :: !crash_schedule
      | Crash_recover { proc; at; after } ->
          bump rolls "crash";
          bump rolls "recovery";
          crash_schedule := (proc, at, Some after) :: !crash_schedule
      | Join_proc { at; _ } | Leave_proc { at; _ } | Flap { at; _ } ->
          bump rolls (Plan.kind f);
          churn_schedule := (at, f) :: !churn_schedule)
    plan;
  {
    plan;
    rng = Rng.create seed;
    dup_prob = !dup_prob;
    corrupt_prob = !corrupt_prob;
    spike_prob = !spike_prob;
    spike_factor = !spike_factor;
    partitions = List.rev !partitions;
    crash_schedule = List.rev !crash_schedule;
    churn_schedule =
      List.stable_sort
        (fun (a, _) (b, _) -> compare a b)
        (List.rev !churn_schedule);
    tally;
    rolls;
  }

let plan t = t.plan
let note t k = bump t.tally k
let consult t k = bump t.rolls k

let roll_duplicate t =
  t.dup_prob > 0.0
  && (consult t "duplicate";
      Rng.chance t.rng t.dup_prob)
  &&
  (note t "duplicate";
   true)

let roll_corrupt t =
  t.corrupt_prob > 0.0
  && (consult t "corrupt";
      Rng.chance t.rng t.corrupt_prob)
  &&
  (note t "corrupt";
   true)

let delay_factor t =
  if t.spike_prob > 0.0 then begin
    consult t "delay-spike";
    if Rng.chance t.rng t.spike_prob then begin
      note t "delay-spike";
      t.spike_factor
    end
    else 1.0
  end
  else 1.0

let blocks t ~now ~src ~dst =
  t.partitions <> []
  && (consult t "partition";
      let separated (island, from_, until_) =
        now >= from_ && now < until_
        && List.mem src island <> List.mem dst island
      in
      List.exists separated t.partitions)
  &&
  (note t "partition";
   true)

let flip_bit t s =
  let len = String.length s in
  if len = 0 then s
  else begin
    let bit = Rng.int t.rng (8 * len) in
    let b = Bytes.of_string s in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Bytes.to_string b
  end

let crashes t = t.crash_schedule
let churn t = t.churn_schedule
let note_crash t = note t "crash"
let note_recovery t = note t "recovery"
let note_churn t f = note t (Plan.kind f)

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fired t = sorted t.tally

let breakdown t =
  List.map
    (fun (k, fired) ->
      (k, Option.value ~default:0 (Hashtbl.find_opt t.rolls k), fired))
    (sorted t.tally)

let unobserved t =
  List.filter_map (fun (k, v) -> if v = 0 then Some k else None) (fired t)
