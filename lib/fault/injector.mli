(** Seeded fault-decision engine.

    An injector compiles a {!Plan.t} into per-packet decisions: should
    this packet be duplicated, corrupted, delayed, or blocked by a
    partition window? Decisions are drawn from the injector's own
    SplitMix64 stream, independent of the network simulator's — adding
    a fault plan never perturbs the delays or losses an existing seed
    produces. Runs are bit-for-bit reproducible from [(plan, seed)].

    The injector also tallies which fault kinds actually fired, so a
    run can report plan clauses that never took effect (surfaced by the
    [fault/unobserved] lint rule). *)

type t

val create : ?seed:int -> Plan.t -> t
(** Compile a plan. [seed] (default 0) drives all probabilistic
    decisions. The plan is not validated here — {!Plan.validate} runs
    against a concrete [n] at the point of use. *)

val plan : t -> Plan.t

(** {1 Per-packet decisions} — each consults the random stream only
    when the corresponding fault kind is declared with positive
    probability, and records a tally when it fires. *)

val roll_duplicate : t -> bool
val roll_corrupt : t -> bool

val delay_factor : t -> float
(** [1.0], or the spike factor when the spike fires. *)

val blocks : t -> now:float -> src:int -> dst:int -> bool
(** Whether a partition window separates [src] from [dst] at time
    [now] (one endpoint inside an island, the other outside). *)

val flip_bit : t -> string -> string
(** Corrupt a payload: flip one uniformly chosen bit. Returns the
    string unchanged only when it is empty. *)

(** {1 Crash schedule} *)

val crashes : t -> (int * float * float option) list
(** [(proc, at, recover_after)] per crash clause, in plan order. *)

val note_crash : t -> unit
val note_recovery : t -> unit
(** Called by the runtime when a crash / recovery event takes effect,
    so the tallies cover faults the injector does not decide itself. *)

(** {1 Observation tallies} *)

val fired : t -> (string * int) list
(** How often each declared fault kind actually fired, sorted by kind
    name. Kinds that never fired are present with count 0. *)

val unobserved : t -> string list
(** Declared kinds with a zero tally, sorted. *)
