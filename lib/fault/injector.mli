(** Seeded fault-decision engine.

    An injector compiles a {!Plan.t} into per-packet decisions: should
    this packet be duplicated, corrupted, delayed, or blocked by a
    partition window? Decisions are drawn from the injector's own
    SplitMix64 stream, independent of the network simulator's — adding
    a fault plan never perturbs the delays or losses an existing seed
    produces. Runs are bit-for-bit reproducible from [(plan, seed)].

    The injector also tallies which fault kinds actually fired, so a
    run can report plan clauses that never took effect (surfaced by the
    [fault/unobserved] lint rule). *)

type t

val create : ?seed:int -> Plan.t -> t
(** Compile a plan. [seed] (default 0) drives all probabilistic
    decisions. The plan is not validated here — {!Plan.validate} runs
    against a concrete [n] at the point of use. *)

val plan : t -> Plan.t

(** {1 Per-packet decisions} — each consults the random stream only
    when the corresponding fault kind is declared with positive
    probability, and records a tally when it fires. *)

val roll_duplicate : t -> bool
val roll_corrupt : t -> bool

val delay_factor : t -> float
(** [1.0], or the spike factor when the spike fires. *)

val blocks : t -> now:float -> src:int -> dst:int -> bool
(** Whether a partition window separates [src] from [dst] at time
    [now] (one endpoint inside an island, the other outside). *)

val flip_bit : t -> string -> string
(** Corrupt a payload: flip one uniformly chosen bit. Returns the
    string unchanged only when it is empty. *)

(** {1 Crash and churn schedules} *)

val crashes : t -> (int * float * float option) list
(** [(proc, at, recover_after)] per crash clause, in plan order. *)

val churn : t -> (float * Plan.fault) list
(** The plan's churn clauses ([Join_proc]/[Leave_proc]/[Flap]) sorted
    by trigger time (stable for ties). Executed by the {!Churn}
    harness; the packet-level runners ignore them. *)

val note_crash : t -> unit
val note_recovery : t -> unit
(** Called by the runtime when a crash / recovery event takes effect,
    so the tallies cover faults the injector does not decide itself. *)

val note_churn : t -> Plan.fault -> unit
(** Record that a churn clause's delta was actually applied (tallied
    under its kind: ["join"], ["leave"] or ["flap"]). *)

(** {1 Observation tallies} *)

val fired : t -> (string * int) list
(** How often each declared fault kind actually fired, sorted by kind
    name. Kinds that never fired are present with count 0. *)

val breakdown : t -> (string * int * int) list
(** [(kind, consulted, fired)] per declared kind, sorted by kind name:
    [consulted] counts decision points — packets rolled for the
    probabilistic kinds ([duplicate]/[corrupt]/[delay-spike]), send
    attempts checked against partition windows, and scheduled instances
    for [crash]/[recovery] and the churn kinds — while [fired] counts
    the decisions that actually took effect. The [synts chaos --format
    json] report exposes this as the per-kind injection breakdown. *)

val unobserved : t -> string list
(** Declared kinds with a zero tally, sorted. *)
