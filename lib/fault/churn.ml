module Graph = Synts_graph.Graph
module Membership = Synts_graph.Membership
module Wire = Synts_clock.Wire
module Rng = Synts_util.Rng

type outcome = {
  delivered : int;
  skipped : int;
  blocked : int;
  deltas_applied : int;
  delta_failures : int;
  translated_frames : int;
  view_syncs : int;
  crashes : int;
  recoveries : int;
  final_epoch : int;
  final_width : int;
  comparisons : int;
  mismatches : int;
  stamps : (int * int array) array;
  final_stamps : int array array;
}

let exact o = o.comparisons > 0 && o.mismatches = 0

(* One simulated process: its own (possibly stale) view of the epoch,
   the vector in that view's layout, an epoch-tagged durable checkpoint,
   and — when checking — its causal past as one byte per message id. *)
type pstate = {
  mutable view : int;
  mutable vec : int array;
  mutable alive : bool;
  mutable ckpt : int * int array;
  mutable past : Bytes.t;
}

exception Wire_error of string

let lt a b =
  let le = ref true and ne = ref false in
  Array.iteri
    (fun i x ->
      if x > b.(i) then le := false;
      if x <> b.(i) then ne := true)
    a;
  !le && !ne

let run ?(seed = 0) ?faults ?(check = true) ~graph ~messages () =
  let m = Membership.of_graph graph in
  let rng = Rng.create seed in
  let fresh_p () =
    {
      view = Membership.epoch m;
      vec = Array.make (Membership.width m) 0;
      alive = true;
      ckpt = (Membership.epoch m, Array.make (Membership.width m) 0);
      past = (if check then Bytes.make messages '\000' else Bytes.empty);
    }
  in
  let ps = ref (Array.init (Membership.processes m) (fun _ -> fresh_p ())) in
  let grow () =
    let n = Membership.processes m in
    if n > Array.length !ps then begin
      let old = !ps in
      ps := Array.init n (fun i -> if i < Array.length old then old.(i) else fresh_p ())
    end
  in
  let skipped = ref 0
  and blocked = ref 0
  and deltas_applied = ref 0
  and delta_failures = ref 0
  and translated_frames = ref 0
  and view_syncs = ref 0
  and crashes = ref 0
  and recoveries = ref 0 in
  let stamps = Array.make messages (0, [||]) in
  let msg_past = Array.make messages Bytes.empty in
  let delivered = ref 0 in
  (* Event queues, all keyed on virtual time = attempt index. *)
  let churn_q =
    ref (match faults with None -> [] | Some inj -> Injector.churn inj)
  in
  let crash_q =
    ref (match faults with None -> [] | Some inj -> Injector.crashes inj)
  in
  let rejoin_q = ref [] (* (at, proc, edges) from flap clauses *)
  and recover_q = ref [] (* (at, proc) *) in
  let apply_delta ?clause delta =
    match Membership.apply m delta with
    | Ok _ ->
        incr deltas_applied;
        grow ();
        Option.iter
          (fun f -> Option.iter (fun inj -> Injector.note_churn inj f) faults)
          clause
    | Error _ -> incr delta_failures
  in
  let fire_churn now =
    let due, later = List.partition (fun (at, _) -> at <= now) !churn_q in
    churn_q := later;
    List.iter
      (fun (_, (f : Plan.fault)) ->
        match f with
        | Plan.Join_proc { proc; edges; _ } ->
            apply_delta ~clause:f (Membership.Join { proc; edges })
        | Plan.Leave_proc { proc; _ } ->
            apply_delta ~clause:f (Membership.Leave proc)
        | Plan.Flap { proc; at; after } ->
            if Membership.is_active m proc then begin
              let edges =
                List.map
                  (fun nb -> (proc, nb))
                  (Graph.neighbors (Membership.graph m) proc)
              in
              apply_delta ~clause:f (Membership.Leave proc);
              rejoin_q := (at +. after, proc, edges) :: !rejoin_q
            end
            else incr delta_failures
        | _ -> ())
      due;
    let due, later = List.partition (fun (at, _, _) -> at <= now) !rejoin_q in
    rejoin_q := later;
    List.iter
      (fun (_, proc, edges) ->
        let edges =
          List.filter
            (fun (u, v) ->
              let peer = if u = proc then v else u in
              Membership.is_active m peer)
            edges
        in
        apply_delta (Membership.Join { proc; edges }))
      due
  in
  let fire_crashes now =
    let due, later = List.partition (fun (_, at, _) -> at <= now) !crash_q in
    crash_q := later;
    List.iter
      (fun (proc, at, recover) ->
        if proc >= 0 && proc < Array.length !ps && !ps.(proc).alive then begin
          let p = !ps.(proc) in
          p.alive <- false;
          Array.fill p.vec 0 (Array.length p.vec) 0;
          incr crashes;
          Option.iter Injector.note_crash faults;
          Option.iter
            (fun after -> recover_q := (at +. after, proc) :: !recover_q)
            recover
        end)
      due;
    let due, later = List.partition (fun (at, _) -> at <= now) !recover_q in
    recover_q := later;
    List.iter
      (fun (_, proc) ->
        let p = !ps.(proc) in
        if not p.alive then begin
          p.alive <- true;
          let e, v = p.ckpt in
          (* The checkpoint may be several epochs stale; the process
             resumes with its old view and catches up on first contact. *)
          p.view <- e;
          p.vec <- Array.copy v;
          incr recoveries;
          Option.iter Injector.note_recovery faults
        end)
      due
  in
  let sync p =
    let e = Membership.epoch m in
    if p.view < e then begin
      p.vec <- Membership.translate m ~from_epoch:p.view p.vec;
      p.view <- e;
      incr view_syncs
    end
  in
  let max_scheduled =
    List.fold_left max 0.0
      (List.map fst !churn_q
      @ List.map
          (fun (_, at, rec_) ->
            at +. Option.value ~default:0.0 rec_)
          !crash_q
      @ List.concat_map
          (fun (_, (f : Plan.fault)) ->
            match f with Plan.Flap { at; after; _ } -> [ at +. after ] | _ -> [])
          !churn_q)
  in
  let step_limit = (messages * 4) + int_of_float max_scheduled + 8 in
  (match
     let step = ref 0 in
     while !delivered < messages && !step < step_limit do
       let now = float_of_int !step in
       incr step;
       fire_churn now;
       fire_crashes now;
       let candidates =
         List.filter
           (fun (u, v) -> !ps.(u).alive && !ps.(v).alive)
           (Graph.edges (Membership.graph m))
       in
       if candidates = [] then incr skipped
       else begin
         let src, dst = List.nth candidates (Rng.int rng (List.length candidates)) in
         let vetoed =
           match faults with
           | Some inj -> Injector.blocks inj ~now ~src ~dst
           | None -> false
         in
         if vetoed then incr blocked
         else begin
           let e_now = Membership.epoch m in
           let sp = !ps.(src) and dp = !ps.(dst) in
           (* REQ: the sender frames its vector under its own view. *)
           let frame = Wire.encode_epoch_framed ~epoch:sp.view sp.vec in
           sync dp;
           let ef, vf =
             match Wire.decode_epoch_framed frame with
             | Ok r -> r
             | Error e -> raise (Wire_error ("REQ frame: " ^ e))
           in
           let vf =
             if ef < e_now then begin
               incr translated_frames;
               Membership.translate m ~from_epoch:ef vf
             end
             else vf
           in
           (* ACK carries the receiver's pre-merge vector (Fig. 5 l. 04). *)
           let ack = Wire.encode_epoch_framed ~epoch:dp.view dp.vec in
           let slot = Membership.slot_of_edge m src dst in
           let ts = Array.init (Array.length vf) (fun i -> max vf.(i) dp.vec.(i)) in
           ts.(slot) <- ts.(slot) + 1;
           dp.vec <- Array.copy ts;
           dp.ckpt <- (e_now, Array.copy ts);
           (* Sender processes the ACK, catching up to the epoch first. *)
           sync sp;
           let ea, va =
             match Wire.decode_epoch_framed ack with
             | Ok r -> r
             | Error e -> raise (Wire_error ("ACK frame: " ^ e))
           in
           let va =
             if ea < e_now then begin
               incr translated_frames;
               Membership.translate m ~from_epoch:ea va
             end
             else va
           in
           let ts' = Array.init (Array.length va) (fun i -> max va.(i) sp.vec.(i)) in
           ts'.(slot) <- ts'.(slot) + 1;
           if ts' <> ts then
             raise (Wire_error "sender and receiver derived different timestamps");
           sp.vec <- Array.copy ts;
           sp.ckpt <- (e_now, Array.copy ts);
           let k = !delivered in
           stamps.(k) <- (e_now, ts);
           if check then begin
             let merged = Bytes.copy sp.past in
             Bytes.iteri
               (fun i c -> if c <> '\000' then Bytes.set merged i '\001')
               dp.past;
             Bytes.set merged k '\001';
             msg_past.(k) <- merged;
             sp.past <- merged;
             dp.past <- merged
           end;
           incr delivered
         end
       end
     done
   with
  | () -> Ok ()
  | exception Wire_error e -> Error e)
  |> function
  | Error _ as e -> e
  | Ok () ->
      let n = !delivered in
      let stamps = Array.sub stamps 0 n in
      let final_stamps =
        Array.map (fun (e, v) -> Membership.translate m ~from_epoch:e v) stamps
      in
      let comparisons = ref 0 and mismatches = ref 0 in
      if check then
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j then begin
              incr comparisons;
              let causal = Bytes.get msg_past.(j) i <> '\000' in
              if lt final_stamps.(i) final_stamps.(j) <> causal then
                incr mismatches
            end
          done
        done;
      Ok
        ( m,
          {
            delivered = n;
            skipped = !skipped;
            blocked = !blocked;
            deltas_applied = !deltas_applied;
            delta_failures = !delta_failures;
            translated_frames = !translated_frames;
            view_syncs = !view_syncs;
            crashes = !crashes;
            recoveries = !recoveries;
            final_epoch = Membership.epoch m;
            final_width = Membership.width m;
            comparisons = !comparisons;
            mismatches = !mismatches;
            stamps;
            final_stamps;
          } )
