type fault =
  | Crash_stop of { proc : int; at : float }
  | Crash_recover of { proc : int; at : float; after : float }
  | Partition of { island : int list; from_ : float; until_ : float }
  | Duplicate of { prob : float }
  | Corrupt of { prob : float }
  | Delay_spike of { prob : float; factor : float }
  | Join_proc of { proc : int; edges : (int * int) list; at : float }
  | Leave_proc of { proc : int; at : float }
  | Flap of { proc : int; at : float; after : float }

type t = fault list

let kind = function
  | Crash_stop _ | Crash_recover _ -> "crash"
  | Partition _ -> "partition"
  | Duplicate _ -> "duplicate"
  | Corrupt _ -> "corrupt"
  | Delay_spike _ -> "delay-spike"
  | Join_proc _ -> "join"
  | Leave_proc _ -> "leave"
  | Flap _ -> "flap"

let is_churn = function
  | Join_proc _ | Leave_proc _ | Flap _ -> true
  | _ -> false

let has_churn plan = List.exists is_churn plan

let kinds plan =
  let seen = Hashtbl.create 8 in
  let add acc k =
    if Hashtbl.mem seen k then acc
    else begin
      Hashtbl.add seen k ();
      k :: acc
    end
  in
  List.rev
    (List.fold_left
       (fun acc f ->
         let acc = add acc (kind f) in
         match f with Crash_recover _ -> add acc "recovery" | _ -> acc)
       [] plan)

let prob_ok p = p >= 0.0 && p <= 1.0

let validate ~n plan =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let proc_ok p = p >= 0 && p < n in
  let rec go ~dup ~corrupt ~spike crashed = function
    | [] -> Ok ()
    | f :: rest -> (
        match f with
        | Crash_stop { proc; at } | Crash_recover { proc; at; _ }
          when not (proc_ok proc) || at < 0.0 ->
            err "fault plan: bad crash clause (process %d, at %g)" proc at
        | Crash_stop { proc; _ } | Crash_recover { proc; _ } ->
            if List.mem proc crashed then
              err "fault plan: process %d crashes more than once" proc
            else
              let after_ok =
                match f with
                | Crash_recover { after; _ } -> after > 0.0
                | _ -> true
              in
              if not after_ok then
                err "fault plan: recovery delay must be positive (process %d)"
                  proc
              else go ~dup ~corrupt ~spike (proc :: crashed) rest
        | Partition { island; from_; until_ } ->
            if island = [] then err "fault plan: empty partition island"
            else if List.exists (fun p -> not (proc_ok p)) island then
              err "fault plan: partition names a process outside 0..%d" (n - 1)
            else if List.length (List.sort_uniq compare island) <> List.length island
            then err "fault plan: partition island repeats a process"
            else if from_ < 0.0 || until_ <= from_ then
              err "fault plan: bad partition window %g-%g" from_ until_
            else go ~dup ~corrupt ~spike crashed rest
        | Duplicate { prob } ->
            if dup then err "fault plan: more than one dup clause"
            else if not (prob_ok prob) then
              err "fault plan: dup probability %g outside [0, 1]" prob
            else go ~dup:true ~corrupt ~spike crashed rest
        | Corrupt { prob } ->
            if corrupt then err "fault plan: more than one corrupt clause"
            else if not (prob_ok prob) then
              err "fault plan: corrupt probability %g outside [0, 1]" prob
            else go ~dup ~corrupt:true ~spike crashed rest
        | Delay_spike { prob; factor } ->
            if spike then err "fault plan: more than one spike clause"
            else if not (prob_ok prob) then
              err "fault plan: spike probability %g outside [0, 1]" prob
            else if factor < 1.0 then
              err "fault plan: spike factor %g must be >= 1" factor
            else go ~dup ~corrupt ~spike:true crashed rest
        (* Churn processes may lie outside 0..n-1: a join can introduce a
           process the initial topology has never seen. Whether a given
           delta is applicable is a runtime membership question, checked
           (and tolerated) when the clause fires. *)
        | Join_proc { proc; edges; at } ->
            if proc < 0 || at < 0.0 then
              err "fault plan: bad join clause (process %d, at %g)" proc at
            else if
              List.exists
                (fun (u, v) -> u < 0 || v < 0 || u = v || (u <> proc && v <> proc))
                edges
            then
              err "fault plan: join edges must link process %d to a peer" proc
            else go ~dup ~corrupt ~spike crashed rest
        | Leave_proc { proc; at } ->
            if proc < 0 || at < 0.0 then
              err "fault plan: bad leave clause (process %d, at %g)" proc at
            else go ~dup ~corrupt ~spike crashed rest
        | Flap { proc; at; after } ->
            if proc < 0 || at < 0.0 then
              err "fault plan: bad flap clause (process %d, at %g)" proc at
            else if after <= 0.0 then
              err "fault plan: flap rejoin delay must be positive (process %d)"
                proc
            else go ~dup ~corrupt ~spike crashed rest)
  in
  go ~dup:false ~corrupt:false ~spike:false [] plan

let fault_to_string = function
  | Crash_stop { proc; at } -> Printf.sprintf "crash:%d@%g" proc at
  | Crash_recover { proc; at; after } ->
      Printf.sprintf "recover:%d@%g+%g" proc at after
  | Partition { island; from_; until_ } ->
      Printf.sprintf "partition:%s@%g-%g"
        (String.concat "," (List.map string_of_int island))
        from_ until_
  | Duplicate { prob } -> Printf.sprintf "dup:%g" prob
  | Corrupt { prob } -> Printf.sprintf "corrupt:%g" prob
  | Delay_spike { prob; factor } -> Printf.sprintf "spike:%g*%g" prob factor
  | Join_proc { proc; edges = []; at } -> Printf.sprintf "join:%d@%g" proc at
  | Join_proc { proc; edges; at } ->
      Printf.sprintf "join:%d:%s@%g" proc
        (String.concat ","
           (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges))
        at
  | Leave_proc { proc; at } -> Printf.sprintf "leave:%d@%g" proc at
  | Flap { proc; at; after } -> Printf.sprintf "flap:%d@%g+%g" proc at after

let scan spec fmt k =
  match Scanf.sscanf spec fmt k with
  | v -> Ok v
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      Error (Printf.sprintf "fault plan: cannot parse clause %S" spec)

let fault_of_string spec =
  let spec = String.trim spec in
  match String.index_opt spec ':' with
  | None -> Error (Printf.sprintf "fault plan: clause %S has no ':'" spec)
  | Some i -> (
      let head = String.sub spec 0 i in
      let body = String.sub spec (i + 1) (String.length spec - i - 1) in
      match head with
      | "crash" ->
          scan body "%d@%f%!" (fun proc at -> Crash_stop { proc; at })
      | "recover" ->
          scan body "%d@%f+%f%!" (fun proc at after ->
              Crash_recover { proc; at; after })
      | "partition" -> (
          match String.index_opt body '@' with
          | None -> Error (Printf.sprintf "fault plan: clause %S has no '@'" spec)
          | Some j -> (
              let members = String.sub body 0 j in
              let window =
                String.sub body (j + 1) (String.length body - j - 1)
              in
              let island =
                String.split_on_char ',' members
                |> List.map (fun s -> int_of_string_opt (String.trim s))
              in
              if List.exists Option.is_none island then
                Error
                  (Printf.sprintf "fault plan: bad partition island in %S" spec)
              else
                let island = List.filter_map Fun.id island in
                scan window "%f-%f%!" (fun from_ until_ ->
                    Partition { island; from_; until_ })))
      | "join" -> (
          match String.rindex_opt body '@' with
          | None -> Error (Printf.sprintf "fault plan: clause %S has no '@'" spec)
          | Some j -> (
              let left = String.sub body 0 j in
              let at = String.sub body (j + 1) (String.length body - j - 1) in
              let proc_part, edges_part =
                match String.index_opt left ':' with
                | None -> (left, None)
                | Some k ->
                    ( String.sub left 0 k,
                      Some (String.sub left (k + 1) (String.length left - k - 1))
                    )
              in
              let edges =
                match edges_part with
                | None -> Ok []
                | Some s ->
                    String.split_on_char ',' s
                    |> List.map (fun e ->
                           scan (String.trim e) "%d-%d%!" (fun u v -> (u, v)))
                    |> List.fold_left
                         (fun acc e ->
                           match (acc, e) with
                           | Ok acc, Ok e -> Ok (e :: acc)
                           | (Error _ as err), _ | _, (Error _ as err) -> err)
                         (Ok [])
                    |> Result.map List.rev
              in
              match (edges, int_of_string_opt (String.trim proc_part)) with
              | Error _, _ | _, None ->
                  Error (Printf.sprintf "fault plan: cannot parse clause %S" spec)
              | Ok edges, Some proc ->
                  scan at "%f%!" (fun at -> Join_proc { proc; edges; at })))
      | "leave" -> scan body "%d@%f%!" (fun proc at -> Leave_proc { proc; at })
      | "flap" ->
          scan body "%d@%f+%f%!" (fun proc at after -> Flap { proc; at; after })
      | "dup" -> scan body "%f%!" (fun prob -> Duplicate { prob })
      | "corrupt" -> scan body "%f%!" (fun prob -> Corrupt { prob })
      | "spike" ->
          scan body "%f*%f%!" (fun prob factor -> Delay_spike { prob; factor })
      | _ -> Error (Printf.sprintf "fault plan: unknown fault kind %S" head))

let to_string plan = String.concat "; " (List.map fault_to_string plan)

let of_string s =
  let clauses =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        match fault_of_string c with
        | Ok f -> go (f :: acc) rest
        | Error _ as e -> e)
  in
  go [] clauses

let pp ppf plan = Format.pp_print_string ppf (to_string plan)
