(** Deterministic, allocation-light metrics for the whole stack.

    Every layer of the library (session, online stamping, the network
    simulator, the rendezvous protocol, the CSP runtime) records
    counters, gauges, fixed-bucket histograms and logical-time spans
    into a {!registry} keyed by dotted metric names
    (["net.packets_sent"], ["csp.dispatches"], …). The design rules:

    - {b no wall clock}: ticks always come from the caller — the
      simulator's virtual clock, the CSP scheduler's dispatch counter,
      or a session's sequence numbers — so two runs from the same seed
      produce byte-identical {!snapshot}s;
    - {b allocation-light}: recording is a bounds check plus an integer
      store; histograms use fixed bucket arrays; nothing allocates on
      the hot path;
    - {b switchable}: {!set_enabled}[ false] turns every recording
      site into a single boolean test, so instrumented code can be
      benchmarked against its uninstrumented self (see the
      [telemetry-overhead] group in [bench/main.ml]).

    Metrics are registered on first use ({!Counter.v} etc. are
    idempotent by name) and live for the lifetime of the registry;
    {!reset} zeroes values but keeps registrations, {!snapshot} returns
    a name-sorted copy for export ({!to_prometheus}, {!to_json}). *)

type registry

val default : registry
(** The process-wide registry every built-in instrumentation site uses. *)

val create_registry : unit -> registry
(** A private registry for embedders who want isolation. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Global switch (default [true]). When disabled, every recording
    operation returns after one boolean test; registration, {!snapshot}
    and {!reset} still work. *)

(** Monotonic counters. *)
module Counter : sig
  type t

  val v : ?registry:registry -> ?help:string -> string -> t
  (** Register (or look up) the counter named by a dotted string.
      Raises [Invalid_argument] if the name is already registered as a
      different metric kind. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** Negative increments raise [Invalid_argument]. *)

  val value : t -> int
end

(** Last-value gauges (set-only, integer-valued). *)
module Gauge : sig
  type t

  val v : ?registry:registry -> ?help:string -> string -> t
  val set : t -> int -> unit
  val set_max : t -> int -> unit
  (** High-watermark: [set] only if the new value is larger. *)

  val value : t -> int
end

(** Fixed-bucket histograms. Buckets are upper bounds (inclusive), in
    increasing order; an implicit +∞ bucket catches the rest. *)
module Histogram : sig
  type t

  val default_buckets : float array
  (** [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]. *)

  val v :
    ?registry:registry -> ?help:string -> ?buckets:float array -> string -> t
  (** [buckets] must be strictly increasing and non-empty; it is fixed
      at first registration (later [v] calls ignore the argument). *)

  val observe : t -> float -> unit

  val observe_n : t -> float -> int -> unit
  (** [observe_n t x n] records [n] observations of [x] with one bucket
      walk — what hot loops use to aggregate per-batch. For integral [x]
      (and any [x] where [x *. n] is exact) the result is structurally
      identical to [n] calls of {!observe}, which is what the cross-shard
      merge property relies on. *)

  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  val max_value : t -> float
  (** Smallest / largest observation so far; [0.] while empty. *)

  val quantile : t -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([0 ≤ q ≤ 1]) of the
      observed distribution by linear interpolation within buckets: the
      target rank [q·count] is located in the cumulative bucket counts and
      interpolated between the bucket's lower and upper bounds (the first
      bucket's lower bound is 0). Observations in the +∞ bucket clamp to
      the last finite bound. Returns [0.] for an empty histogram; raises
      [Invalid_argument] when [q] is outside [0, 1]. *)
end

(** Logical-time spans: durations measured in caller-supplied ticks
    (virtual time, scheduler steps, sequence numbers), recorded into a
    histogram named at registration. *)
module Span : sig
  type t
  type active

  val v :
    ?registry:registry -> ?help:string -> ?buckets:float array -> string -> t

  val start : t -> tick:float -> active
  val stop : active -> tick:float -> unit
  (** Observes [tick - start_tick] into the span's histogram. Stopping
      twice is a no-op. *)
end

(** {1 Snapshots and export} *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      buckets : (float * int) array;  (** (upper bound, count in bucket) *)
      inf : int;  (** Count above the last bound. *)
      sum : float;
      count : int;
      min : float;
          (** Smallest observation; [+inf] while [count = 0] so it is the
              identity under {!Synts_obs.Merge} (exports render 0). *)
      max : float;  (** Largest observation; [-inf] while [count = 0]. *)
    }

type snapshot = (string * value) list
(** Sorted by metric name. *)

val quantile_of_value : value -> float -> float option
(** {!Histogram.quantile} over a snapshot value: [Some estimate] for
    histograms, [None] for counters and gauges. *)

val snapshot : ?registry:registry -> unit -> snapshot
val reset : ?registry:registry -> unit -> unit
(** Zero every value; registrations (names, help, buckets) survive. *)

val metric_names : ?registry:registry -> unit -> (string * string) list
(** Registered [(name, help)] pairs, sorted by name. *)

val to_prometheus : ?registry:registry -> snapshot -> string
(** Prometheus text exposition format. Dotted names are mapped to
    underscores; histogram buckets are emitted cumulatively with an
    final [+Inf] bucket, as the format requires, followed by
    [_sum]/[_count]/[_min]/[_max] summary lines. *)

val to_json : ?registry:registry -> snapshot -> string
(** A single JSON object keyed by metric name. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable one-line-per-metric rendering. *)
