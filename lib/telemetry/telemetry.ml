(* All state is plain mutable records behind one hashtable per registry;
   recording is branch + integer store, so the hot paths stay cheap and
   two identical seeded runs produce identical snapshots. *)

type counter = { mutable c_value : int }
type gauge = { mutable g_value : int }

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1, last = +inf *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_min : float;  (* +inf while empty: merge identity *)
  mutable h_max : float;  (* -inf while empty: merge identity *)
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type registry = { table : (string, metric * string) Hashtbl.t }

let default = { table = Hashtbl.create 64 }
let create_registry () = { table = Hashtbl.create 16 }
let on = ref true
let enabled () = !on
let set_enabled b = on := b

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let register registry name help fresh =
  match Hashtbl.find_opt registry.table name with
  | Some (existing, _) ->
      let wanted = fresh () in
      if kind_name existing <> kind_name wanted then
        invalid_arg
          (Printf.sprintf "Telemetry: %S is already a %s" name
             (kind_name existing));
      existing
  | None ->
      let m = fresh () in
      Hashtbl.replace registry.table name (m, help);
      m

module Counter = struct
  type t = counter

  let v ?(registry = default) ?(help = "") name =
    match register registry name help (fun () -> M_counter { c_value = 0 }) with
    | M_counter c -> c
    | _ -> assert false

  let add t by =
    if !on then begin
      if by < 0 then invalid_arg "Telemetry.Counter.add: negative increment";
      t.c_value <- t.c_value + by
    end

  let incr t = if !on then t.c_value <- t.c_value + 1
  let value t = t.c_value
end

module Gauge = struct
  type t = gauge

  let v ?(registry = default) ?(help = "") name =
    match register registry name help (fun () -> M_gauge { g_value = 0 }) with
    | M_gauge g -> g
    | _ -> assert false

  let set t x = if !on then t.g_value <- x
  let set_max t x = if !on && x > t.g_value then t.g_value <- x
  let value t = t.g_value
end

module Histogram = struct
  type t = histogram

  let default_buckets =
    [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

  let check_buckets b =
    if Array.length b = 0 then
      invalid_arg "Telemetry.Histogram: empty bucket list";
    for i = 1 to Array.length b - 1 do
      if b.(i) <= b.(i - 1) then
        invalid_arg "Telemetry.Histogram: buckets must be strictly increasing"
    done

  let v ?(registry = default) ?(help = "") ?(buckets = default_buckets) name =
    let fresh () =
      check_buckets buckets;
      M_histogram
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.0;
          h_count = 0;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
        }
    in
    match register registry name help fresh with
    | M_histogram h -> h
    | _ -> assert false

  let observe t x =
    if !on then begin
      let k = Array.length t.bounds in
      let i = ref 0 in
      while !i < k && x > t.bounds.(!i) do
        incr i
      done;
      t.counts.(!i) <- t.counts.(!i) + 1;
      t.h_sum <- t.h_sum +. x;
      t.h_count <- t.h_count + 1;
      if x < t.h_min then t.h_min <- x;
      if x > t.h_max then t.h_max <- x
    end

  let observe_n t x n =
    if !on && n > 0 then begin
      let k = Array.length t.bounds in
      let i = ref 0 in
      while !i < k && x > t.bounds.(!i) do
        incr i
      done;
      t.counts.(!i) <- t.counts.(!i) + n;
      t.h_sum <- t.h_sum +. (x *. float_of_int n);
      t.h_count <- t.h_count + n;
      if x < t.h_min then t.h_min <- x;
      if x > t.h_max then t.h_max <- x
    end

  let count t = t.h_count
  let sum t = t.h_sum
  let min_value t = if t.h_count = 0 then 0.0 else t.h_min
  let max_value t = if t.h_count = 0 then 0.0 else t.h_max

  (* Shared with [quantile_of_value]: [counts] holds one entry per finite
     bound plus the +inf bucket; ranks past the finite buckets clamp to
     the last bound (there is no upper edge to interpolate towards). *)
  let quantile_core ~bounds ~counts ~total q =
    if q < 0.0 || q > 1.0 then
      invalid_arg "Telemetry.Histogram.quantile: q outside [0, 1]";
    if total = 0 then 0.0
    else begin
      let target = q *. float_of_int total in
      let k = Array.length bounds in
      let rec go i cum =
        if i >= k then bounds.(k - 1)
        else
          let c = counts.(i) in
          let cum' = cum +. float_of_int c in
          if c > 0 && target <= cum' then begin
            let lo = if i = 0 then 0.0 else bounds.(i - 1) in
            let hi = bounds.(i) in
            lo +. ((target -. cum) /. float_of_int c *. (hi -. lo))
          end
          else go (i + 1) cum'
      in
      go 0 0.0
    end

  let quantile t q =
    quantile_core ~bounds:t.bounds ~counts:t.counts ~total:t.h_count q
end

module Span = struct
  type t = histogram
  type active = { span : histogram; start_tick : float; mutable open_ : bool }

  let v = Histogram.v
  let start t ~tick = { span = t; start_tick = tick; open_ = true }

  let stop a ~tick =
    if a.open_ then begin
      a.open_ <- false;
      Histogram.observe a.span (tick -. a.start_tick)
    end
end

(* ---------- snapshots ---------- *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      buckets : (float * int) array;
      inf : int;
      sum : float;
      count : int;
      min : float;  (* +inf while count = 0 *)
      max : float;  (* -inf while count = 0 *)
    }

type snapshot = (string * value) list

let quantile_of_value v q =
  match v with
  | Counter_v _ | Gauge_v _ -> None
  | Histogram_v { buckets; inf; count; _ } ->
      let bounds = Array.map fst buckets in
      let counts = Array.append (Array.map snd buckets) [| inf |] in
      Some (Histogram.quantile_core ~bounds ~counts ~total:count q)

let snapshot ?(registry = default) () =
  Hashtbl.fold
    (fun name (m, _) acc ->
      let v =
        match m with
        | M_counter c -> Counter_v c.c_value
        | M_gauge g -> Gauge_v g.g_value
        | M_histogram h ->
            Histogram_v
              {
                buckets =
                  Array.mapi (fun i b -> (b, h.counts.(i))) h.bounds;
                inf = h.counts.(Array.length h.bounds);
                sum = h.h_sum;
                count = h.h_count;
                min = h.h_min;
                max = h.h_max;
              }
      in
      (name, v) :: acc)
    registry.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ (m, _) ->
      match m with
      | M_counter c -> c.c_value <- 0
      | M_gauge g -> g.g_value <- 0
      | M_histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.h_sum <- 0.0;
          h.h_count <- 0;
          h.h_min <- Float.infinity;
          h.h_max <- Float.neg_infinity)
    registry.table

let metric_names ?(registry = default) () =
  Hashtbl.fold (fun name (_, help) acc -> (name, help) :: acc) registry.table []
  |> List.sort compare

let help_of registry name =
  match Hashtbl.find_opt registry.table name with
  | Some (_, help) -> help
  | None -> ""

(* Deterministic float rendering: integers without a fractional part,
   everything else via %g. *)
let ftoa f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prom_name name =
  String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

let to_prometheus ?(registry = default) snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pname = prom_name name in
      let help = help_of registry name in
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" pname help);
      (match v with
      | Counter_v c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" pname);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" pname c)
      | Gauge_v g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" pname);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" pname g)
      | Histogram_v { buckets; inf; sum; count; min; max } ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" pname);
          let cumulative = ref 0 in
          Array.iter
            (fun (le, c) ->
              cumulative := !cumulative + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname (ftoa le)
                   !cumulative))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname
               (!cumulative + inf));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" pname (ftoa sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" pname count);
          (* min/max are gauges in exposition terms; the sentinel
             infinities of an empty histogram render as 0 so scrape
             output stays finite and deterministic. *)
          Buffer.add_string buf
            (Printf.sprintf "%s_min %s\n" pname
               (ftoa (if count = 0 then 0.0 else min)));
          Buffer.add_string buf
            (Printf.sprintf "%s_max %s\n" pname
               (ftoa (if count = 0 then 0.0 else max)))))
    snap;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(registry = default) snap =
  ignore registry;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "  \"%s\": " (json_escape name));
      match v with
      | Counter_v c ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\": \"counter\", \"value\": %d}" c)
      | Gauge_v g ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\": \"gauge\", \"value\": %d}" g)
      | Histogram_v { buckets; inf; sum; count; min; max } ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\": \"histogram\", \"count\": %d, \"sum\": %s, \
                \"min\": %s, \"max\": %s, \"buckets\": ["
               count (ftoa sum)
               (ftoa (if count = 0 then 0.0 else min))
               (ftoa (if count = 0 then 0.0 else max)));
          Array.iteri
            (fun i (le, c) ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf
                (Printf.sprintf "{\"le\": %s, \"count\": %d}" (ftoa le) c))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf ", {\"le\": \"+Inf\", \"count\": %d}]}" inf))
    snap;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let pp ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v c -> Format.fprintf ppf "%-42s %d@." name c
      | Gauge_v g -> Format.fprintf ppf "%-42s %d (gauge)@." name g
      | Histogram_v { sum; count; min; max; _ } ->
          let q p =
            match quantile_of_value v p with
            | Some x -> ftoa x
            | None -> "-"
          in
          Format.fprintf ppf
            "%-42s count=%d sum=%s min=%s max=%s p50=%s p90=%s p99=%s \
             (histogram)@."
            name count (ftoa sum)
            (ftoa (if count = 0 then 0.0 else min))
            (ftoa (if count = 0 then 0.0 else max))
            (q 0.5) (q 0.9) (q 0.99))
    snap
