(** Validation of timestamping schemes against the oracle.

    The central check of the reproduction: a scheme {e encodes} the message
    poset when its vectors order exactly the ↦-related pairs (paper
    Equation (1)). Reports count every ordered pair and list the first few
    offending ones for debugging. *)

type verdict = {
  pairs : int;  (** Ordered pairs (i ≠ j) examined. *)
  false_orders : int;
      (** Concurrent (or reverse-ordered) pairs the scheme orders. *)
  missed_orders : int;  (** ↦-related pairs the scheme fails to order. *)
  examples : (int * int) list;  (** Up to 10 offending pairs. *)
}

val ok : verdict -> bool
(** No false and no missed orders. *)

val pp : Format.formatter -> verdict -> unit

val vectors_encode_poset :
  Synts_poset.Poset.t -> Synts_clock.Vector.t array -> verdict
(** Compare vector order with an arbitrary poset (sizes must match). *)

val message_timestamps :
  Synts_sync.Trace.t -> Synts_clock.Vector.t array -> verdict
(** Compare vector order with the oracle message poset of the trace. *)

val internal_stamps :
  Synts_sync.Trace.t -> Synts_core.Internal_events.stamp array -> verdict
(** Compare the Theorem 9 test with the oracle happened-before relation on
    internal events. *)

val sound_only : Synts_sync.Trace.t -> int array -> verdict
(** For scalar (Lamport) clocks: only the [m1 ↦ m2 ⇒ c1 < c2] direction
    is demanded. A related pair with [c1 ≥ c2] is an ordering the scheme
    failed to capture, so it counts into [missed_orders] — consistent with
    the field docs above and with the sound-only branch of {!stamper};
    [false_orders] stays 0, since ordering a concurrent pair is exactly
    the imprecision sound-only validation tolerates. *)

val stamper : Synts_sync.Trace.t -> Synts_clock.Stamper.t -> verdict
(** Drive any {!Synts_clock.Stamper.S} instance over the trace and
    compare its [precedes] with the oracle. Exact schemes must agree in
    both directions; sound-only schemes ([exact = false]) are only
    required to order every ↦-related pair ([missed_orders] counts the
    failures, falsely ordered concurrent pairs are allowed). *)

val stampers :
  Synts_sync.Trace.t -> Synts_clock.Stamper.t list -> (string * verdict) list
(** {!stamper} over a list — the one loop the experiment suite, bench
    harness and tests share instead of per-scheme branches. *)
