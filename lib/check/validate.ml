module Trace = Synts_sync.Trace
module Poset = Synts_poset.Poset
module Vector = Synts_clock.Vector
module Internal_events = Synts_core.Internal_events

type verdict = {
  pairs : int;
  false_orders : int;
  missed_orders : int;
  examples : (int * int) list;
}

let ok v = v.false_orders = 0 && v.missed_orders = 0

let pp ppf v =
  Format.fprintf ppf "pairs=%d false_orders=%d missed_orders=%d%s" v.pairs
    v.false_orders v.missed_orders
    (if ok v then " [ok]" else " [FAIL]")

let max_examples = 10

let compare_relations ~count ~expected ~claimed =
  let pairs = ref 0 and false_orders = ref 0 and missed = ref 0 in
  let examples = ref [] in
  for i = 0 to count - 1 do
    for j = 0 to count - 1 do
      if i <> j then begin
        incr pairs;
        let e = expected i j and c = claimed i j in
        if c && not e then begin
          incr false_orders;
          if List.length !examples < max_examples then
            examples := (i, j) :: !examples
        end;
        if e && not c then begin
          incr missed;
          if List.length !examples < max_examples then
            examples := (i, j) :: !examples
        end
      end
    done
  done;
  {
    pairs = !pairs;
    false_orders = !false_orders;
    missed_orders = !missed;
    examples = List.rev !examples;
  }

let vectors_encode_poset poset vectors =
  if Array.length vectors <> Poset.size poset then
    invalid_arg "Validate.vectors_encode_poset: size mismatch";
  compare_relations ~count:(Poset.size poset)
    ~expected:(Poset.lt poset)
    ~claimed:(fun i j -> Vector.lt vectors.(i) vectors.(j))

let message_timestamps trace vectors =
  vectors_encode_poset (Oracle.message_poset trace) vectors

let internal_stamps trace stamps =
  if Array.length stamps <> Trace.internal_count trace then
    invalid_arg "Validate.internal_stamps: stamp count mismatch";
  let hb = Oracle.happened_before_internal trace in
  compare_relations ~count:(Array.length stamps) ~expected:hb
    ~claimed:(fun i j -> Internal_events.happened_before stamps.(i) stamps.(j))

let sound_only trace scalars =
  let poset = Oracle.message_poset trace in
  if Array.length scalars <> Poset.size poset then
    invalid_arg "Validate.sound_only: size mismatch";
  let pairs = ref 0 and violations = ref 0 in
  let examples = ref [] in
  for i = 0 to Poset.size poset - 1 do
    for j = 0 to Poset.size poset - 1 do
      if i <> j then begin
        incr pairs;
        if Poset.lt poset i j && scalars.(i) >= scalars.(j) then begin
          incr violations;
          if List.length !examples < max_examples then
            examples := (i, j) :: !examples
        end
      end
    done
  done;
  (* A related pair with c1 >= c2 is an order the scheme FAILED to
     capture, so it counts as a missed order — the same convention as the
     sound-only branch of {!stamper}, and what the [verdict] field docs
     promise. [false_orders] stays 0: a scalar clock ordering a
     concurrent pair is exactly the imprecision sound-only tolerates. *)
  {
    pairs = !pairs;
    false_orders = 0;
    missed_orders = !violations;
    examples = List.rev !examples;
  }

let stamper trace scheme =
  let poset = Oracle.message_poset trace in
  let run = Synts_clock.Stamper.run scheme trace in
  if run.Synts_clock.Stamper.exact then
    compare_relations ~count:(Poset.size poset) ~expected:(Poset.lt poset)
      ~claimed:run.Synts_clock.Stamper.precedes
  else begin
    (* Sound-only: every related pair must be ordered; concurrent pairs
       may be ordered too, so only the missed direction counts. *)
    let k = Poset.size poset in
    let pairs = ref 0 and missed = ref 0 in
    let examples = ref [] in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        if i <> j then begin
          incr pairs;
          if Poset.lt poset i j && not (run.Synts_clock.Stamper.precedes i j)
          then begin
            incr missed;
            if List.length !examples < max_examples then
              examples := (i, j) :: !examples
          end
        end
      done
    done;
    {
      pairs = !pairs;
      false_orders = 0;
      missed_orders = !missed;
      examples = List.rev !examples;
    }
  end

let stampers trace schemes =
  List.map
    (fun ((module M : Synts_clock.Stamper.S) as scheme) ->
      (M.name, stamper trace scheme))
    schemes
