type metrics = { ns_per_run : float; minor_words_per_run : float }

type t = {
  mode : string;
  seed : int;
  groups : (string * (string * metrics) list) list;
}

let schema = "synts-bench/1"

(* ---------- JSON codec ---------- *)

let metrics_to_json m =
  Json.Obj
    [
      ("ns_per_run", Json.Num m.ns_per_run);
      ("minor_words_per_run", Json.Num m.minor_words_per_run);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("mode", Json.Str t.mode);
      ("seed", Json.Num (float_of_int t.seed));
      ( "groups",
        Json.Obj
          (List.map
             (fun (gname, tests) ->
               ( gname,
                 Json.Obj
                   (List.map (fun (tname, m) -> (tname, metrics_to_json m)) tests)
               ))
             t.groups) );
    ]

let num_field name j =
  match Json.member name j with
  | Some v -> (
      match Json.to_num v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S is not a number" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let metrics_of_json j =
  match (num_field "ns_per_run" j, num_field "minor_words_per_run" j) with
  | Ok ns, Ok words -> Ok { ns_per_run = ns; minor_words_per_run = words }
  | Error e, _ | _, Error e -> Error e

let of_json j =
  match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> (
      let mode =
        match Json.member "mode" j with
        | Some (Json.Str m) -> m
        | _ -> "full"
      in
      let seed =
        match Json.member "seed" j with
        | Some (Json.Num x) -> int_of_float x
        | _ -> 0
      in
      match Json.member "groups" j with
      | None -> Error "missing field \"groups\""
      | Some groups_json -> (
          let exception Bad of string in
          match
            List.map
              (fun (gname, tests_json) ->
                ( gname,
                  List.map
                    (fun (tname, mj) ->
                      match metrics_of_json mj with
                      | Ok m -> (tname, m)
                      | Error e ->
                          raise (Bad (Printf.sprintf "%s/%s: %s" gname tname e)))
                    (Json.obj_members tests_json) ))
              (Json.obj_members groups_json)
          with
          | groups -> Ok { mode; seed; groups }
          | exception Bad e -> Error e))
  | Some (Json.Str s) ->
      Error (Printf.sprintf "unsupported schema %S (expected %S)" s schema)
  | _ -> Error "not a synts bench file (no \"schema\" field)"

let save path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json t));
      Out_channel.output_char oc '\n')

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match Json.of_string text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match of_json j with
          | Ok t -> Ok t
          | Error e -> Error (Printf.sprintf "%s: %s" path e)))

let find t ~group ~test =
  Option.bind (List.assoc_opt group t.groups) (List.assoc_opt test)

(* ---------- diffing ---------- *)

type delta = {
  group : string;
  test : string;
  metric : string;
  old_value : float;
  new_value : float;
  ratio : float;
}

type diff = {
  regressions : delta list;
  improvements : delta list;
  compared : int;
  only_old : (string * string) list;
  only_new : (string * string) list;
}

(* Movements smaller than these are measurement noise regardless of the
   relative change (a 0.4 ns -> 0.6 ns "regression" is not actionable). *)
let ns_floor = 2.0
let words_floor = 8.0

let classify ~threshold ~floor ~group ~test ~metric ~old_value ~new_value =
  if
    (not (Float.is_finite old_value))
    || (not (Float.is_finite new_value))
    || Float.abs (new_value -. old_value) <= floor
  then `Unchanged
  else
    let base = Float.max old_value Float.epsilon in
    let ratio = new_value /. base in
    let d = { group; test; metric; old_value; new_value; ratio } in
    if new_value > old_value *. (1.0 +. threshold) then `Regression d
    else if new_value < old_value *. (1.0 -. threshold) then `Improvement d
    else `Unchanged

let diff ?(threshold = 0.25) old_run new_run =
  let regressions = ref [] and improvements = ref [] and compared = ref 0 in
  let only_old = ref [] and only_new = ref [] in
  let consider ~group ~test ~metric ~floor old_value new_value =
    incr compared;
    match classify ~threshold ~floor ~group ~test ~metric ~old_value ~new_value
    with
    | `Regression d -> regressions := d :: !regressions
    | `Improvement d -> improvements := d :: !improvements
    | `Unchanged -> ()
  in
  List.iter
    (fun (gname, tests) ->
      List.iter
        (fun (tname, old_m) ->
          match find new_run ~group:gname ~test:tname with
          | None -> only_old := (gname, tname) :: !only_old
          | Some new_m ->
              consider ~group:gname ~test:tname ~metric:"ns/run" ~floor:ns_floor
                old_m.ns_per_run new_m.ns_per_run;
              consider ~group:gname ~test:tname ~metric:"mw/run"
                ~floor:words_floor old_m.minor_words_per_run
                new_m.minor_words_per_run)
        tests)
    old_run.groups;
  List.iter
    (fun (gname, tests) ->
      List.iter
        (fun (tname, _) ->
          if find old_run ~group:gname ~test:tname = None then
            only_new := (gname, tname) :: !only_new)
        tests)
    new_run.groups;
  let by_severity a b = Float.compare b.ratio a.ratio in
  let by_gain a b = Float.compare a.ratio b.ratio in
  {
    regressions = List.sort by_severity !regressions;
    improvements = List.sort by_gain !improvements;
    compared = !compared;
    only_old = List.rev !only_old;
    only_new = List.rev !only_new;
  }

let has_regression d = d.regressions <> []

let pp_value metric v =
  if metric = "ns/run" then
    if v > 1_000_000.0 then Printf.sprintf "%.3f ms" (v /. 1_000_000.0)
    else if v > 1_000.0 then Printf.sprintf "%.3f us" (v /. 1_000.0)
    else Printf.sprintf "%.1f ns" v
  else Printf.sprintf "%.0f w" v

let pp_delta buf verb d =
  Buffer.add_string buf
    (Printf.sprintf "  %s %-48s %-7s %12s -> %12s  (%+.1f%%)\n" verb
       (d.group ^ "/" ^ d.test) d.metric
       (pp_value d.metric d.old_value)
       (pp_value d.metric d.new_value)
       ((d.ratio -. 1.0) *. 100.0))

let render_diff ?(threshold = 0.25) ~old_run ~new_run d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "bench-diff: %d metric pairs compared (threshold %.0f%%, old=%s new=%s)\n"
       d.compared (threshold *. 100.0) old_run.mode new_run.mode);
  if old_run.mode <> new_run.mode then
    Buffer.add_string buf
      "  warning: comparing different tiers (quick vs full); numbers are \
       not directly comparable\n";
  if d.regressions <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "\n%d regression(s):\n" (List.length d.regressions));
    List.iter (fun x -> pp_delta buf "SLOWER " x) d.regressions
  end;
  if d.improvements <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "\n%d improvement(s):\n" (List.length d.improvements));
    List.iter (fun x -> pp_delta buf "faster " x) d.improvements
  end;
  if d.only_old <> [] then begin
    Buffer.add_string buf "\ntests only in the old file:\n";
    List.iter
      (fun (g, t) -> Buffer.add_string buf (Printf.sprintf "  - %s/%s\n" g t))
      d.only_old
  end;
  if d.only_new <> [] then begin
    Buffer.add_string buf "\ntests only in the new file:\n";
    List.iter
      (fun (g, t) -> Buffer.add_string buf (Printf.sprintf "  + %s/%s\n" g t))
      d.only_new
  end;
  Buffer.add_string buf
    (if d.regressions = [] then "\nverdict: OK — no regression beyond threshold\n"
     else "\nverdict: REGRESSION\n");
  Buffer.contents buf
