(** A minimal JSON tree, parser and printer.

    The bench harness ([bench/main.ml]) and the [synts bench-diff]
    subcommand exchange benchmark baselines as JSON files
    ([BENCH_baseline.json]); this module is the self-contained codec they
    share — the repository deliberately depends on no external JSON
    library. Numbers are [float]s, objects preserve member order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; two-space indentation unless [minify]. NaN and infinities are
    rendered as [null] (JSON has no encoding for them). *)

val to_buffer : ?minify:bool -> Buffer.t -> t -> unit
(** {!to_string} into a caller-owned buffer — line-oriented emitters
    (the [synts-tracelog] JSONL exporter) append one document per line
    without building intermediate strings. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. Errors carry a character offset. *)

val member : string -> t -> t option
(** Field lookup; [None] for missing fields and non-objects. *)

val to_num : t -> float option
val to_str : t -> string option

val obj_members : t -> (string * t) list
(** Members of an object, in source order; [[]] for non-objects. *)
