type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let to_buffer ?(minify = false) buf t =
  let pad depth =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> Buffer.add_string buf (num_to_string x)
    | Str s -> escape buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape buf k;
            Buffer.add_string buf (if minify then ":" else ": ");
            go (depth + 1) v)
          members;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t

let to_string ?minify t =
  let buf = Buffer.create 256 in
  to_buffer ?minify buf t;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 buf code =
    (* Encode a Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              let code = hex4 () in
              let code =
                (* Surrogate pair. *)
                if code >= 0xD800 && code <= 0xDBFF
                   && !pos + 1 < n
                   && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let low = hex4 () in
                  0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                end
                else code
              in
              utf8 buf code;
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let consume_while f =
      while !pos < n && f s.[!pos] do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume_while (fun c -> c >= '0' && c <= '9');
    if peek () = Some '.' then begin
      advance ();
      consume_while (fun c -> c >= '0' && c <= '9')
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        consume_while (fun c -> c >= '0' && c <= '9')
    | _ -> ());
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ---------- accessors ---------- *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let to_num = function Num x -> Some x | _ -> None
let to_str = function Str s -> Some s | _ -> None
let obj_members = function Obj members -> members | _ -> []
