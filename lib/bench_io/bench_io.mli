(** Benchmark baseline files and regression diffing.

    [bench/main.exe --json FILE] persists one {!t} per run: for every
    bechamel test, the OLS estimate of nanoseconds per run and of minor
    heap words allocated per run. [synts bench-diff OLD NEW] reloads two
    such files and compares them, flagging per-test regressions beyond a
    relative threshold — the perf trajectory every PR defends
    ([BENCH_baseline.json] at the repository root is the committed
    baseline; see DESIGN.md "Performance"). *)

type metrics = {
  ns_per_run : float;  (** OLS estimate, monotonic-clock ns per run. *)
  minor_words_per_run : float;
      (** OLS estimate, minor-heap words allocated per run. *)
}

type t = {
  mode : string;  (** ["full"] or ["quick"] (smoke tier). *)
  seed : int;  (** Workload seed the run used. *)
  groups : (string * (string * metrics) list) list;
      (** [group_name -> test_name -> metrics], in run order. *)
}

val schema : string
(** The schema tag written into every file (["synts-bench/1"]). *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val save : string -> t -> unit
(** Write to a file (pretty-printed, trailing newline). *)

val load : string -> (t, string) result
(** Read and validate a baseline file; errors mention the path. *)

val find : t -> group:string -> test:string -> metrics option

(** {1 Diffing} *)

type delta = {
  group : string;
  test : string;
  metric : string;  (** ["ns/run"] or ["mw/run"]. *)
  old_value : float;
  new_value : float;
  ratio : float;  (** [new / old]; > 1 is slower/bigger. *)
}

type diff = {
  regressions : delta list;  (** Beyond threshold, worst first. *)
  improvements : delta list;  (** Beyond threshold the other way. *)
  compared : int;  (** Metric pairs compared. *)
  only_old : (string * string) list;  (** Tests that disappeared. *)
  only_new : (string * string) list;  (** Tests with no baseline. *)
}

val diff : ?threshold:float -> t -> t -> diff
(** [diff old_run new_run] compares two runs test-by-test. [threshold]
    (default [0.25]) is the
    relative change that counts as a regression or improvement:
    [new > old * (1 + threshold)] flags a regression. Tiny absolute
    movements are ignored (2 ns for time, 8 words for allocation) so
    near-zero measurements don't produce noise verdicts. *)

val has_regression : diff -> bool

val render_diff : ?threshold:float -> old_run:t -> new_run:t -> diff -> string
(** Human-readable report: regressions, improvements, coverage changes,
    and a one-line verdict. *)
