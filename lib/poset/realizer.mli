(** Chain realizers: families of linear extensions whose intersection is
    the poset.

    The offline algorithm (paper Fig. 9) timestamps message [m] with the
    vector of [m]'s ranks in the extensions of a realizer of size
    [width ≤ ⌊N/2⌋]. The construction here is the classic proof of
    [dim(P) ≤ width(P)]: for each chain [C] of a Dilworth partition, build
    a linear extension that places every element incomparable to a chain
    element below it ({!Poset.linear_extension_avoiding}). *)

val dilworth : Poset.t -> int array list
(** A realizer with exactly [max 1 (width p)] extensions (a single
    extension for empty or chain posets). Deterministic. *)

val of_chain_partition : Poset.t -> int list list -> int array list
(** The construction behind {!dilworth}, from a precomputed minimum chain
    partition ({!Dilworth.min_chain_partition} or the phase-split
    {!Dilworth.matching} + {!Dilworth.chains_of_matching}):
    [dilworth p = of_chain_partition p (Dilworth.min_chain_partition p)].
    Lets callers time the matching, extraction and extension phases
    separately. *)

val is_realizer : Poset.t -> int array list -> bool
(** Every member is a linear extension of the poset and their intersection
    equals the poset exactly. *)

val vectors : int array list -> int array array
(** [vectors exts] assigns each element its rank vector:
    [(vectors exts).(e).(i)] is the position of [e] in extension [i]. For a
    realizer, element [x] is below [y] iff its vector is componentwise
    strictly smaller — the offline timestamp property (Fig. 9 step 3 counts
    elements strictly below, which is exactly the rank). Raises
    [Invalid_argument] on an empty list or mismatched lengths. *)

val vector_lt : int array -> int array -> bool
(** Strict vector order of Equation (2) of the paper: every component ≤ and
    some component <. For rank vectors this simplifies to all-components-<,
    but we keep the paper's definition. *)

val vector_concurrent : int array -> int array -> bool
(** Neither [vector_lt a b] nor [vector_lt b a], and [a <> b]. *)
