module ISet = Set.Make (Int)

type t = {
  mutable ancestors : ISet.t array;  (* per element, strict ancestors *)
  mutable pair_left : int array;  (* left copy's matched right, -1 free *)
  mutable pair_right : int array;
  mutable size : int;
  mutable matching : int;
}

let create () =
  {
    ancestors = [||];
    pair_left = [||];
    pair_right = [||];
    size = 0;
    matching = 0;
  }

let grow t =
  let cap = Array.length t.ancestors in
  if t.size = cap then begin
    let bigger = max 8 (2 * cap) in
    let copy a fill =
      let b = Array.make bigger fill in
      Array.blit a 0 b 0 t.size;
      b
    in
    t.ancestors <- copy t.ancestors ISet.empty;
    t.pair_left <- copy t.pair_left (-1);
    t.pair_right <- copy t.pair_right (-1)
  end

(* Kuhn's augmenting search from the right side ({!Matching.augment_from}):
   right node [r] looks for an adjacent left node that is free or whose
   matched right can be re-routed. Adjacency of right r = ancestors(r). *)
let augment t visited r =
  Matching.augment_from
    ~find:(fun r f ->
      ISet.exists
        (fun u ->
          (not visited.(u))
          && begin
               visited.(u) <- true;
               f u
             end)
        t.ancestors.(r))
    ~pair_left:t.pair_left ~pair_right:t.pair_right r

let add t ~preds =
  List.iter
    (fun p ->
      if p < 0 || p >= t.size then
        invalid_arg "Incremental_width.add: predecessor out of range")
    preds;
  grow t;
  let id = t.size in
  let ancestors =
    List.fold_left
      (fun acc p -> ISet.add p (ISet.union acc t.ancestors.(p)))
      ISet.empty preds
  in
  t.ancestors.(id) <- ancestors;
  t.pair_left.(id) <- -1;
  t.pair_right.(id) <- -1;
  t.size <- id + 1;
  let visited = Array.make t.size false in
  if augment t visited id then t.matching <- t.matching + 1;
  id

let size t = t.size
let width t = t.size - t.matching
let lt t i j =
  if i < 0 || i >= t.size || j < 0 || j >= t.size then
    invalid_arg "Incremental_width.lt: out of range";
  ISet.mem i t.ancestors.(j)
