(** Finite strict partial orders over elements [0 .. n-1].

    The message order [(M, ↦)] of a synchronous computation is stored here
    as an [n × n] reachability bit-matrix, transitively closed at
    construction. This is the substrate of the offline algorithm
    (paper Sec. 4): width, Dilworth chain partitions and realizers are all
    computed against this representation. *)

type t

exception Cyclic of int
(** Raised by {!of_relation} when the input relation has a directed cycle;
    the payload is a vertex on some cycle. *)

val of_relation : int -> (int * int) list -> t
(** [of_relation n pairs] is the transitive closure of [pairs] (each
    [(i, j)] meaning [i < j]). Raises {!Cyclic} if the closure would be
    reflexive, [Invalid_argument] on out-of-range elements. *)

val of_closed_matrix : Synts_util.Bitmatrix.t -> t
(** Adopt an already transitively-closed, irreflexive matrix (checked;
    raises [Invalid_argument] if not closed or not irreflexive). The matrix
    is copied. *)

val size : t -> int
(** Number of elements [n]. *)

val lt : t -> int -> int -> bool
(** Strict order test. *)

val row_iter : t -> int -> (int -> unit) -> unit
(** [row_iter p i f] calls [f j] for every [j] with [i < j], increasing
    [j] — the order relation's bit-row, no list materialised. *)

val row_find : t -> int -> (int -> bool) -> bool
(** Early-exit form of {!row_iter}: stops at the first successor on which
    the callback returns [true]; returns whether one did. *)

val leq : t -> int -> int -> bool
(** [lt] or equal. *)

val comparable : t -> int -> int -> bool
val concurrent : t -> int -> int -> bool
(** Distinct and incomparable. *)

val relation_count : t -> int
(** Number of ordered pairs [(i, j)] with [i < j] in the order. *)

val covers : t -> (int * int) list
(** Transitive reduction: pairs [(i, j)] with [i < j] and no [k] strictly
    between. *)

val minimal_elements : t -> int list
val maximal_elements : t -> int list

val down_set : t -> int -> int list
(** Elements strictly below the given one. *)

val up_set : t -> int -> int list

val is_linear_extension : t -> int array -> bool
(** [is_linear_extension p order] checks that [order] is a permutation of
    [0 .. n-1] that respects every relation of [p]. *)

val linear_extension : t -> int array
(** A deterministic linear extension (topological order, smallest-index
    minimal element first). *)

val linear_extension_avoiding : t -> avoid:bool array -> int array
(** The construction behind [dim ≤ width]: a linear extension built by
    repeatedly removing a minimal element of the remainder, choosing one
    with [avoid.(e) = false] whenever any exists (ties towards smaller
    index). When all remaining minimal elements are avoided and the avoided
    set is a chain, the chain element is the {e unique} minimal element, so
    every element incomparable to a chain element [c] is placed {e before}
    [c]. *)

val equal : t -> t -> bool
(** Same size and same order relation. *)

val intersection : t list -> t
(** Common order of a non-empty list of same-size posets (used to check
    realizers: the intersection of the extensions must equal the poset). *)

val of_total_order : int array -> t
(** The chain poset induced by a permutation. *)

val random : Synts_util.Rng.t -> int -> float -> t
(** Random poset: each pair [(i, j)] with [i < j] (as integers) is related
    with probability [p], then closed transitively. Always acyclic by
    construction. *)

val pp : Format.formatter -> t -> unit
