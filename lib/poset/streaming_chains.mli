(** Streaming minimum-chain-partition maintenance (ROADMAP item 2).

    Elements arrive in a linear-extension order, as in
    {!Incremental_width}, but here each insertion also {e places} the
    element on a chain and emits a final rank-vector stamp, with memory
    bounded by a live window instead of the O(M²) closure of the batch
    pipeline ({!Dilworth} over {!Poset}).

    {2 The invariants}

    {b Append-only placement.} An element may only be appended to a chain
    whose current tail is strictly below it, so every chain is totally
    ordered and the down-set of any element meets each chain in a
    {e prefix}. Placement is patience-style: extend the most recently
    grown extendable chain (preferring the chain of the element's matched
    predecessor), open a new chain only when no tail is below the new
    element.

    {b Chain-count stamps.} The stamp of [m] is
    [V_m.(c) = |{x ∈ chain c : x ≤ m}|], computed in O(chains) from the
    componentwise maximum of the predecessors' stamps — no closure row is
    consulted. By the prefix property this is exact, final at emission,
    and {e order-equivalent} for any append-only placement:
    [m1 < m2 ⟺ stamp_lt V_m1 V_m2] (with implicit zero padding), whatever
    the chain count. The chain count only sets the vector dimension; on
    message posets of synchronous computations it tracks the paper's
    ⌊N/2⌋ width bound (Theorem 8) that the batch realizer achieves.

    {b Bounded frontier.} Per-element state (ancestor bitset rows, the
    incremental Hopcroft–Karp matching of {!Matching.augment_from} — one
    augmenting search per insertion) lives in a recycled window of
    [window] slots. When the window fills, the oldest live prefix is
    retired: its closure rows are dropped and its matched edges frozen.
    Stamps are unaffected; {!width} decays from exact (Dilworth, while
    {!exact}) to an upper bound, because a frozen edge can no longer be
    re-routed. Memory is O(window²/word + chains), independent of the
    number of elements inserted — see {!live_words}. *)

type t

type stamp = int array
(** [stamp.(c)] = number of chain-[c] elements at or below the element.
    Stamps emitted earlier may be shorter than the current {!chains};
    compare with {!stamp_lt}, which zero-pads. *)

type info = {
  chain : int;  (** Chain the element was appended to. *)
  opened : bool;  (** The insertion opened a new chain. *)
  matched : bool;  (** The matching grew (the width did not). *)
  visited : int;  (** Left vertices visited by the repair search. *)
  retired : int;  (** Elements retired to make room. *)
}
(** Per-insertion attribution, for profiling (the [synts trace] phases
    insert / repair / retire / emit). *)

val create : ?window:int -> unit -> t
(** [window] (default 1024, ≥ 2) bounds the live slots retained for the
    incremental matching. Inserting more than [window] live elements
    retires the oldest prefix — stamps stay exact, {!width} becomes an
    upper bound. *)

val insert : t -> preds:stamp list -> stamp
(** Insert the next element of the linear extension, given the stamps of
    a generating set of its predecessors (immediate predecessors suffice:
    any set whose down-sets union to the element's full strict down-set).
    Returns the element's final stamp. O(live + chains) plus one
    augmenting-path search. Raises [Invalid_argument] if a stamp could
    not have been emitted by this structure. *)

val size : t -> int
(** Elements inserted so far. *)

val chains : t -> int
(** Chains opened so far = dimension of the next stamp. *)

val width : t -> int
(** [size − matching]: the poset's width while {!exact}, an upper bound
    on it after the first retirement. *)

val exact : t -> bool
(** No retirement has occurred yet, so {!width} is exact (equals
    {!Dilworth.width} of the inserted prefix). *)

val chain_length : t -> int -> int
(** Elements placed on a chain so far. *)

val live : t -> int
(** Live (unretired) elements in the window. *)

val retired : t -> int
(** Elements retired so far. *)

val repairs : t -> int
(** Insertions that needed the full augmenting-path search (the patience
    tier found no free ancestor). *)

val live_words : t -> int
(** Estimated heap words held live by the structure — O(window²/word_size
    + chains), independent of {!size}. The streaming pipeline's memory
    claim is benchmarked against this. *)

val last_info : t -> info
(** Attribution of the most recent {!insert}. *)

val stamp_lt : stamp -> stamp -> bool
(** Strict vector order with implicit zero padding of the shorter stamp.
    For elements [x, y] inserted into one structure:
    [x < y ⟺ stamp_lt (stamp x) (stamp y)]. *)
