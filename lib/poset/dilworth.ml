(* CSR front end over the order relation's bit-rows: the seed materialised
   every comparable pair as an O(M²) [(int * int) list] before matching;
   the CSR is built by two row sweeps with no intermediate list. *)
let comparability_csr p =
  let n = Poset.size p in
  Matching.csr_of_rows ~left:n ~right:n ~iter:(fun u f -> Poset.row_iter p u f)

(* The split bipartite graph's adjacency IS the order relation's
   bit-matrix: left u's neighbours are u's successors. Feeding the rows
   straight into Hopcroft–Karp skips the O(n²) edge-list build (and its
   per-vertex polymorphic sort) entirely. *)
let matching p =
  let n = Poset.size p in
  Matching.maximum_rows ~left:n ~right:n
    ~iter:(fun u f -> Poset.row_iter p u f)
    ~find:(fun u f -> Poset.row_find p u f)

let chains_of_matching n { Matching.pair_left; pair_right; size = _ } =
  (* Chain heads are elements whose right copy is unmatched (no matched
     predecessor); follow pair_left successor links. *)
  let chains = ref [] in
  for head = n - 1 downto 0 do
    if pair_right.(head) = -1 then begin
      let rec follow v acc =
        let acc = v :: acc in
        if pair_left.(v) = -1 then List.rev acc else follow pair_left.(v) acc
      in
      chains := follow head [] :: !chains
    end
  done;
  !chains

let min_chain_partition p = chains_of_matching (Poset.size p) (matching p)

(* Seed pipeline (CSR solver), kept as the equivalence oracle for the
   bit-row path. *)
let min_chain_partition_reference p =
  let n = Poset.size p in
  chains_of_matching n (Matching.maximum_csr ~left:n ~right:n (comparability_csr p))

let width p =
  let n = Poset.size p in
  if n = 0 then 0 else n - (matching p).Matching.size

let max_antichain p =
  let n = Poset.size p in
  let m = matching p in
  let cover_left, cover_right =
    Matching.min_vertex_cover_rows ~left:n ~right:n
      ~iter:(fun u f -> Poset.row_iter p u f)
      m
  in
  (* An element exposed on both sides of the cover is incomparable to every
     other exposed element. *)
  List.filter
    (fun v -> (not cover_left.(v)) && not cover_right.(v))
    (List.init n Fun.id)

let is_chain p l =
  let arr = Array.of_list l in
  let ok = ref true in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y -> if i < j && not (Poset.comparable p x y) then ok := false)
        arr)
    arr;
  !ok

let is_antichain p l =
  let arr = Array.of_list l in
  let ok = ref true in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          if i < j && (x = y || Poset.comparable p x y) then ok := false)
        arr)
    arr;
  !ok

let is_chain_partition p chains =
  let n = Poset.size p in
  let all = List.concat chains in
  List.sort compare all = List.init n Fun.id
  && List.for_all (is_chain p) chains
