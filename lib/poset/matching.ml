type result = { pair_left : int array; pair_right : int array; size : int }

let infinity_dist = max_int

(* Hopcroft–Karp over an abstract adjacency: [iter u f] visits left
   vertex [u]'s right neighbours in increasing order, [find u f] does the
   same but stops at the first neighbour on which [f] returns true. Both
   the bit-row path (Dilworth over a Poset's comparability matrix, no
   materialised edge list) and the edge-list path below funnel through
   this one solver, and since both present neighbours in ascending order
   they produce identical matchings. *)
let maximum_rows ~left ~right ~iter ~find =
  let pair_left = Array.make left (-1) in
  let pair_right = Array.make right (-1) in
  let dist = Array.make left infinity_dist in
  let queue = Queue.create () in
  (* BFS layering from free left vertices; returns true if an augmenting
     path exists. *)
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for u = 0 to left - 1 do
      if pair_left.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- infinity_dist
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      iter u (fun v ->
          match pair_right.(v) with
          | -1 -> found := true
          | u' ->
              if dist.(u') = infinity_dist then begin
                dist.(u') <- dist.(u) + 1;
                Queue.add u' queue
              end)
    done;
    !found
  in
  let rec dfs u =
    find u (fun v ->
        let take () =
          pair_left.(u) <- v;
          pair_right.(v) <- u;
          true
        in
        match pair_right.(v) with
        | -1 -> take ()
        | u' ->
            if dist.(u') = dist.(u) + 1 && dfs u' then take () else false)
    ||
    begin
      dist.(u) <- infinity_dist;
      false
    end
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to left - 1 do
      if pair_left.(u) = -1 && dfs u then incr size
    done
  done;
  { pair_left; pair_right; size = !size }

(* One Kuhn augmenting search from right vertex [r], shared by the
   incremental maintainers (Incremental_width, Streaming_chains): adding a
   single right vertex grows the maximum matching by at most one, so one
   search restores maximality. [find r f] iterates [r]'s not-yet-visited
   left neighbours (marking each visited before applying [f]) and stops at
   the first acceptance; visited bookkeeping stays with the caller so the
   kernel works over int sets, bitsets, or epoch arrays alike. A left
   vertex whose [pair_left] is negative-but-not-free (the streaming
   structure marks partners of retired elements with [-2]) is treated as
   unavailable: its matched edge can no longer be re-routed. *)
let augment_from ~find ~pair_left ~pair_right r =
  let rec go r =
    find r (fun u ->
        if pair_left.(u) = -1 || (pair_left.(u) >= 0 && go pair_left.(u)) then begin
          pair_left.(u) <- r;
          pair_right.(r) <- u;
          true
        end
        else false)
  in
  go r

let min_vertex_cover_rows ~left ~right ~iter { pair_left; pair_right; size = _ }
    =
  (* König: alternate BFS from unmatched left vertices; cover = unvisited
     left + visited right. *)
  let visited_left = Array.make left false in
  let visited_right = Array.make right false in
  let queue = Queue.create () in
  for u = 0 to left - 1 do
    if pair_left.(u) = -1 then begin
      visited_left.(u) <- true;
      Queue.add u queue
    end
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter u (fun v ->
        if not visited_right.(v) then begin
          visited_right.(v) <- true;
          match pair_right.(v) with
          | -1 -> ()
          | u' ->
              if not visited_left.(u') then begin
                visited_left.(u') <- true;
                Queue.add u' queue
              end
        end)
  done;
  (Array.map not visited_left, visited_right)

(* ---------- edge-list front end (CSR, integer sort) ---------- *)

type csr = { starts : int array; ends : int array; cells : int array }

(* Counting-sort the edges by left endpoint, then [Int.compare]-sort and
   dedup each segment in place — neighbours come out ascending and unique
   without a single polymorphic comparison (the seed used
   [List.sort_uniq compare] per vertex). *)
let build_csr ~left ~right edges =
  let deg = Array.make left 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= left || v < 0 || v >= right then
        invalid_arg "Matching: edge endpoint out of range";
      deg.(u) <- deg.(u) + 1)
    edges;
  let starts = Array.make (left + 1) 0 in
  for u = 0 to left - 1 do
    starts.(u + 1) <- starts.(u) + deg.(u)
  done;
  let cursor = Array.sub starts 0 left in
  let cells = Array.make (max 1 starts.(left)) 0 in
  List.iter
    (fun (u, v) ->
      cells.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1)
    edges;
  let ends = Array.make left 0 in
  for u = 0 to left - 1 do
    let lo = starts.(u) in
    let seg = Array.sub cells lo (cursor.(u) - lo) in
    Array.sort Int.compare seg;
    let w = ref lo in
    Array.iteri
      (fun k v ->
        if k = 0 || v <> seg.(k - 1) then begin
          cells.(!w) <- v;
          incr w
        end)
      seg;
    ends.(u) <- !w
  done;
  { starts; ends; cells }

let csr_iter csr u f =
  for k = csr.starts.(u) to csr.ends.(u) - 1 do
    f csr.cells.(k)
  done

let csr_find csr u f =
  let k = ref csr.starts.(u) and stop = csr.ends.(u) in
  let found = ref false in
  while (not !found) && !k < stop do
    if f csr.cells.(!k) then found := true else incr k
  done;
  !found

(* CSR straight from an abstract row iterator (two passes: degrees, then
   fill). Rows visit neighbours in increasing order already, so no sort
   and no dedup — and, unlike {!build_csr}, no O(E) intermediate pair
   list. This is the front end {!Dilworth.comparability_csr} uses to keep
   the edge-list solver available as an oracle without materialising the
   O(n²) comparability pairs. *)
let csr_of_rows ~left ~right ~iter =
  let starts = Array.make (left + 1) 0 in
  for u = 0 to left - 1 do
    let deg = ref 0 in
    iter u (fun v ->
        if v < 0 || v >= right then
          invalid_arg "Matching: edge endpoint out of range";
        incr deg);
    starts.(u + 1) <- starts.(u) + !deg
  done;
  let cells = Array.make (max 1 starts.(left)) 0 in
  let ends = Array.make left 0 in
  for u = 0 to left - 1 do
    let k = ref starts.(u) in
    iter u (fun v ->
        cells.(!k) <- v;
        incr k);
    ends.(u) <- !k
  done;
  { starts; ends; cells }

let edge_count csr =
  let total = ref 0 in
  Array.iteri (fun u e -> total := !total + e - csr.starts.(u)) csr.ends;
  !total

let maximum_csr ~left ~right csr =
  maximum_rows ~left ~right ~iter:(csr_iter csr) ~find:(csr_find csr)

let maximum ~left ~right edges =
  let csr = build_csr ~left ~right edges in
  maximum_rows ~left ~right ~iter:(csr_iter csr) ~find:(csr_find csr)

let min_vertex_cover ~left ~right edges result =
  let csr = build_csr ~left ~right edges in
  min_vertex_cover_rows ~left ~right ~iter:(csr_iter csr) result
