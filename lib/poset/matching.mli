(** Maximum bipartite matching (Hopcroft–Karp).

    Dilworth's theorem reduces minimum chain partitions — and hence the
    width bound of the paper's offline algorithm — to maximum matching in
    the bipartite "split" graph of the order relation; this module is that
    solver. Runs in O(E √V). *)

type result = {
  pair_left : int array;
      (** [pair_left.(u)] is the right vertex matched to left [u], or -1. *)
  pair_right : int array;
      (** [pair_right.(v)] is the left vertex matched to right [v], or -1. *)
  size : int;  (** Number of matched pairs. *)
}

val maximum_rows :
  left:int ->
  right:int ->
  iter:(int -> (int -> unit) -> unit) ->
  find:(int -> (int -> bool) -> bool) ->
  result
(** [maximum_rows ~left ~right ~iter ~find] runs Hopcroft–Karp over an
    abstract adjacency: [iter u f] must visit left vertex [u]'s right
    neighbours in increasing order; [find u f] must do the same but stop
    at the first neighbour where [f] returns [true] (the augmenting DFS).
    This lets {!Dilworth} feed comparability bit-rows straight into the
    solver with no materialised edge list. Deterministic: identical to
    {!maximum} on the same graph. *)

val augment_from :
  find:(int -> (int -> bool) -> bool) ->
  pair_left:int array ->
  pair_right:int array ->
  int ->
  bool
(** [augment_from ~find ~pair_left ~pair_right r] runs one Kuhn
    augmenting-path search from right vertex [r] and applies it in place;
    true iff the matching grew. When elements arrive in linear-extension
    order, adding one right vertex grows the maximum matching by at most
    one, so a single search restores maximality — the incremental
    maintainers ({!Incremental_width}, {!Streaming_chains}) call this once
    per insertion. [find r f] must visit [r]'s {e not-yet-visited} left
    neighbours, marking each visited before applying [f], and stop at the
    first acceptance (the caller owns the visited set; it must be fresh
    per call). Left vertices with a negative non-[-1] [pair_left] entry
    are treated as matched-but-frozen (partner retired) and never
    re-routed. *)

type csr
(** A compressed-sparse-row adjacency: left vertex → ascending right
    neighbours. *)

val csr_of_rows :
  left:int -> right:int -> iter:(int -> (int -> unit) -> unit) -> csr
(** Build a CSR directly from a row iterator (same contract as
    {!maximum_rows}'s [iter]: ascending, duplicate-free) in two passes —
    degrees, then fill — with no intermediate edge list. Raises
    [Invalid_argument] on out-of-range neighbours. *)

val maximum_csr : left:int -> right:int -> csr -> result
(** {!maximum_rows} over a CSR adjacency. Identical to {!maximum} on the
    same graph. *)

val edge_count : csr -> int

val maximum : left:int -> right:int -> (int * int) list -> result
(** [maximum ~left ~right edges] computes a maximum matching of the
    bipartite graph with [left] left vertices, [right] right vertices and
    the given (left, right) edges (internally a counting-sorted CSR fed to
    {!maximum_rows}). Raises [Invalid_argument] on out-of-range endpoints.
    Deterministic. *)

val min_vertex_cover_rows :
  left:int ->
  right:int ->
  iter:(int -> (int -> unit) -> unit) ->
  result ->
  bool array * bool array
(** König's theorem over an abstract adjacency (same [iter] contract as
    {!maximum_rows}): from a maximum matching, a minimum vertex cover
    [(cover_left, cover_right)]. *)

val min_vertex_cover :
  left:int -> right:int -> (int * int) list -> result -> bool array * bool array
(** König's theorem: from a maximum matching, a minimum vertex cover
    [(cover_left, cover_right)] of the same bipartite graph. Its complement
    is a maximum independent set — which {!Dilworth} uses to extract a
    maximum antichain. *)
