(** Dilworth decompositions: width, minimum chain partitions, maximum
    antichains.

    Theorem 8 of the paper: the message poset of a synchronous computation
    on N processes has width ≤ ⌊N/2⌋, hence (Dilworth) a chain partition —
    and by the classic [dim ≤ width] argument a realizer — of that size.
    The minimum chain partition is computed by Hopcroft–Karp matching on
    the split bipartite graph of the order relation; the maximum antichain
    falls out of König's theorem. *)

val comparability_csr : Poset.t -> Matching.csr
(** The split bipartite graph's adjacency as a CSR, built straight from
    the order relation's bit-rows — replaces the seed's materialised
    O(M²) [(int * int) list] of comparable pairs. Feed it to
    {!Matching.maximum_csr}. *)

val matching : Poset.t -> Matching.result
(** The maximum matching of the split bipartite graph of the order
    relation (Hopcroft–Karp over the comparability bit-rows) — the
    "matching" phase of the offline pipeline, exposed so callers
    ({!Synts_core.Offline}, the [synts trace] profiler) can time it
    separately from chain extraction. Deterministic. *)

val chains_of_matching : int -> Matching.result -> int list list
(** The "chain extraction" phase: follow matched successor links from the
    unmatched chain heads. [chains_of_matching n m] over [n] elements;
    [min_chain_partition p = chains_of_matching (Poset.size p) (matching p)]. *)

val min_chain_partition : Poset.t -> int list list
(** A partition of the elements into the minimum number of chains; each
    chain is listed in increasing poset order. The number of chains equals
    {!width}. Deterministic. Runs Hopcroft–Karp directly over the order
    relation's bit-rows ({!Matching.maximum_rows}); no edge list is
    materialised. *)

val min_chain_partition_reference : Poset.t -> int list list
(** The seed pipeline (materialised edge list through {!Matching.maximum}).
    Produces the identical partition — kept as the equivalence oracle for
    the bit-row path; not a hot path. *)

val width : Poset.t -> int
(** Size of the largest antichain = size of the minimum chain partition.
    Zero for the empty poset. *)

val max_antichain : Poset.t -> int list
(** A maximum antichain (sorted), extracted from the König vertex cover of
    the matching. Its length equals {!width}. *)

val is_chain : Poset.t -> int list -> bool
(** The listed elements are pairwise comparable. *)

val is_antichain : Poset.t -> int list -> bool
(** The listed elements are pairwise incomparable (and distinct). *)

val is_chain_partition : Poset.t -> int list list -> bool
(** The lists partition [0 .. n-1] and each is a chain. *)
