module Bitmatrix = Synts_util.Bitmatrix
module Rng = Synts_util.Rng

type t = { lt : Bitmatrix.t; n : int }

exception Cyclic of int

let of_relation n pairs =
  let m = Bitmatrix.create n in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Poset.of_relation: element out of range";
      if i = j then raise (Cyclic i);
      Bitmatrix.set m i j true)
    pairs;
  Bitmatrix.transitive_closure m;
  for i = 0 to n - 1 do
    if Bitmatrix.get m i i then raise (Cyclic i)
  done;
  { lt = m; n }

let of_closed_matrix m =
  let n = Bitmatrix.dim m in
  let c = Bitmatrix.copy m in
  Bitmatrix.transitive_closure c;
  if not (Bitmatrix.equal c m) then
    invalid_arg "Poset.of_closed_matrix: matrix is not transitively closed";
  for i = 0 to n - 1 do
    if Bitmatrix.get m i i then
      invalid_arg "Poset.of_closed_matrix: matrix is reflexive"
  done;
  { lt = Bitmatrix.copy m; n }

let size t = t.n
let lt t i j = Bitmatrix.get t.lt i j
let row_iter t i f = Bitmatrix.row_iter t.lt i f
let row_find t i f = Bitmatrix.row_find t.lt i f
let leq t i j = i = j || lt t i j
let comparable t i j = lt t i j || lt t j i
let concurrent t i j = i <> j && not (comparable t i j)
let relation_count t = Bitmatrix.count t.lt

let covers t =
  let acc = ref [] in
  for i = 0 to t.n - 1 do
    Bitmatrix.row_iter t.lt i (fun j ->
        let between = ref false in
        Bitmatrix.row_iter t.lt i (fun k ->
            if (not !between) && k <> j && lt t k j then between := true);
        if not !between then acc := (i, j) :: !acc)
  done;
  List.rev !acc

let minimal_elements t =
  let has_pred = Array.make t.n false in
  for i = 0 to t.n - 1 do
    Bitmatrix.row_iter t.lt i (fun j -> has_pred.(j) <- true)
  done;
  List.filter (fun v -> not has_pred.(v)) (List.init t.n Fun.id)

let maximal_elements t =
  List.filter
    (fun i ->
      let has_succ = ref false in
      Bitmatrix.row_iter t.lt i (fun _ -> has_succ := true);
      not !has_succ)
    (List.init t.n Fun.id)

let down_set t j =
  List.filter (fun i -> lt t i j) (List.init t.n Fun.id)

let up_set t i =
  let acc = ref [] in
  Bitmatrix.row_iter t.lt i (fun j -> acc := j :: !acc);
  List.rev !acc

let is_linear_extension t order =
  Array.length order = t.n
  && begin
       let pos = Array.make t.n (-1) in
       let ok = ref true in
       Array.iteri
         (fun idx e ->
           if e < 0 || e >= t.n || pos.(e) >= 0 then ok := false
           else pos.(e) <- idx)
         order;
       if !ok then
         for i = 0 to t.n - 1 do
           Bitmatrix.row_iter t.lt i (fun j ->
               if pos.(i) > pos.(j) then ok := false)
         done;
       !ok
     end

(* Kahn topological sort where the choice among current minimal elements is
   delegated to [choose], enabling both the plain extension and the
   chain-avoiding extension of the realizer construction. *)
let extension_with t choose =
  let indeg = Array.make t.n 0 in
  for i = 0 to t.n - 1 do
    Bitmatrix.row_iter t.lt i (fun j -> indeg.(j) <- indeg.(j) + 1)
  done;
  let available = Array.make t.n false in
  Array.iteri (fun v d -> if d = 0 then available.(v) <- true) indeg;
  let order = Array.make t.n 0 in
  for idx = 0 to t.n - 1 do
    let v = choose available in
    available.(v) <- false;
    order.(idx) <- v;
    Bitmatrix.row_iter t.lt v (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then available.(j) <- true)
  done;
  order

let first_available ?(skip = fun _ -> false) available =
  let n = Array.length available in
  let rec scan i fallback =
    if i >= n then fallback
    else if available.(i) then
      if skip i then scan (i + 1) (if fallback < 0 then i else fallback)
      else i
    else scan (i + 1) fallback
  in
  let v = scan 0 (-1) in
  if v < 0 then invalid_arg "Poset: no available element (cyclic input?)"
  else v

let linear_extension t =
  extension_with t (fun available -> first_available available)

let linear_extension_avoiding t ~avoid =
  if Array.length avoid <> t.n then
    invalid_arg "Poset.linear_extension_avoiding: avoid length mismatch";
  extension_with t (fun available ->
      first_available ~skip:(fun i -> avoid.(i)) available)

let equal a b = a.n = b.n && Bitmatrix.equal a.lt b.lt

let of_total_order order =
  let n = Array.length order in
  let seen = Array.make n false in
  Array.iter
    (fun e ->
      if e < 0 || e >= n then
        invalid_arg "Poset.of_total_order: element out of range";
      if seen.(e) then raise (Cyclic e);
      seen.(e) <- true)
    order;
  (* The closure of a total order is known in advance: element [order.(i)]
     lies below exactly [order.(i+1 ..)]. Building rows back to front with
     one row-OR each skips the O(n³/w) Warshall pass of [of_relation]. *)
  let m = Bitmatrix.create n in
  for i = n - 2 downto 0 do
    Bitmatrix.or_row_into m ~dst:order.(i) ~src:order.(i + 1);
    Bitmatrix.set m order.(i) order.(i + 1) true
  done;
  { lt = m; n }

let intersection = function
  | [] -> invalid_arg "Poset.intersection: empty list"
  | first :: rest ->
      let n = first.n in
      List.iter
        (fun p ->
          if p.n <> n then invalid_arg "Poset.intersection: size mismatch")
        rest;
      let m = Bitmatrix.create n in
      for i = 0 to n - 1 do
        Bitmatrix.row_iter first.lt i (fun j ->
            if List.for_all (fun p -> lt p i j) rest then
              Bitmatrix.set m i j true)
      done;
      (* An intersection of transitively-closed relations is closed. *)
      { lt = m; n }

let random rng n p =
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.chance rng p then pairs := (i, j) :: !pairs
    done
  done;
  of_relation n !pairs

let pp ppf t =
  Format.fprintf ppf "@[<v>poset n=%d@," t.n;
  List.iter (fun (i, j) -> Format.fprintf ppf "  %d < %d@," i j) (covers t);
  Format.fprintf ppf "@]"
