module Bitset = Synts_util.Bitset
module Tm = Synts_telemetry.Telemetry

(* Watermark gauges on the default registry — the live-introspection
   hooks the admin channel and `synts top` read. Values are functions of
   the inserted prefix, so seeded runs keep byte-identical snapshots. *)
let m_chains =
  Tm.Gauge.v ~help:"Chains opened by the streaming Dilworth pipeline"
    "poset.stream.chains"

let m_live =
  Tm.Gauge.v ~help:"Peak live-window occupancy of the streaming pipeline"
    "poset.stream.live"

let m_retired =
  Tm.Gauge.v ~help:"Elements retired from the streaming live window"
    "poset.stream.retired"

let m_width =
  Tm.Gauge.v ~help:"Width estimate of the streaming pipeline"
    "poset.stream.width"

type stamp = int array

type info = {
  chain : int;
  opened : bool;
  matched : bool;
  visited : int;
  retired : int;
}

let no_info = { chain = -1; opened = false; matched = false; visited = 0; retired = 0 }

(* Live elements occupy slots in [0, window): fixed arrays indexed by slot,
   recycled through a free stack. The matching (split bipartite graph of
   the inserted prefix) also lives in slot space: [pair_left.(u)] is the
   slot matched as left u's successor, [pair_right.(r)] the slot matched
   as right r's predecessor; -1 free, -2 matched to a retired element
   (the pair still counts, but its edge can never be re-routed). *)
type t = {
  window : int;
  (* Chains: never relinked, only appended to — the append-only invariant
     is what makes the emitted stamps final (see the .mli). *)
  mutable dim : int;
  mutable lengths : int array;  (* per chain, elements so far *)
  mutable tail_seq : int array;  (* per chain, insertion seq of its tail *)
  mutable tail_slot : int array;  (* live slot of the tail, -1 if retired *)
  mutable tail_stamp : stamp array;  (* the tail's emitted stamp *)
  (* Live window. *)
  chain_of : int array;
  rank_of : int array;  (* 1-based rank within its chain *)
  seq_of : int array;  (* global insertion sequence number *)
  anc : Bitset.t array;  (* per slot, its live strict ancestors *)
  pair_left : int array;
  pair_right : int array;
  live : Bitset.t;
  free : int array;  (* free-slot stack *)
  mutable free_top : int;
  vis : Bitset.t;  (* augment scratch: left nodes visited this search *)
  gone : Bitset.t;  (* make_room scratch: slots retired this sweep *)
  mutable size : int;
  mutable matching : int;
  mutable retired : int;
  mutable repairs : int;
  mutable last : info;
}

let create ?(window = 1024) () =
  if window < 2 then invalid_arg "Streaming_chains.create: window must be >= 2";
  {
    window;
    dim = 0;
    lengths = [||];
    tail_seq = [||];
    tail_slot = [||];
    tail_stamp = [||];
    chain_of = Array.make window (-1);
    rank_of = Array.make window 0;
    seq_of = Array.make window 0;
    anc = Array.init window (fun _ -> Bitset.create window);
    pair_left = Array.make window (-1);
    pair_right = Array.make window (-1);
    live = Bitset.create window;
    free = Array.init window (fun i -> window - 1 - i);
    free_top = window;
    vis = Bitset.create window;
    gone = Bitset.create window;
    size = 0;
    matching = 0;
    retired = 0;
    repairs = 0;
    last = no_info;
  }

let size t = t.size
let chains t = t.dim
let width t = t.size - t.matching
let exact t = t.retired = 0
let live t = Bitset.cardinal t.live
let retired t = t.retired
let repairs t = t.repairs
let last_info t = t.last
let chain_length t c =
  if c < 0 || c >= t.dim then invalid_arg "Streaming_chains.chain_length";
  t.lengths.(c)

(* Words held live by the structure, by construction O(window² / word_size
   + chains): the slot arrays, the per-slot ancestor bitsets, and the
   chain arrays. Independent of the number of elements inserted. *)
let live_words t =
  let bitset_words = (t.window + Sys.int_size - 1) / Sys.int_size + 2 in
  (6 * (t.window + 1)) (* chain_of rank_of seq_of pair_* free *)
  + ((t.window + 3) * bitset_words) (* anc + live + vis + gone *)
  + (3 * (Array.length t.lengths + 1)) (* chain arrays *)
  + Array.fold_left (fun acc s -> acc + Array.length s + 1) 0 t.tail_stamp

let ensure_chain_capacity t =
  let cap = Array.length t.lengths in
  if t.dim = cap then begin
    let bigger = max 4 (2 * cap) in
    let copy a fill =
      let b = Array.make bigger fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.lengths <- copy t.lengths 0;
    t.tail_seq <- copy t.tail_seq (-1);
    t.tail_slot <- copy t.tail_slot (-1);
    let stamps = Array.make bigger [||] in
    Array.blit t.tail_stamp 0 stamps 0 cap;
    t.tail_stamp <- stamps
  end

let retire_slot t v =
  Bitset.remove t.live v;
  Bitset.add t.gone v;
  Bitset.clear t.anc.(v);
  (* Freeze matched partners: their edges survive in [matching] but can
     no longer be re-routed by later augmenting searches. *)
  let r = t.pair_left.(v) in
  if r >= 0 then t.pair_right.(r) <- -2;
  let u = t.pair_right.(v) in
  if u >= 0 then t.pair_left.(u) <- -2;
  t.pair_left.(v) <- -1;
  t.pair_right.(v) <- -1;
  let c = t.chain_of.(v) in
  if c >= 0 && t.tail_slot.(c) = v then t.tail_slot.(c) <- -1;
  t.chain_of.(v) <- -1;
  t.free.(t.free_top) <- v;
  t.free_top <- t.free_top + 1;
  t.retired <- t.retired + 1

(* Frontier retirement: when the window fills, drop the oldest half of the
   live prefix (each live chain has advanced past it, or soon will), oldest
   first, preferring elements that are no longer a chain tail. Emitted
   stamps are unaffected — only the matching's re-routing horizon shrinks,
   so [width] decays from exact to an upper bound. *)
let make_room t =
  Bitset.clear t.gone;
  let count = Bitset.cardinal t.live in
  let order = Array.make count 0 in
  let k = ref 0 in
  Bitset.iter
    (fun v ->
      order.(!k) <- v;
      incr k)
    t.live;
  Array.sort (fun a b -> compare t.seq_of.(a) t.seq_of.(b)) order;
  let target = t.window / 2 in
  let remaining = ref count in
  Array.iter
    (fun v ->
      if !remaining > target && t.tail_slot.(t.chain_of.(v)) <> v then begin
        retire_slot t v;
        decr remaining
      end)
    order;
  (* Everything live is a chain tail (dim ≥ window/2): retire oldest tails
     unconditionally until a slot frees up. *)
  if t.free_top = 0 then
    Array.iter
      (fun v ->
        if !remaining > target && Bitset.mem t.live v then begin
          retire_slot t v;
          decr remaining
        end)
      order;
  (* Drop the retired slots' bits from every surviving ancestor row in
     one word-parallel sweep — the "closure row" retirement of the
     streaming pipeline. *)
  Bitset.iter (fun u -> Bitset.diff_into ~dst:t.anc.(u) t.gone) t.live

let merge_base t preds =
  let base = Array.make t.dim 0 in
  List.iter
    (fun p ->
      let k = min (Array.length p) t.dim in
      for i = 0 to k - 1 do
        if p.(i) < 0 || p.(i) > t.lengths.(i) then
          invalid_arg "Streaming_chains.insert: stamp from another structure";
        if p.(i) > base.(i) then base.(i) <- p.(i)
      done)
    preds;
  base

(* The new element's live ancestors, read off the chain-prefix invariant:
   slot u (chain c, rank k) is below the new element iff the merged
   predecessor stamp already counts k elements of chain c — one O(1) test
   per live slot, no closure row consulted. *)
let ancestors_of_base t base s =
  let a = t.anc.(s) in
  Bitset.iter
    (fun u -> if base.(t.chain_of.(u)) >= t.rank_of.(u) then Bitset.add a u)
    t.live;
  a

let insert t ~preds =
  let retired_now = t.retired in
  if t.free_top = 0 then make_room t;
  let base = merge_base t preds in
  t.free_top <- t.free_top - 1;
  let s = t.free.(t.free_top) in
  let anc = ancestors_of_base t base s in
  (* Patience tier: an unmatched ancestor (a matching-chain tail) takes
     the new element directly. *)
  let visits = ref 0 in
  let direct =
    Bitset.exists
      (fun u ->
        t.pair_left.(u) = -1
        && begin
             t.pair_left.(u) <- s;
             t.pair_right.(s) <- u;
             true
           end)
      anc
  in
  let matched =
    direct
    ||
    (* Repair tier: one full augmenting-path search re-routes existing
       matched edges inside the live window. *)
    if Bitset.is_empty anc then false
    else begin
      t.repairs <- t.repairs + 1;
      Bitset.clear t.vis;
      (* [exists_diff] skips already-visited left nodes at word
         granularity, so one search costs O(visited rows · window/word)
         words, not O(visited rows · row popcount) per-bit calls — the
         difference between quadratic and near-linear repair on dense
         windows. *)
      Matching.augment_from
        ~find:(fun r f ->
          Bitset.exists_diff
            (fun u ->
              Bitset.add t.vis u;
              incr visits;
              f u)
            t.anc.(r) t.vis)
        ~pair_left:t.pair_left ~pair_right:t.pair_right s
    end
  in
  if matched then t.matching <- t.matching + 1;
  (* Chain placement: extendable chains are exactly those whose full
     length is already counted by [base] (the down-set meets every chain
     in a prefix). Among the candidates, only a tail that is {e maximal}
     among the candidate tails may be extended — covering a non-maximal
     tail would strand the maximal one below the new element and force an
     extra chain later. Prefer the matched predecessor's chain when it
     qualifies (keeping placement chains aligned with matching chains),
     then the most recently extended maximal candidate (patience rule). *)
  let candidate =
    let cands = ref [] in
    for c = t.dim - 1 downto 0 do
      if t.lengths.(c) > 0 && base.(c) = t.lengths.(c) then cands := c :: !cands
    done;
    let cands = !cands in
    (* tail(c) < tail(c') iff tail(c')'s stamp already counts all of
       chain c — the one-coordinate chain-prefix test. *)
    let counts_all s c =
      c < Array.length s && s.(c) >= t.lengths.(c)
    in
    let maximal c =
      List.for_all (fun c' -> c' = c || not (counts_all t.tail_stamp.(c') c)) cands
    in
    match cands with
    | [] -> -1
    | _ -> (
        let u = t.pair_right.(s) in
        let pref =
          if matched && u >= 0 then
            let c = t.chain_of.(u) in
            if t.tail_slot.(c) = u && List.mem c cands && maximal c then c
            else -1
          else -1
        in
        if pref >= 0 then pref
        else begin
          let best = ref (-1) in
          List.iter
            (fun c ->
              if maximal c && (!best < 0 || t.tail_seq.(c) > t.tail_seq.(!best))
              then best := c)
            cands;
          (* A maximal candidate always exists: the tails form a finite
             strict order. *)
          !best
        end)
  in
  let opened = candidate < 0 in
  let c =
    if opened then begin
      ensure_chain_capacity t;
      let c = t.dim in
      t.dim <- t.dim + 1;
      t.lengths.(c) <- 0;
      c
    end
    else candidate
  in
  let out = Array.make t.dim 0 in
  Array.blit base 0 out 0 (Array.length base);
  t.lengths.(c) <- t.lengths.(c) + 1;
  out.(c) <- t.lengths.(c);
  t.tail_seq.(c) <- t.size;
  t.tail_slot.(c) <- s;
  t.tail_stamp.(c) <- out;
  t.chain_of.(s) <- c;
  t.rank_of.(s) <- t.lengths.(c);
  t.seq_of.(s) <- t.size;
  Bitset.add t.live s;
  t.size <- t.size + 1;
  t.last <-
    {
      chain = c;
      opened;
      matched;
      visited = !visits;
      retired = t.retired - retired_now;
    };
  Tm.Gauge.set m_chains t.dim;
  (* live occupancy = inserted minus retired; peak-hold watermark *)
  Tm.Gauge.set_max m_live (t.size - t.retired);
  Tm.Gauge.set m_retired t.retired;
  Tm.Gauge.set m_width (t.size - t.matching);
  out

(* Strict stamp order with implicit zero-padding: stamps emitted before a
   chain was opened are compared as if padded with zeros. *)
let stamp_lt u v =
  let lu = Array.length u and lv = Array.length v in
  let n = max lu lv in
  let leq = ref true and strict = ref false in
  for i = 0 to n - 1 do
    let a = if i < lu then u.(i) else 0 in
    let b = if i < lv then v.(i) else 0 in
    if a > b then leq := false;
    if a < b then strict := true
  done;
  !leq && !strict
