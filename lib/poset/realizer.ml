let of_chain_partition p chains =
  let n = Poset.size p in
  if n = 0 then [ [||] ]
  else
    match chains with
    | [] | [ _ ] -> [ Poset.linear_extension p ]
    | chains ->
        List.map
          (fun chain ->
            let avoid = Array.make n false in
            List.iter (fun v -> avoid.(v) <- true) chain;
            Poset.linear_extension_avoiding p ~avoid)
          chains

let dilworth p =
  if Poset.size p = 0 then [ [||] ]
  else of_chain_partition p (Dilworth.min_chain_partition p)

let is_realizer p exts =
  exts <> []
  && List.for_all (Poset.is_linear_extension p) exts
  && Poset.equal p (Poset.intersection (List.map Poset.of_total_order exts))

let vectors exts =
  match exts with
  | [] -> invalid_arg "Realizer.vectors: empty realizer"
  | first :: _ ->
      let n = Array.length first in
      let k = List.length exts in
      if List.exists (fun e -> Array.length e <> n) exts then
        invalid_arg "Realizer.vectors: extension length mismatch";
      let vecs = Array.init n (fun _ -> Array.make k 0) in
      List.iteri
        (fun i ext -> Array.iteri (fun rank e -> vecs.(e).(i) <- rank) ext)
        exts;
      vecs

let vector_lt u v =
  let n = Array.length u in
  if Array.length v <> n then invalid_arg "Realizer.vector_lt: length mismatch";
  let all_leq = ref true and some_lt = ref false in
  for k = 0 to n - 1 do
    if u.(k) > v.(k) then all_leq := false;
    if u.(k) < v.(k) then some_lt := true
  done;
  !all_leq && !some_lt

let vector_equal u v =
  Array.length u = Array.length v
  &&
  let k = ref 0 and n = Array.length u in
  while !k < n && Array.unsafe_get u !k = Array.unsafe_get v !k do
    incr k
  done;
  !k = n

let vector_concurrent u v =
  (not (vector_lt u v)) && (not (vector_lt v u)) && not (vector_equal u v)
