(* The benchmark harness.

   Running `dune exec bench/main.exe` regenerates the paper-reproduction
   "evaluation" in two parts:

   1. the experiment tables E1..E10 (one per paper claim/figure family;
      these are the rows recorded in EXPERIMENTS.md), and
   2. bechamel timing benchmarks — one group per cost claim: the Figure 7
      decomposition algorithm, online stamping throughput (ours vs. the
      Fidge-Mattern, Singhal-Kshemkalyani and Lamport baselines), the
      offline Dilworth-realizer pipeline, O(d) vs. O(N) precedence tests
      vs. the O(M) direct-dependency search, the brute-force oracle, and
      the packet-level protocol ablation. *)

open Bechamel
open Toolkit
module Rng = Synts_util.Rng
module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Vertex_cover = Synts_graph.Vertex_cover
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Dilworth = Synts_poset.Dilworth
module Realizer = Synts_poset.Realizer
module Vector = Synts_clock.Vector
module Fm_sync = Synts_clock.Fm_sync
module Lamport = Synts_clock.Lamport
module Plausible = Synts_clock.Plausible
module Direct_dependency = Synts_clock.Direct_dependency
module Singhal_kshemkalyani = Synts_clock.Singhal_kshemkalyani
module Online = Synts_core.Online
module Offline = Synts_core.Offline
module Workload = Synts_workload.Workload
module Oracle = Synts_check.Oracle
module Experiments = Synts_experiments.Experiments
module Telemetry = Synts_telemetry.Telemetry

let seed = 42

(* ---------- Part 1: experiment tables ---------- *)

let print_tables () =
  Format.printf "==================================================@.";
  Format.printf " Part 1: experiment tables (seed %d)@." seed;
  Format.printf "==================================================@.@.";
  List.iter
    (fun t -> Format.printf "%a@." Experiments.pp_table t)
    (Experiments.all ~seed)

(* ---------- Part 2: timing benchmarks ---------- *)

let bench_topologies =
  [
    ("star:64", Topology.star 64);
    ("cs:4x60", Topology.client_server ~servers:4 ~clients:60);
    ("tree:64", Topology.random_tree (Rng.create seed) 64);
    ("complete:32", Topology.complete 32);
  ]

let trace_of g messages =
  Workload.random (Rng.create (seed + 1)) ~topology:g ~messages ()

let decomposition_tests =
  let tests =
    List.concat_map
      (fun (name, g) ->
        [
          Test.make
            ~name:(Printf.sprintf "paper/%s" name)
            (Staged.stage (fun () -> ignore (Decomposition.paper g)));
          Test.make
            ~name:(Printf.sprintf "sequential/%s" name)
            (Staged.stage (fun () -> ignore (Decomposition.sequential g)));
          Test.make
            ~name:(Printf.sprintf "vertex-cover/%s" name)
            (Staged.stage (fun () ->
                 ignore
                   (Decomposition.of_vertex_cover g (Vertex_cover.two_approx g))));
        ])
      bench_topologies
  in
  Test.make_grouped ~name:"decomposition" tests

(* B2: whole-trace stamping throughput (2000 messages). *)
let stamping_tests =
  let tests =
    List.concat_map
      (fun (name, g) ->
        let d = Decomposition.best g in
        let trace = trace_of g 2000 in
        [
          Test.make
            ~name:(Printf.sprintf "ours-d%d/%s" (Decomposition.size d) name)
            (Staged.stage (fun () -> ignore (Online.timestamp_trace d trace)));
          Test.make
            ~name:(Printf.sprintf "fm-N%d/%s" (Graph.n g) name)
            (Staged.stage (fun () -> ignore (Fm_sync.timestamp_trace trace)));
          Test.make
            ~name:(Printf.sprintf "sk/%s" name)
            (Staged.stage (fun () ->
                 ignore (Singhal_kshemkalyani.simulate trace)));
          Test.make
            ~name:(Printf.sprintf "lamport/%s" name)
            (Staged.stage (fun () -> ignore (Lamport.timestamp_trace trace)));
        ])
      bench_topologies
  in
  Test.make_grouped ~name:"stamping-2000msg" tests

(* B3: the offline pipeline on a 300-message trace. *)
let offline_tests =
  let g = Topology.gnp (Rng.create seed) 16 0.3 in
  let trace = trace_of g 300 in
  let poset = Message_poset.of_trace trace in
  Test.make_grouped ~name:"offline-300msg"
    [
      Test.make ~name:"message-poset"
        (Staged.stage (fun () -> ignore (Message_poset.of_trace trace)));
      Test.make ~name:"width"
        (Staged.stage (fun () -> ignore (Dilworth.width poset)));
      Test.make ~name:"realizer"
        (Staged.stage (fun () -> ignore (Realizer.dilworth poset)));
      Test.make ~name:"full-offline"
        (Staged.stage (fun () -> ignore (Offline.timestamp_trace trace)));
    ]

(* B4: a single precedence test: O(d) vs. O(N) vs. O(M) search. *)
let precedence_tests =
  let small = (Array.init 4 Fun.id, Array.init 4 (fun i -> i + 1)) in
  let big = (Array.init 128 Fun.id, Array.init 128 (fun i -> i + 1)) in
  let g = Topology.client_server ~servers:4 ~clients:124 in
  let trace = trace_of g 2000 in
  let log = Direct_dependency.of_trace trace in
  Test.make_grouped ~name:"precedence-test"
    [
      Test.make ~name:"ours-d4"
        (Staged.stage (fun () ->
             let u, v = small in
             ignore (Vector.lt u v)));
      Test.make ~name:"fm-N128"
        (Staged.stage (fun () ->
             let u, v = big in
             ignore (Vector.lt u v)));
      Test.make ~name:"direct-dep-search-M2000"
        (Staged.stage (fun () -> ignore (Direct_dependency.precedes log 3 1990)));
    ]

(* B5: the quadratic/cubic oracle, to justify using it only as a test
   oracle. *)
let oracle_tests =
  let g = Topology.gnp (Rng.create seed) 12 0.4 in
  let trace = trace_of g 400 in
  Test.make_grouped ~name:"oracle-400msg"
    [
      Test.make ~name:"bitset-closure"
        (Staged.stage (fun () -> ignore (Oracle.message_poset trace)));
    ]

(* B6 (ablation): the packet-faithful protocol vs. the collapsed sweep. *)
let protocol_tests =
  let g = Topology.client_server ~servers:4 ~clients:28 in
  let d = Decomposition.best g in
  let trace = trace_of g 2000 in
  Test.make_grouped ~name:"protocol-ablation"
    [
      Test.make ~name:"collapsed-sweep"
        (Staged.stage (fun () -> ignore (Online.timestamp_trace d trace)));
      Test.make ~name:"explicit-msg-ack"
        (Staged.stage (fun () ->
             ignore (Online.timestamp_trace_protocol d trace)));
    ]

(* B7 (ablation): plausible clocks cost the same as ours at equal size but
   give up exactness; measure stamping at r = d. *)
let plausible_tests =
  let g = Topology.client_server ~servers:4 ~clients:60 in
  let trace = trace_of g 2000 in
  Test.make_grouped ~name:"plausible-ablation"
    [
      Test.make ~name:"plausible-r4"
        (Staged.stage (fun () -> ignore (Plausible.timestamp_trace ~r:4 trace)));
      Test.make ~name:"plausible-r64"
        (Staged.stage (fun () ->
             ignore (Plausible.timestamp_trace ~r:64 trace)));
    ]

(* B8 (extension): adaptive stamping vs. full-knowledge stamping. *)
let adaptive_tests =
  let g = Topology.client_server ~servers:4 ~clients:60 in
  let d = Decomposition.best g in
  let trace = trace_of g 2000 in
  let adaptive_stamp () =
    let s = Synts_core.Adaptive_stamper.create (Graph.n g) in
    Array.iter
      (fun (m : Trace.message) ->
        ignore
          (Synts_core.Adaptive_stamper.stamp s ~src:m.Trace.src
             ~dst:m.Trace.dst))
      (Trace.messages trace)
  in
  Test.make_grouped ~name:"adaptive-ablation"
    [
      Test.make ~name:"static-decomposition"
        (Staged.stage (fun () -> ignore (Online.timestamp_trace d trace)));
      Test.make ~name:"adaptive-growth" (Staged.stage adaptive_stamp);
    ]

(* B9 (extension): streaming internal-event stamps. *)
let stream_tests =
  let g = Topology.star 16 in
  let d = Decomposition.best g in
  let trace =
    Workload.random
      (Rng.create (seed + 2))
      ~topology:g ~messages:1000 ~internal_prob:0.5 ()
  in
  let message_ts = Online.timestamp_trace d trace in
  let streaming () =
    let s =
      Synts_core.Event_stream.create ~dimension:(Decomposition.size d)
        ~n:(Graph.n g)
    in
    let mid = ref 0 in
    List.iter
      (fun step ->
        match step with
        | Trace.Local p ->
            ignore (Synts_core.Event_stream.record_internal s ~proc:p)
        | Trace.Send (src, dst) ->
            let ts = message_ts.(!mid) in
            incr mid;
            ignore (Synts_core.Event_stream.record_message s ~proc:src ts);
            ignore (Synts_core.Event_stream.record_message s ~proc:dst ts))
      (Trace.steps trace);
    ignore (Synts_core.Event_stream.finish s)
  in
  Test.make_grouped ~name:"internal-events"
    [
      Test.make ~name:"batch"
        (Staged.stage (fun () ->
             ignore (Synts_core.Internal_events.of_trace_with message_ts trace)));
      Test.make ~name:"streaming" (Staged.stage streaming);
    ]

(* B11: scaling series — stamping cost per 1000 messages as N grows, ours
   (client-server topology, d = 4 constant) vs. Fidge–Mattern (d = N).
   The crossover shape is the paper's practical argument. *)
let scaling_tests =
  let sizes = [ 8; 16; 32; 64; 128 ] in
  let setup n =
    let g = Topology.client_server ~servers:4 ~clients:(n - 4) in
    (g, Decomposition.best g, trace_of g 1000)
  in
  let prepared = List.map (fun n -> (n, setup n)) sizes in
  let ours =
    Test.make_indexed ~name:"ours-cs4" ~args:sizes (fun n ->
        let _, d, trace = List.assoc n prepared in
        Staged.stage (fun () -> ignore (Online.timestamp_trace d trace)))
  in
  let fm =
    Test.make_indexed ~name:"fm-cs4" ~args:sizes (fun n ->
        let _, _, trace = List.assoc n prepared in
        Staged.stage (fun () -> ignore (Fm_sync.timestamp_trace trace)))
  in
  Test.make_grouped ~name:"scaling-1000msg" [ ours; fm ]

(* B10: the full protocol stack — rendezvous over the simulated network,
   600 messages, with and without timestamping. *)
let network_tests =
  let g = Topology.client_server ~servers:2 ~clients:10 in
  let d = Decomposition.best g in
  let trace = trace_of g 600 in
  let scripts = Synts_net.Script.of_trace trace in
  Test.make_grouped ~name:"network-600msg"
    [
      Test.make ~name:"rendezvous-plain"
        (Staged.stage (fun () -> ignore (Synts_net.Rendezvous.run scripts)));
      Test.make ~name:"rendezvous-timestamped"
        (Staged.stage (fun () ->
             ignore (Synts_net.Rendezvous.run ~decomposition:d scripts)));
    ]

(* B12: telemetry overhead — the instrumented online stamper with the
   global switch on vs. off. Acceptance: within 10%. The hot loop only
   pays integer counter adds, so the two rows should be near-identical. *)
let telemetry_tests =
  let g = Topology.client_server ~servers:4 ~clients:60 in
  let d = Decomposition.best g in
  let trace = trace_of g 2000 in
  Test.make_grouped ~name:"telemetry-overhead"
    [
      Test.make ~name:"online-instrumented"
        (Staged.stage (fun () ->
             Telemetry.set_enabled true;
             ignore (Online.timestamp_trace d trace)));
      Test.make ~name:"online-uninstrumented"
        (Staged.stage (fun () ->
             Telemetry.set_enabled false;
             ignore (Online.timestamp_trace d trace)));
    ]

(* B13: every clock scheme through the one unified Stamper driver —
   apples-to-apples cost of the whole send/receive protocol including
   wire encoding, per 1000 messages. *)
let stamper_tests =
  let g = Topology.client_server ~servers:4 ~clients:28 in
  let trace = trace_of g 1000 in
  let tests =
    List.map
      (fun ((module M : Synts_clock.Stamper.S) as s) ->
        Test.make ~name:M.name
          (Staged.stage (fun () -> ignore (Synts_clock.Stamper.run s trace))))
      (Synts_core.Stampers.all g)
  in
  Test.make_grouped ~name:"stamper-drivers-1000msg" tests

let all_groups =
  [
    decomposition_tests;
    stamping_tests;
    offline_tests;
    precedence_tests;
    oracle_tests;
    protocol_tests;
    plausible_tests;
    adaptive_tests;
    stream_tests;
    network_tests;
    scaling_tests;
    telemetry_tests;
    stamper_tests;
  ]

let run_benchmarks () =
  Format.printf "==================================================@.";
  Format.printf " Part 2: timing benchmarks (bechamel, monotonic clock)@.";
  Format.printf "==================================================@.@.";
  let cfg = Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.4) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] group in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let rows =
        Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
        |> List.sort compare
      in
      List.iter
        (fun (name, r) ->
          let estimate =
            match Analyze.OLS.estimates r with
            | Some [ e ] -> e
            | _ -> nan
          in
          let pretty =
            if Float.is_nan estimate then "n/a"
            else if estimate > 1_000_000.0 then
              Printf.sprintf "%8.3f ms" (estimate /. 1_000_000.0)
            else if estimate > 1_000.0 then
              Printf.sprintf "%8.3f us" (estimate /. 1_000.0)
            else Printf.sprintf "%8.1f ns" estimate
          in
          Format.printf "  %-55s %s/run@." name pretty)
        rows;
      Format.printf "@.")
    all_groups

let () =
  print_tables ();
  run_benchmarks ();
  Telemetry.set_enabled true;
  Format.printf "done.@."
