(* The benchmark harness.

   Running `dune exec bench/main.exe` regenerates the paper-reproduction
   "evaluation" in two parts:

   1. the experiment tables E1..E10 (one per paper claim/figure family;
      these are the rows recorded in EXPERIMENTS.md), and
   2. bechamel timing benchmarks — one group per cost claim: the Figure 7
      decomposition algorithm, online stamping throughput (ours vs. the
      Fidge-Mattern, Singhal-Kshemkalyani and Lamport baselines), the
      offline Dilworth-realizer pipeline, O(d) vs. O(N) precedence tests
      vs. the O(M) direct-dependency search, the brute-force oracle, and
      the packet-level protocol ablation. *)

open Bechamel
open Toolkit
module Rng = Synts_util.Rng
module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Vertex_cover = Synts_graph.Vertex_cover
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Dilworth = Synts_poset.Dilworth
module Realizer = Synts_poset.Realizer
module Vector = Synts_clock.Vector
module Fm_sync = Synts_clock.Fm_sync
module Lamport = Synts_clock.Lamport
module Plausible = Synts_clock.Plausible
module Direct_dependency = Synts_clock.Direct_dependency
module Singhal_kshemkalyani = Synts_clock.Singhal_kshemkalyani
module Online = Synts_core.Online
module Offline = Synts_core.Offline
module Workload = Synts_workload.Workload
module Oracle = Synts_check.Oracle
module Experiments = Synts_experiments.Experiments
module Telemetry = Synts_telemetry.Telemetry

let seed = 42

(* ---------- Part 1: experiment tables ---------- *)

let print_tables () =
  Format.printf "==================================================@.";
  Format.printf " Part 1: experiment tables (seed %d)@." seed;
  Format.printf "==================================================@.@.";
  List.iter
    (fun t -> Format.printf "%a@." Experiments.pp_table t)
    (Experiments.all ~seed)

(* ---------- Part 2: timing benchmarks ---------- *)

let bench_topologies =
  [
    ("star:64", Topology.star 64);
    ("cs:4x60", Topology.client_server ~servers:4 ~clients:60);
    ("tree:64", Topology.random_tree (Rng.create seed) 64);
    ("complete:32", Topology.complete 32);
  ]

let trace_of g messages =
  Workload.random (Rng.create (seed + 1)) ~topology:g ~messages ()

let decomposition_tests =
  let tests =
    List.concat_map
      (fun (name, g) ->
        [
          Test.make
            ~name:(Printf.sprintf "paper/%s" name)
            (Staged.stage (fun () -> ignore (Decomposition.paper g)));
          Test.make
            ~name:(Printf.sprintf "sequential/%s" name)
            (Staged.stage (fun () -> ignore (Decomposition.sequential g)));
          Test.make
            ~name:(Printf.sprintf "vertex-cover/%s" name)
            (Staged.stage (fun () ->
                 ignore
                   (Decomposition.of_vertex_cover g (Vertex_cover.two_approx g))));
        ])
      bench_topologies
  in
  Test.make_grouped ~name:"decomposition" tests

(* B2: whole-trace stamping throughput (2000 messages). *)
let stamping_tests =
  let tests =
    List.concat_map
      (fun (name, g) ->
        let d = Decomposition.best g in
        let trace = trace_of g 2000 in
        [
          Test.make
            ~name:(Printf.sprintf "ours-d%d/%s" (Decomposition.size d) name)
            (Staged.stage (fun () -> ignore (Online.timestamp_trace d trace)));
          Test.make
            ~name:(Printf.sprintf "fm-N%d/%s" (Graph.n g) name)
            (Staged.stage (fun () -> ignore (Fm_sync.timestamp_trace trace)));
          Test.make
            ~name:(Printf.sprintf "sk/%s" name)
            (Staged.stage (fun () ->
                 ignore (Singhal_kshemkalyani.simulate trace)));
          Test.make
            ~name:(Printf.sprintf "lamport/%s" name)
            (Staged.stage (fun () -> ignore (Lamport.timestamp_trace trace)));
        ])
      bench_topologies
  in
  Test.make_grouped ~name:"stamping-2000msg" tests

(* B3: the offline pipeline on a 300-message trace. *)
let offline_tests =
  let g = Topology.gnp (Rng.create seed) 16 0.3 in
  let trace = trace_of g 300 in
  let poset = Message_poset.of_trace trace in
  Test.make_grouped ~name:"offline-300msg"
    [
      Test.make ~name:"message-poset"
        (Staged.stage (fun () -> ignore (Message_poset.of_trace trace)));
      Test.make ~name:"width"
        (Staged.stage (fun () -> ignore (Dilworth.width poset)));
      Test.make ~name:"realizer"
        (Staged.stage (fun () -> ignore (Realizer.dilworth poset)));
      Test.make ~name:"full-offline"
        (Staged.stage (fun () -> ignore (Offline.timestamp_trace trace)));
    ]

(* B4: a single precedence test: O(d) vs. O(N) vs. O(M) search. *)
let precedence_tests =
  let small = (Array.init 4 Fun.id, Array.init 4 (fun i -> i + 1)) in
  let big = (Array.init 128 Fun.id, Array.init 128 (fun i -> i + 1)) in
  let g = Topology.client_server ~servers:4 ~clients:124 in
  let trace = trace_of g 2000 in
  let log = Direct_dependency.of_trace trace in
  Test.make_grouped ~name:"precedence-test"
    [
      Test.make ~name:"ours-d4"
        (Staged.stage (fun () ->
             let u, v = small in
             ignore (Vector.lt u v)));
      Test.make ~name:"fm-N128"
        (Staged.stage (fun () ->
             let u, v = big in
             ignore (Vector.lt u v)));
      Test.make ~name:"direct-dep-search-M2000"
        (Staged.stage (fun () -> ignore (Direct_dependency.precedes log 3 1990)));
    ]

(* B5: the quadratic/cubic oracle, to justify using it only as a test
   oracle. *)
let oracle_tests =
  let g = Topology.gnp (Rng.create seed) 12 0.4 in
  let trace = trace_of g 400 in
  Test.make_grouped ~name:"oracle-400msg"
    [
      Test.make ~name:"bitset-closure"
        (Staged.stage (fun () -> ignore (Oracle.message_poset trace)));
    ]

(* B6 (ablation): the packet-faithful protocol vs. the collapsed sweep. *)
let protocol_tests =
  let g = Topology.client_server ~servers:4 ~clients:28 in
  let d = Decomposition.best g in
  let trace = trace_of g 2000 in
  Test.make_grouped ~name:"protocol-ablation"
    [
      Test.make ~name:"collapsed-sweep"
        (Staged.stage (fun () -> ignore (Online.timestamp_trace d trace)));
      Test.make ~name:"explicit-msg-ack"
        (Staged.stage (fun () ->
             ignore (Online.timestamp_trace_protocol d trace)));
    ]

(* B7 (ablation): plausible clocks cost the same as ours at equal size but
   give up exactness; measure stamping at r = d. *)
let plausible_tests =
  let g = Topology.client_server ~servers:4 ~clients:60 in
  let trace = trace_of g 2000 in
  Test.make_grouped ~name:"plausible-ablation"
    [
      Test.make ~name:"plausible-r4"
        (Staged.stage (fun () -> ignore (Plausible.timestamp_trace ~r:4 trace)));
      Test.make ~name:"plausible-r64"
        (Staged.stage (fun () ->
             ignore (Plausible.timestamp_trace ~r:64 trace)));
    ]

(* B8 (extension): adaptive stamping vs. full-knowledge stamping. *)
let adaptive_tests =
  let g = Topology.client_server ~servers:4 ~clients:60 in
  let d = Decomposition.best g in
  let trace = trace_of g 2000 in
  let adaptive_stamp () =
    let s = Synts_core.Adaptive_stamper.create (Graph.n g) in
    Array.iter
      (fun (m : Trace.message) ->
        ignore
          (Synts_core.Adaptive_stamper.stamp s ~src:m.Trace.src
             ~dst:m.Trace.dst))
      (Trace.messages trace)
  in
  Test.make_grouped ~name:"adaptive-ablation"
    [
      Test.make ~name:"static-decomposition"
        (Staged.stage (fun () -> ignore (Online.timestamp_trace d trace)));
      Test.make ~name:"adaptive-growth" (Staged.stage adaptive_stamp);
    ]

(* B9 (extension): streaming internal-event stamps. *)
let stream_tests =
  let g = Topology.star 16 in
  let d = Decomposition.best g in
  let trace =
    Workload.random
      (Rng.create (seed + 2))
      ~topology:g ~messages:1000 ~internal_prob:0.5 ()
  in
  let message_ts = Online.timestamp_trace d trace in
  let streaming () =
    let s =
      Synts_core.Event_stream.create ~dimension:(Decomposition.size d)
        ~n:(Graph.n g)
    in
    let mid = ref 0 in
    List.iter
      (fun step ->
        match step with
        | Trace.Local p ->
            ignore (Synts_core.Event_stream.record_internal s ~proc:p)
        | Trace.Send (src, dst) ->
            let ts = message_ts.(!mid) in
            incr mid;
            ignore (Synts_core.Event_stream.record_message s ~proc:src ts);
            ignore (Synts_core.Event_stream.record_message s ~proc:dst ts))
      (Trace.steps trace);
    ignore (Synts_core.Event_stream.finish s)
  in
  Test.make_grouped ~name:"internal-events"
    [
      Test.make ~name:"batch"
        (Staged.stage (fun () ->
             ignore (Synts_core.Internal_events.of_trace_with message_ts trace)));
      Test.make ~name:"streaming" (Staged.stage streaming);
    ]

(* B11: scaling series — stamping cost per 1000 messages as N grows, ours
   (client-server topology, d = 4 constant) vs. Fidge–Mattern (d = N).
   The crossover shape is the paper's practical argument. *)
let scaling_tests =
  let sizes = [ 8; 16; 32; 64; 128 ] in
  let setup n =
    let g = Topology.client_server ~servers:4 ~clients:(n - 4) in
    (g, Decomposition.best g, trace_of g 1000)
  in
  let prepared = List.map (fun n -> (n, setup n)) sizes in
  let ours =
    Test.make_indexed ~name:"ours-cs4" ~args:sizes (fun n ->
        let _, d, trace = List.assoc n prepared in
        Staged.stage (fun () -> ignore (Online.timestamp_trace d trace)))
  in
  let fm =
    Test.make_indexed ~name:"fm-cs4" ~args:sizes (fun n ->
        let _, _, trace = List.assoc n prepared in
        Staged.stage (fun () -> ignore (Fm_sync.timestamp_trace trace)))
  in
  Test.make_grouped ~name:"scaling-1000msg" [ ours; fm ]

(* B10: the full protocol stack — rendezvous over the simulated network,
   600 messages, with and without timestamping. *)
let network_tests =
  let g = Topology.client_server ~servers:2 ~clients:10 in
  let d = Decomposition.best g in
  let trace = trace_of g 600 in
  let scripts = Synts_net.Script.of_trace trace in
  Test.make_grouped ~name:"network-600msg"
    [
      Test.make ~name:"rendezvous-plain"
        (Staged.stage (fun () -> ignore (Synts_net.Rendezvous.run scripts)));
      Test.make ~name:"rendezvous-timestamped"
        (Staged.stage (fun () ->
             ignore (Synts_net.Rendezvous.run ~decomposition:d scripts)));
    ]

(* B11: fault-injection overhead — the same timestamped 600-message run
   bare, with an armed-but-empty injector (pays checksum framing and
   retransmit timers), and under a busy plan (duplication, corruption
   with rejection + retransmission, delay spikes, one crash-recover).
   The injector is created inside the thunk so every iteration replays
   the identical fault schedule from a fresh tally. *)
let fault_tests =
  let g = Topology.client_server ~servers:2 ~clients:10 in
  let d = Decomposition.best g in
  let trace = trace_of g 600 in
  let scripts = Synts_net.Script.of_trace trace in
  let busy =
    match
      Synts_fault.Plan.of_string "recover:1@50+40; dup:0.1; corrupt:0.1; spike:0.1*4"
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"fault-overhead"
    [
      Test.make ~name:"no-faults"
        (Staged.stage (fun () ->
             ignore (Synts_net.Rendezvous.run ~decomposition:d scripts)));
      Test.make ~name:"empty-plan"
        (Staged.stage (fun () ->
             ignore
               (Synts_net.Rendezvous.run ~decomposition:d
                  ~faults:(Synts_fault.Injector.create [])
                  scripts)));
      Test.make ~name:"busy-plan"
        (Staged.stage (fun () ->
             ignore
               (Synts_net.Rendezvous.run ~decomposition:d
                  ~faults:(Synts_fault.Injector.create busy)
                  scripts)));
    ]

(* B12: telemetry overhead — the instrumented online stamper with the
   global switch on vs. off. Acceptance: within 10%. The hot loop only
   pays integer counter adds, so the two rows should be near-identical. *)
let telemetry_tests =
  let g = Topology.client_server ~servers:4 ~clients:60 in
  let d = Decomposition.best g in
  let trace = trace_of g 2000 in
  Test.make_grouped ~name:"telemetry-overhead"
    [
      Test.make ~name:"online-instrumented"
        (Staged.stage (fun () ->
             Telemetry.set_enabled true;
             ignore (Online.timestamp_trace d trace)));
      Test.make ~name:"online-uninstrumented"
        (Staged.stage (fun () ->
             Telemetry.set_enabled false;
             ignore (Online.timestamp_trace d trace)));
    ]

(* B13: every clock scheme through the one unified Stamper driver —
   apples-to-apples cost of the whole send/receive protocol including
   wire encoding, per 1000 messages. *)
let stamper_tests =
  let g = Topology.client_server ~servers:4 ~clients:28 in
  let trace = trace_of g 1000 in
  let tests =
    List.map
      (fun ((module M : Synts_clock.Stamper.S) as s) ->
        Test.make ~name:M.name
          (Staged.stage (fun () -> ignore (Synts_clock.Stamper.run s trace))))
      (Synts_core.Stampers.all g)
  in
  Test.make_grouped ~name:"stamper-drivers-1000msg" tests

(* B14: the slab kernels with buffers preallocated and reused across
   runs — the minor-words column is the zero-allocation claim: with a
   warm store the whole 2000-message sweep must allocate nothing per
   message (the *-reuse rows read ~0 w/run; the reference rows show what
   the seed implementations paid). *)
let slab_kernel_tests =
  let module Stamp_store = Synts_clock.Stamp_store in
  let g = Topology.client_server ~servers:4 ~clients:28 in
  let trace = trace_of g 2000 in
  let d = Decomposition.best g in
  let mcount = Trace.message_count trace in
  let ours_store = Stamp_store.create ~capacity:(mcount + 33) (Decomposition.size d) in
  let ours_rows = Array.make mcount (-1) in
  let fm_store = Stamp_store.create ~capacity:(mcount + 2) (Graph.n g) in
  let fm_rows = Array.make mcount (-1) in
  Test.make_grouped ~name:"slab-kernel-2000msg"
    [
      Test.make ~name:"ours-store-reuse"
        (Staged.stage (fun () ->
             ignore
               (Online.timestamp_store ~store:ours_store ~rows:ours_rows d
                  trace)));
      Test.make ~name:"ours-reference"
        (Staged.stage (fun () ->
             ignore (Online.timestamp_trace_reference d trace)));
      Test.make ~name:"fm-store-reuse"
        (Staged.stage (fun () ->
             ignore (Fm_sync.timestamp_store ~store:fm_store ~rows:fm_rows trace)));
      Test.make ~name:"fm-reference"
        (Staged.stage (fun () ->
             ignore (Fm_sync.timestamp_trace_reference trace)));
      Test.make ~name:"sk-slab"
        (Staged.stage (fun () ->
             ignore (Singhal_kshemkalyani.simulate trace)));
      Test.make ~name:"sk-reference"
        (Staged.stage (fun () ->
             ignore (Singhal_kshemkalyani.simulate_reference trace)));
    ]

(* B15: Hopcroft–Karp fed by comparability bit-rows vs. the seed's
   materialised edge list, on the same 300-message poset as B3. *)
let dilworth_pipeline_tests =
  let g = Topology.gnp (Rng.create seed) 16 0.3 in
  let trace = trace_of g 300 in
  let poset = Message_poset.of_trace trace in
  Test.make_grouped ~name:"dilworth-pipeline-300msg"
    [
      Test.make ~name:"chains-bitset"
        (Staged.stage (fun () -> ignore (Dilworth.min_chain_partition poset)));
      Test.make ~name:"chains-edge-list"
        (Staged.stage (fun () ->
             ignore (Dilworth.min_chain_partition_reference poset)));
      Test.make ~name:"antichain-bitset"
        (Staged.stage (fun () -> ignore (Dilworth.max_antichain poset)));
    ]

(* B16: trace-recording overhead — the span-recorder call sites in the
   session and rendezvous layers with the global switch on vs. off.
   Recording off must cost one boolean test per site, so the off rows
   must sit within bench-diff noise of the pre-tracing baselines; the on
   rows price a ring store per span. *)
let trace_overhead_tests =
  let module Tracer = Synts_trace.Tracer in
  (* Session observes also maintain the frontier and incremental width
     (quadratic in the feed length), so the feed is kept short enough for
     the per-span ring-store delta to be measurable above that floor. *)
  let g = Topology.client_server ~servers:3 ~clients:20 in
  let d = Decomposition.best g in
  let trace = trace_of g 500 in
  let feed () =
    let session = Synts_session.Session.of_decomposition d in
    Array.iter
      (fun (m : Trace.message) ->
        ignore
          (Synts_session.Session.observe session
             (Synts_session.Session.Message
                { src = m.Trace.src; dst = m.Trace.dst })))
      (Trace.messages trace)
  in
  let gn = Topology.client_server ~servers:2 ~clients:10 in
  let dn = Decomposition.best gn in
  let scripts = Synts_net.Script.of_trace (trace_of gn 600) in
  let rendezvous () = ignore (Synts_net.Rendezvous.run ~decomposition:dn scripts) in
  let traced f () =
    Tracer.set_enabled true;
    Tracer.clear ();
    f ();
    Tracer.set_enabled false
  in
  Test.make_grouped ~name:"trace-overhead"
    [
      Test.make ~name:"session-feed-recording" (Staged.stage (traced feed));
      Test.make ~name:"session-feed-off" (Staged.stage feed);
      Test.make ~name:"rendezvous-recording" (Staged.stage (traced rendezvous));
      Test.make ~name:"rendezvous-off" (Staged.stage rendezvous);
    ]

(* B17: the serve-path sharded engine — the same ordered 1024-event
   workload swept in 32-event batches by 1, 2 and 4 shard domains.
   shards-1 runs the sweep inline on the caller's domain (the same
   componentwise rule as the conformance oracle), so the 2/4-shard rows
   price the coordinator handshake and slice reassembly against the
   parallel component sweep.  The engines (and their worker domains)
   persist across iterations; [finish] at the end of each feed keeps the
   internal-event stream and resolved queue from growing run over run. *)
let serve_engine_tests =
  let module Ingest = Synts_ingest.Ingest in
  let module Engine = Synts_server.Engine in
  let g = Topology.client_server ~servers:4 ~clients:28 in
  let d = Decomposition.best g in
  let events =
    Array.of_list (List.map Ingest.event_of_step (Trace.steps (trace_of g 1024)))
  in
  let batches =
    let n = Array.length events and batch = 32 in
    let rec cut i acc =
      if i >= n then List.rev acc
      else
        let len = min batch (n - i) in
        cut (i + len) (Array.sub events i len :: acc)
    in
    cut 0 []
  in
  (* Engines are created lazily on first run so their worker domains
     only exist while this (last) group is being measured — idle
     domains must not sit in the stop-the-world set while the
     single-domain groups are timed. *)
  let feed shards =
    let eng =
      lazy
        (let e = Engine.create ~shards d in
         at_exit (fun () -> Engine.stop e);
         e)
    in
    fun () ->
      let eng = Lazy.force eng in
      List.iter (fun b -> ignore (Engine.observe_batch eng b)) batches;
      ignore (Engine.finish eng)
  in
  Test.make_grouped ~name:"serve-engine-1024ev"
    [
      Test.make ~name:"shards-1" (Staged.stage (feed 1));
      Test.make ~name:"shards-2" (Staged.stage (feed 2));
      Test.make ~name:"shards-4" (Staged.stage (feed 4));
    ]

(* B18: the model checker's exploration engine — the default N=3
   scenario swept exhaustively with and without DPOR (the dpor row must
   stay well under the naive row: the 6x state reduction is the claim),
   plus a crash/recover exploration pricing the fault-injection branch
   of the transition relation. *)
let model_explore_tests =
  let module Protocol = Synts_model.Protocol in
  let module Checker = Synts_model.Checker in
  let clean = Protocol.compile_exn Protocol.default in
  let faulty = Protocol.compile_exn { Protocol.default with faults = 1 } in
  let explore ~dpor model () = ignore (Checker.check ~dpor model) in
  Test.make_grouped ~name:"model-explore"
    [
      Test.make ~name:"n3e6-dpor" (Staged.stage (explore ~dpor:true clean));
      Test.make ~name:"n3e6-naive" (Staged.stage (explore ~dpor:false clean));
      Test.make ~name:"n3e6-faults1-dpor"
        (Staged.stage (explore ~dpor:true faulty));
    ]

(* B19: the streaming offline pipeline vs the batch Figure 9 path. The
   batch row is only feasible at small message counts (its closure bits
   and realizer are O(M²)); the stream rows scale the same one-pass
   pipeline to 12k and 100k messages with memory pinned by the live
   window — the minor-words column is the bounded-memory claim, the
   ns column the throughput crossover recorded in EXPERIMENTS.md.
   Traces are generated lazily so the 100k workload is only built when
   this group is measured. *)
let offline_stream_tests =
  let g = Topology.client_server ~servers:4 ~clients:60 in
  let small = lazy (trace_of g 1200) in
  let mid = lazy (trace_of g 12_000) in
  let big = lazy (trace_of g 100_000) in
  let batch t () = ignore (Offline.timestamp_trace (Lazy.force t)) in
  let stream t () = ignore (Offline.stream_trace (Lazy.force t)) in
  Test.make_grouped ~name:"offline-stream"
    [
      Test.make ~name:"batch-1200" (Staged.stage (batch small));
      Test.make ~name:"stream-1200" (Staged.stage (stream small));
      Test.make ~name:"stream-12k" (Staged.stage (stream mid));
      Test.make ~name:"stream-100k" (Staged.stage (stream big));
    ]

(* B20: observability overhead — the daemon's request path (per-batch
   stamp-latency histogram, per-connection counters, dedup tallies) with
   the telemetry switch off, on, and on while an admin scraper polls
   Stats + Metrics between passes. The acceptance bar from the
   observability PR is <= 5% between the instrumented/idle rows and the
   uninstrumented row; `synts bench-diff` guards the committed baseline. *)
let obs_overhead_tests =
  let module Ingest = Synts_ingest.Ingest in
  let module Service = Synts_server.Service in
  let module Protocol = Synts_server.Protocol in
  let module Admin = Synts_obs.Admin in
  let module Admin_service = Synts_server.Admin_service in
  let g = Topology.client_server ~servers:4 ~clients:28 in
  let d = Decomposition.best g in
  let events =
    Array.of_list
      (List.map Ingest.event_of_step (Trace.steps (trace_of g 1024)))
  in
  let batches =
    let n = Array.length events and batch = 32 in
    let rec cut i acc =
      if i >= n then List.rev acc
      else
        let len = min batch (n - i) in
        cut (i + len) (Array.sub events i len :: acc)
    in
    cut 0 []
  in
  (* One long-lived service per row (created lazily so its registry and
     connection only exist while this group is measured); the sequence
     number keeps increasing across iterations, as a real client's
     would. *)
  let feed ~telemetry ~scrape =
    let state =
      lazy
        (let s = Service.create d in
         at_exit (fun () -> Service.stop s);
         (s, Service.attach s, ref 0))
    in
    fun () ->
      let s, conn, seq = Lazy.force state in
      Telemetry.set_enabled telemetry;
      List.iter
        (fun b ->
          ignore
            (Service.handle s conn (Protocol.Observe { seq = !seq; events = b }));
          incr seq)
        batches;
      if scrape then begin
        ignore (Admin_service.handle s Admin.Stats);
        ignore (Admin_service.handle s (Admin.Metrics Admin.Prom))
      end;
      Telemetry.set_enabled true
  in
  Test.make_grouped ~name:"obs-overhead"
    [
      Test.make ~name:"service-uninstrumented"
        (Staged.stage (feed ~telemetry:false ~scrape:false));
      Test.make ~name:"service-instrumented"
        (Staged.stage (feed ~telemetry:true ~scrape:false));
      Test.make ~name:"service-admin-scrape"
        (Staged.stage (feed ~telemetry:true ~scrape:true));
    ]

(* B22: churn overhead — the epoch-tagged churn harness on a static
   membership vs. the same run with three membership deltas (each one a
   reshard: incremental repair, remap append, per-process view
   catch-up, stale-frame translation on receipt), plus the raw
   membership maintenance cost alone (build + 4 deltas on a 32-ring,
   exercising the incremental-repair path without the protocol).
   Exactness checking is off in the harness rows so the delta is pure
   protocol + epoch machinery. *)
let churn_tests =
  let g = Topology.ring 8 in
  let plan =
    match
      Synts_fault.Plan.of_string "join:8:8-0,8-4@20; leave:3@45; flap:5@70+10"
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let harness ?faults () =
    match
      Synts_fault.Churn.run ~seed:7 ?faults ~check:false ~graph:g
        ~messages:200 ()
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let module Membership = Synts_graph.Membership in
  let deltas =
    [
      Membership.Join { proc = 32; edges = [ (32, 0); (32, 16) ] };
      Membership.Leave 5;
      Membership.Add_edge (2, 7);
      Membership.Remove_edge (10, 11);
    ]
  in
  Test.make_grouped ~name:"churn-overhead"
    [
      Test.make ~name:"static-200msg" (Staged.stage (fun () -> harness ()));
      Test.make ~name:"churn-200msg"
        (Staged.stage (fun () ->
             harness ~faults:(Synts_fault.Injector.create ~seed:7 plan) ()));
      Test.make ~name:"membership-4-deltas"
        (Staged.stage (fun () ->
             let m = Membership.of_graph (Topology.ring 32) in
             List.iter
               (fun d ->
                 match Membership.apply m d with
                 | Ok _ -> ()
                 | Error e -> failwith e)
               deltas));
    ]

let all_groups =
  [
    ("decomposition", decomposition_tests);
    ("stamping-2000msg", stamping_tests);
    ("offline-300msg", offline_tests);
    ("precedence-test", precedence_tests);
    ("oracle-400msg", oracle_tests);
    ("protocol-ablation", protocol_tests);
    ("plausible-ablation", plausible_tests);
    ("adaptive-ablation", adaptive_tests);
    ("internal-events", stream_tests);
    ("network-600msg", network_tests);
    ("fault-overhead", fault_tests);
    ("churn-overhead", churn_tests);
    ("scaling-1000msg", scaling_tests);
    ("telemetry-overhead", telemetry_tests);
    ("stamper-drivers-1000msg", stamper_tests);
    ("slab-kernel-2000msg", slab_kernel_tests);
    ("dilworth-pipeline-300msg", dilworth_pipeline_tests);
    ("trace-overhead", trace_overhead_tests);
    ("model-explore", model_explore_tests);
    ("serve-engine-1024ev", serve_engine_tests);
    ("offline-stream", offline_stream_tests);
    ("obs-overhead", obs_overhead_tests);
  ]

(* ---------- measurement + reporting ---------- *)

module Bench_io = Synts_bench_io.Bench_io

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

let estimate_of results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some r -> (
      match Analyze.OLS.estimates r with Some [ e ] -> e | _ -> nan)

let pretty_ns estimate =
  if Float.is_nan estimate then "     n/a   "
  else if estimate > 1_000_000.0 then
    Printf.sprintf "%8.3f ms" (estimate /. 1_000_000.0)
  else if estimate > 1_000.0 then
    Printf.sprintf "%8.3f us" (estimate /. 1_000.0)
  else Printf.sprintf "%8.1f ns" estimate

let pretty_words estimate =
  if Float.is_nan estimate then "n/a"
  else Printf.sprintf "%10.1f w" estimate

let strip_group_prefix gname name =
  let prefix = gname ^ "/" in
  let k = String.length prefix in
  if String.length name >= k && String.sub name 0 k = prefix then
    String.sub name k (String.length name - k)
  else name

(* Measure one bechamel group against the monotonic clock and the
   minor-allocation counter; returns (test, metrics) rows in name order. *)
let measure_group cfg (gname, group) =
  let raw =
    Benchmark.all cfg
      [ Instance.monotonic_clock; Instance.minor_allocated ]
      group
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) times [] |> List.sort compare
  in
  List.map
    (fun name ->
      let ns = estimate_of times name in
      let words = estimate_of allocs name in
      Format.printf "  %-55s %s/run %s/run@." name (pretty_ns ns)
        (pretty_words words);
      let sane x = if Float.is_finite x then x else 0.0 in
      ( strip_group_prefix gname name,
        { Bench_io.ns_per_run = sane ns; minor_words_per_run = sane words } ))
    names

let run_benchmarks ~quick () =
  Format.printf "==================================================@.";
  Format.printf
    " Part 2: timing benchmarks (bechamel%s, monotonic clock + minor words)@."
    (if quick then ", quick smoke tier" else "");
  Format.printf "==================================================@.@.";
  let cfg =
    if quick then Benchmark.cfg ~limit:150 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.4) ()
  in
  List.map
    (fun (gname, group) ->
      let rows = measure_group cfg (gname, group) in
      Format.printf "@.";
      (gname, rows))
    all_groups

(* ---------- entry point ---------- *)

let usage () =
  prerr_endline
    "usage: bench/main.exe [--quick] [--json FILE] [--no-tables]\n\n\
    \  --quick      smoke tier: tiny measurement quota, skips the \n\
    \               experiment tables (used by the @bench-smoke alias)\n\
    \  --json FILE  write per-test ns/run and minor-words/run estimates\n\
    \               to FILE (synts-bench/1 schema; see synts bench-diff)\n\
    \  --no-tables  skip Part 1 (the experiment tables)";
  exit 2

type config = { quick : bool; json_path : string option; tables : bool }

let parse_args () =
  let rec go cfg = function
    | [] -> cfg
    | "--quick" :: rest -> go { cfg with quick = true; tables = false } rest
    | "--json" :: path :: rest -> go { cfg with json_path = Some path } rest
    | "--no-tables" :: rest -> go { cfg with tables = false } rest
    | _ -> usage ()
  in
  go
    { quick = false; json_path = None; tables = true }
    (List.tl (Array.to_list Sys.argv))

let () =
  let cfg = parse_args () in
  if cfg.tables then print_tables ();
  let groups = run_benchmarks ~quick:cfg.quick () in
  (match cfg.json_path with
  | None -> ()
  | Some path ->
      Bench_io.save path
        {
          Bench_io.mode = (if cfg.quick then "quick" else "full");
          seed;
          groups;
        };
      Format.printf "wrote %s@." path);
  Telemetry.set_enabled true;
  Format.printf "done.@."
