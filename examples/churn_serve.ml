(* Serve under churn: the daemon reshards across membership epochs
   without dropping client connections.

   Two clients connect to an in-process `synts serve` daemon over a
   unix socket. While the witness client keeps streaming messages, the
   driver applies two membership deltas — P4 joins on 4-0/4-2, then P3
   leaves — each of which retires the sharded engine and boots one laid
   out for the new epoch (clocks translated, ticket space continued).
   Both clients must keep working across both boundaries on the same
   connections, and the server's --check replay (epoch-aware: the
   arrival log with its interleaved deltas is re-run through the
   membership-backed oracle) must confirm every stamp bit-for-bit.

   Exits non-zero on any dropped connection, rejected request, or
   verification failure — this is the @churn-smoke CI leg. *)

module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Topology = Synts_graph.Topology
module Ingest = Synts_ingest.Ingest
module Server = Synts_server.Server
module Client = Synts_server.Client

let fail fmt = Format.kasprintf failwith fmt

let send c ~src ~dst =
  match Client.observe c (Ingest.Message { src; dst }) with
  | Ingest.Stamped v -> v
  | Ingest.Deferred _ -> fail "message %d->%d came back deferred" src dst

let () =
  let g = Topology.ring 4 in
  let d = Decomposition.best g in
  let addr = Server.Unix_socket "churn-smoke.sock" in
  let h = Server.spawn ~shards:2 ~check:true addr d in
  let driver = Client.connect addr in
  let witness = Client.connect addr in
  let sent = ref 0 in
  let burst c edges =
    List.iter
      (fun (src, dst) ->
        ignore (send c ~src ~dst);
        incr sent)
      edges
  in

  (* Epoch 0: the plain ring. *)
  burst witness [ (0, 1); (1, 2); (2, 3) ];
  burst driver [ (3, 0); (0, 1) ];

  (* Epoch 1: P4 joins on 4-0 and 4-2; the witness's connection must
     survive the reshard and immediately stamp on a new channel. *)
  (match Client.churn driver "join:4:4-0,4-2" with
  | Ok (1, 5, _) -> ()
  | Ok (e, n, w) -> fail "join answered epoch %d, %d procs, width %d" e n w
  | Error e -> fail "join rejected: %s" e);
  burst witness [ (4, 0); (1, 2); (4, 2) ];
  burst driver [ (0, 1); (2, 3) ];

  (* Epoch 2: P3 leaves, retiring channels 2-3 and 3-0. *)
  (match Client.churn driver "leave:3" with
  | Ok (2, _, _) -> ()
  | Ok (e, _, _) -> fail "leave answered epoch %d" e
  | Error e -> fail "leave rejected: %s" e);
  burst witness [ (4, 0); (0, 1) ];
  burst driver [ (4, 2); (1, 2) ];

  (* A retired channel must be refused without killing the session. *)
  (match Client.observe witness (Ingest.Message { src = 2; dst = 3 }) with
  | exception Failure _ -> ()
  | _ -> fail "retired channel 2-3 was stamped");
  burst witness [ (0, 1) ];

  if Client.epoch witness <> 0 then fail "witness saw a churn reply";
  if Client.epoch driver <> 2 then fail "driver epoch stale";

  (* Both connections alive end-to-end; now the epoch-aware replay. *)
  (match Client.server_stats driver with
  | Ok s when s.Client.clients = 2 -> ()
  | Ok s -> fail "%d clients attached (dropped connection?)" s.Client.clients
  | Error e -> fail "stats: %s" e);
  (match Client.verify_server driver with
  | Ok (true, checked) when checked = !sent ->
      Format.printf
        "churn-smoke: %d messages over 3 epochs, 2 connections kept, \
         replay exact@."
        checked
  | Ok (true, checked) -> fail "replay checked %d of %d" checked !sent
  | Ok (false, _) -> fail "epoch-aware replay found a mismatch"
  | Error e -> fail "verify: %s" e);
  Client.close witness;
  Client.shutdown driver;
  Server.join h
