module Tm = Synts_telemetry.Telemetry
module Rng = Synts_util.Rng
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Online = Synts_core.Online
module Workload = Synts_workload.Workload

(* ---------- counters ---------- *)

let test_counter () =
  let r = Tm.create_registry () in
  let c = Tm.Counter.v ~registry:r "t.counter" in
  Alcotest.(check int) "starts at 0" 0 (Tm.Counter.value c);
  Tm.Counter.incr c;
  Tm.Counter.add c 4;
  Alcotest.(check int) "incr + add" 5 (Tm.Counter.value c);
  (* Registration is idempotent by name: a second handle is the same
     underlying metric. *)
  let c' = Tm.Counter.v ~registry:r "t.counter" in
  Tm.Counter.incr c';
  Alcotest.(check int) "same metric via second handle" 6 (Tm.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Telemetry.Counter.add: negative increment") (fun () ->
      Tm.Counter.add c (-1));
  (match Tm.Gauge.v ~registry:r "t.counter" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  Tm.reset ~registry:r ();
  Alcotest.(check int) "reset zeroes" 0 (Tm.Counter.value c);
  Alcotest.(check int) "registration survives reset" 1
    (List.length (Tm.metric_names ~registry:r ()))

let test_gauge () =
  let r = Tm.create_registry () in
  let g = Tm.Gauge.v ~registry:r "t.gauge" in
  Tm.Gauge.set g 7;
  Tm.Gauge.set_max g 3;
  Alcotest.(check int) "set_max keeps high-watermark" 7 (Tm.Gauge.value g);
  Tm.Gauge.set_max g 11;
  Alcotest.(check int) "set_max raises watermark" 11 (Tm.Gauge.value g);
  Tm.Gauge.set g 2;
  Alcotest.(check int) "set overwrites" 2 (Tm.Gauge.value g)

(* ---------- histograms ---------- *)

let test_histogram () =
  let r = Tm.create_registry () in
  let h = Tm.Histogram.v ~registry:r ~buckets:[| 1.; 5.; 10. |] "t.hist" in
  List.iter (Tm.Histogram.observe h) [ 0.5; 1.0; 1.1; 5.0; 9.9; 10.0; 10.1 ];
  Alcotest.(check int) "count" 7 (Tm.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 37.6 (Tm.Histogram.sum h);
  match Tm.snapshot ~registry:r () with
  | [ ("t.hist", Tm.Histogram_v { buckets; inf; sum = _; count; min; max }) ]
    ->
      Alcotest.(check (float 1e-9)) "min tracked" 0.5 min;
      Alcotest.(check (float 1e-9)) "max tracked" 10.1 max;
      (* Upper bounds are inclusive: 1.0 lands in le=1, 10.0 in le=10. *)
      Alcotest.(check (list (pair (float 0.) int)))
        "per-bucket counts"
        [ (1., 2); (5., 2); (10., 2) ]
        (Array.to_list buckets);
      Alcotest.(check int) "overflow bucket" 1 inf;
      Alcotest.(check int) "snapshot count" 7 count
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_quantile () =
  let r = Tm.create_registry () in
  let h = Tm.Histogram.v ~registry:r ~buckets:[| 10.; 20.; 30. |] "t.q" in
  for v = 1 to 30 do
    Tm.Histogram.observe h (float_of_int v)
  done;
  (* Uniform over (0, 30]: 10 observations per bucket, so the q-quantile
     interpolates to 30q. *)
  Alcotest.(check (float 1e-9)) "p0 is the lower bound" 0. (Tm.Histogram.quantile h 0.);
  Alcotest.(check (float 1e-9)) "p50" 15. (Tm.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p90" 27. (Tm.Histogram.quantile h 0.9);
  Alcotest.(check (float 1e-9)) "p100 is the upper bound" 30.
    (Tm.Histogram.quantile h 1.0);
  (* Skew: the mass sits in the first bucket, the tail in the last. *)
  let s = Tm.Histogram.v ~registry:r ~buckets:[| 1.; 10.; 100. |] "t.skew" in
  List.iter (Tm.Histogram.observe s) [ 1.; 1.; 1.; 1.; 100. ];
  Alcotest.(check (float 1e-9)) "p50 in the dense bucket" 0.625
    (Tm.Histogram.quantile s 0.5);
  Alcotest.(check (float 1e-9)) "p90 interpolates the tail bucket" 55.
    (Tm.Histogram.quantile s 0.9)

let test_quantile_edges () =
  let r = Tm.create_registry () in
  let h = Tm.Histogram.v ~registry:r ~buckets:[| 10. |] "t.edge" in
  Alcotest.(check (float 1e-9)) "empty histogram" 0. (Tm.Histogram.quantile h 0.5);
  (* An observation above every bound lands in +∞ and clamps to the last
     finite bound. *)
  Tm.Histogram.observe h 100.;
  Alcotest.(check (float 1e-9)) "overflow clamps to last bound" 10.
    (Tm.Histogram.quantile h 0.99);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Telemetry.Histogram.quantile: q outside [0, 1]")
    (fun () -> ignore (Tm.Histogram.quantile h 1.5));
  match Tm.snapshot ~registry:r () with
  | [ ("t.edge", v) ] ->
      Alcotest.(check (option (float 1e-9)))
        "quantile_of_value on a histogram" (Some 10.)
        (Tm.quantile_of_value v 0.9);
      Alcotest.(check (option (float 1e-9)))
        "quantile_of_value on a counter" None
        (Tm.quantile_of_value (Tm.Counter_v 3) 0.9)
  | _ -> Alcotest.fail "unexpected snapshot shape"

(* ---------- spans ---------- *)

let test_span () =
  let r = Tm.create_registry () in
  let s = Tm.Span.v ~registry:r ~buckets:[| 5.; 50. |] "t.span" in
  let a = Tm.Span.start s ~tick:10. in
  Tm.Span.stop a ~tick:13.;
  Tm.Span.stop a ~tick:99.;
  (* second stop ignored *)
  let b = Tm.Span.start s ~tick:100. in
  Tm.Span.stop b ~tick:140.;
  match Tm.snapshot ~registry:r () with
  | [ ("t.span", Tm.Histogram_v { buckets; inf; sum; count; _ }) ] ->
      Alcotest.(check int) "two observations" 2 count;
      Alcotest.(check (float 1e-9)) "durations summed" 43. sum;
      Alcotest.(check (list (pair (float 0.) int)))
        "bucketed durations"
        [ (5., 1); (50., 1) ]
        (Array.to_list buckets);
      Alcotest.(check int) "nothing above" 0 inf
  | _ -> Alcotest.fail "unexpected snapshot shape"

(* ---------- the global switch ---------- *)

let test_disabled () =
  let r = Tm.create_registry () in
  let c = Tm.Counter.v ~registry:r "t.switch" in
  Tm.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Tm.set_enabled true)
    (fun () ->
      Tm.Counter.incr c;
      Tm.Counter.add c 10;
      Alcotest.(check int) "recording off" 0 (Tm.Counter.value c));
  Tm.Counter.incr c;
  Alcotest.(check int) "recording back on" 1 (Tm.Counter.value c)

(* ---------- exports ---------- *)

let test_prometheus_export () =
  let r = Tm.create_registry () in
  let c = Tm.Counter.v ~registry:r ~help:"What it counts" "ex.requests" in
  let h = Tm.Histogram.v ~registry:r ~buckets:[| 1.; 2. |] "ex.latency" in
  Tm.Counter.add c 3;
  Tm.Histogram.observe h 1.5;
  Tm.Histogram.observe h 9.0;
  let text = Tm.to_prometheus ~registry:r (Tm.snapshot ~registry:r ()) in
  let has needle =
    let n = String.length needle and t = String.length text in
    let rec at i = i + n <= t && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (has needle))
    [
      "# HELP ex_requests What it counts";
      "# TYPE ex_requests counter";
      "ex_requests 3";
      "# TYPE ex_latency histogram";
      "ex_latency_bucket{le=\"1\"} 0";
      "ex_latency_bucket{le=\"2\"} 1";
      (* cumulative *)
      "ex_latency_bucket{le=\"+Inf\"} 2";
      "ex_latency_sum 10.5";
      "ex_latency_count 2";
      "ex_latency_min 1.5";
      "ex_latency_max 9";
    ]

let test_fault_counters_exported () =
  (* A faulty run populates the fault-injection counters, and they show
     up under their Prometheus names in both export formats. *)
  Tm.set_enabled true;
  Tm.reset ();
  let g = Topology.build ~rng:(Rng.create 3) (Topology.Star 6) in
  let d = Decomposition.best g in
  let trace =
    Workload.random (Rng.create 4) ~topology:g ~messages:60 ()
  in
  let plan =
    [
      Synts_fault.Plan.Crash_recover { proc = 2; at = 20.0; after = 30.0 };
      Synts_fault.Plan.Duplicate { prob = 0.3 };
      Synts_fault.Plan.Corrupt { prob = 0.3 };
    ]
  in
  let o =
    Synts_net.Rendezvous.run ~seed:6 ~loss:0.05
      ~faults:(Synts_fault.Injector.create ~seed:6 plan)
      ~decomposition:d
      (Synts_net.Script.of_trace trace)
  in
  Alcotest.(check (list int)) "recovery happened" [ 2 ]
    o.Synts_net.Rendezvous.recovered;
  let snap = Tm.snapshot () in
  let value name =
    match List.assoc_opt name snap with
    | Some (Tm.Counter_v n) -> n
    | _ -> -1
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " positive") true (value name > 0))
    [
      "net.packets_duplicated"; "net.packets_corrupted"; "proc.crashes";
      "proc.recoveries"; "net.rendezvous.rejected_packets";
    ];
  let prom = Tm.to_prometheus snap and json = Tm.to_json snap in
  let contains hay needle =
    let n = String.length needle and t = String.length hay in
    let rec at i = i + n <= t && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prometheus has " ^ needle) true
        (contains prom needle))
    [
      "# TYPE net_packets_duplicated counter"; "net_packets_corrupted";
      "proc_crashes 1"; "proc_recoveries 1";
    ];
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true (contains json needle))
    [ "net.packets_duplicated"; "proc.crashes"; "proc.recoveries" ]

(* ---------- determinism ---------- *)

(* The acceptance property: two identical seeded runs of the instrumented
   stack produce byte-identical snapshots. Exercises the default registry
   the way the CLI does. *)
let seeded_run seed =
  Tm.set_enabled true;
  Tm.reset ();
  let g = Topology.build ~rng:(Rng.create seed) (Topology.Client_server (3, 9)) in
  let d = Decomposition.best g in
  let trace =
    Workload.random (Rng.create (seed + 1)) ~topology:g ~messages:150
      ~internal_prob:0.2 ()
  in
  ignore (Online.timestamp_trace d trace);
  let scripts = Synts_net.Script.of_trace trace in
  ignore (Synts_net.Rendezvous.run ~seed ~loss:0.1 ~decomposition:d scripts);
  let snap = Tm.snapshot () in
  (snap, Tm.to_prometheus snap, Tm.to_json snap)

let test_snapshot_determinism () =
  let snap1, prom1, json1 = seeded_run 42 in
  let snap2, prom2, json2 = seeded_run 42 in
  Alcotest.(check bool) "snapshots equal" true (snap1 = snap2);
  Alcotest.(check string) "prometheus text identical" prom1 prom2;
  Alcotest.(check string) "json identical" json1 json2;
  (* And the run actually recorded something at every layer it touched. *)
  let value name =
    match List.assoc_opt name snap1 with
    | Some (Tm.Counter_v n) -> n
    | _ -> -1
  in
  Alcotest.(check bool) "stamps recorded" true (value "core.online.stamps" > 0);
  Alcotest.(check bool) "packets recorded" true (value "net.packets_sent" > 0);
  Alcotest.(check bool) "retransmissions recorded" true
    (value "net.rendezvous.retransmissions" > 0)

let () =
  Alcotest.run "telemetry"
    [
      ( "semantics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
          Alcotest.test_case "span" `Quick test_span;
          Alcotest.test_case "global switch" `Quick test_disabled;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
          Alcotest.test_case "fault counters" `Quick
            test_fault_counters_exported;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical seeded runs, identical snapshots"
            `Quick test_snapshot_determinism;
        ] );
    ]
