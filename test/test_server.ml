module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Wire = Synts_clock.Wire
module Online = Synts_core.Online
module Ingest = Synts_ingest.Ingest
module Shard = Synts_server.Shard
module Engine = Synts_server.Engine
module Protocol = Synts_server.Protocol
module Service = Synts_server.Service
module Server = Synts_server.Server
module Client = Synts_server.Client
module Session = Synts_session.Session
module Injector = Synts_fault.Injector
module Plan = Synts_fault.Plan
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 100) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let events_of_trace trace =
  Array.of_list (List.map Ingest.event_of_step (Trace.steps trace))

(* ---------- shard plans ---------- *)

let test_shard_partition () =
  let plan = Shard.plan ~dimension:7 ~shards:3 in
  Alcotest.(check int) "effective shards" 3 (Shard.shards plan);
  let seen = Array.make 7 0 in
  for s = 0 to Shard.shards plan - 1 do
    Array.iteri
      (fun j g ->
        seen.(g) <- seen.(g) + 1;
        Alcotest.(check int) "owner" s (Shard.owner plan g);
        Alcotest.(check int) "slot" j (Shard.slot plan g))
      (Shard.components plan s)
  done;
  Alcotest.(check (array int)) "partition" (Array.make 7 1) seen

let test_shard_clamp () =
  (* More shards than components would idle workers: clamp. *)
  let plan = Shard.plan ~dimension:2 ~shards:8 in
  Alcotest.(check int) "clamped" 2 (Shard.shards plan);
  Alcotest.(check int) "single component, single shard" 1
    (Shard.shards (Shard.plan ~dimension:1 ~shards:16))

(* The paper's min(β(G), N−2) dimension floor drives the clamp at the
   engine level: tiny topologies run one shard no matter what was
   requested. *)
let test_engine_clamp_edge_cases () =
  let check_one name g requested expected =
    let engine = Engine.create ~shards:requested (Decomposition.best g) in
    Fun.protect
      ~finally:(fun () -> Engine.stop engine)
      (fun () -> Alcotest.(check int) name expected (Engine.shards engine))
  in
  (* N = 2: one channel, one group. *)
  check_one "N=2 clamps to 1" (Topology.path 2) 4 1;
  (* A star is a single group however many leaves. *)
  check_one "star clamps to 1" (Topology.star 6) 4 1;
  (* K5: dimension min(β, N−2) = 3 allows up to 3 shards. *)
  let k5 = Decomposition.best (Topology.complete 5) in
  let engine = Engine.create ~shards:8 (Decomposition.best (Topology.complete 5)) in
  Fun.protect
    ~finally:(fun () -> Engine.stop engine)
    (fun () ->
      Alcotest.(check int) "K5 clamp = dimension" (Decomposition.size k5)
        (Engine.shards engine))

(* ---------- sharded engine ≡ single-domain oracle ---------- *)

let shards_gen = QCheck2.Gen.int_range 1 4

let conformance_gen = QCheck2.Gen.pair Gen.computation shards_gen

let conformance_print (c, shards) =
  Printf.sprintf "%s shards=%d" (Gen.computation_print c) shards

(* Feed a whole trace through a session (the deterministic reference
   sink), collecting message stamps and resolved internal stamps. *)
let session_reference d trace =
  let session = Session.of_decomposition d in
  let outcomes = Ingest.feed_trace (Session.ingest session) trace in
  let stamps = Ingest.message_stamps outcomes in
  let resolved = Session.finish_events session in
  (stamps, List.sort compare resolved)

let engine_run ~shards ~batch d trace =
  let engine = Engine.create ~shards d in
  Fun.protect
    ~finally:(fun () -> Engine.stop engine)
    (fun () ->
      let events = events_of_trace trace in
      let total = Array.length events in
      let outcomes = Array.make total (Ingest.Deferred (-1)) in
      let resolved = ref [] in
      let off = ref 0 in
      while !off < total do
        let len = min batch (total - !off) in
        let out = Engine.observe_batch engine (Array.sub events !off len) in
        Array.blit out 0 outcomes !off len;
        resolved := Engine.drain engine @ !resolved;
        off := !off + len
      done;
      resolved := Engine.finish engine @ !resolved;
      (Ingest.message_stamps outcomes, List.sort compare !resolved))

let test_engine_matches_oracle =
  qtest ~count:60 "sharded engine = single-domain oracle (stamps + internal)"
    conformance_gen conformance_print (fun (c, shards) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let oracle = Online.timestamp_trace d trace in
      let ref_stamps, ref_resolved = session_reference d trace in
      let stamps, resolved = engine_run ~shards ~batch:7 d trace in
      Array.for_all2 Vector.equal stamps oracle
      && Array.for_all2 Vector.equal stamps ref_stamps
      && resolved = ref_resolved)

let batch_split_gen =
  QCheck2.Gen.(triple Gen.computation shards_gen (int_range 1 13))

let batch_split_print (c, shards, batch) =
  Printf.sprintf "%s shards=%d batch=%d" (Gen.computation_print c) shards batch

let test_engine_batch_split_invariant =
  qtest ~count:60 "batch boundaries do not change stamps" batch_split_gen
    batch_split_print (fun (c, shards, batch) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let whole, _ = engine_run ~shards ~batch:max_int d trace in
      let split, _ = engine_run ~shards ~batch d trace in
      Array.for_all2 Vector.equal whole split)

(* ---------- protocol codec ---------- *)

let vector_gen = QCheck2.Gen.(array_size (int_bound 6) (int_bound 1000))

let event_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun src dst -> Ingest.Message { src; dst }) (int_bound 40)
          (int_bound 40);
        map (fun proc -> Ingest.Internal { proc }) (int_bound 40);
      ])

let request_gen =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Hello;
        map2
          (fun seq events -> Protocol.Observe { seq; events })
          (int_bound 10000)
          (array_size (int_bound 20) event_gen);
        return Protocol.Drain;
        return Protocol.Finish;
        return Protocol.Verify;
        return Protocol.Stats;
        map (fun s -> Protocol.Churn s) (string_size (int_bound 30));
        return Protocol.Shutdown;
      ])

let stamp_gen =
  QCheck2.Gen.(
    let* proc = int_bound 40 in
    let* prev = vector_gen in
    let* succ = option vector_gen in
    let* counter = int_bound 100 in
    return { Synts_core.Internal_events.proc; prev; succ; counter })

let response_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun (processes, dimension, shards) epoch ->
            Protocol.Welcome { processes; dimension; shards; epoch })
          (triple (int_bound 100) (int_bound 100) (int_bound 16))
          (int_bound 50);
        map
          (fun outcomes -> Protocol.Outcomes outcomes)
          (array_size (int_bound 20)
             (oneof
                [
                  map (fun v -> Ingest.Stamped v) vector_gen;
                  map (fun t -> Ingest.Deferred t) (int_bound 10000);
                ]));
        map
          (fun rs -> Protocol.Resolved rs)
          (list_size (int_bound 10) (pair (int_bound 10000) stamp_gen));
        map2
          (fun ok checked -> Protocol.Verified { ok; checked })
          bool (int_bound 10000);
        map2
          (fun (clients, batches, messages, internal) (dropped, pending) ->
            Protocol.Stats_r
              { clients; batches; messages; internal; dropped; pending })
          (quad (int_bound 100) (int_bound 1000) (int_bound 1000)
             (int_bound 1000))
          (pair (int_bound 1000) (int_bound 1000));
        map
          (fun (epoch, processes, dimension) ->
            Protocol.Epoch_r { epoch; processes; dimension })
          (triple (int_bound 50) (int_bound 100) (int_bound 100));
        map (fun e -> Protocol.Error_r e) (string_size (int_bound 40));
        return Protocol.Bye;
      ])

let test_request_roundtrip =
  qtest ~count:200 "request codec roundtrips" request_gen
    (Format.asprintf "%a" Protocol.pp_request) (fun req ->
      Protocol.decode_request (Protocol.encode_request req) = Ok req)

let test_response_roundtrip =
  qtest ~count:200 "response codec roundtrips" response_gen
    (Format.asprintf "%a" Protocol.pp_response) (fun resp ->
      Protocol.decode_response (Protocol.encode_response resp) = Ok resp)

(* ---------- wire versioning ---------- *)

let test_wire_versioning () =
  let body = "stamping bytes" in
  let v1 = Wire.frame body in
  Alcotest.(check char) "magic first" Wire.magic v1.[0];
  Alcotest.(check int) "announces v1" Wire.current_version
    (Wire.frame_version v1);
  Alcotest.(check (result string string)) "v1 unframes" (Ok body)
    (Wire.unframe v1);
  let v0 = Wire.frame ~version:0 body in
  Alcotest.(check int) "legacy announces 0" 0 (Wire.frame_version v0);
  Alcotest.(check (result string string)) "v0 still decodes" (Ok body)
    (Wire.unframe v0);
  (* A frame from the future is turned away with a clear error, not a
     checksum complaint. *)
  let future = Bytes.of_string v1 in
  Bytes.set future 1 '\x07';
  (match Wire.unframe (Bytes.to_string future) with
  | Error e ->
      Alcotest.(check bool) "names the version" true
        (contains ~sub:"unsupported wire version 7" e)
  | Ok _ -> Alcotest.fail "future version accepted");
  match Wire.frame ~version:3 body with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown version framed"

let test_wire_versioned_vectors () =
  let v = [| 3; 0; 7; 12 |] in
  Alcotest.(check bool) "v1 vector roundtrip" true
    (Wire.decode_framed (Wire.encode_framed v) = Ok v);
  Alcotest.(check bool) "v0 vector roundtrip" true
    (Wire.decode_framed (Wire.encode_framed ~version:0 v) = Ok v)

(* ---------- service: dup / corrupt exactness ---------- *)

let faulty_service_gen =
  QCheck2.Gen.(triple Gen.computation (int_range 1 3) Gen.rng_seed)

let faulty_service_print (c, shards, seed) =
  Printf.sprintf "%s shards=%d inj_seed=%d" (Gen.computation_print c) shards
    seed

(* Drive the byte-level request path through a fault injector that
   duplicates and corrupts deliveries; the sequence-number dedup plus the
   checksum frame must keep the stamps exactly the oracle's. *)
let test_service_dup_corrupt =
  qtest ~count:50 "dup/corrupt deliveries never skew stamps"
    faulty_service_gen faulty_service_print (fun (c, shards, seed) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let service = Service.create ~shards ~check:true d in
      Fun.protect
        ~finally:(fun () -> Service.stop service)
        (fun () ->
          let conn = Service.attach service in
          let inj =
            Injector.create ~seed
              [
                Plan.Duplicate { prob = 0.3 };
                Plan.Corrupt { prob = 0.3 };
              ]
          in
          let deliver raw =
            let wire =
              if Injector.roll_corrupt inj then Injector.flip_bit inj raw
              else raw
            in
            let reply = Service.handle_raw service conn wire in
            if Injector.roll_duplicate inj then
              Service.handle_raw service conn wire
            else reply
          in
          let decode reply =
            match Wire.unframe reply with
            | Error e -> failwith ("reply frame: " ^ e)
            | Ok body -> (
                match Protocol.decode_response body with
                | Error e -> failwith ("reply decode: " ^ e)
                | Ok r -> r)
          in
          let events = events_of_trace trace in
          let total = Array.length events in
          let seq = ref 0 and off = ref 0 in
          while !off < total do
            let len = min 9 (total - !off) in
            let req =
              Protocol.Observe { seq = !seq; events = Array.sub events !off len }
            in
            let raw = Wire.frame (Protocol.encode_request req) in
            let rec attempt tries =
              if tries > 64 then failwith "no progress against injector";
              match decode (deliver raw) with
              | Protocol.Outcomes out -> out
              | Protocol.Error_r _ -> attempt (tries + 1)
              | other ->
                  Format.kasprintf failwith "unexpected %a"
                    Protocol.pp_response other
            in
            let out = attempt 0 in
            if Array.length out <> len then failwith "outcome count";
            incr seq;
            off := !off + len
          done;
          match Service.handle service conn Protocol.Verify with
          | Protocol.Verified { ok; checked } ->
              ok && checked = Trace.message_count trace
          | other ->
              Format.kasprintf failwith "unexpected verify reply %a"
                Protocol.pp_response other))

let test_service_dup_replies_cached () =
  let d = Decomposition.best (Topology.ring 4) in
  let service = Service.create ~check:true d in
  Fun.protect
    ~finally:(fun () -> Service.stop service)
    (fun () ->
      let conn = Service.attach service in
      let events = [| Ingest.Message { src = 0; dst = 1 } |] in
      let req = Protocol.Observe { seq = 0; events } in
      let first = Service.handle service conn req in
      let second = Service.handle service conn req in
      Alcotest.(check bool) "dup answered from cache" true (first = second);
      match Service.handle service conn Protocol.Stats with
      | Protocol.Stats_r { batches; messages; _ } ->
          Alcotest.(check int) "stamped once" 1 batches;
          Alcotest.(check int) "one message" 1 messages
      | _ -> Alcotest.fail "stats reply")

let test_service_rejects_gap_and_stale () =
  let d = Decomposition.best (Topology.ring 4) in
  let service = Service.create d in
  Fun.protect
    ~finally:(fun () -> Service.stop service)
    (fun () ->
      let conn = Service.attach service in
      let observe seq =
        Service.handle service conn
          (Protocol.Observe
             { seq; events = [| Ingest.Message { src = 0; dst = 1 } |] })
      in
      (match observe 0 with
      | Protocol.Outcomes _ -> ()
      | _ -> Alcotest.fail "first observe");
      (match observe 5 with
      | Protocol.Error_r e ->
          Alcotest.(check bool) "gap named" true (contains ~sub:"gap" e)
      | _ -> Alcotest.fail "gap accepted");
      match
        Service.handle service conn
          (Protocol.Observe
             { seq = -3; events = [| Ingest.Message { src = 0; dst = 1 } |] })
      with
      | Protocol.Error_r _ -> ()
      | _ -> Alcotest.fail "negative seq accepted")

(* ---------- service: churn / engine resharding ---------- *)

(* One scripted epoch crossing: the engine is retired and rebuilt, yet
   the connection's sequence state, the ticket space and the pending
   internal events all survive, and the epoch-aware verify replay agrees
   with every stamp on both sides of the boundary. *)
let test_service_churn_reshard () =
  let d = Decomposition.best (Topology.ring 4) in
  let service = Service.create ~shards:2 ~check:true d in
  Fun.protect
    ~finally:(fun () -> Service.stop service)
    (fun () ->
      let conn = Service.attach service in
      let seq = ref (-1) in
      let observe events =
        incr seq;
        match Service.handle service conn (Protocol.Observe { seq = !seq; events }) with
        | Protocol.Outcomes out -> out
        | other ->
            Format.kasprintf (fun s -> Alcotest.fail s) "observe: %a" Protocol.pp_response
              other
      in
      let msg src dst = Ingest.Message { src; dst } in
      ignore (observe [| msg 0 1; msg 1 2; msg 2 3 |]);
      (* A deferred internal event whose resolution must survive the
         reshard via the carry queue. *)
      let ticket =
        match observe [| Ingest.Internal { proc = 0 } |] with
        | [| Ingest.Deferred k |] -> k
        | _ -> Alcotest.fail "internal not deferred"
      in
      (match Service.handle service conn (Protocol.Churn "join:4:4-0,4-2") with
      | Protocol.Epoch_r { epoch; processes; dimension } ->
          Alcotest.(check int) "epoch advanced" 1 epoch;
          Alcotest.(check int) "universe grew" 5 processes;
          Alcotest.(check bool) "width kept or grew" true (dimension >= 2)
      | other ->
          Format.kasprintf (fun s -> Alcotest.fail s) "churn: %a" Protocol.pp_response other);
      (* The flushed internal event is owed on the next drain. *)
      (match Service.handle service conn Protocol.Drain with
      | Protocol.Resolved resolved ->
          Alcotest.(check bool) "carried ticket resolved" true
            (List.mem_assoc ticket resolved)
      | other ->
          Format.kasprintf (fun s -> Alcotest.fail s) "drain: %a" Protocol.pp_response other);
      (* Same connection keeps observing, now on a new-epoch channel. *)
      ignore (observe [| msg 4 0; msg 0 1; msg 4 2 |]);
      (match Service.handle service conn (Protocol.Churn "leave:3") with
      | Protocol.Epoch_r { epoch; _ } ->
          Alcotest.(check int) "second epoch" 2 epoch
      | other ->
          Format.kasprintf (fun s -> Alcotest.fail s) "churn: %a" Protocol.pp_response other);
      ignore (observe [| msg 0 1; msg 1 2; msg 4 0 |]);
      (* The retired channel is rejected by the new epoch's layout
         without consuming the sequence. *)
      incr seq;
      (match
         Service.handle service conn
           (Protocol.Observe { seq = !seq; events = [| msg 2 3 |] })
       with
      | Protocol.Error_r _ -> decr seq
      | other ->
          Format.kasprintf (fun s -> Alcotest.fail s) "stale channel: %a"
            Protocol.pp_response other);
      (match Service.handle service conn Protocol.Hello with
      | Protocol.Welcome { epoch; processes; _ } ->
          Alcotest.(check int) "welcome epoch" 2 epoch;
          Alcotest.(check int) "welcome n" 5 processes
      | other ->
          Format.kasprintf (fun s -> Alcotest.fail s) "hello: %a" Protocol.pp_response other);
      match Service.handle service conn Protocol.Verify with
      | Protocol.Verified { ok; checked } ->
          Alcotest.(check bool) "epoch-aware verify" true ok;
          Alcotest.(check int) "all messages checked" 9 checked
      | other ->
          Format.kasprintf (fun s -> Alcotest.fail s) "verify: %a" Protocol.pp_response other)

(* Random interleavings of observes and a fixed valid delta script: the
   engine sequence must stay exact against the epoch-aware oracle no
   matter where the epoch boundaries land in the arrival order. *)
let churn_service_gen = QCheck2.Gen.(pair Gen.rng_seed (int_range 10 60))

let test_service_churn_random =
  qtest ~count:50 "random epoch boundaries keep verify exact"
    churn_service_gen
    (fun (seed, msgs) -> Printf.sprintf "seed=%d msgs=%d" seed msgs)
    (fun (seed, msgs) ->
      let g0 = Topology.ring 5 in
      let d = Decomposition.best g0 in
      let service = Service.create ~shards:2 ~check:true d in
      Fun.protect
        ~finally:(fun () -> Service.stop service)
        (fun () ->
          let conn = Service.attach service in
          let rng = Rng.create seed in
          (* Valid in sequence on ring 5; the mirror edge list tracks the
             live topology so observes always hit a current channel. *)
          let script =
            ref
              [
                ("join:5:5-0,5-2", [ (5, 0); (5, 2) ], []);
                ("drop:1-2", [], [ (1, 2) ]);
                ("leave:3", [], [ (2, 3); (3, 4) ]);
                ("add:2-4", [ (2, 4) ], []);
              ]
          in
          let edges = ref [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
          let seq = ref (-1) in
          let sent = ref 0 in
          for _ = 1 to msgs do
            (match !script with
            | (spec, added, removed) :: rest when Rng.chance rng 0.15 -> (
                match Service.handle service conn (Protocol.Churn spec) with
                | Protocol.Epoch_r _ ->
                    script := rest;
                    edges :=
                      added
                      @ List.filter
                          (fun (u, v) ->
                            not
                              (List.exists
                                 (fun (a, b) ->
                                   (a = u && b = v) || (a = v && b = u))
                                 removed))
                          !edges
                | other ->
                    Format.kasprintf failwith "churn %s: %a" spec
                      Protocol.pp_response other)
            | _ -> ());
            let u, v = List.nth !edges (Rng.int rng (List.length !edges)) in
            let src, dst = if Rng.bool rng then (u, v) else (v, u) in
            incr seq;
            incr sent;
            match
              Service.handle service conn
                (Protocol.Observe
                   {
                     seq = !seq;
                     events = [| Ingest.Message { src; dst } |];
                   })
            with
            | Protocol.Outcomes _ -> ()
            | other ->
                Format.kasprintf failwith "observe: %a" Protocol.pp_response
                  other
          done;
          match Service.handle service conn Protocol.Verify with
          | Protocol.Verified { ok; checked } -> ok && checked = !sent
          | other ->
              Format.kasprintf failwith "verify: %a" Protocol.pp_response other))

(* ---------- sockets: daemon round trip ---------- *)

let test_socket_roundtrip () =
  let dir = Filename.temp_dir "synts-serve" "" in
  let path = Filename.concat dir "serve.sock" in
  let g = Topology.client_server ~servers:2 ~clients:3 in
  let d = Decomposition.best g in
  let trace =
    Workload.random (Rng.create 42) ~topology:g ~messages:120
      ~internal_prob:0.15 ()
  in
  let handle = Server.spawn ~shards:2 ~check:true (Server.Unix_socket path) d in
  let clients = Array.init 3 (fun _ -> Client.connect (Server.Unix_socket path)) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter Client.close clients;
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check int) "welcome n" (Decomposition.graph_vertices d)
        (Client.processes clients.(0));
      Alcotest.(check int) "welcome shards" 2 (Client.shards clients.(0));
      let events = events_of_trace trace in
      let total = Array.length events in
      (* Interleave the stream across the three clients batch by batch;
         arrival order at the daemon is the trace order, so the oracle
         replay must agree exactly. *)
      let off = ref 0 and turn = ref 0 in
      let stamped = ref 0 in
      while !off < total do
        let len = min 11 (total - !off) in
        let out =
          Client.observe_batch clients.(!turn mod 3) (Array.sub events !off len)
        in
        Array.iter
          (function Ingest.Stamped _ -> incr stamped | Ingest.Deferred _ -> ())
          out;
        incr turn;
        off := !off + len
      done;
      Alcotest.(check int) "all messages stamped" (Trace.message_count trace)
        !stamped;
      let resolved = Client.finish clients.(0) in
      Alcotest.(check int) "internal events resolved"
        (Trace.internal_count trace)
        (List.length resolved);
      (match Client.verify_server clients.(0) with
      | Ok (ok, checked) ->
          Alcotest.(check bool) "oracle agrees" true ok;
          Alcotest.(check int) "checked all messages"
            (Trace.message_count trace) checked
      | Error e -> Alcotest.fail ("verify: " ^ e));
      (match Client.server_stats clients.(0) with
      | Ok ({ clients = n_clients; messages; _ } : Client.stats) ->
          Alcotest.(check int) "three clients" 3 n_clients;
          Alcotest.(check int) "message count" (Trace.message_count trace)
            messages
      | Error e -> Alcotest.fail ("stats: " ^ e));
      Client.shutdown clients.(2);
      Server.join handle)

let () =
  Alcotest.run "server"
    [
      ( "shard",
        [
          Alcotest.test_case "round-robin partition" `Quick
            test_shard_partition;
          Alcotest.test_case "clamping" `Quick test_shard_clamp;
          Alcotest.test_case "engine clamp edge cases" `Quick
            test_engine_clamp_edge_cases;
        ] );
      ( "engine",
        [ test_engine_matches_oracle; test_engine_batch_split_invariant ] );
      ( "protocol",
        [
          test_request_roundtrip;
          test_response_roundtrip;
          Alcotest.test_case "wire versioning" `Quick test_wire_versioning;
          Alcotest.test_case "versioned vector frames" `Quick
            test_wire_versioned_vectors;
        ] );
      ( "service",
        [
          test_service_dup_corrupt;
          Alcotest.test_case "dup replies cached" `Quick
            test_service_dup_replies_cached;
          Alcotest.test_case "gap and stale rejected" `Quick
            test_service_rejects_gap_and_stale;
        ] );
      ( "churn",
        [
          Alcotest.test_case "reshard across epochs" `Quick
            test_service_churn_reshard;
          test_service_churn_random;
        ] );
      ("socket", [ Alcotest.test_case "daemon round trip" `Quick
                     test_socket_roundtrip ]);
    ]
