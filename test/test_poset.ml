module Poset = Synts_poset.Poset
module Matching = Synts_poset.Matching
module Dilworth = Synts_poset.Dilworth
module Realizer = Synts_poset.Realizer
module Dimension = Synts_poset.Dimension
module Gen = Synts_test_support.Gen

let qtest ?(count = 200) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let poset_print p = Format.asprintf "%a" Poset.pp p

(* ---------- Poset construction and queries ---------- *)

let test_poset_basic () =
  (* 0 < 1 < 3, 0 < 2 < 3, 1 || 2 (the diamond). *)
  let p = Poset.of_relation 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check bool) "0<3 by transitivity" true (Poset.lt p 0 3);
  Alcotest.(check bool) "1||2" true (Poset.concurrent p 1 2);
  Alcotest.(check bool) "not 3<0" false (Poset.lt p 3 0);
  Alcotest.(check bool) "leq reflexive" true (Poset.leq p 2 2);
  Alcotest.(check (list int)) "minimal" [ 0 ] (Poset.minimal_elements p);
  Alcotest.(check (list int)) "maximal" [ 3 ] (Poset.maximal_elements p);
  Alcotest.(check (list int)) "down set of 3" [ 0; 1; 2 ] (Poset.down_set p 3);
  Alcotest.(check (list int)) "up set of 0" [ 1; 2; 3 ] (Poset.up_set p 0);
  Alcotest.(check int) "relation count" 5 (Poset.relation_count p)

let test_poset_cycle () =
  (match Poset.of_relation 3 [ (0, 1); (1, 2); (2, 0) ] with
  | exception Poset.Cyclic _ -> ()
  | _ -> Alcotest.fail "cycle accepted");
  match Poset.of_relation 2 [ (0, 0) ] with
  | exception Poset.Cyclic 0 -> ()
  | _ -> Alcotest.fail "self-loop accepted"

let test_poset_covers () =
  let p = Poset.of_relation 4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (list (pair int int)))
    "chain covers"
    [ (0, 1); (1, 2); (2, 3) ]
    (Poset.covers p)

let test_covers_reconstruct =
  qtest "covers regenerate the poset" Gen.poset poset_print (fun p ->
      Poset.equal p (Poset.of_relation (Poset.size p) (Poset.covers p)))

let test_linear_extension_valid =
  qtest "linear_extension is a linear extension" Gen.poset poset_print
    (fun p -> Poset.is_linear_extension p (Poset.linear_extension p))

let test_is_linear_extension_rejects () =
  let p = Poset.of_relation 3 [ (0, 1) ] in
  Alcotest.(check bool) "reversed order rejected" false
    (Poset.is_linear_extension p [| 1; 0; 2 |]);
  Alcotest.(check bool) "not a permutation" false
    (Poset.is_linear_extension p [| 0; 0; 1 |]);
  Alcotest.(check bool) "wrong length" false
    (Poset.is_linear_extension p [| 0; 1 |])

let test_avoiding_property =
  (* The key lemma behind the realizer: elements incomparable to a chain
     element are placed before it. *)
  qtest ~count:150 "avoid-chain extension places incomparables below"
    Gen.poset poset_print (fun p ->
      let chains = Dilworth.min_chain_partition p in
      List.for_all
        (fun chain ->
          let avoid = Array.make (Poset.size p) false in
          List.iter (fun v -> avoid.(v) <- true) chain;
          let ext = Poset.linear_extension_avoiding p ~avoid in
          let pos = Array.make (Poset.size p) 0 in
          Array.iteri (fun i e -> pos.(e) <- i) ext;
          Poset.is_linear_extension p ext
          && List.for_all
               (fun c ->
                 List.for_all
                   (fun x ->
                     (not (Poset.concurrent p x c)) || pos.(x) < pos.(c))
                   (List.init (Poset.size p) Fun.id))
               chain)
        chains)

let test_intersection () =
  let l1 = Poset.of_total_order [| 0; 1; 2 |] in
  let l2 = Poset.of_total_order [| 1; 0; 2 |] in
  let p = Poset.intersection [ l1; l2 ] in
  Alcotest.(check bool) "0||1" true (Poset.concurrent p 0 1);
  Alcotest.(check bool) "0<2" true (Poset.lt p 0 2);
  Alcotest.(check bool) "1<2" true (Poset.lt p 1 2)

let test_random_poset_valid =
  qtest ~count:60 "random posets are transitive and irreflexive" Gen.tiny_poset
    poset_print (fun p ->
      let n = Poset.size p in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Poset.lt p i i then ok := false;
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if Poset.lt p i j && Poset.lt p j k && not (Poset.lt p i k) then
              ok := false
          done
        done
      done;
      !ok)

(* ---------- Matching ---------- *)

let test_matching_known () =
  let edges =
    List.concat_map (fun u -> List.map (fun v -> (u, v)) [ 0; 1; 2 ]) [ 0; 1; 2 ]
  in
  let r = Matching.maximum ~left:3 ~right:3 edges in
  Alcotest.(check int) "K33 perfect" 3 r.Matching.size;
  let r = Matching.maximum ~left:2 ~right:2 [ (0, 0); (1, 0); (1, 1) ] in
  Alcotest.(check int) "path matching" 2 r.Matching.size;
  let r = Matching.maximum ~left:3 ~right:1 [ (0, 0); (1, 0); (2, 0) ] in
  Alcotest.(check int) "star matching" 1 r.Matching.size

let matching_gen =
  QCheck2.Gen.(
    let* l = int_range 1 12 in
    let* r = int_range 1 12 in
    let* edges =
      list_size (int_bound 40) (pair (int_bound (l - 1)) (int_bound (r - 1)))
    in
    return (l, r, edges))

let matching_print (l, r, edges) =
  Printf.sprintf "left=%d right=%d edges=%s" l r
    (String.concat ";"
       (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges))

let test_matching_is_matching =
  qtest "matching output is consistent" matching_gen matching_print
    (fun (l, r, edges) ->
      let m = Matching.maximum ~left:l ~right:r edges in
      let count = ref 0 in
      let ok = ref true in
      Array.iteri
        (fun u v ->
          if v >= 0 then begin
            incr count;
            if m.Matching.pair_right.(v) <> u then ok := false;
            if not (List.mem (u, v) edges) then ok := false
          end)
        m.Matching.pair_left;
      !ok && !count = m.Matching.size)

(* Brute-force maximum matching for cross-validation. *)
let brute_matching edges =
  let edges = List.sort_uniq compare edges in
  let rec go used_l used_r = function
    | [] -> 0
    | (u, v) :: rest ->
        let skip = go used_l used_r rest in
        if List.mem u used_l || List.mem v used_r then skip
        else max skip (1 + go (u :: used_l) (v :: used_r) rest)
  in
  go [] [] edges

let test_matching_maximum =
  qtest ~count:100 "Hopcroft-Karp matches brute force"
    QCheck2.Gen.(
      let* l = int_range 1 6 in
      let* r = int_range 1 6 in
      let* edges =
        list_size (int_bound 12) (pair (int_bound (l - 1)) (int_bound (r - 1)))
      in
      return (l, r, edges))
    matching_print
    (fun (l, r, edges) ->
      (Matching.maximum ~left:l ~right:r edges).Matching.size
      = brute_matching edges)

let test_koenig_cover =
  qtest ~count:150 "König cover covers every edge with matching-many vertices"
    matching_gen matching_print (fun (l, r, edges) ->
      let m = Matching.maximum ~left:l ~right:r edges in
      let cl, cr = Matching.min_vertex_cover ~left:l ~right:r edges m in
      let covered = List.for_all (fun (u, v) -> cl.(u) || cr.(v)) edges in
      let size =
        Array.fold_left (fun a b -> a + Bool.to_int b) 0 cl
        + Array.fold_left (fun a b -> a + Bool.to_int b) 0 cr
      in
      covered && size = m.Matching.size)

(* ---------- Dilworth ---------- *)

let test_width_known () =
  let chain = Poset.of_total_order [| 0; 1; 2; 3 |] in
  Alcotest.(check int) "chain width" 1 (Dilworth.width chain);
  let antichain = Poset.of_relation 5 [] in
  Alcotest.(check int) "antichain width" 5 (Dilworth.width antichain);
  let diamond = Poset.of_relation 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check int) "diamond width" 2 (Dilworth.width diamond);
  Alcotest.(check int) "empty width" 0 (Dilworth.width (Poset.of_relation 0 []))

let test_chain_partition_valid =
  qtest "min chain partition is a chain partition of width size" Gen.poset
    poset_print (fun p ->
      let chains = Dilworth.min_chain_partition p in
      Dilworth.is_chain_partition p chains
      && (Poset.size p = 0 || List.length chains = Dilworth.width p))

let test_max_antichain_valid =
  qtest "max antichain is an antichain of width size" Gen.poset poset_print
    (fun p ->
      let a = Dilworth.max_antichain p in
      Dilworth.is_antichain p a && List.length a = Dilworth.width p)

let test_chains_sorted =
  qtest "chains are listed in increasing order" Gen.poset poset_print (fun p ->
      List.for_all
        (fun chain ->
          let rec ordered = function
            | a :: (b :: _ as rest) -> Poset.lt p a b && ordered rest
            | [] | [ _ ] -> true
          in
          ordered chain)
        (Dilworth.min_chain_partition p))

(* ---------- Realizer ---------- *)

let test_realizer_known () =
  let antichain = Poset.of_relation 3 [] in
  let r = Realizer.dilworth antichain in
  Alcotest.(check int) "antichain realizer size" 3 (List.length r);
  Alcotest.(check bool) "is realizer" true (Realizer.is_realizer antichain r);
  let chain = Poset.of_total_order [| 2; 0; 1 |] in
  let r = Realizer.dilworth chain in
  Alcotest.(check int) "chain realizer size" 1 (List.length r);
  Alcotest.(check bool) "is realizer" true (Realizer.is_realizer chain r)

let test_realizer_property =
  qtest ~count:300 "Dilworth realizer realizes the poset" Gen.poset
    poset_print (fun p ->
      let r = Realizer.dilworth p in
      List.length r = max 1 (Dilworth.width p) && Realizer.is_realizer p r)

let test_realizer_vectors =
  qtest ~count:200 "rank vectors encode the poset" Gen.poset poset_print
    (fun p ->
      let vecs = Realizer.vectors (Realizer.dilworth p) in
      let ok = ref true in
      for i = 0 to Poset.size p - 1 do
        for j = 0 to Poset.size p - 1 do
          if i <> j then
            if Poset.lt p i j <> Realizer.vector_lt vecs.(i) vecs.(j) then
              ok := false
        done
      done;
      !ok)

let test_vector_order () =
  Alcotest.(check bool) "lt" true (Realizer.vector_lt [| 0; 1 |] [| 1; 1 |]);
  Alcotest.(check bool) "not lt equal" false
    (Realizer.vector_lt [| 1; 1 |] [| 1; 1 |]);
  Alcotest.(check bool) "concurrent" true
    (Realizer.vector_concurrent [| 0; 2 |] [| 1; 1 |])

let test_is_realizer_rejects () =
  let p = Poset.of_relation 2 [] in
  Alcotest.(check bool) "single ext insufficient" false
    (Realizer.is_realizer p [ [| 0; 1 |] ]);
  Alcotest.(check bool) "empty list" false (Realizer.is_realizer p [])

(* ---------- Dimension ---------- *)

let test_all_linear_extensions () =
  let antichain = Poset.of_relation 3 [] in
  (match Dimension.all_linear_extensions antichain with
  | Some exts -> Alcotest.(check int) "3! extensions" 6 (List.length exts)
  | None -> Alcotest.fail "cap hit");
  let chain = Poset.of_total_order [| 0; 1; 2; 3 |] in
  (match Dimension.all_linear_extensions chain with
  | Some exts -> Alcotest.(check int) "chain has 1" 1 (List.length exts)
  | None -> Alcotest.fail "cap hit");
  match Dimension.all_linear_extensions ~cap:3 antichain with
  | None -> ()
  | Some _ -> Alcotest.fail "cap should trigger"

let test_dimension_known () =
  let chain = Poset.of_total_order [| 0; 1; 2 |] in
  Alcotest.(check (option int)) "chain dim" (Some 1) (Dimension.dimension chain);
  let antichain = Poset.of_relation 4 [] in
  Alcotest.(check (option int)) "antichain dim" (Some 2)
    (Dimension.dimension antichain);
  (* The 2-crown a0<b1, a1<b0 has dimension 2. *)
  let crown = Poset.of_relation 4 [ (0, 3); (1, 2) ] in
  Alcotest.(check (option int)) "crown S2" (Some 2) (Dimension.dimension crown)

let test_dimension_leq_width =
  qtest ~count:80 "dim <= width on tiny posets" Gen.tiny_poset poset_print
    (fun p ->
      match Dimension.dimension p with
      | None -> QCheck2.assume_fail ()
      | Some d -> d <= max 1 (Dilworth.width p))

let test_dimension_realized =
  qtest ~count:60 "Dilworth realizer size >= true dimension" Gen.tiny_poset
    poset_print (fun p ->
      match Dimension.dimension p with
      | None -> QCheck2.assume_fail ()
      | Some d -> List.length (Realizer.dilworth p) >= d)

let test_count_linear_extensions =
  qtest ~count:80 "ideal-lattice count = enumeration count" Gen.tiny_poset
    poset_print (fun p ->
      match
        (Dimension.count_linear_extensions p,
         Dimension.all_linear_extensions p)
      with
      | Some c, Some exts -> c = List.length exts
      | None, _ | _, None -> QCheck2.assume_fail ())

let test_count_known () =
  Alcotest.(check (option int)) "antichain of 4: 4!" (Some 24)
    (Dimension.count_linear_extensions (Poset.of_relation 4 []));
  Alcotest.(check (option int)) "chain: 1" (Some 1)
    (Dimension.count_linear_extensions (Poset.of_total_order [| 0; 1; 2; 3 |]));
  let diamond = Poset.of_relation 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check (option int)) "diamond: 2" (Some 2)
    (Dimension.count_linear_extensions diamond)

let test_minimum_realizer_valid =
  qtest ~count:60 "minimum_realizer is a realizer of dimension size"
    Gen.tiny_poset poset_print (fun p ->
      match (Dimension.minimum_realizer p, Dimension.dimension p) with
      | Some r, Some d ->
          List.length r = d && Realizer.is_realizer p r
      | None, None -> true
      | _ -> false)

(* ---------- Incremental width ---------- *)

module Incremental_width = Synts_poset.Incremental_width

let test_incremental_width_known () =
  let t = Incremental_width.create () in
  Alcotest.(check int) "empty" 0 (Incremental_width.width t);
  let a = Incremental_width.add t ~preds:[] in
  let b = Incremental_width.add t ~preds:[] in
  Alcotest.(check int) "two incomparable" 2 (Incremental_width.width t);
  let c = Incremental_width.add t ~preds:[ a; b ] in
  Alcotest.(check int) "joined" 2 (Incremental_width.width t);
  Alcotest.(check bool) "a < c" true (Incremental_width.lt t a c);
  Alcotest.(check bool) "not c < a" false (Incremental_width.lt t c a);
  let _ = Incremental_width.add t ~preds:[ c ] in
  Alcotest.(check int) "chain extension keeps width" 2
    (Incremental_width.width t)

let test_incremental_width_matches_batch =
  qtest ~count:150 "incremental width = Dilworth width on every prefix"
    Gen.poset poset_print (fun p ->
      let n = Poset.size p in
      let order = Poset.linear_extension p in
      (* Map original ids to insertion ids. *)
      let insert_id = Array.make n (-1) in
      let t = Incremental_width.create () in
      let ok = ref true in
      Array.iteri
        (fun idx v ->
          let preds =
            List.filter_map
              (fun u ->
                if Poset.lt p u v then Some insert_id.(u) else None)
              (Array.to_list (Array.sub order 0 idx))
          in
          insert_id.(v) <- Incremental_width.add t ~preds;
          (* Check against batch width of the inserted prefix. *)
          let prefix_pairs = ref [] in
          for a = 0 to idx do
            for b = 0 to idx do
              let x = order.(a) and y = order.(b) in
              if Poset.lt p x y then
                prefix_pairs := (insert_id.(x), insert_id.(y)) :: !prefix_pairs
            done
          done;
          let batch = Poset.of_relation (idx + 1) !prefix_pairs in
          if Incremental_width.width t <> Dilworth.width batch then ok := false)
        order;
      !ok)

(* ---------- Streaming chains ---------- *)

module Streaming_chains = Synts_poset.Streaming_chains

let test_streaming_known () =
  let t = Streaming_chains.create () in
  Alcotest.(check int) "empty size" 0 (Streaming_chains.size t);
  Alcotest.(check int) "empty chains" 0 (Streaming_chains.chains t);
  Alcotest.(check int) "empty width" 0 (Streaming_chains.width t);
  Alcotest.(check bool) "empty exact" true (Streaming_chains.exact t);
  (* A pure chain: each element covers the previous one. *)
  let t = Streaming_chains.create () in
  let last = ref [] in
  for k = 1 to 10 do
    let s = Streaming_chains.insert t ~preds:!last in
    Alcotest.(check int) (Printf.sprintf "chain rank %d" k) k s.(0);
    (match !last with
    | [ prev ] ->
        Alcotest.(check bool) "chain stamps increase" true
          (Streaming_chains.stamp_lt prev s)
    | _ -> ());
    last := [ s ]
  done;
  Alcotest.(check int) "one chain" 1 (Streaming_chains.chains t);
  Alcotest.(check int) "chain width" 1 (Streaming_chains.width t);
  (* A pure antichain: no predecessors, ever. *)
  let t = Streaming_chains.create () in
  let stamps = Array.init 8 (fun _ -> Streaming_chains.insert t ~preds:[]) in
  Alcotest.(check int) "antichain chains" 8 (Streaming_chains.chains t);
  Alcotest.(check int) "antichain width" 8 (Streaming_chains.width t);
  Array.iteri
    (fun i u ->
      Array.iteri
        (fun j v ->
          if i <> j then
            Alcotest.(check bool) "antichain incomparable" false
              (Streaming_chains.stamp_lt u v))
        stamps)
    stamps;
  (* The minimum window still works (every insert retires). *)
  let t = Streaming_chains.create ~window:2 () in
  let last = ref [] in
  for _ = 1 to 20 do
    let s = Streaming_chains.insert t ~preds:!last in
    last := [ s ]
  done;
  Alcotest.(check int) "tiny-window chain" 1 (Streaming_chains.chains t);
  Alcotest.(check bool) "tiny window retired" false (Streaming_chains.exact t)

(* Insert a random poset in linear-extension order and require the emitted
   stamps to encode exactly the poset order — the core claim that makes the
   streaming offline pipeline sound. *)
let streaming_encodes ?window p =
  let n = Poset.size p in
  let order = Poset.linear_extension p in
  let t = Streaming_chains.create ?window () in
  let stamp = Array.make n [||] in
  Array.iteri
    (fun idx v ->
      let preds =
        List.filter_map
          (fun u -> if Poset.lt p u v then Some stamp.(u) else None)
          (Array.to_list (Array.sub order 0 idx))
      in
      stamp.(v) <- Streaming_chains.insert t ~preds)
    order;
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Streaming_chains.stamp_lt stamp.(u) stamp.(v) <> Poset.lt p u v
      then ok := false
    done
  done;
  (* Exact width while nothing was retired; an upper bound afterwards. *)
  (if Streaming_chains.exact t then begin
     if Streaming_chains.width t <> Dilworth.width p then ok := false
   end
   else if Streaming_chains.width t < Dilworth.width p then ok := false);
  !ok

let test_streaming_encodes_poset =
  qtest ~count:200 "streaming stamps encode the poset" Gen.poset poset_print
    (fun p -> streaming_encodes p)

let test_streaming_encodes_poset_small_window =
  qtest ~count:200 "streaming stamps encode the poset under retirement"
    Gen.poset poset_print (fun p -> streaming_encodes ~window:8 p)

let () =
  Alcotest.run "poset"
    [
      ( "incremental-width",
        [
          Alcotest.test_case "known" `Quick test_incremental_width_known;
          test_incremental_width_matches_batch;
        ] );
      ( "streaming-chains",
        [
          Alcotest.test_case "boundaries" `Quick test_streaming_known;
          test_streaming_encodes_poset;
          test_streaming_encodes_poset_small_window;
        ] );
      ( "poset",
        [
          Alcotest.test_case "basics" `Quick test_poset_basic;
          Alcotest.test_case "cycle rejection" `Quick test_poset_cycle;
          Alcotest.test_case "covers" `Quick test_poset_covers;
          Alcotest.test_case "intersection" `Quick test_intersection;
          Alcotest.test_case "is_linear_extension rejects" `Quick
            test_is_linear_extension_rejects;
          test_covers_reconstruct;
          test_linear_extension_valid;
          test_avoiding_property;
          test_random_poset_valid;
        ] );
      ( "matching",
        [
          Alcotest.test_case "known matchings" `Quick test_matching_known;
          test_matching_is_matching;
          test_matching_maximum;
          test_koenig_cover;
        ] );
      ( "dilworth",
        [
          Alcotest.test_case "known widths" `Quick test_width_known;
          test_chain_partition_valid;
          test_max_antichain_valid;
          test_chains_sorted;
        ] );
      ( "realizer",
        [
          Alcotest.test_case "known realizers" `Quick test_realizer_known;
          Alcotest.test_case "vector order" `Quick test_vector_order;
          Alcotest.test_case "is_realizer rejects" `Quick
            test_is_realizer_rejects;
          test_realizer_property;
          test_realizer_vectors;
        ] );
      ( "dimension",
        [
          Alcotest.test_case "extension enumeration" `Quick
            test_all_linear_extensions;
          Alcotest.test_case "known dimensions" `Quick test_dimension_known;
          Alcotest.test_case "extension counts" `Quick test_count_known;
          test_dimension_leq_width;
          test_dimension_realized;
          test_minimum_realizer_valid;
          test_count_linear_extensions;
        ] );
    ]
