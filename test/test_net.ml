module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Script = Synts_net.Script
module Simulator = Synts_net.Simulator
module Rendezvous = Synts_net.Rendezvous
module Validate = Synts_check.Validate
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* ---------- Simulator ---------- *)

let test_sim_delivers_all () =
  let sim = Simulator.create ~seed:1 ~n:3 () in
  for i = 0 to 9 do
    Simulator.send sim ~src:0 ~dst:(1 + (i mod 2)) i
  done;
  let received = ref [] in
  let makespan =
    Simulator.run sim ~on_deliver:(fun ~src:_ ~dst:_ payload ->
        received := payload :: !received)
  in
  Alcotest.(check int) "all delivered" 10 (List.length !received);
  Alcotest.(check int) "packets counted" 10 (Simulator.packets sim);
  Alcotest.(check bool) "positive makespan" true (makespan > 0.0)

let test_sim_fifo =
  qtest ~count:100 "FIFO channels deliver in send order"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 2 40))
    (fun (s, k) -> Printf.sprintf "seed=%d k=%d" s k)
    (fun (seed, k) ->
      let sim = Simulator.create ~seed ~fifo:true ~n:2 () in
      for i = 0 to k - 1 do
        Simulator.send sim ~src:0 ~dst:1 i
      done;
      let received = ref [] in
      ignore
        (Simulator.run sim ~on_deliver:(fun ~src:_ ~dst:_ payload ->
             received := payload :: !received));
      List.rev !received = List.init k Fun.id)

let test_sim_chained_sends () =
  (* Handlers may send further packets: a 5-hop relay. *)
  let sim = Simulator.create ~seed:3 ~n:6 () in
  Simulator.send sim ~src:0 ~dst:1 ();
  let hops = ref 0 in
  ignore
    (Simulator.run sim ~on_deliver:(fun ~src:_ ~dst payload ->
         incr hops;
         if dst < 5 then Simulator.send sim ~src:dst ~dst:(dst + 1) payload));
  Alcotest.(check int) "five hops" 5 !hops

let test_sim_rejects () =
  let sim = Simulator.create ~n:2 () in
  Alcotest.check_raises "self send"
    (Invalid_argument "Simulator.send: bad endpoints") (fun () ->
      Simulator.send sim ~src:1 ~dst:1 ());
  Alcotest.check_raises "range"
    (Invalid_argument "Simulator.send: bad endpoints") (fun () ->
      Simulator.send sim ~src:0 ~dst:2 ())

let test_sim_delay_bounds =
  qtest ~count:100 "non-FIFO delivery times respect the delay window"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 1 30))
    (fun (s, k) -> Printf.sprintf "seed=%d k=%d" s k)
    (fun (seed, k) ->
      let min_delay = 2.0 and max_delay = 7.0 in
      let sim =
        Simulator.create ~seed ~min_delay ~max_delay ~fifo:false ~n:2 ()
      in
      (* All sent at time 0: every arrival must land in the window. *)
      for i = 0 to k - 1 do
        Simulator.send sim ~src:0 ~dst:1 i
      done;
      let ok = ref true in
      ignore
        (Simulator.run sim ~on_deliver:(fun ~src:_ ~dst:_ _ ->
             let t = Simulator.now sim in
             if t < min_delay || t > max_delay then ok := false));
      !ok)

let test_sim_deterministic () =
  let run seed =
    let sim = Simulator.create ~seed ~fifo:false ~n:4 () in
    for i = 0 to 20 do
      Simulator.send sim ~src:(i mod 3) ~dst:3 i
    done;
    let order = ref [] in
    ignore
      (Simulator.run sim ~on_deliver:(fun ~src:_ ~dst:_ p ->
           order := p :: !order));
    !order
  in
  Alcotest.(check (list int)) "same seed" (run 5) (run 5);
  Alcotest.(check bool) "different seeds differ" true (run 5 <> run 6)

(* ---------- Script ---------- *)

let test_script_projection () =
  let trace =
    Trace.of_steps_exn ~n:3 [ Send (0, 1); Local 1; Send (2, 1); Send (1, 0) ]
  in
  let scripts = Script.of_trace trace in
  Alcotest.(check bool) "P0" true
    (scripts.(0) = [ Script.Send_to 1; Script.Recv_from 1 ]);
  Alcotest.(check bool) "P1" true
    (scripts.(1)
    = [ Script.Recv_from 0; Script.Internal; Script.Recv_from 2;
        Script.Send_to 0 ]);
  Alcotest.(check bool) "P2" true (scripts.(2) = [ Script.Send_to 1 ]);
  let any = Script.of_trace ~recv_any:true trace in
  Alcotest.(check bool) "recv_any" true
    (any.(0) = [ Script.Send_to 1; Script.Recv_any ]);
  Alcotest.(check int) "sends" 1 (Script.sends scripts.(0));
  Alcotest.(check int) "recvs" 3
    (Script.recvs scripts.(1) + Script.recvs scripts.(0))

let test_script_dsl_roundtrip =
  qtest ~count:150 "system_to_string / parse_system round-trips"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let scripts = Script.of_trace ~recv_any:true trace in
      match Script.parse_system (Script.system_to_string scripts) with
      | Ok parsed -> parsed = scripts
      | Error _ -> false)

let test_script_dsl_parse () =
  let text =
    "// a three-process system\nP0: !1 . # . ?2\n\nP2: ?1 // trailing comment\nP1: ?0 . !2\n"
  in
  match Script.parse_system text with
  | Error e -> Alcotest.fail e
  | Ok scripts ->
      Alcotest.(check int) "three processes" 3 (Array.length scripts);
      Alcotest.(check bool) "P0" true
        (scripts.(0) = [ Script.Send_to 1; Script.Internal; Script.Recv_from 2 ]);
      Alcotest.(check bool) "P2" true (scripts.(2) = [ Script.Recv_from 1 ])

let test_script_dsl_errors () =
  let cases =
    [
      ("", "empty");
      ("Q0: !1", "bad name");
      ("P0: !1\nP0: ?1", "duplicate");
      ("P0: foo", "bad intent");
      ("P0 !1", "missing colon");
      ("P0: !x", "bad argument");
    ]
  in
  List.iter
    (fun (text, label) ->
      match Script.parse_system text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ label))
    cases

let test_script_dsl_gap_processes () =
  match Script.parse_system "P2: #\n" with
  | Ok scripts ->
      Alcotest.(check int) "three processes" 3 (Array.length scripts);
      Alcotest.(check bool) "P0 empty" true (scripts.(0) = [])
  | Error e -> Alcotest.fail e

(* ---------- Rendezvous protocol ---------- *)

let channel_sequence trace =
  (* Message ids per directed channel, in occurrence order. *)
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (m : Trace.message) ->
      let key = (m.Trace.src, m.Trace.dst) in
      Hashtbl.replace tbl key
        (m.Trace.id :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
    (Trace.messages trace);
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
  |> List.sort compare

let net_params =
  QCheck2.Gen.(
    let* c = Gen.computation in
    let* seed = int_bound 100000 in
    let* fifo = bool in
    return (c, seed, fifo))

let net_print (c, seed, fifo) =
  Printf.sprintf "%s net_seed=%d fifo=%b" (Gen.computation_print c) seed fifo

let test_rendezvous_completes =
  qtest ~count:150 "projected scripts never deadlock (fixed pairing)"
    net_params net_print (fun (c, seed, fifo) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let o =
        Rendezvous.run ~seed ~fifo ~decomposition:d (Script.of_trace trace)
      in
      o.Rendezvous.deadlocked = []
      && Trace.message_count o.Rendezvous.trace = Trace.message_count trace
      && o.Rendezvous.packets = 2 * Trace.message_count trace)

let test_rendezvous_preserves_poset =
  qtest ~count:150 "induced computation has the same message poset"
    net_params net_print (fun (c, seed, fifo) ->
      let _, trace = Gen.build_computation c in
      let o = Rendezvous.run ~seed ~fifo (Script.of_trace trace) in
      if o.Rendezvous.deadlocked <> [] then false
      else begin
        let induced = o.Rendezvous.trace in
        (* Fixed pairing: the k-th message of each directed channel in the
           induced run corresponds to the k-th in the original. *)
        let orig_seq = channel_sequence trace in
        let ind_seq = channel_sequence induced in
        List.map fst orig_seq = List.map fst ind_seq
        && List.for_all2
             (fun (_, a) (_, b) -> List.length a = List.length b)
             orig_seq ind_seq
        &&
        let map = Array.make (Trace.message_count trace) (-1) in
        List.iter2
          (fun (_, orig_ids) (_, ind_ids) ->
            List.iter2 (fun o i -> map.(o) <- i) orig_ids ind_ids)
          orig_seq ind_seq;
        let p_orig = Message_poset.of_trace trace in
        let p_ind = Message_poset.of_trace induced in
        let ok = ref true in
        for i = 0 to Poset.size p_orig - 1 do
          for j = 0 to Poset.size p_orig - 1 do
            if
              i <> j
              && Poset.lt p_orig i j <> Poset.lt p_ind map.(i) map.(j)
            then ok := false
          done
        done;
        !ok
      end)

let test_rendezvous_timestamps_exact =
  qtest ~count:150 "piggybacked timestamps encode the induced poset"
    net_params net_print (fun (c, seed, fifo) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let o =
        Rendezvous.run ~seed ~fifo ~decomposition:d (Script.of_trace trace)
      in
      match o.Rendezvous.timestamps with
      | None -> false
      | Some ts ->
          Validate.ok (Validate.message_timestamps o.Rendezvous.trace ts)
          && Array.for_all2 Vector.equal ts
               (Online.timestamp_trace d o.Rendezvous.trace))

let test_rendezvous_recv_any =
  qtest ~count:150 "recv-any runs remain exact (matching may differ)"
    net_params net_print (fun (c, seed, fifo) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let o =
        Rendezvous.run ~seed ~fifo ~decomposition:d
          (Script.of_trace ~recv_any:true trace)
      in
      (* Whatever prefix executed is a valid synchronous computation and
         its timestamps are exact. *)
      match o.Rendezvous.timestamps with
      | None -> false
      | Some ts ->
          Validate.ok (Validate.message_timestamps o.Rendezvous.trace ts))

let test_rendezvous_projection_roundtrip =
  qtest ~count:100 "induced trace projects back to the scripts" net_params
    net_print (fun (c, seed, fifo) ->
      let _, trace = Gen.build_computation c in
      let scripts = Script.of_trace trace in
      let o = Rendezvous.run ~seed ~fifo scripts in
      o.Rendezvous.deadlocked = []
      && Script.of_trace o.Rendezvous.trace = scripts)

let test_rendezvous_deadlock_reported () =
  (* P0 waits for a message P1 never sends. *)
  let o = Rendezvous.run [| [ Script.Recv_from 1 ]; [] |] in
  Alcotest.(check (list int)) "P0 stuck" [ 0 ] o.Rendezvous.deadlocked;
  (* Crossing sends with fixed receive order CAN deadlock if scripts are
     written badly (not projections): P0 sends to P1 which insists on
     first receiving from P2 which never sends. *)
  let o2 =
    Rendezvous.run
      [| [ Script.Send_to 1 ]; [ Script.Recv_from 2; Script.Recv_from 0 ]; [] |]
  in
  Alcotest.(check (list int)) "P0 and P1 stuck" [ 0; 1 ]
    o2.Rendezvous.deadlocked;
  Alcotest.(check int) "nothing executed" 0
    (Trace.message_count o2.Rendezvous.trace)

let test_rendezvous_deterministic () =
  let trace =
    Workload.random (Rng.create 3)
      ~topology:(Synts_graph.Topology.complete 5)
      ~messages:40 ()
  in
  let scripts = Script.of_trace ~recv_any:true trace in
  let a = Rendezvous.run ~seed:9 scripts in
  let b = Rendezvous.run ~seed:9 scripts in
  Alcotest.(check bool) "same trace" true
    (Trace.steps a.Rendezvous.trace = Trace.steps b.Rendezvous.trace)

(* ---------- Lossy network ---------- *)

let lossy_params =
  QCheck2.Gen.(
    let* c = Gen.computation in
    let* seed = int_bound 100000 in
    let* loss = float_range 0.05 0.4 in
    return (c, seed, loss))

let lossy_print (c, seed, loss) =
  Printf.sprintf "%s net_seed=%d loss=%.2f" (Gen.computation_print c) seed loss

let test_lossy_completes_exactly_once =
  qtest ~count:120 "loss + retransmission: every rendezvous exactly once"
    lossy_params lossy_print (fun (c, seed, loss) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let o =
        Rendezvous.run ~seed ~loss ~retransmit:30.0
          ~decomposition:d (Script.of_trace trace)
      in
      o.Rendezvous.deadlocked = []
      && Trace.message_count o.Rendezvous.trace = Trace.message_count trace
      &&
      match o.Rendezvous.timestamps with
      | Some ts ->
          Validate.ok (Validate.message_timestamps o.Rendezvous.trace ts)
      | None -> false)

let test_lossy_costs_more_packets () =
  let trace =
    Workload.random (Rng.create 5)
      ~topology:(Synts_graph.Topology.complete 5)
      ~messages:60 ()
  in
  let scripts = Script.of_trace trace in
  let clean = Rendezvous.run ~seed:8 scripts in
  let lossy = Rendezvous.run ~seed:8 ~loss:0.3 scripts in
  Alcotest.(check (list int)) "clean completes" [] clean.Rendezvous.deadlocked;
  Alcotest.(check (list int)) "lossy completes" [] lossy.Rendezvous.deadlocked;
  Alcotest.(check int) "lossless = 2 per message" 120 clean.Rendezvous.packets;
  Alcotest.(check int) "no losses when loss=0" 0 clean.Rendezvous.lost;
  Alcotest.(check bool) "retransmissions cost packets" true
    (lossy.Rendezvous.packets > 120);
  Alcotest.(check bool) "some were dropped" true (lossy.Rendezvous.lost > 0)

let test_total_loss_terminates =
  qtest ~count:80 "loss = 1.0 with finite retries terminates, nothing delivered"
    QCheck2.Gen.(pair Gen.computation (int_bound 100000))
    (fun (c, s) -> Printf.sprintf "%s net_seed=%d" (Gen.computation_print c) s)
    (fun (c, seed) ->
      let _, trace = Gen.build_computation c in
      let scripts = Script.of_trace trace in
      let o =
        Rendezvous.run ~seed ~loss:1.0 ~retransmit:5.0 ~max_retransmits:4
          scripts
      in
      (* Every process's fate is decided by its first communication
         intent: senders exhaust their retries and give up, receivers
         wait forever. Every planned message is reported undelivered. *)
      let gave = ref [] and dead = ref [] in
      Array.iteri
        (fun p script ->
          match
            List.find_opt (fun a -> a <> Script.Internal) script
          with
          | Some (Script.Send_to _) -> gave := p :: !gave
          | Some (Script.Recv_from _ | Script.Recv_any) -> dead := p :: !dead
          | Some Script.Internal | None -> ())
        scripts;
      Trace.message_count o.Rendezvous.trace = 0
      && o.Rendezvous.gave_up = List.rev !gave
      && o.Rendezvous.deadlocked = List.rev !dead
      && (!gave = [] || o.Rendezvous.lost > 0))

let test_gave_up_distinct_from_deadlocked () =
  (* P0's send to a receiver-less P1 times out: P0 aborts (gave_up), it
     is NOT lumped in with the deadlocked. *)
  let o =
    Rendezvous.run ~loss:0.5 ~retransmit:5.0 ~max_retransmits:3
      [| [ Script.Send_to 1 ]; [] |]
  in
  Alcotest.(check (list int)) "P0 gave up" [ 0 ] o.Rendezvous.gave_up;
  Alcotest.(check (list int)) "nobody deadlocked" [] o.Rendezvous.deadlocked;
  (* The same shape without loss is a deadlock, not an abort. *)
  let o2 = Rendezvous.run [| [ Script.Send_to 1 ]; [] |] in
  Alcotest.(check (list int)) "lossless: P0 deadlocked" [ 0 ]
    o2.Rendezvous.deadlocked;
  Alcotest.(check (list int)) "lossless: nobody gave up" []
    o2.Rendezvous.gave_up

let test_rendezvous_internal_events_kept =
  qtest ~count:80 "internal events survive the round trip" net_params
    net_print (fun (c, seed, fifo) ->
      let _, trace = Gen.build_computation c in
      let o = Rendezvous.run ~seed ~fifo (Script.of_trace trace) in
      o.Rendezvous.deadlocked = []
      && Trace.internal_count o.Rendezvous.trace
         = Trace.internal_count trace)

let () =
  Alcotest.run "net"
    [
      ( "simulator",
        [
          Alcotest.test_case "delivers all" `Quick test_sim_delivers_all;
          Alcotest.test_case "chained sends" `Quick test_sim_chained_sends;
          Alcotest.test_case "rejects bad endpoints" `Quick test_sim_rejects;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          test_sim_fifo;
          test_sim_delay_bounds;
        ] );
      ( "script",
        [
          Alcotest.test_case "projection" `Quick test_script_projection;
          Alcotest.test_case "DSL parse" `Quick test_script_dsl_parse;
          Alcotest.test_case "DSL errors" `Quick test_script_dsl_errors;
          Alcotest.test_case "DSL gap processes" `Quick
            test_script_dsl_gap_processes;
          test_script_dsl_roundtrip;
        ] );
      ( "rendezvous",
        [
          Alcotest.test_case "deadlock reporting" `Quick
            test_rendezvous_deadlock_reported;
          Alcotest.test_case "deterministic" `Quick
            test_rendezvous_deterministic;
          test_rendezvous_completes;
          test_rendezvous_preserves_poset;
          test_rendezvous_timestamps_exact;
          test_rendezvous_recv_any;
          test_rendezvous_projection_roundtrip;
          test_rendezvous_internal_events_kept;
        ] );
      ( "lossy-network",
        [
          Alcotest.test_case "packet accounting" `Quick
            test_lossy_costs_more_packets;
          Alcotest.test_case "gave-up vs deadlocked" `Quick
            test_gave_up_distinct_from_deadlocked;
          test_lossy_completes_exactly_once;
          test_total_loss_terminates;
        ] );
    ]
