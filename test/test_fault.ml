module Trace = Synts_sync.Trace
module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Wire = Synts_clock.Wire
module Stamp_store = Synts_clock.Stamp_store
module Edge_clock = Synts_core.Edge_clock
module Online = Synts_core.Online
module Script = Synts_net.Script
module Rendezvous = Synts_net.Rendezvous
module Validate = Synts_check.Validate
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Plan = Synts_fault.Plan
module Injector = Synts_fault.Injector
module Telemetry = Synts_telemetry.Telemetry
module Finding = Synts_lint.Finding
module Lint = Synts_lint.Lint
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* ---------- Plan grammar ---------- *)

(* Probabilities and times drawn on coarse grids so [to_string]'s %g
   formatting round-trips exactly. *)
let plan_gen ~n =
  QCheck2.Gen.(
    let prob = map (fun k -> float_of_int k /. 100.) (int_range 1 99) in
    let time = map float_of_int (int_range 0 300) in
    let dur = map float_of_int (int_range 1 120) in
    let proc = int_range 0 (n - 1) in
    let opt g = oneof [ return None; map Option.some g ] in
    let* crash =
      opt
        (let* p = proc in
         let* at = time in
         let* after = opt dur in
         return
           (match after with
           | None -> Plan.Crash_stop { proc = p; at }
           | Some d -> Plan.Crash_recover { proc = p; at; after = d }))
    in
    let* part =
      opt
        (let* p = proc in
         let* from_ = time in
         let* len = dur in
         return (Plan.Partition { island = [ p ]; from_; until_ = from_ +. len }))
    in
    let* dup = opt (map (fun p -> Plan.Duplicate { prob = p }) prob) in
    let* corrupt = opt (map (fun p -> Plan.Corrupt { prob = p }) prob) in
    let* spike =
      opt
        (let* p = prob in
         let* f = map float_of_int (int_range 2 9) in
         return (Plan.Delay_spike { prob = p; factor = f }))
    in
    return (List.filter_map Fun.id [ crash; part; dup; corrupt; spike ]))

let test_plan_roundtrip =
  qtest ~count:200 "plan grammar: to_string / of_string round-trip"
    (plan_gen ~n:8) Plan.to_string (fun plan ->
      Plan.of_string (Plan.to_string plan) = Ok plan)

let test_plan_parse () =
  let ok s p = Alcotest.(check bool) s true (Plan.of_string s = Ok p) in
  ok "crash:2@25" [ Plan.Crash_stop { proc = 2; at = 25.0 } ];
  ok "recover:1@10+40" [ Plan.Crash_recover { proc = 1; at = 10.0; after = 40.0 } ];
  ok "partition:0,3@5-60"
    [ Plan.Partition { island = [ 0; 3 ]; from_ = 5.0; until_ = 60.0 } ];
  ok "dup:0.25" [ Plan.Duplicate { prob = 0.25 } ];
  ok "corrupt:0.1" [ Plan.Corrupt { prob = 0.1 } ];
  ok "spike:0.2*5" [ Plan.Delay_spike { prob = 0.2; factor = 5.0 } ];
  ok "recover:2@25+30; dup:0.1; spike:0.2*5"
    [
      Plan.Crash_recover { proc = 2; at = 25.0; after = 30.0 };
      Plan.Duplicate { prob = 0.1 };
      Plan.Delay_spike { prob = 0.2; factor = 5.0 };
    ];
  ok "" [];
  Alcotest.(check bool) "garbage clause rejected" true
    (Result.is_error (Plan.of_string "crash:zero@now"));
  Alcotest.(check bool) "unknown kind rejected" true
    (Result.is_error (Plan.of_string "melt:3@1"))

let test_plan_validate () =
  let bad plan = Alcotest.(check bool) "rejected" true
      (Result.is_error (Plan.validate ~n:4 plan))
  and good plan = Alcotest.(check bool) "accepted" true
      (Plan.validate ~n:4 plan = Ok ())
  in
  good [ Plan.Crash_stop { proc = 3; at = 0.0 }; Plan.Duplicate { prob = 1.0 } ];
  bad [ Plan.Crash_stop { proc = 4; at = 0.0 } ];
  bad [ Plan.Crash_recover { proc = -1; at = 0.0; after = 1.0 } ];
  bad [ Plan.Duplicate { prob = 1.5 } ];
  bad [ Plan.Corrupt { prob = -0.1 } ];
  bad [ Plan.Delay_spike { prob = 0.5; factor = 0.5 } ];
  bad [ Plan.Partition { island = [ 1 ]; from_ = 10.0; until_ = 5.0 } ];
  bad [ Plan.Duplicate { prob = 0.1 }; Plan.Duplicate { prob = 0.2 } ];
  bad
    [
      Plan.Crash_stop { proc = 1; at = 5.0 };
      Plan.Crash_recover { proc = 1; at = 50.0; after = 10.0 };
    ]

let test_plan_kinds () =
  let plan =
    [
      Plan.Crash_recover { proc = 0; at = 1.0; after = 2.0 };
      Plan.Duplicate { prob = 0.5 };
      Plan.Corrupt { prob = 0.5 };
    ]
  in
  Alcotest.(check (list string))
    "recover declares crash and recovery"
    [ "crash"; "recovery"; "duplicate"; "corrupt" ]
    (Plan.kinds plan)

(* ---------- Injector ---------- *)

let test_injector_deterministic () =
  let decisions seed =
    let inj =
      Injector.create ~seed
        [ Plan.Duplicate { prob = 0.4 }; Plan.Delay_spike { prob = 0.3; factor = 4.0 } ]
    in
    List.init 200 (fun _ ->
        (Injector.roll_duplicate inj, Injector.delay_factor inj))
  in
  Alcotest.(check bool) "same seed, same stream" true
    (decisions 11 = decisions 11);
  Alcotest.(check bool) "different seeds differ" true
    (decisions 11 <> decisions 12)

let test_injector_tallies () =
  let inj = Injector.create [ Plan.Duplicate { prob = 1.0 }; Plan.Corrupt { prob = 0.0 } ] in
  Alcotest.(check (list string))
    "nothing fired yet" [ "corrupt"; "duplicate" ] (Injector.unobserved inj);
  Alcotest.(check bool) "prob 1 fires" true (Injector.roll_duplicate inj);
  Alcotest.(check bool) "prob 0 never fires" false (Injector.roll_corrupt inj);
  Alcotest.(check (list string)) "corrupt still unobserved" [ "corrupt" ]
    (Injector.unobserved inj);
  Alcotest.(check (list (pair string int)))
    "fired tallies" [ ("corrupt", 0); ("duplicate", 1) ] (Injector.fired inj)

let test_injector_partition () =
  let inj =
    Injector.create [ Plan.Partition { island = [ 1 ]; from_ = 10.0; until_ = 20.0 } ]
  in
  let blocks now src dst = Injector.blocks inj ~now ~src ~dst in
  Alcotest.(check bool) "cut edge inside window" true (blocks 15.0 1 2);
  Alcotest.(check bool) "symmetric" true (blocks 15.0 0 1);
  Alcotest.(check bool) "same side passes" false (blocks 15.0 0 2);
  Alcotest.(check bool) "before window" false (blocks 9.9 1 2);
  Alcotest.(check bool) "window is half-open" false (blocks 20.0 1 2)

let test_injector_flip_bit =
  qtest ~count:200 "flip_bit flips exactly one bit"
    QCheck2.Gen.(pair (int_bound 100000) (string_size ~gen:char (int_range 1 64)))
    (fun (s, str) -> Printf.sprintf "seed=%d len=%d" s (String.length str))
    (fun (seed, str) ->
      let inj = Injector.create ~seed [ Plan.Corrupt { prob = 1.0 } ] in
      let out = Injector.flip_bit inj str in
      String.length out = String.length str
      &&
      let diff_bits = ref 0 in
      String.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code out.[i] in
          let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
          diff_bits := !diff_bits + popcount x)
        str;
      !diff_bits = 1)

(* ---------- Wire checksum framing ---------- *)

let vector_gen =
  QCheck2.Gen.(
    let* dim = int_range 0 12 in
    let* cells = list_size (return dim) (int_bound 5000) in
    let v = Vector.zero dim in
    List.iteri (fun i x -> for _ = 1 to x mod 50 do Vector.incr v i done) cells;
    return v)

let test_wire_framed_roundtrip =
  qtest ~count:200 "framed wire encoding round-trips" vector_gen
    Vector.to_string (fun v ->
      match Wire.decode_framed (Wire.encode_framed v) with
      | Ok v' -> Vector.equal v v'
      | Error _ -> false)

let test_wire_framed_rejects_bitflips =
  qtest ~count:200 "any single body-bit flip is rejected"
    QCheck2.Gen.(pair vector_gen (int_bound 100000))
    (fun (v, bit) -> Printf.sprintf "%s bit=%d" (Vector.to_string v) bit)
    (fun (v, bit) ->
      let framed = Wire.encode_framed v in
      let prefix = String.length framed - String.length (Wire.encode v) in
      let body_bits = (String.length framed - prefix) * 8 in
      body_bits = 0
      ||
      let b = prefix * 8 + (bit mod body_bits) in
      let bytes = Bytes.of_string framed in
      Bytes.set bytes (b / 8)
        (Char.chr (Char.code (Bytes.get bytes (b / 8)) lxor (1 lsl (b mod 8))));
      Result.is_error (Wire.decode_framed (Bytes.to_string bytes)))

(* ---------- Checkpoint / restore ---------- *)

let triangle = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

let exchange c_snd c_rcv =
  (* One full Figure 5 rendezvous between two clocks; both timestamps
     must agree. *)
  let payload = Edge_clock.on_send c_snd ~dst:(Edge_clock.pid c_rcv) in
  let (`Ack ack), ts =
    Edge_clock.receive c_rcv ~src:(Edge_clock.pid c_snd) payload
  in
  let ts' = Edge_clock.on_ack c_snd ~dst:(Edge_clock.pid c_rcv) ack in
  Alcotest.(check bool) "both sides agree" true (Vector.equal ts ts');
  ts

let test_edge_clock_checkpoint () =
  let d = Decomposition.best triangle in
  let c0 = Edge_clock.create d ~pid:0 and c1 = Edge_clock.create d ~pid:1 in
  ignore (exchange c0 c1);
  let ck = Edge_clock.checkpoint c0 in
  let saved = Edge_clock.vector c0 in
  ignore (exchange c0 c1);
  Alcotest.(check bool) "clock advanced past checkpoint" false
    (Vector.equal saved (Edge_clock.vector c0));
  Edge_clock.reset c0;
  Alcotest.(check bool) "reset zeroes the vector" true
    (Vector.equal (Vector.zero (Edge_clock.dimension c0)) (Edge_clock.vector c0));
  Edge_clock.restore c0 ck;
  Alcotest.(check bool) "restore recovers the snapshot" true
    (Vector.equal saved (Edge_clock.vector c0));
  Alcotest.check_raises "foreign checkpoint rejected"
    (Invalid_argument "Edge_clock.restore: checkpoint from a different clock")
    (fun () -> Edge_clock.restore c1 ck)

let test_edge_clock_recovery_exact () =
  (* A crashed-and-restored clock must produce the exact timestamps an
     uncrashed one would. *)
  let d = Decomposition.best triangle in
  let run crash_after_first =
    let c0 = Edge_clock.create d ~pid:0 and c1 = Edge_clock.create d ~pid:1 in
    let ts1 = exchange c0 c1 in
    if crash_after_first then begin
      let ck = Edge_clock.checkpoint c0 in
      Edge_clock.reset c0;
      (* volatile state gone *)
      Edge_clock.restore c0 ck
    end;
    let ts2 = exchange c0 c1 in
    (ts1, ts2)
  in
  let t1, t2 = run false and t1', t2' = run true in
  Alcotest.(check bool) "first stamps equal" true (Vector.equal t1 t1');
  Alcotest.(check bool) "post-recovery stamps equal" true (Vector.equal t2 t2')

let vec_of_list xs =
  let v = Vector.zero (List.length xs) in
  List.iteri (fun i x -> for _ = 1 to x do Vector.incr v i done) xs;
  v

let test_stamp_store_checkpoint () =
  let s = Stamp_store.create 3 in
  ignore (Stamp_store.push s (vec_of_list [ 1; 0; 2 ]));
  ignore (Stamp_store.push s (vec_of_list [ 1; 1; 2 ]));
  let ck = Stamp_store.checkpoint s in
  ignore (Stamp_store.push s (vec_of_list [ 4; 4; 4 ]));
  ignore (Stamp_store.push s (vec_of_list [ 5; 5; 5 ]));
  Stamp_store.restore s ck;
  Alcotest.(check int) "row count restored" 2 (Stamp_store.rows s);
  Alcotest.(check bool) "row contents restored" true
    (Vector.equal (vec_of_list [ 1; 1; 2 ]) (Stamp_store.get s 1));
  let other = Stamp_store.create 4 in
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Stamp_store.restore: dim mismatch") (fun () ->
      Stamp_store.restore other ck)

(* ---------- Chaos properties ---------- *)

(* Abstract fault-plan pieces: process picks are raw ints concretised
   modulo the topology's size once the computation is built. *)
let chaos_params =
  QCheck2.Gen.(
    let prob = map (fun k -> float_of_int k /. 100.) (int_range 5 40) in
    let opt g = oneof [ return None; map Option.some g ] in
    let* c = Gen.computation in
    let* seed = int_bound 100000 in
    let* fseed = int_bound 100000 in
    let* loss = oneof [ return 0.0; float_range 0.02 0.25 ] in
    let* dup = opt prob in
    let* corrupt = opt prob in
    let* spike = opt (pair prob (map float_of_int (int_range 2 8))) in
    let* crash =
      opt
        (let* pk = int_bound 10000 in
         let* at = map float_of_int (int_range 0 300) in
         let* after = opt (map float_of_int (int_range 10 150)) in
         return (pk, at, after))
    in
    let* part =
      opt
        (let* pk = int_bound 10000 in
         let* from_ = map float_of_int (int_range 0 200) in
         let* len = map float_of_int (int_range 5 60) in
         return (pk, from_, len))
    in
    return (c, seed, fseed, loss, (dup, corrupt, spike, crash, part)))

let concretize_plan n (dup, corrupt, spike, crash, part) =
  List.filter_map Fun.id
    [
      Option.map (fun p -> Plan.Duplicate { prob = p }) dup;
      Option.map (fun p -> Plan.Corrupt { prob = p }) corrupt;
      Option.map (fun (p, f) -> Plan.Delay_spike { prob = p; factor = f }) spike;
      Option.map
        (fun (pk, at, after) ->
          match after with
          | None -> Plan.Crash_stop { proc = pk mod n; at }
          | Some d -> Plan.Crash_recover { proc = pk mod n; at; after = d })
        crash;
      Option.map
        (fun (pk, from_, len) ->
          Plan.Partition { island = [ pk mod n ]; from_; until_ = from_ +. len })
        part;
    ]

let chaos_print (c, seed, fseed, loss, pieces) =
  Printf.sprintf "%s seed=%d fseed=%d loss=%.2f plan=[%s]"
    (Gen.computation_print c) seed fseed loss
    (Plan.to_string (concretize_plan 1000000 pieces))

let chaos_run (c, seed, fseed, loss, pieces) =
  let g, trace = Gen.build_computation c in
  let d = Decomposition.best g in
  let plan = concretize_plan (Graph.n g) pieces in
  let o =
    Rendezvous.run ~seed ~loss ~retransmit:25.0 ~max_retransmits:12
      ~faults:(Injector.create ~seed:fseed plan)
      ~decomposition:d
      (Script.of_trace trace)
  in
  (g, trace, d, plan, o)

let disjoint a b = List.for_all (fun x -> not (List.mem x b)) a

let test_chaos_prefix_valid_and_exact =
  qtest ~count:120
    "under any fault plan the surviving prefix is valid and stamps exact"
    chaos_params chaos_print (fun params ->
      let _, trace, d, _, o = chaos_run params in
      Trace.message_count o.Rendezvous.trace <= Trace.message_count trace
      && List.for_all
           (fun (f : Finding.t) -> f.severity <> Finding.Error)
           (Lint.audit o.Rendezvous.trace)
      &&
      match o.Rendezvous.timestamps with
      | None -> false
      | Some ts ->
          Validate.ok (Validate.message_timestamps o.Rendezvous.trace ts)
          && Array.for_all2 Vector.equal ts
               (Online.timestamp_trace d o.Rendezvous.trace))

(* The streaming offline pipeline must stay order-equivalent to the batch
   Figure 9 path on fault-plan replays too: the trace delivered under
   crashes, partitions, dups and corruption is still a valid synchronous
   trace, and the equivalence claim has no carve-out for it. *)
let test_chaos_stream_order_equivalent =
  qtest ~count:120 "streamed offline stamps stay order-equivalent under faults"
    chaos_params chaos_print (fun params ->
      let _, _, _, _, o = chaos_run params in
      let module Offline = Synts_core.Offline in
      let trace = o.Rendezvous.trace in
      let batch = Offline.timestamp_trace trace in
      let streamed = Offline.stream_trace ~window:16 trace in
      let k = Array.length batch in
      let ok = ref (Array.length streamed = k) in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if
            !ok && i <> j
            && Offline.precedes streamed.(i) streamed.(j)
               <> Offline.precedes batch.(i) batch.(j)
          then ok := false
        done
      done;
      !ok)

let test_chaos_accounting =
  qtest ~count:120 "outcome accounting: crash lists match the plan"
    chaos_params chaos_print (fun params ->
      let _, _, _, plan, o = chaos_run params in
      let crash_procs =
        List.filter_map
          (function
            | Plan.Crash_stop { proc; _ } | Plan.Crash_recover { proc; _ } ->
                Some proc
            | _ -> None)
          plan
      in
      let recover_procs =
        List.filter_map
          (function Plan.Crash_recover { proc; _ } -> Some proc | _ -> None)
          plan
      in
      List.for_all (fun p -> List.mem p crash_procs) o.Rendezvous.crashed
      && List.for_all (fun p -> List.mem p recover_procs) o.Rendezvous.recovered
      && disjoint o.Rendezvous.deadlocked o.Rendezvous.gave_up
      && disjoint o.Rendezvous.deadlocked o.Rendezvous.crashed
      && disjoint o.Rendezvous.crashed o.Rendezvous.recovered)

let test_chaos_deterministic =
  qtest ~count:60 "chaos runs are bit-for-bit reproducible" chaos_params
    chaos_print (fun params ->
      let _, _, _, _, a = chaos_run params in
      let _, _, _, _, b = chaos_run params in
      Trace.steps a.Rendezvous.trace = Trace.steps b.Rendezvous.trace
      && a.Rendezvous.timestamps = b.Rendezvous.timestamps
      && a.Rendezvous.deadlocked = b.Rendezvous.deadlocked
      && a.Rendezvous.gave_up = b.Rendezvous.gave_up
      && a.Rendezvous.crashed = b.Rendezvous.crashed
      && a.Rendezvous.recovered = b.Rendezvous.recovered
      && a.Rendezvous.packets = b.Rendezvous.packets
      && a.Rendezvous.lost = b.Rendezvous.lost
      && a.Rendezvous.duplicated = b.Rendezvous.duplicated
      && a.Rendezvous.corrupted = b.Rendezvous.corrupted
      && a.Rendezvous.makespan = b.Rendezvous.makespan)

(* ---------- Crash-recover scenario ---------- *)

let star6 = Graph.of_edges 6 [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ]

let test_crash_recover_exact () =
  (* P2 crashes mid-run and recovers from its checkpoint while packets
     are also being dropped, duplicated and corrupted; every message is
     still delivered with its exact offline timestamp. *)
  let trace =
    Workload.random (Rng.create 8) ~topology:star6 ~messages:40 ()
  in
  let d = Decomposition.best star6 in
  let plan =
    [
      Plan.Crash_recover { proc = 2; at = 25.0; after = 30.0 };
      Plan.Duplicate { prob = 0.2 };
      Plan.Corrupt { prob = 0.2 };
    ]
  in
  let inj = Injector.create ~seed:7 plan in
  let o =
    Rendezvous.run ~seed:7 ~loss:0.1 ~faults:inj ~decomposition:d
      (Script.of_trace trace)
  in
  Alcotest.(check int) "all messages delivered" 40
    (Trace.message_count o.Rendezvous.trace);
  Alcotest.(check (list int)) "nobody deadlocked" [] o.Rendezvous.deadlocked;
  Alcotest.(check (list int)) "nobody gave up" [] o.Rendezvous.gave_up;
  Alcotest.(check (list int)) "nobody down at the end" [] o.Rendezvous.crashed;
  Alcotest.(check (list int)) "P2 recovered" [ 2 ] o.Rendezvous.recovered;
  Alcotest.(check bool) "crash fired" true
    (List.assoc "crash" (Injector.fired inj) = 1
    && List.assoc "recovery" (Injector.fired inj) = 1);
  match o.Rendezvous.timestamps with
  | None -> Alcotest.fail "no timestamps"
  | Some ts ->
      Alcotest.(check bool) "stamps exact after recovery" true
        (Array.for_all2 Vector.equal ts
           (Online.timestamp_trace d o.Rendezvous.trace))

let test_dup_replay_stored_ack () =
  (* Heavy duplication: duplicate REQs for already-consumed messages are
     answered from the dedup table (stored-ACK replay), and the run stays
     exactly-once and exact. *)
  let g = Synts_graph.Topology.build (Synts_graph.Topology.Complete 5) in
  let trace = Workload.random (Rng.create 5) ~topology:g ~messages:60 () in
  let d = Decomposition.best g in
  let dup_c = Telemetry.Counter.v "net.rendezvous.dup_requests" in
  let before = Telemetry.Counter.value dup_c in
  let o =
    Rendezvous.run ~seed:4
      ~faults:(Injector.create ~seed:4 [ Plan.Duplicate { prob = 0.9 } ])
      ~decomposition:d (Script.of_trace trace)
  in
  Alcotest.(check int) "all delivered exactly once" 60
    (Trace.message_count o.Rendezvous.trace);
  Alcotest.(check (list int)) "completed" [] o.Rendezvous.deadlocked;
  Alcotest.(check bool) "packets were duplicated" true
    (o.Rendezvous.duplicated > 0);
  Alcotest.(check bool) "stored ACKs replayed" true
    (Telemetry.Counter.value dup_c > before);
  match o.Rendezvous.timestamps with
  | None -> Alcotest.fail "no timestamps"
  | Some ts ->
      Alcotest.(check bool) "stamps exact under duplication" true
        (Array.for_all2 Vector.equal ts
           (Online.timestamp_trace d o.Rendezvous.trace))

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "parse" `Quick test_plan_parse;
          Alcotest.test_case "validate" `Quick test_plan_validate;
          Alcotest.test_case "kinds" `Quick test_plan_kinds;
          test_plan_roundtrip;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "tallies" `Quick test_injector_tallies;
          Alcotest.test_case "partition windows" `Quick test_injector_partition;
          test_injector_flip_bit;
        ] );
      ( "wire",
        [ test_wire_framed_roundtrip; test_wire_framed_rejects_bitflips ] );
      ( "checkpoint",
        [
          Alcotest.test_case "edge clock" `Quick test_edge_clock_checkpoint;
          Alcotest.test_case "recovery exactness" `Quick
            test_edge_clock_recovery_exact;
          Alcotest.test_case "stamp store" `Quick test_stamp_store_checkpoint;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crash-recover scenario" `Quick
            test_crash_recover_exact;
          Alcotest.test_case "stored-ACK replay" `Quick
            test_dup_replay_stored_ack;
          test_chaos_prefix_valid_and_exact;
          test_chaos_stream_order_equivalent;
          test_chaos_accounting;
          test_chaos_deterministic;
        ] );
    ]
