(* The causal tracing layer.

   - recorder semantics: bounded ring, counted drops, the global switch,
     begin/end pairing, the Profile hook;
   - exporters: synts-tracelog JSONL and Chrome trace-event JSON both
     round-trip exactly (unit + qcheck over random computations);
   - the flow-edge property: the Chrome export's sync_precedes arrows are
     the generating pairs of the paper's direct relation ▷ — sound
     (every arrow is an oracle ↦ pair) and complete (their transitive
     closure is exactly the oracle's ↦);
   - determinism: two identical seeded multi-layer runs record
     byte-identical tracelogs;
   - the session's bounded pending queue drops oldest, counted. *)

module Tracer = Synts_trace.Tracer
module Tracelog = Synts_trace.Tracelog
module Chrome = Synts_trace.Chrome
module Report = Synts_trace.Report
module Tm = Synts_telemetry.Telemetry
module Rng = Synts_util.Rng
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Poset = Synts_poset.Poset
module Oracle = Synts_check.Oracle
module Session = Synts_session.Session
module Offline = Synts_core.Offline
module Workload = Synts_workload.Workload
module Gen = Synts_test_support.Gen

let qtest ?(count = 100) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* Every test leaves the recorder the way it found it: disabled (the
   default) and empty. *)
let with_tracing f =
  Tracer.set_enabled true;
  Tracer.clear ();
  Fun.protect
    ~finally:(fun () ->
      Tracer.set_enabled false;
      Tracer.clear ())
    f

(* ---------- recorder ---------- *)

let test_ring_overflow () =
  let r = Tracer.create ~capacity:4 () in
  let before = Tm.Counter.value (Tm.Counter.v "trace.dropped_spans") in
  Tracer.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Tracer.set_enabled false)
    (fun () ->
      for i = 0 to 5 do
        Tracer.instant ~r ~cat:"t" ~tick:(float_of_int i) "tick"
      done);
  Alcotest.(check int) "capacity" 4 (Tracer.capacity r);
  Alcotest.(check int) "length clamped" 4 (Tracer.length r);
  Alcotest.(check int) "drops counted" 2 (Tracer.dropped r);
  Alcotest.(check int) "telemetry counter" 2
    (Tm.Counter.value (Tm.Counter.v "trace.dropped_spans") - before);
  Alcotest.(check (list (float 0.)))
    "oldest overwritten, suffix retained" [ 2.; 3.; 4.; 5. ]
    (List.map (fun (s : Tracer.span) -> s.tick) (Tracer.to_list ~r ()));
  Tracer.clear ~r ();
  Alcotest.(check int) "clear resets length" 0 (Tracer.length r);
  Alcotest.(check int) "clear resets drops" 0 (Tracer.dropped r)

let test_switch_off () =
  let r = Tracer.create ~capacity:8 () in
  (* Disabled is the default: nothing records, begin_span is inert. *)
  Tracer.instant ~r ~cat:"t" ~tick:1.0 "x";
  Tracer.message ~r ~cat:"t" ~src:0 ~dst:1 ~tick:1.0 ~id:0 ();
  let a = Tracer.begin_span ~r ~cat:"t" ~tick:1.0 "y" in
  Tracer.end_span a ~tick:2.0;
  Alcotest.(check int) "nothing recorded while off" 0 (Tracer.length r);
  Alcotest.(check int) "with_span calls f, no tick reads" 41
    (Tracer.Profile.with_span ~r ~cat:"t"
       ~tick:(fun () -> Alcotest.fail "tick read while disabled")
       "z"
       (fun () -> 41));
  Alcotest.(check int) "still nothing" 0 (Tracer.length r)

let test_begin_end () =
  let r = Tracer.create ~capacity:8 () in
  with_tracing (fun () ->
      let a = Tracer.begin_span ~r ~cat:"t" ~pid:3 ~tick:10.0 "work" in
      Alcotest.(check int) "nothing until end" 0 (Tracer.length r);
      Tracer.end_span a ~tick:14.0;
      Tracer.end_span a ~tick:99.0;
      (* second end ignored *)
      match Tracer.to_list ~r () with
      | [ s ] ->
          Alcotest.(check bool) "complete" true (s.Tracer.kind = Tracer.Complete);
          Alcotest.(check string) "name" "work" s.Tracer.name;
          Alcotest.(check int) "pid" 3 s.Tracer.pid;
          Alcotest.(check (float 0.)) "tick" 10.0 s.Tracer.tick;
          Alcotest.(check (float 0.)) "dur" 4.0 s.Tracer.dur
      | spans ->
          Alcotest.failf "expected exactly one span, got %d" (List.length spans))

let test_profile_exception_safe () =
  let r = Tracer.create ~capacity:8 () in
  with_tracing (fun () ->
      let tick = ref 0.0 in
      (try
         Tracer.Profile.with_span ~r ~cat:"t"
           ~tick:(fun () ->
             tick := !tick +. 1.0;
             !tick)
           "boom"
           (fun () -> failwith "inner")
       with Failure _ -> ());
      Alcotest.(check int) "span recorded despite the raise" 1
        (Tracer.length r))

(* ---------- flow edges ---------- *)

(* Only called inside [with_tracing]. *)
let msg ?(cat = "t") ~src ~dst ~id () =
  Tracer.message ~cat ~src ~dst ~tick:(float_of_int id) ~id ()

let test_flow_edges () =
  with_tracing (fun () ->
      (* m0: 0->1, m1: 1->2, m2: 0->2. Consecutive participations:
         P0: m0,m2; P1: m0,m1; P2: m1,m2 — edges (0,1), (0,2), (1,2). *)
      List.iter
        (fun (src, dst, id) -> msg ~src ~dst ~id ())
        [ (0, 1, 0); (1, 2, 1); (0, 2, 2) ];
      match Tracer.flow_edges (Tracer.to_list ()) with
      | [ ("t", edges) ] ->
          Alcotest.(check (list (pair int int)))
            "generating pairs of ▷"
            [ (0, 1); (0, 2); (1, 2) ]
            (List.map
               (fun ((u : Tracer.span), (v : Tracer.span)) ->
                 (u.Tracer.id, v.Tracer.id))
               edges)
      | _ -> Alcotest.fail "expected one category")

let test_flow_edges_dedup () =
  with_tracing (fun () ->
      (* Two messages on the same channel: both endpoint chains yield the
         same (m0, m1) edge; it must appear once. *)
      msg ~src:0 ~dst:1 ~id:0 ();
      msg ~src:1 ~dst:0 ~id:1 ();
      match Tracer.flow_edges (Tracer.to_list ()) with
      | [ ("t", [ (u, v) ]) ] ->
          Alcotest.(check (pair int int))
            "single deduplicated edge" (0, 1)
            (u.Tracer.id, v.Tracer.id)
      | _ -> Alcotest.fail "expected exactly one edge")

(* ---------- exporters ---------- *)

let sample_spans =
  [
    {
      Tracer.kind = Tracer.Complete;
      name = "wait";
      cat = "csp";
      pid = 2;
      tick = 3.0;
      dur = 4.5;
      a = -1;
      b = -1;
      id = -1;
      cells = 0;
      stamp = [||];
    };
    {
      Tracer.kind = Tracer.Instant;
      name = "internal";
      cat = "csp";
      pid = 0;
      tick = 5.0;
      dur = 0.0;
      a = -1;
      b = -1;
      id = -1;
      cells = 0;
      stamp = [||];
    };
    {
      Tracer.kind = Tracer.Message;
      name = "message";
      cat = "session";
      pid = 1;
      tick = 0.0;
      dur = 0.0;
      a = 1;
      b = 2;
      id = 0;
      cells = 3;
      stamp = [| 1; 2; 3 |];
    };
    {
      Tracer.kind = Tracer.Complete;
      name = "matching";
      cat = "poset";
      pid = -1;
      tick = 0.0;
      dur = 17.0;
      a = -1;
      b = -1;
      id = -1;
      cells = 0;
      stamp = [||];
    };
  ]

let test_tracelog_roundtrip_unit () =
  let text = Tracelog.to_string ~dropped:7 sample_spans in
  match Tracelog.of_string text with
  | Error e -> Alcotest.fail e
  | Ok (spans, dropped) ->
      Alcotest.(check int) "dropped round-trips" 7 dropped;
      Alcotest.(check bool) "spans round-trip" true (spans = sample_spans)

let test_chrome_roundtrip_unit () =
  let doc = Chrome.to_json ~dropped:3 sample_spans in
  match Chrome.of_json doc with
  | Error e -> Alcotest.fail e
  | Ok (spans, dropped) ->
      Alcotest.(check int) "dropped round-trips" 3 dropped;
      Alcotest.(check bool) "spans round-trip (flows and metadata skipped)"
        true (spans = sample_spans)

let test_tracelog_rejects_garbage () =
  (match Tracelog.of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted");
  (match Tracelog.of_string "{\"schema\":\"other/9\"}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  match
    Tracelog.of_string
      "{\"schema\":\"synts-tracelog/1\",\"spans\":1,\"dropped\":0}\nnot json\n"
  with
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (String.length e > 0
        && String.sub e 0 (min 14 (String.length e)) = "tracelog line ")
  | Ok _ -> Alcotest.fail "bad span line accepted"

(* Record a computation's messages through a session, in occurrence
   order, so session message ids coincide with the trace's message ids. *)
let record_session_spans trace g =
  Tracer.set_enabled true;
  Tracer.clear ();
  Fun.protect
    ~finally:(fun () -> Tracer.set_enabled false)
    (fun () ->
      let session = Session.of_topology g in
      List.iter
        (fun step ->
          ignore
            (Session.observe session (Synts_ingest.Ingest.event_of_step step)))
        (Trace.steps trace);
      let spans = Tracer.to_list () in
      Tracer.clear ();
      spans)

let prop_tracelog_roundtrip c =
  let g, trace = Gen.build_computation c in
  let spans = record_session_spans trace g in
  match Tracelog.of_string (Tracelog.to_string spans) with
  | Error e -> QCheck2.Test.fail_report e
  | Ok (spans', dropped) -> spans' = spans && dropped = 0

(* The qcheck acceptance property: the Chrome export's flow edges are
   exactly the generating pairs of ▷, so they are sound (each edge is an
   oracle ↦ pair) and complete (their transitive closure is the oracle's
   whole ↦ relation). *)
let prop_chrome_flow_edges_match_oracle c =
  let g, trace = Gen.build_computation c in
  let spans = record_session_spans trace g in
  let pairs = Chrome.flow_edge_pairs (Chrome.to_json spans) in
  let p = Oracle.message_poset trace in
  let n = Poset.size p in
  let sound =
    List.for_all
      (fun (u, v) -> u >= 0 && v >= 0 && u < n && v < n && Poset.lt p u v)
      pairs
  in
  (* Transitive closure of the edges, Warshall over the message count. *)
  let reach = Array.make_matrix n n false in
  List.iter (fun (u, v) -> reach.(u).(v) <- true) pairs;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  let complete = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Poset.lt p i j <> reach.(i).(j) then complete := false
    done
  done;
  sound && !complete

(* ---------- determinism ---------- *)

(* Two identical seeded multi-layer runs (session + lossy rendezvous
   replay + offline Dilworth pipeline) record byte-identical tracelogs —
   every tick is logical, so nothing depends on wall time. *)
let seeded_tracelog seed =
  Tracer.set_enabled true;
  Tracer.clear ();
  Fun.protect
    ~finally:(fun () ->
      Tracer.set_enabled false;
      Tracer.clear ())
    (fun () ->
      let g =
        Topology.build ~rng:(Rng.create seed) (Topology.Client_server (3, 9))
      in
      let d = Decomposition.best g in
      let trace =
        Workload.random (Rng.create (seed + 1)) ~topology:g ~messages:120
          ~internal_prob:0.2 ()
      in
      let session = Session.of_decomposition d in
      List.iter
        (fun step ->
          ignore
            (Session.observe session (Synts_ingest.Ingest.event_of_step step)))
        (Trace.steps trace);
      ignore (Session.finish_events session);
      let scripts = Synts_net.Script.of_trace trace in
      ignore (Synts_net.Rendezvous.run ~seed ~loss:0.1 ~decomposition:d scripts);
      ignore (Offline.timestamp_trace trace);
      Tracelog.to_string ~dropped:(Tracer.dropped Tracer.default)
        (Tracer.to_list ()))

let test_determinism () =
  Alcotest.(check string)
    "identical seeded runs, byte-identical tracelogs" (seeded_tracelog 42)
    (seeded_tracelog 42)

(* ---------- report ---------- *)

let test_report_smoke () =
  let text = Report.render ~dropped:0 sample_spans in
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle and t = String.length text in
        let rec at i =
          i + n <= t && (String.sub text i n = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool) (Printf.sprintf "report mentions %S" needle) true
        found)
    [ "synts trace report"; "csp"; "poset"; "matching"; "p99" ];
  let warned = Report.render ~dropped:5 sample_spans in
  Alcotest.(check bool) "drop warning" true
    (String.length warned > 0
    &&
    let rec at i =
      i + 8 <= String.length warned
      && (String.sub warned i 8 = "WARNING:" || at (i + 1))
    in
    at 0)

(* ---------- session pending queue ---------- *)

let test_session_pending_cap () =
  let before = Tm.Counter.value (Tm.Counter.v "session.dropped_events") in
  let session = Session.of_topology ~pending_cap:2 (Topology.path 2) in
  for _ = 1 to 3 do
    ignore (Session.observe session (Session.Internal { proc = 0 }))
  done;
  (* The message resolves all three pending internals on P0; the queue
     holds two, so the oldest resolved stamp is evicted, counted. *)
  ignore (Session.observe session (Session.Message { src = 0; dst = 1 }));
  Alcotest.(check int) "one eviction" 1 (Session.dropped_events session);
  Alcotest.(check int) "telemetry counter" 1
    (Tm.Counter.value (Tm.Counter.v "session.dropped_events") - before);
  Alcotest.(check int) "queue holds the cap" 2
    (List.length (Session.drain_events session));
  Alcotest.(check int) "drain empties" 0
    (List.length (Session.drain_events session))

let () =
  Alcotest.run "trace"
    [
      ( "recorder",
        [
          Alcotest.test_case "ring overflow drops oldest, counted" `Quick
            test_ring_overflow;
          Alcotest.test_case "disabled recording is a no-op" `Quick
            test_switch_off;
          Alcotest.test_case "begin/end lands one complete span" `Quick
            test_begin_end;
          Alcotest.test_case "Profile.with_span is exception-safe" `Quick
            test_profile_exception_safe;
        ] );
      ( "flow-edges",
        [
          Alcotest.test_case "consecutive participations" `Quick
            test_flow_edges;
          Alcotest.test_case "coincident endpoints deduplicated" `Quick
            test_flow_edges_dedup;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "tracelog round-trip" `Quick
            test_tracelog_roundtrip_unit;
          Alcotest.test_case "chrome round-trip" `Quick
            test_chrome_roundtrip_unit;
          Alcotest.test_case "tracelog rejects malformed input" `Quick
            test_tracelog_rejects_garbage;
          qtest "tracelog round-trips any session recording" Gen.computation
            Gen.computation_print prop_tracelog_roundtrip;
          qtest ~count:60 "chrome flow edges = oracle ↦ (sound + complete)"
            Gen.computation Gen.computation_print
            prop_chrome_flow_edges_match_oracle;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical seeded runs, identical tracelogs"
            `Quick test_determinism;
        ] );
      ("report", [ Alcotest.test_case "render smoke" `Quick test_report_smoke ]);
      ( "session",
        [
          Alcotest.test_case "bounded pending queue evicts oldest, counted"
            `Quick test_session_pending_cap;
        ] );
    ]
