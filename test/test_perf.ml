(* The performance refactor's safety net: the slab stamping kernels, the
   bit-row Dilworth pipeline and the batched telemetry must be
   observationally identical to the seed implementations they replaced
   (which live on as the [*_reference] oracles). *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Dilworth = Synts_poset.Dilworth
module Matching = Synts_poset.Matching
module Bitmatrix = Synts_util.Bitmatrix
module Rng = Synts_util.Rng
module Vector = Synts_clock.Vector
module Stamp_store = Synts_clock.Stamp_store
module Fm_sync = Synts_clock.Fm_sync
module Sk = Synts_clock.Singhal_kshemkalyani
module Online = Synts_core.Online
module Telemetry = Synts_telemetry.Telemetry
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let stamps_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Vector.equal u v) a b

(* ---------- Stamp_store units ---------- *)

let test_store_push_get () =
  let s = Stamp_store.create ~capacity:1 3 in
  let r0 = Stamp_store.push s [| 1; 2; 3 |] in
  let r1 = Stamp_store.push_zero s in
  let r2 = Stamp_store.push_row s r0 in
  (* capacity 1 forces two doublings along the way *)
  Alcotest.(check int) "rows" 3 (Stamp_store.rows s);
  Alcotest.(check (list int)) "r0" [ 1; 2; 3 ]
    (Array.to_list (Stamp_store.get s r0));
  Alcotest.(check (list int)) "r1" [ 0; 0; 0 ]
    (Array.to_list (Stamp_store.get s r1));
  Alcotest.(check (list int)) "r2 copies r0" [ 1; 2; 3 ]
    (Array.to_list (Stamp_store.get s r2))

let test_store_merge_incr () =
  let s = Stamp_store.create 3 in
  let a = Stamp_store.push s [| 5; 0; 2 |] in
  let b = Stamp_store.push s [| 1; 4; 2 |] in
  let m = Stamp_store.push_merge s ~a ~b in
  Alcotest.(check (list int)) "componentwise max" [ 5; 4; 2 ]
    (Array.to_list (Stamp_store.get s m));
  Stamp_store.row_incr s m 1;
  Alcotest.(check (list int)) "incr" [ 5; 5; 2 ]
    (Array.to_list (Stamp_store.get s m));
  Alcotest.(check (list int)) "sources untouched" [ 5; 0; 2 ]
    (Array.to_list (Stamp_store.get s a));
  Alcotest.(check bool) "lt" true (Stamp_store.lt_rows s a m);
  Alcotest.(check bool) "concurrent" true (Stamp_store.concurrent_rows s a b);
  Alcotest.(check int) "diff_count" 2 (Stamp_store.diff_count s a b)

let test_store_blit_truncate_clear () =
  let s = Stamp_store.create 2 in
  let a = Stamp_store.push s [| 1; 1 |] in
  let b = Stamp_store.push s [| 9; 9 |] in
  Stamp_store.blit_rows s ~src:b ~dst:a;
  Alcotest.(check bool) "equal after blit" true (Stamp_store.equal_rows s a b);
  Stamp_store.truncate s 1;
  Alcotest.(check int) "truncated" 1 (Stamp_store.rows s);
  (match Stamp_store.get s 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dropped row still readable");
  Stamp_store.clear s;
  Alcotest.(check int) "cleared" 0 (Stamp_store.rows s)

let test_store_get_into_and_bounds () =
  let s = Stamp_store.create 2 in
  let r = Stamp_store.push s [| 3; 7 |] in
  let buf = Array.make 2 0 in
  Stamp_store.get_into s r buf;
  Alcotest.(check (list int)) "get_into" [ 3; 7 ] (Array.to_list buf);
  Alcotest.(check int) "unsafe_cell" 7 (Stamp_store.unsafe_cell s r 1);
  (match Stamp_store.push s [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dimension mismatch accepted");
  match Stamp_store.create (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative dim accepted"

(* ---------- kernel equivalence (qcheck) ---------- *)

let test_online_slab_matches_reference =
  qtest "online slab stamps = seed stamps" Gen.computation
    Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      stamps_equal
        (Online.timestamp_trace d trace)
        (Online.timestamp_trace_reference d trace))

let test_online_store_matches_trace =
  qtest "timestamp_store rows = timestamp_trace vectors" Gen.computation
    Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let store, rows = Online.timestamp_store d trace in
      let out = Online.timestamp_trace d trace in
      Array.length out = Trace.message_count trace
      && Array.for_all2
           (fun row v -> Vector.equal (Stamp_store.get store row) v)
           (Array.sub rows 0 (Array.length out))
           out)

let test_stamper_matches_reference =
  qtest "compacting stamper = seed stamper" Gen.computation
    Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let slab = Online.stamper d and seed = Online.stamper_reference d in
      Array.for_all
        (fun (m : Trace.message) ->
          Vector.equal
            (slab ~src:m.Trace.src ~dst:m.Trace.dst)
            (seed ~src:m.Trace.src ~dst:m.Trace.dst))
        (Trace.messages trace))

let test_stamper_compaction_long_stream () =
  (* A stream long enough to cross the compaction watermark many times;
     the slab stamper must keep agreeing with the reference throughout. *)
  let g = Topology.star 5 in
  let d = Decomposition.best g in
  let slab = Online.stamper d and seed = Online.stamper_reference d in
  let rng = Rng.create 7 in
  for _ = 1 to 2000 do
    let leaf = 1 + Rng.int rng 4 in
    let src, dst = if Rng.chance rng 0.5 then (0, leaf) else (leaf, 0) in
    let a = slab ~src ~dst and b = seed ~src ~dst in
    if not (Vector.equal a b) then
      Alcotest.failf "diverged: %s vs %s" (Vector.to_string a)
        (Vector.to_string b)
  done

let test_fm_slab_matches_reference =
  qtest "fidge-mattern slab = seed" Gen.computation Gen.computation_print
    (fun c ->
      let _g, trace = Gen.build_computation c in
      stamps_equal
        (Fm_sync.timestamp_trace trace)
        (Fm_sync.timestamp_trace_reference trace))

let test_sk_slab_matches_reference =
  qtest "singhal-kshemkalyani slab = seed (stamps and stats)"
    Gen.computation Gen.computation_print (fun c ->
      let _g, trace = Gen.build_computation c in
      let out, stats = Sk.simulate trace in
      let out', stats' = Sk.simulate_reference trace in
      stamps_equal out out'
      && stats.Sk.messages = stats'.Sk.messages
      && stats.Sk.entries_sent = stats'.Sk.entries_sent
      && stats.Sk.full_entries = stats'.Sk.full_entries)

let test_telemetry_totals_unchanged =
  qtest ~count:60 "batched telemetry counts = per-message counts"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let was = Telemetry.enabled () in
      Telemetry.set_enabled true;
      let read () =
        List.filter_map
          (fun (name, value) ->
            match value with
            | Telemetry.Counter_v v
              when name = "core.online.stamps"
                   || name = "core.online.vector_entries" ->
                Some (name, v)
            | _ -> None)
          (Telemetry.snapshot ())
      in
      let before = read () in
      ignore (Online.timestamp_trace d trace);
      let after_slab = read () in
      ignore (Online.timestamp_trace_reference d trace);
      let after_ref = read () in
      Telemetry.set_enabled was;
      let delta a b =
        List.map2
          (fun (n1, v1) (n2, v2) ->
            assert (n1 = n2);
            (n1, v2 - v1))
          a b
      in
      delta before after_slab = delta after_slab after_ref)

(* ---------- bitset Dilworth pipeline ---------- *)

let poset_print p = Printf.sprintf "poset n=%d" (Poset.size p)

let test_chain_partition_matches_reference =
  qtest "bit-row chain partition = edge-list chain partition" Gen.poset
    poset_print (fun p ->
      Dilworth.min_chain_partition p = Dilworth.min_chain_partition_reference p)

let test_width_antichain_consistent =
  qtest "width = |max antichain| = #chains, antichain is an antichain"
    Gen.poset poset_print (fun p ->
      let w = Dilworth.width p in
      let chains = Dilworth.min_chain_partition p in
      let anti = Dilworth.max_antichain p in
      (Poset.size p = 0 || List.length chains = w)
      && List.length anti = w
      && Dilworth.is_antichain p anti
      && Dilworth.is_chain_partition p chains)

let test_matching_rows_matches_csr =
  qtest "maximum_rows over bit-rows = maximum_csr over comparability CSR"
    Gen.poset poset_print (fun p ->
      let n = Poset.size p in
      let via_rows =
        Matching.maximum_rows ~left:n ~right:n
          ~iter:(fun u f -> Poset.row_iter p u f)
          ~find:(fun u f -> Poset.row_find p u f)
      in
      let csr = Dilworth.comparability_csr p in
      let via_csr = Matching.maximum_csr ~left:n ~right:n csr in
      let edges = ref 0 in
      for u = 0 to n - 1 do
        Poset.row_iter p u (fun _ -> incr edges)
      done;
      Matching.edge_count csr = !edges
      && via_rows.Matching.size = via_csr.Matching.size
      && via_rows.Matching.pair_left = via_csr.Matching.pair_left
      && via_rows.Matching.pair_right = via_csr.Matching.pair_right)

let test_row_find_matches_row_iter =
  qtest "Poset.row_find agrees with row_iter membership" Gen.poset
    poset_print (fun p ->
      let n = Poset.size p in
      let ok = ref true in
      for i = 0 to n - 1 do
        let succs = ref [] in
        Poset.row_iter p i (fun j -> succs := j :: !succs);
        let succs = List.rev !succs in
        (* row_find with an always-false callback sees every successor,
           in the same ascending order *)
        let seen = ref [] in
        let found =
          Poset.row_find p i (fun j ->
              seen := j :: !seen;
              false)
        in
        if found || List.rev !seen <> succs then ok := false;
        (* and stops early on the first hit *)
        List.iteri
          (fun k target ->
            let visited = ref 0 in
            let found =
              Poset.row_find p i (fun j ->
                  incr visited;
                  j = target)
            in
            if (not found) || !visited <> k + 1 then ok := false)
          succs
      done;
      !ok)

let test_of_total_order_fast_path =
  qtest ~count:100 "of_total_order = of_relation on the chain"
    QCheck2.Gen.(
      let* n = int_range 0 30 in
      let* seed = int_bound 1_000_000 in
      let order = Array.init n Fun.id in
      let rng = Rng.create seed in
      for i = n - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t
      done;
      return order)
    (fun o ->
      Printf.sprintf "[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int o))))
    (fun order ->
      let n = Array.length order in
      let pairs = ref [] in
      for i = 0 to n - 2 do
        pairs := (order.(i), order.(i + 1)) :: !pairs
      done;
      Poset.equal (Poset.of_total_order order) (Poset.of_relation n !pairs))

let test_of_total_order_rejects_duplicates () =
  (match Poset.of_total_order [| 0; 0 |] with
  | exception Poset.Cyclic _ -> ()
  | _ -> Alcotest.fail "duplicate accepted");
  match Poset.of_total_order [| 0; 5 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range accepted"

(* ---------- monomorphic comparisons ---------- *)

let test_vector_equal =
  qtest "Vector.equal = structural equality"
    QCheck2.Gen.(
      let* n = int_range 0 8 in
      let* u = array_size (return n) (int_bound 4) in
      let* v = array_size (return n) (int_bound 4) in
      return (u, v))
    (fun (u, v) -> Vector.to_string u ^ " vs " ^ Vector.to_string v)
    (fun (u, v) -> Vector.equal u v = (u = v))

let test_bitmatrix_equal_and_find () =
  let a = Bitmatrix.create 70 and b = Bitmatrix.create 70 in
  Bitmatrix.set a 3 65 true;
  Alcotest.(check bool) "unequal" false (Bitmatrix.equal a b);
  Bitmatrix.set b 3 65 true;
  Alcotest.(check bool) "equal" true (Bitmatrix.equal a b);
  Alcotest.(check bool) "row_find hit" true
    (Bitmatrix.row_find a 3 (fun j -> j = 65));
  Alcotest.(check bool) "row_find miss" false
    (Bitmatrix.row_find a 3 (fun j -> j = 64));
  Alcotest.(check bool) "empty row" false
    (Bitmatrix.row_find a 4 (fun _ -> true))

let () =
  Alcotest.run "perf"
    [
      ( "stamp-store",
        [
          Alcotest.test_case "push/get/grow" `Quick test_store_push_get;
          Alcotest.test_case "merge/incr/compare" `Quick test_store_merge_incr;
          Alcotest.test_case "blit/truncate/clear" `Quick
            test_store_blit_truncate_clear;
          Alcotest.test_case "get_into/bounds" `Quick
            test_store_get_into_and_bounds;
        ] );
      ( "kernel-equivalence",
        [
          test_online_slab_matches_reference;
          test_online_store_matches_trace;
          test_stamper_matches_reference;
          Alcotest.test_case "compaction long stream" `Quick
            test_stamper_compaction_long_stream;
          test_fm_slab_matches_reference;
          test_sk_slab_matches_reference;
          test_telemetry_totals_unchanged;
        ] );
      ( "bitset-dilworth",
        [
          test_chain_partition_matches_reference;
          test_width_antichain_consistent;
          test_matching_rows_matches_csr;
          test_row_find_matches_row_iter;
          test_of_total_order_fast_path;
          Alcotest.test_case "of_total_order validation" `Quick
            test_of_total_order_rejects_duplicates;
        ] );
      ( "monomorphic",
        [
          test_vector_equal;
          Alcotest.test_case "bitmatrix equal/row_find" `Quick
            test_bitmatrix_equal_and_find;
        ] );
    ]
