module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Vertex_cover = Synts_graph.Vertex_cover
module Trace = Synts_sync.Trace
module Examples = Synts_sync.Examples
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Dilworth = Synts_poset.Dilworth
module Vector = Synts_clock.Vector
module Edge_clock = Synts_core.Edge_clock
module Online = Synts_core.Online
module Offline = Synts_core.Offline
module Internal_events = Synts_core.Internal_events
module Validate = Synts_check.Validate
module Oracle = Synts_check.Oracle
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let decomposition_of c trace =
  let g, _ = Gen.build_computation c in
  (* The workload only uses topology edges, so the decomposition of the
     full topology covers the trace. *)
  ignore trace;
  Decomposition.best g

(* ---------- Edge_clock protocol ---------- *)

let test_edge_clock_fig5 () =
  (* Hand-run the paper's Figure 5 on a triangle. *)
  let d = Decomposition.paper (Topology.triangle ()) in
  Alcotest.(check int) "triangle is one group" 1 (Decomposition.size d);
  let p0 = Edge_clock.create d ~pid:0 and p1 = Edge_clock.create d ~pid:1 in
  let payload = Edge_clock.on_send p0 ~dst:1 in
  Alcotest.(check string) "payload is initial vector" "(0)"
    (Vector.to_string payload);
  let `Ack ack, ts1 = Edge_clock.receive p1 ~src:0 payload in
  Alcotest.(check string) "ack carries pre-merge vector" "(0)"
    (Vector.to_string ack);
  let ts0 = Edge_clock.on_ack p0 ~dst:1 ack in
  Alcotest.(check bool) "same timestamp" true (Vector.equal ts0 ts1);
  Alcotest.(check string) "timestamp (1)" "(1)" (Vector.to_string ts1);
  Alcotest.(check int) "dimension" 1 (Edge_clock.dimension p0)

let test_edge_clock_rejects_foreign_channel () =
  let d = Decomposition.paper (Topology.star 4) in
  let p1 = Edge_clock.create d ~pid:1 in
  (* Star rooted at 0: the channel (1, 2) does not exist. *)
  match Edge_clock.on_send p1 ~dst:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign channel accepted"

let test_edge_clock_bad_pid () =
  let d = Decomposition.paper (Topology.star 4) in
  match Edge_clock.create d ~pid:7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range pid accepted"

(* ---------- Figure 6 ---------- *)

let test_fig6_timestamps () =
  let trace = Examples.fig6 () in
  let d = Examples.fig6_decomposition () in
  let ts = Online.timestamp_trace d trace in
  List.iter
    (fun (id, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "m%d" (id + 1))
        (Vector.to_string expected)
        (Vector.to_string ts.(id)))
    Examples.fig6_expected;
  (* The narrated case: P2->P3 is stamped (1,1,1). *)
  Alcotest.(check string) "paper narration" "(1,1,1)"
    (Vector.to_string ts.(2))

(* ---------- Theorem 4: online exactness ---------- *)

let test_theorem4 =
  qtest ~count:250 "Theorem 4: online timestamps encode the poset exactly"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let d = decomposition_of c trace in
      Validate.ok
        (Validate.message_timestamps trace (Online.timestamp_trace d trace)))

let test_protocol_agrees =
  qtest "packet-level protocol equals whole-trace sweep" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let d = decomposition_of c trace in
      Array.for_all2 Vector.equal
        (Online.timestamp_trace d trace)
        (Online.timestamp_trace_protocol d trace))

let test_stamper_agrees =
  qtest "streaming stamper equals whole-trace sweep" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let d = decomposition_of c trace in
      let stamp = Online.stamper d in
      let expected = Online.timestamp_trace d trace in
      Array.for_all
        (fun (m : Trace.message) ->
          Vector.equal
            (stamp ~src:m.Trace.src ~dst:m.Trace.dst)
            expected.(m.Trace.id))
        (Trace.messages trace))

let test_online_any_decomposition =
  (* Theorem 4 holds for any valid decomposition, not just the best one. *)
  qtest ~count:100 "exactness with the sequential decomposition"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.sequential g in
      Validate.ok
        (Validate.message_timestamps trace (Online.timestamp_trace d trace)))

let test_online_vector_size =
  qtest "vector size equals decomposition size" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let d = decomposition_of c trace in
      let ts = Online.timestamp_trace d trace in
      Array.for_all (fun v -> Vector.size v = Decomposition.size d) ts)

let test_online_rejects_uncovered_channel () =
  (* Decomposition of a star does not cover the edge (1,2) used by a
     triangle trace. *)
  let d = Decomposition.paper (Topology.star 3) in
  let trace = Trace.of_steps_exn ~n:3 [ Send (1, 2) ] in
  match Online.timestamp_trace d trace with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "uncovered channel accepted"

(* ---------- Theorem 8 / Figure 9: offline ---------- *)

let test_theorem8_width_bound =
  qtest ~count:250 "Theorem 8: width <= floor(N/2)" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let w = Dilworth.width (Message_poset.of_trace trace) in
      w <= Offline.width_bound ~n:(Trace.n trace))

let test_offline_exact =
  qtest ~count:250 "Figure 9: offline timestamps encode the poset exactly"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      Validate.ok
        (Validate.message_timestamps trace (Offline.timestamp_trace trace)))

let test_offline_size =
  qtest "offline vectors have width-many components" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let ts = Offline.timestamp_trace trace in
      let expected = Offline.dimension_used trace in
      expected <= max 1 (Offline.width_bound ~n:(Trace.n trace))
      && Array.for_all (fun v -> Vector.size v = expected) ts)

let test_offline_fig6 () =
  (* The paper notes 2-dimensional vectors suffice for the Figure 6 run. *)
  let trace = Examples.fig6 () in
  Alcotest.(check int) "dimension used" 2 (Offline.dimension_used trace)

(* ---------- streaming offline pipeline ---------- *)

(* The streaming pipeline's contract: same ↦ / concurrent verdict as the
   batch Figure 9 path on every message pair, on any trace. *)
let stream_order_equivalent ?window trace =
  let batch = Offline.timestamp_trace trace in
  let streamed = Offline.stream_trace ?window trace in
  let k = Array.length batch in
  Array.length streamed = k
  &&
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if
        i <> j
        && Offline.precedes streamed.(i) streamed.(j)
           <> Offline.precedes batch.(i) batch.(j)
      then ok := false
    done
  done;
  !ok

let test_stream_order_equivalent =
  qtest ~count:200 "streamed stamps are order-equivalent to batch"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      stream_order_equivalent trace)

let test_stream_order_equivalent_small_window =
  qtest ~count:200 "order-equivalence survives window retirement"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      stream_order_equivalent ~window:4 trace)

let test_stream_exact =
  qtest ~count:200 "streamed stamps encode the poset exactly"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      Validate.ok (Validate.message_timestamps trace (Offline.stream_trace trace)))

let test_stream_accounting =
  qtest ~count:100 "stream statistics: width bound, message count, memory"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let s = Offline.Stream.create ~n:(Trace.n trace) () in
      Array.iter
        (fun (m : Trace.message) ->
          ignore (Offline.Stream.observe s ~src:m.Trace.src ~dst:m.Trace.dst))
        (Trace.messages trace);
      let w = Dilworth.width (Message_poset.of_trace trace) in
      Offline.Stream.messages s = Trace.message_count trace
      && Offline.Stream.dimension s >= max 1 w
      && (not (Offline.Stream.exact_width s) || Offline.Stream.width s = w)
      && Offline.Stream.peak_live_words s >= Offline.Stream.live_words s - 1)

(* ---------- Theorem 5 end-to-end ---------- *)

let test_theorem5_end_to_end =
  (* End-to-end form of Theorem 5: using the optimal-cover decomposition
     (or the sequential fallback, whichever is smaller), the timestamps a
     computation actually receives have <= min(beta, N-2) components and
     still encode the poset. *)
  qtest ~count:100 "timestamp size <= min(beta, N-2) and exactness holds"
    Gen.small_graph Gen.small_graph_print (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      if Graph.m g = 0 then true
      else
        match Vertex_cover.exact g with
        | None -> QCheck2.assume_fail ()
        | Some cover -> (
            match Decomposition.of_vertex_cover g cover with
            | Error _ -> false
            | Ok stars ->
                let seq = Decomposition.sequential g in
                let d =
                  if Decomposition.size stars <= Decomposition.size seq then
                    stars
                  else seq
                in
                let trace =
                  Workload.random (Rng.create 42) ~topology:g ~messages:40 ()
                in
                Decomposition.size d <= max 1 (min (List.length cover) (n - 2))
                && Validate.ok
                     (Validate.message_timestamps trace
                        (Online.timestamp_trace d trace))))

(* ---------- Theorem 9: internal events ---------- *)

let test_theorem9 =
  qtest ~count:250 "Theorem 9: internal-event stamps capture happened-before"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let d = decomposition_of c trace in
      Validate.ok
        (Validate.internal_stamps trace (Internal_events.of_trace d trace)))

let test_theorem9_offline_vectors =
  qtest ~count:120 "Theorem 9 also holds over offline message timestamps"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let ts = Offline.timestamp_trace trace in
      Validate.ok
        (Validate.internal_stamps trace (Internal_events.of_trace_with ts trace)))

let test_internal_counter () =
  (* Three internal events with no separating message: ordered by counter. *)
  let trace = Trace.of_steps_exn ~n:2 [ Local 0; Local 0; Local 0 ] in
  let d = Decomposition.paper (Topology.star 2) in
  let st = Internal_events.of_trace d trace in
  Alcotest.(check bool) "e0 -> e1" true
    (Internal_events.happened_before st.(0) st.(1));
  Alcotest.(check bool) "e0 -> e2" true
    (Internal_events.happened_before st.(0) st.(2));
  Alcotest.(check bool) "not e2 -> e0" false
    (Internal_events.happened_before st.(2) st.(0))

let test_internal_cross_process_tie () =
  (* The corner case motivating the same-process guard: two messages both
     between P0 and P1, with internal events between them on both sides.
     prev/succ coincide, yet the events are concurrent. *)
  let trace =
    Trace.of_steps_exn ~n:2 [ Send (0, 1); Local 0; Local 1; Send (1, 0) ]
  in
  let d = Decomposition.paper (Topology.star 2) in
  let st = Internal_events.of_trace d trace in
  Alcotest.(check bool) "same surroundings" true
    (Vector.equal st.(0).Internal_events.prev st.(1).Internal_events.prev);
  Alcotest.(check bool) "concurrent despite counters" true
    (Internal_events.concurrent st.(0) st.(1))

let test_internal_infinity () =
  (* An event with no later message happens-before nothing remote. *)
  let trace = Trace.of_steps_exn ~n:2 [ Send (0, 1); Local 0; Local 1 ] in
  let d = Decomposition.paper (Topology.star 2) in
  let st = Internal_events.of_trace d trace in
  Alcotest.(check bool) "succ is infinity" true (st.(0).Internal_events.succ = None);
  Alcotest.(check bool) "e0 (P0) || e1 (P1)" true
    (Internal_events.concurrent st.(0) st.(1))

(* ---------- Groups are chains: the bridge between the two algorithms ---------- *)

let test_groups_form_chain_partition =
  (* Messages of one edge group pairwise share a process (a star's edges
     share the center; a triangle's edges pairwise share endpoints), so
     each group's messages form a chain in (M, ↦). The d groups therefore
     give a chain partition of the poset — which is exactly why
     width ≤ d and the offline algorithm never needs more components than
     the online one. *)
  qtest ~count:200 "each edge group's messages form a chain; width <= d"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let poset = Message_poset.of_trace trace in
      let by_group = Hashtbl.create 16 in
      Array.iter
        (fun (m : Trace.message) ->
          let grp = Decomposition.group_of_edge d m.Trace.src m.Trace.dst in
          Hashtbl.replace by_group grp
            (m.Trace.id :: Option.value ~default:[] (Hashtbl.find_opt by_group grp)))
        (Trace.messages trace);
      let chains_ok =
        Hashtbl.fold
          (fun _ ids acc -> acc && Dilworth.is_chain poset ids)
          by_group true
      in
      chains_ok
      && (Trace.message_count trace = 0
         || Dilworth.width poset <= Decomposition.size d))

(* ---------- Prefix stability (online = incremental) ---------- *)

let test_online_prefix_stable =
  (* The online algorithm's defining practical property: timestamps never
     change once assigned — stamping any prefix yields a prefix of the
     full run's stamps. *)
  qtest ~count:150 "online stamps are prefix-stable"
    QCheck2.Gen.(pair Gen.computation (int_bound 1000))
    (fun (c, k) -> Printf.sprintf "%s cut=%d" (Gen.computation_print c) k)
    (fun (c, k) ->
      let _, trace = Gen.build_computation c in
      let d = decomposition_of c trace in
      let steps = Trace.steps trace in
      let cut = if steps = [] then 0 else k mod (List.length steps + 1) in
      let prefix =
        Trace.of_steps_exn ~n:(Trace.n trace)
          (List.filteri (fun i _ -> i < cut) steps)
      in
      let full = Online.timestamp_trace d trace in
      let pre = Online.timestamp_trace d prefix in
      Array.for_all2 Vector.equal pre
        (Array.sub full 0 (Array.length pre)))

(* ---------- Event_order: hb between ALL events ---------- *)

module Event_order = Synts_core.Event_order
module Happened_before = Synts_sync.Happened_before

let test_event_order_matches_oracle =
  qtest ~count:200 "event-level hb matches the full-node oracle"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let d = decomposition_of c trace in
      let eo = Event_order.of_trace d trace in
      let hb = Happened_before.of_trace trace in
      let mcount = Trace.message_count trace in
      let icount = Trace.internal_count trace in
      let node = function
        | Event_order.Message m -> Happened_before.node_of_message trace m
        | Event_order.Internal e -> Happened_before.node_of_internal trace e
      in
      let events =
        List.init mcount (fun m -> Event_order.Message m)
        @ List.init icount (fun e -> Event_order.Internal e)
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              a = b
              || Event_order.happened_before eo a b
                 = Poset.lt hb (node a) (node b))
            events)
        events)

let test_event_order_mixed_cases () =
  (* P0: e0, m0(P0->P1); P1: m0, e1, m1(P1->P0). *)
  let trace =
    Trace.of_steps_exn ~n:2 [ Local 0; Send (0, 1); Local 1; Send (1, 0) ]
  in
  let d = Decomposition.best (Trace.topology trace) in
  let eo = Event_order.of_trace d trace in
  let open Event_order in
  Alcotest.(check bool) "e0 -> m0" true
    (happened_before eo (Internal 0) (Message 0));
  Alcotest.(check bool) "m0 -> e1" true
    (happened_before eo (Message 0) (Internal 1));
  Alcotest.(check bool) "e0 -> e1" true
    (happened_before eo (Internal 0) (Internal 1));
  Alcotest.(check bool) "m0 -> m1" true
    (happened_before eo (Message 0) (Message 1));
  Alcotest.(check bool) "not m1 -> e0" false
    (happened_before eo (Message 1) (Internal 0));
  Alcotest.(check bool) "e1 -> m1" true
    (happened_before eo (Internal 1) (Message 1))

(* ---------- Online vs offline vs FM cross-check ---------- *)

let test_three_schemes_agree =
  qtest ~count:120 "online, offline and FM agree pairwise on order"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let d = decomposition_of c trace in
      let on = Online.timestamp_trace d trace in
      let off = Offline.timestamp_trace trace in
      let fm = Synts_clock.Fm_sync.timestamp_trace trace in
      let k = Trace.message_count trace in
      let ok = ref true in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if i <> j then begin
            let a = Vector.lt on.(i) on.(j) in
            let b = Vector.lt off.(i) off.(j) in
            let c' = Vector.lt fm.(i) fm.(j) in
            if a <> b || b <> c' then ok := false
          end
        done
      done;
      !ok)

let () =
  Alcotest.run "core"
    [
      ( "edge-clock",
        [
          Alcotest.test_case "figure 5 hand-run" `Quick test_edge_clock_fig5;
          Alcotest.test_case "foreign channel" `Quick
            test_edge_clock_rejects_foreign_channel;
          Alcotest.test_case "bad pid" `Quick test_edge_clock_bad_pid;
        ] );
      ( "figure6",
        [ Alcotest.test_case "worked example" `Quick test_fig6_timestamps ] );
      ( "theorem4-online",
        [
          Alcotest.test_case "uncovered channel" `Quick
            test_online_rejects_uncovered_channel;
          test_theorem4;
          test_protocol_agrees;
          test_stamper_agrees;
          test_online_any_decomposition;
          test_online_vector_size;
          test_online_prefix_stable;
        ] );
      ( "theorem8-offline",
        [
          Alcotest.test_case "figure 6 dimension" `Quick test_offline_fig6;
          test_theorem8_width_bound;
          test_offline_exact;
          test_offline_size;
        ] );
      ( "offline-stream",
        [
          test_stream_order_equivalent;
          test_stream_order_equivalent_small_window;
          test_stream_exact;
          test_stream_accounting;
        ] );
      ( "theorem5", [ test_theorem5_end_to_end ] );
      ( "theorem9-internal",
        [
          Alcotest.test_case "counter ordering" `Quick test_internal_counter;
          Alcotest.test_case "cross-process tie" `Quick
            test_internal_cross_process_tie;
          Alcotest.test_case "infinity succ" `Quick test_internal_infinity;
          test_theorem9;
          test_theorem9_offline_vectors;
        ] );
      ( "cross-scheme",
        [ test_three_schemes_agree; test_groups_form_chain_partition ] );
      ( "event-order",
        [
          Alcotest.test_case "mixed cases" `Quick test_event_order_mixed_cases;
          test_event_order_matches_oracle;
        ] );
    ]
