(* The lint engine: clean inputs lint clean, and every mutation-style
   corruption is flagged by at least one rule.

   The static analyses only earn their keep if they are both quiet on the
   workload generator's output (no false alarms) and loud on each class of
   corruption the paper's preconditions rule out: dangling endpoints,
   broken per-process order, non-synchronizable (crowned) computations,
   decompositions violating Def. 2, rendezvous deadlocks, and protocol
   stamps that diverge from the Figure 5 expectation. *)

module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Async_trace = Synts_sync.Async_trace
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Script = Synts_net.Script
module Validate = Synts_check.Validate
module Gen = Synts_test_support.Gen
module Lint = Synts_lint.Lint
module Finding = Synts_lint.Finding
module Rules = Synts_lint.Rules
module Trace_lint = Synts_lint.Trace_lint
module Decomp_lint = Synts_lint.Decomp_lint
module Csp_lint = Synts_lint.Csp_lint
module Sanitizer = Synts_lint.Sanitizer

let qtest ?(count = 250) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let fired rule findings = List.exists (fun f -> f.Finding.rule = rule) findings

let fired_any rules findings =
  List.exists (fun f -> List.mem f.Finding.rule rules) findings

(* ---------- clean inputs lint clean ---------- *)

let test_workload_lints_clean =
  qtest "generated workloads audit with zero errors" Gen.computation
    Gen.computation_print (fun c ->
      let _g, trace = Gen.build_computation c in
      Finding.errors (Lint.audit trace) = 0)

(* ---------- endpoint corruption ---------- *)

let endpoint_gen =
  QCheck2.Gen.(
    let* c = Gen.computation in
    let* victim = int_bound 10_000 in
    let* kind = oneofl [ `Self; `Dangling ] in
    return (c, victim, kind))

let endpoint_print (c, v, kind) =
  Printf.sprintf "%s victim=%d kind=%s" (Gen.computation_print c) v
    (match kind with `Self -> "self" | `Dangling -> "dangling")

let test_endpoint_corruption_flagged =
  qtest "corrupted endpoints are flagged" endpoint_gen endpoint_print
    (fun (c, victim, kind) ->
      let _g, trace = Gen.build_computation c in
      let sends =
        List.filter
          (function Trace.Send _ -> true | Trace.Local _ -> false)
          (Trace.steps trace)
      in
      if sends = [] then true
      else begin
        let n = Trace.n trace in
        let victim = victim mod List.length sends in
        let msg_seen = ref (-1) in
        let steps =
          List.map
            (fun step ->
              match step with
              | Trace.Local _ -> step
              | Trace.Send (src, dst) ->
                  incr msg_seen;
                  if !msg_seen <> victim then step
                  else begin
                    match kind with
                    | `Self -> Trace.Send (src, src)
                    | `Dangling -> Trace.Send (src, n + 3 + dst)
                  end)
            (Trace.steps trace)
        in
        let findings = Trace_lint.check_steps ~n steps in
        match kind with
        | `Self -> fired "trace/self-message" findings
        | `Dangling -> fired "trace/process-range" findings
      end)

(* ---------- FIFO / crown corruption ---------- *)

(* Swap the receive order of two same-channel messages: the receiver now
   contradicts the sender's order, which is both a FIFO violation and (as
   a crossed pair) a two-message crown. *)
let test_order_swap_flagged =
  qtest "same-channel receive swap is flagged" Gen.computation
    Gen.computation_print (fun c ->
      let _g, trace = Gen.build_computation c in
      let by_channel = Hashtbl.create 16 in
      Array.iter
        (fun (m : Trace.message) ->
          let key = (m.Trace.src, m.Trace.dst) in
          let prev = try Hashtbl.find by_channel key with Not_found -> [] in
          Hashtbl.replace by_channel key (m.Trace.id :: prev))
        (Trace.messages trace);
      let victim =
        Hashtbl.fold
          (fun _ ids acc ->
            match (acc, ids) with
            | None, m2 :: m1 :: _ -> Some (m1, m2)
            | acc, _ -> acc)
          by_channel None
      in
      match victim with
      | None -> true (* no channel carries two messages; nothing to swap *)
      | Some (m1, m2) ->
          let async = Async_trace.of_trace trace in
          let n = Async_trace.n async in
          let q = Async_trace.receiver async m1 in
          let swap = function
            | Async_trace.ARecv m when m = m1 -> Async_trace.ARecv m2
            | Async_trace.ARecv m when m = m2 -> Async_trace.ARecv m1
            | e -> e
          in
          let histories =
            Array.init n (fun p ->
                let h = Async_trace.history async p in
                if p = q then List.map swap h else h)
          in
          let mutated = Async_trace.make_exn ~n histories in
          fired_any [ "trace/fifo"; "trace/crown" ]
            (Trace_lint.check_async mutated))

(* ---------- decomposition corruption ---------- *)

let drop_gen =
  QCheck2.Gen.(
    let* c = Gen.computation in
    let* victim = int_bound 10_000 in
    return (c, victim))

let drop_print (c, v) =
  Printf.sprintf "%s drop=%d" (Gen.computation_print c) v

let test_dropped_group_flagged =
  qtest "dropping a decomposition group leaves an edge uncovered" drop_gen
    drop_print (fun (c, victim) ->
      let g, _trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let groups = Decomposition.groups d in
      if groups = [] then true
      else begin
        let victim = victim mod List.length groups in
        let kept = List.filteri (fun i _ -> i <> victim) groups in
        fired "decomp/uncovered-edge" (Decomp_lint.check g kept)
      end)

(* ---------- sanitizer: stamp corruption ---------- *)

let stamp_gen =
  QCheck2.Gen.(
    let* c = Gen.computation in
    let* victim = int_bound 10_000 in
    let* component = int_bound 10_000 in
    let* delta = oneofl [ -2; -1; 1; 2; 5 ] in
    return (c, victim, component, delta))

let stamp_print (c, v, k, d) =
  Printf.sprintf "%s victim=%d comp=%d delta=%d" (Gen.computation_print c) v k d

let test_stamp_corruption_flagged =
  qtest "any single-component stamp corruption is flagged" stamp_gen
    stamp_print (fun (c, victim, component, delta) ->
      let g, trace = Gen.build_computation c in
      if Trace.message_count trace = 0 then true
      else begin
        let d = Decomposition.best g in
        let ts = Online.timestamp_trace d trace in
        let victim = victim mod Trace.message_count trace in
        let component = component mod Vector.size ts.(0) in
        let mutated = Array.map Vector.copy ts in
        mutated.(victim).(component) <-
          max 0 (mutated.(victim).(component) + delta);
        if Vector.equal mutated.(victim) ts.(victim) then true
        else begin
          (* The Figure 5 stamp is the unique protocol value, so the
             sanitizer's deterministic expectation must differ at the
             victim. *)
          let findings = Sanitizer.check_trace d trace mutated in
          fired_any [ "san/mismatch"; "san/stale-component" ] findings
        end
      end)

let test_sanitizer_clean_stamps () =
  let g = Topology.star 4 in
  let trace =
    Trace.of_steps_exn ~n:4 [ Send (0, 1); Send (1, 0); Send (0, 2); Local 3 ]
  in
  let d = Decomposition.best g in
  let ts = Online.timestamp_trace d trace in
  Alcotest.(check (list reject))
    "protocol stamps sanitize clean" []
    (Sanitizer.check_trace d trace ts)

(* ---------- sanitizer under the CSP runtime (acceptance criterion) ---- *)

module R = Synts_csp.Runtime.Make (struct
  type msg = int
end)

let pipeline_programs : (R.api -> unit) array =
  [|
    (fun api -> ignore (api.R.send 1 10));
    (fun api ->
      let _, payload, _ = api.R.recv () in
      ignore (api.R.send 2 (payload + 1)));
    (fun api -> ignore (api.R.recv ()));
  |]

let test_runtime_under_sanitizer_clean () =
  let d = Decomposition.best (Topology.path 3) in
  let s = Sanitizer.create d ~n:3 in
  let outcome =
    R.run ~seed:7 ~decomposition:d ~on_stamp:(Sanitizer.hook s) ~n:3
      pipeline_programs
  in
  Alcotest.(check (list int)) "no deadlock" [] outcome.R.deadlocked;
  Alcotest.(check int) "both stamps observed" 2 (Sanitizer.messages_observed s);
  Alcotest.(check int) "zero violations" 0 (Sanitizer.violations s)

let test_runtime_under_sanitizer_corrupted () =
  let d = Decomposition.best (Topology.path 3) in
  let s = Sanitizer.create d ~n:3 in
  let corrupting ~src ~dst v =
    let v' = Vector.copy v in
    v'.(0) <- v'.(0) + 3;
    Sanitizer.hook s ~src ~dst v'
  in
  let _ =
    R.run ~seed:7 ~decomposition:d ~on_stamp:corrupting ~n:3 pipeline_programs
  in
  Alcotest.(check bool)
    "corrupted edge clock flagged" true
    (Sanitizer.violations s >= 1)

(* ---------- CSP deadlock analysis ---------- *)

let parse_exn text =
  match Script.parse_system text with
  | Ok scripts -> scripts
  | Error e -> Alcotest.failf "parse_system: %s" e

let test_csp_deadlock () =
  (* Both receive before they send: blocked under every schedule. *)
  let scripts = parse_exn "P0: ?1 . !1\nP1: ?0 . !0" in
  Alcotest.(check bool)
    "cyclic wait flagged" true
    (fired "csp/deadlock" (Csp_lint.check scripts))

let test_csp_may_deadlock () =
  (* The wildcard race: if P0's ?* takes P1's message, the later ?1 waits
     forever while P2 blocks; if it takes P2's, everything completes. *)
  let scripts = parse_exn "P0: ?* . ?1\nP1: !0\nP2: !0" in
  Alcotest.(check bool)
    "wildcard race flagged" true
    (fired "csp/may-deadlock" (Csp_lint.check scripts))

let test_csp_unmatched () =
  let scripts = parse_exn "P0: !1 . !1\nP1: ?0" in
  Alcotest.(check bool)
    "excess sends flagged" true
    (fired "csp/unmatched-send" (Csp_lint.check scripts))

let test_csp_clean_projection () =
  let trace =
    Trace.of_steps_exn ~n:3 [ Send (0, 1); Send (1, 2); Send (2, 0) ]
  in
  Alcotest.(check int)
    "projected scripts have no errors" 0
    (Finding.errors (Csp_lint.check (Script.of_trace trace)))

(* ---------- crown unit ---------- *)

let test_crown_flagged () =
  let findings = Trace_lint.check_async (Async_trace.crown ()) in
  Alcotest.(check bool) "crown detected" true (fired "trace/crown" findings)

let test_crown_witness_none () =
  let trace = Trace.of_steps_exn ~n:2 [ Send (0, 1); Send (1, 0) ] in
  Alcotest.(check bool)
    "synchronous trace has no crown" true
    (Trace_lint.crown_witness (Async_trace.of_trace trace) = None)

(* ---------- rule catalog / --explain ---------- *)

let test_explain_every_rule () =
  List.iter
    (fun (m : Rules.meta) ->
      match Rules.explain m.Rules.id with
      | Ok text ->
          Alcotest.(check bool)
            (m.Rules.id ^ " explain mentions the id")
            true
            (String.length text > String.length m.Rules.id)
      | Error e -> Alcotest.failf "explain %s failed: %s" m.Rules.id e)
    Rules.all

let test_explain_unknown_suggests () =
  match Rules.explain "trace/crwn" with
  | Ok _ -> Alcotest.fail "unknown rule id accepted"
  | Error msg ->
      let mentions needle =
        let open String in
        let n = length needle and h = length msg in
        let rec go i = i + n <= h && (sub msg i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        "suggests trace/crown" true (mentions "trace/crown")

(* ---------- report plumbing ---------- *)

let test_exit_codes () =
  let w = Rules.finding "trace/fifo" Finding.Global "w" in
  let e = Rules.finding "trace/crown" Finding.Global "e" in
  Alcotest.(check int) "clean" 0 (Lint.exit_code ~fail_on:`Error []);
  Alcotest.(check int) "warning below error" 0
    (Lint.exit_code ~fail_on:`Error [ w ]);
  Alcotest.(check int) "warning at warning" 1
    (Lint.exit_code ~fail_on:`Warning [ w ]);
  Alcotest.(check int) "error" 1 (Lint.exit_code ~fail_on:`Error [ e ]);
  Alcotest.(check int) "never" 0 (Lint.exit_code ~fail_on:`Never [ e ])

(* ---------- Validate.sound_only verdict shape (regression) ---------- *)

let test_sound_only_counts_missed () =
  let trace = Trace.of_steps_exn ~n:2 [ Send (0, 1); Send (1, 0) ] in
  let v = Validate.sound_only trace [| 5; 3 |] in
  Alcotest.(check bool) "verdict not ok" false (Validate.ok v);
  Alcotest.(check int)
    "violation lands in missed_orders" 1 v.Validate.missed_orders;
  Alcotest.(check int) "false_orders stays 0" 0 v.Validate.false_orders;
  (* Ordering a concurrent pair is the imprecision sound-only tolerates:
     distinct scalars on two unrelated messages must still verdict ok. *)
  let conc = Trace.of_steps_exn ~n:4 [ Send (0, 1); Send (2, 3) ] in
  let v' = Validate.sound_only conc [| 1; 2 |] in
  Alcotest.(check bool) "concurrent order tolerated" true (Validate.ok v')

let () =
  Alcotest.run "lint"
    [
      ( "clean",
        [
          test_workload_lints_clean;
          Alcotest.test_case "sanitizer: protocol stamps" `Quick
            test_sanitizer_clean_stamps;
          Alcotest.test_case "csp: projected scripts" `Quick
            test_csp_clean_projection;
          Alcotest.test_case "crown witness absent" `Quick
            test_crown_witness_none;
        ] );
      ( "mutations",
        [
          test_endpoint_corruption_flagged;
          test_order_swap_flagged;
          test_dropped_group_flagged;
          test_stamp_corruption_flagged;
        ] );
      ( "csp",
        [
          Alcotest.test_case "deadlock" `Quick test_csp_deadlock;
          Alcotest.test_case "may-deadlock" `Quick test_csp_may_deadlock;
          Alcotest.test_case "unmatched send" `Quick test_csp_unmatched;
        ] );
      ( "sanitizer-runtime",
        [
          Alcotest.test_case "clean run" `Quick
            test_runtime_under_sanitizer_clean;
          Alcotest.test_case "corrupted edge clock" `Quick
            test_runtime_under_sanitizer_corrupted;
        ] );
      ( "rules",
        [
          Alcotest.test_case "crown detected" `Quick test_crown_flagged;
          Alcotest.test_case "explain every rule" `Quick
            test_explain_every_rule;
          Alcotest.test_case "explain unknown suggests" `Quick
            test_explain_unknown_suggests;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
      ( "validate",
        [
          Alcotest.test_case "sound_only counts missed" `Quick
            test_sound_only_counts_missed;
        ] );
    ]
