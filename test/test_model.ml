(* The model checker: exhaustive schedule exploration of the Fig. 5
   protocol must verify the clean protocol on every interleaving, find a
   shrunk, independently-reproducible witness for each seeded mutation,
   and earn its DPOR keep (>= 5x fewer states at the default config).

   The explorer engine is also tested in the abstract (hashing,
   sleep-set pruning, budgets, Stop) and via Csp_lint, whose deadlock
   verdicts now ride on the same engine and must match the bundled
   examples. *)

module Explorer = Synts_explorer.Explorer
module Protocol = Synts_model.Protocol
module Checker = Synts_model.Checker
module Witness = Synts_model.Witness
module Script = Synts_net.Script
module Vector = Synts_clock.Vector
module Finding = Synts_lint.Finding
module Lint = Synts_lint.Lint
module Csp_lint = Synts_lint.Csp_lint

let fired rule findings = List.exists (fun f -> f.Finding.rule = rule) findings

(* ---------- the explorer engine, in the abstract ---------- *)

(* Two independent counters, each stepping 0 -> depth: the schedule tree
   has C(2*depth, depth) leaves but only (depth+1)^2 distinct states. *)
let counters depth : (int * int, [ `A | `B ]) Explorer.system =
  {
    initial = (0, 0);
    enabled =
      (fun (a, b) ->
        (if a < depth then [ `A ] else []) @ if b < depth then [ `B ] else []);
    step = (fun (a, b) -> function `A -> (a + 1, b) | `B -> (a, b + 1));
    key = (fun (a, b) -> Printf.sprintf "%d,%d" a b);
    action_key = (function `A -> "a" | `B -> "b");
    independent = (fun x y -> x <> y);
  }

let explore ?budget ?(hashing = true) ?(dpor = false) sys =
  Explorer.run ?budget ~hashing ~dpor ~visit:(fun _ ~path:_ ~enabled:_ ->
      Explorer.Continue)
    sys

let test_explorer_hashing () =
  let sys = counters 4 in
  let naive = explore ~hashing:false sys in
  let hashed = explore ~hashing:true sys in
  Alcotest.(check int) "naive tree leaves the grid" 251 naive.expanded;
  Alcotest.(check int) "hashing collapses to the grid" 25 hashed.expanded;
  Alcotest.(check bool) "no truncation" false hashed.truncated

let test_explorer_dpor () =
  let sys = counters 4 in
  let hashed = explore ~hashing:true sys in
  (* Sleep sets alone (no hashing) must visit each of the 25 grid states
     exactly once — one representative interleaving per trace class — vs
     the 251-node schedule tree. *)
  let reduced = explore ~hashing:false ~dpor:true sys in
  Alcotest.(check int) "one visit per state" 25 reduced.expanded;
  Alcotest.(check int) "a spanning tree of transitions" 24 reduced.transitions;
  Alcotest.(check bool) "siblings were pruned" true (reduced.sleep_pruned > 0);
  (* Combined with hashing the verdict is identical, and redundant
     transitions into already-visited states disappear too. *)
  let both = explore ~hashing:true ~dpor:true sys in
  Alcotest.(check int) "hashing+dpor states" 25 both.expanded;
  Alcotest.(check bool)
    "fewer step calls than hashing alone" true
    (both.transitions < hashed.transitions)

let test_explorer_budget () =
  let stats = explore ~budget:5 (counters 4) in
  Alcotest.(check bool) "budget trips truncation" true stats.truncated;
  Alcotest.(check int) "budget is respected" 5 stats.expanded

let test_explorer_stop () =
  let visited = ref 0 in
  let stats =
    Explorer.run ~hashing:true
      ~visit:(fun (a, _) ~path:_ ~enabled:_ ->
        incr visited;
        if a = 2 then Explorer.Stop else Explorer.Continue)
      (counters 4)
  in
  Alcotest.(check bool)
    "Stop aborts the search early" true
    (stats.expanded < 25 && !visited = stats.expanded)

(* ---------- the clean protocol verifies ---------- *)

let compile cfg = Protocol.compile_exn cfg

let test_clean_default () =
  let report = Checker.check (compile Protocol.default) in
  Alcotest.(check bool) "no violation" true (report.violation = None);
  Alcotest.(check bool) "not truncated" false report.stats.truncated;
  Alcotest.(check bool) "schedules completed" true (report.terminals > 0);
  Alcotest.(check bool)
    "oracle spot-checked terminals" true
    (report.oracle_checked > 0)

let test_clean_with_faults () =
  let report =
    Checker.check (compile { Protocol.default with faults = 1 })
  in
  Alcotest.(check bool) "crash/recover stays exact" true
    (report.violation = None);
  Alcotest.(check bool) "not truncated" false report.stats.truncated

let test_dpor_reduction () =
  let model = compile Protocol.default in
  let naive = Checker.check ~dpor:false model in
  let reduced = Checker.check ~dpor:true model in
  Alcotest.(check bool) "both verdicts clean" true
    (naive.violation = None && reduced.violation = None);
  let ratio =
    float_of_int naive.stats.expanded /. float_of_int reduced.stats.expanded
  in
  if ratio < 5.0 then
    Alcotest.failf "DPOR reduction %.1fx < 5x (%d vs %d states)" ratio
      naive.stats.expanded reduced.stats.expanded

(* ---------- every mutation is caught, shrunk and reproduced ---------- *)

let check_mutation ?(faults = 0) mutation expected_rule =
  let cfg = { Protocol.default with mutation = Some mutation; faults } in
  let report = Checker.check (compile cfg) in
  match report.violation with
  | None ->
      Alcotest.failf "mutation %s not caught"
        (Protocol.mutation_to_string mutation)
  | Some v ->
      Alcotest.(check string) "rule" expected_rule v.rule;
      let w = v.witness in
      Alcotest.(check bool) "witness has a schedule" true (w.actions <> []);
      (* Shrinking must at least drop the padding internal events. *)
      List.iter
        (function
          | Protocol.Internal _ -> Alcotest.fail "internal event in witness"
          | _ -> ())
        w.actions;
      (* Independent cross-checks: the sanitizer's Fig. 5 shadow and the
         real CSP runtime must both disagree with the witness stamps. *)
      (match Checker.replay w with
      | Error e -> Alcotest.failf "replay failed: %s" e
      | Ok r ->
          Alcotest.(check bool)
            "sanitizer flags the witness" true
            (Finding.errors r.sanitizer > 0);
          Alcotest.(check bool)
            "runtime stamps diverge" true (r.runtime_divergences > 0));
      (* End to end: the serialized witness fails lint. *)
      (match Witness.of_string (Witness.to_string w) with
      | Error e -> Alcotest.failf "witness round-trip: %s" e
      | Ok w' -> (
          match Witness.trace w' with
          | Error e -> Alcotest.failf "witness trace: %s" e
          | Ok trace ->
              Alcotest.(check bool)
                "synts lint rejects the witness" true
                (Finding.errors (Lint.audit_stamped trace w'.stamps) > 0)))

let test_skip_increment () = check_mutation Skip_increment "model/exactness"
let test_stale_ack () = check_mutation Stale_ack "model/agreement"

let test_forget_checkpoint () =
  check_mutation ~faults:1 Forget_checkpoint "model/recovery-loss"

(* ---------- deadlocks ---------- *)

let deadlock_scripts () =
  match Script.parse_system "P0: ?1 . !1\nP1: ?0 . !0" with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse_system: %s" e

let test_deadlock_found () =
  let cfg = { Protocol.default with system = Some (deadlock_scripts ()) } in
  let report = Checker.check (compile cfg) in
  match report.violation with
  | Some v ->
      Alcotest.(check string) "rule" "model/deadlock" v.rule;
      (* The witness carries the full scripts; lint's independent
         rendezvous exploration must agree. *)
      Alcotest.(check bool)
        "lint confirms the deadlock" true
        (fired "csp/deadlock" (Lint.audit_scripts v.witness.scripts))
  | None -> Alcotest.fail "deadlock not found"

(* ---------- config and witness formats round-trip ---------- *)

let test_config_round_trip () =
  let cfg =
    {
      Protocol.procs = 4;
      events = 5;
      faults = 2;
      mutation = Some Protocol.Stale_ack;
      system = None;
      churn = [ (2, "join:4:4-0"); (4, "leave:1") ];
    }
  in
  match Protocol.of_string (Protocol.to_string cfg) with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok cfg' ->
      Alcotest.(check bool) "config survives round-trip" true (cfg = cfg')

let test_config_with_system () =
  let cfg =
    { Protocol.default with system = Some (deadlock_scripts ()); procs = 2 }
  in
  match Protocol.of_string (Protocol.to_string cfg) with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok cfg' -> (
      match cfg'.system with
      | None -> Alcotest.fail "embedded system lost"
      | Some s ->
          Alcotest.(check int) "system size" 2 (Array.length s);
          Alcotest.(check int) "procs derived" 2 cfg'.procs)

let test_witness_round_trip () =
  let report =
    Checker.check
      (compile { Protocol.default with mutation = Some Skip_increment })
  in
  match report.violation with
  | None -> Alcotest.fail "no witness to round-trip"
  | Some v -> (
      let w = v.witness in
      match Witness.of_string (Witness.to_string w) with
      | Error e -> Alcotest.failf "of_string: %s" e
      | Ok w' ->
          Alcotest.(check string) "rule" w.rule w'.rule;
          Alcotest.(check int) "procs" w.procs w'.procs;
          Alcotest.(check bool) "mutation" true (w.mutation = w'.mutation);
          Alcotest.(check int) "schedule length" (List.length w.actions)
            (List.length w'.actions);
          Alcotest.(check int) "stamp count" (Array.length w.stamps)
            (Array.length w'.stamps);
          Array.iteri
            (fun i s ->
              Alcotest.(check bool)
                (Printf.sprintf "stamp %d" i)
                true
                (Vector.equal s w'.stamps.(i)))
            w.stamps)

(* ---------- churn across epoch boundaries ---------- *)

(* The bundled examples/model/churn.model, inlined: N = 3 plus P3
   joining on 3-0/3-2 after the 2nd message, P1 leaving after the 4th.
   The scripts force a message chain except for one msg-3/msg-4
   commutation, and the leaver is scripted to finish before its
   threshold, so every schedule completes. *)
let churn_config ?mutation () =
  let system =
    match
      Script.parse_system
        "P0: !1 . ?3\nP1: ?0 . !2 . ?2\nP2: ?1 . !1 . ?3\nP3: !0 . !2"
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  {
    Protocol.default with
    system = Some system;
    procs = 4;
    mutation;
    churn = [ (2, "join:3:3-0,3-2"); (4, "leave:1") ];
  }

let test_churn_clean () =
  let report = Checker.check (compile (churn_config ())) in
  Alcotest.(check bool) "stamps stay exact across epochs" true
    (report.violation = None);
  Alcotest.(check bool) "not truncated" false report.stats.truncated;
  Alcotest.(check bool) "no schedule deadlocks" true (report.terminals > 0);
  Alcotest.(check bool)
    "oracle spot-checked terminals" true
    (report.oracle_checked > 0)

let test_churn_catches_mutation () =
  (* The oracle must still bite when epochs change under it. *)
  let report =
    Checker.check (compile (churn_config ~mutation:Protocol.Skip_increment ()))
  in
  Alcotest.(check bool) "skip-increment caught under churn" true
    (report.violation <> None)

let test_churn_rejects_low_joiner () =
  (* A joiner that is not a top process id would start inside the
     epoch-0 universe — compile must refuse, not mis-stamp. *)
  let cfg = { (churn_config ()) with churn = [ (2, "join:1:1-0") ] } in
  match Protocol.compile cfg with
  | Ok _ -> Alcotest.fail "low joiner id accepted"
  | Error e ->
      Alcotest.(check bool) "error names the id rule" true
        (String.length e > 0)

(* ---------- Csp_lint rides the same engine ---------- *)

let parse sys =
  match Script.parse_system sys with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse_system: %s" e

let test_csp_lint_parity () =
  (* The bundled examples/traces/deadlock.system, inlined: both verdict
     paths (definite deadlock; clean pipeline) must be unchanged by the
     explorer refactor. *)
  let dead = Csp_lint.explore (deadlock_scripts ()) in
  Alcotest.(check bool) "deadlock.system never completes" false dead.completed;
  Alcotest.(check bool) "a stuck state is reported" true (dead.stuck <> None);
  let clean = Csp_lint.explore (parse "P0: !1 . !1\nP1: ?0 . ?0 . !2\nP2: ?1") in
  Alcotest.(check bool) "pipeline completes" true clean.completed;
  Alcotest.(check bool) "pipeline never sticks" true (clean.stuck = None);
  let wild = Csp_lint.explore (parse "P0: !1\nP1: ?* . ?0\nP2: !1") in
  Alcotest.(check bool) "wildcard race may deadlock" true
    (wild.completed && wild.stuck <> None)

let () =
  Alcotest.run "model"
    [
      ( "explorer",
        [
          Alcotest.test_case "hashing merges states" `Quick
            test_explorer_hashing;
          Alcotest.test_case "sleep sets prune" `Quick test_explorer_dpor;
          Alcotest.test_case "budget truncates" `Quick test_explorer_budget;
          Alcotest.test_case "stop aborts" `Quick test_explorer_stop;
        ] );
      ( "clean",
        [
          Alcotest.test_case "default scenario verifies" `Quick
            test_clean_default;
          Alcotest.test_case "crash/recover verifies" `Quick
            test_clean_with_faults;
          Alcotest.test_case "dpor >= 5x reduction" `Quick test_dpor_reduction;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "skip-increment" `Quick test_skip_increment;
          Alcotest.test_case "stale-ack" `Quick test_stale_ack;
          Alcotest.test_case "forget-checkpoint" `Quick test_forget_checkpoint;
        ] );
      ( "deadlock",
        [ Alcotest.test_case "found and confirmed" `Quick test_deadlock_found ]
      );
      ( "formats",
        [
          Alcotest.test_case "config round-trip" `Quick test_config_round_trip;
          Alcotest.test_case "config with system" `Quick
            test_config_with_system;
          Alcotest.test_case "witness round-trip" `Quick
            test_witness_round_trip;
        ] );
      ( "churn",
        [
          Alcotest.test_case "join+leave verifies" `Quick test_churn_clean;
          Alcotest.test_case "mutation caught under churn" `Quick
            test_churn_catches_mutation;
          Alcotest.test_case "low joiner id rejected" `Quick
            test_churn_rejects_low_joiner;
        ] );
      ( "csp-lint",
        [ Alcotest.test_case "verdict parity" `Quick test_csp_lint_parity ] );
    ]
