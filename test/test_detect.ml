module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Poset = Synts_poset.Poset
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Internal_events = Synts_core.Internal_events
module Predicate = Synts_detect.Predicate
module Orphan = Synts_detect.Orphan
module Oracle = Synts_check.Oracle
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let stamps_of c =
  let g, trace = Gen.build_computation c in
  let d = Decomposition.best g in
  (trace, Internal_events.of_trace d trace)

(* ---------- Predicate intervals ---------- *)

let test_overlap_basics () =
  let v a b = [| a; b |] in
  let i ~proc since until = { Predicate.proc; since; until } in
  let a = i ~proc:0 (v 0 0) (Some (v 2 1)) in
  let b = i ~proc:1 (v 1 0) (Some (v 3 1)) in
  Alcotest.(check bool) "overlapping" true (Predicate.overlap a b);
  let c = i ~proc:2 (v 2 1) None in
  Alcotest.(check bool) "a definitely before c" true
    (Predicate.definitely_ordered a c);
  Alcotest.(check bool) "no overlap a c" false (Predicate.overlap a c);
  Alcotest.(check bool) "c unbounded overlaps b" true (Predicate.overlap b c);
  Alcotest.(check bool) "same process never overlaps" false
    (Predicate.overlap a { a with since = v 0 0 })

let test_overlap_equals_concurrency =
  (* For internal events of different processes, interval overlap must
     coincide with happened-before concurrency (Theorem 9 rephrased). *)
  qtest ~count:200 "interval overlap = event concurrency" Gen.computation
    Gen.computation_print (fun c ->
      let trace, stamps = stamps_of c in
      let hb = Oracle.happened_before_internal trace in
      let k = Array.length stamps in
      let ok = ref true in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if
            i <> j
            && stamps.(i).Internal_events.proc
               <> stamps.(j).Internal_events.proc
          then begin
            let a = Predicate.interval_of_internal stamps.(i) in
            let b = Predicate.interval_of_internal stamps.(j) in
            let concurrent = (not (hb i j)) && not (hb j i) in
            if Predicate.overlap a b <> concurrent then ok := false
          end
        done
      done;
      !ok)

(* Brute-force witness search for cross-validation. *)
let brute_possibly queues =
  let rec go chosen = function
    | [] ->
        if
          List.for_all
            (fun a ->
              List.for_all
                (fun b -> a == b || Predicate.overlap a b)
                chosen)
            chosen
        then Some chosen
        else None
    | q :: rest ->
        List.find_map (fun iv -> go (iv :: chosen) rest) q
  in
  go [] queues

let test_possibly_matches_brute =
  qtest ~count:200 "possibly agrees with brute-force search" Gen.computation
    Gen.computation_print (fun c ->
      let _trace, stamps = stamps_of c in
      if Array.length stamps = 0 then true
      else begin
        (* Monitor up to 3 processes that actually have internal events,
           with up to 4 intervals each. *)
        let by_proc = Hashtbl.create 8 in
        Array.iter
          (fun s ->
            let p = s.Internal_events.proc in
            let cur = Option.value ~default:[] (Hashtbl.find_opt by_proc p) in
            if List.length cur < 4 then
              Hashtbl.replace by_proc p
                (cur @ [ Predicate.interval_of_internal s ]))
          stamps;
        let monitored =
          Hashtbl.fold (fun p ivs acc -> (p, ivs) :: acc) by_proc []
          |> List.sort compare
          |> fun l -> List.filteri (fun i _ -> i < 3) l
        in
        if monitored = [] then true
        else begin
          let fast = Predicate.possibly monitored in
          let brute = brute_possibly (List.map snd monitored) in
          (match (fast, brute) with
          | Some w, Some _ ->
              (* The witness itself must be pairwise overlapping. *)
              List.for_all
                (fun a ->
                  List.for_all
                    (fun b -> a == b || Predicate.overlap a b)
                    w)
                w
          | None, None -> true
          | Some _, None | None, Some _ -> false)
        end
      end)

let test_possibly_simple () =
  (* P0 predicate true only before any message; P1 only after a message
     that P0's interval precedes. *)
  let trace =
    Trace.of_steps_exn ~n:2 [ Local 0; Send (0, 1); Local 1 ]
  in
  let d = Decomposition.best (Trace.topology trace) in
  let stamps = Internal_events.of_trace d trace in
  let iv i = Predicate.interval_of_internal stamps.(i) in
  (match Predicate.possibly [ (0, [ iv 0 ]); (1, [ iv 1 ]) ] with
  | None -> ()
  | Some _ -> Alcotest.fail "ordered events accepted as witness");
  (* Concurrent events: both after the sync point. *)
  let trace2 = Trace.of_steps_exn ~n:2 [ Send (0, 1); Local 0; Local 1 ] in
  let stamps2 = Internal_events.of_trace d trace2 in
  let iv2 i = Predicate.interval_of_internal stamps2.(i) in
  match Predicate.possibly [ (0, [ iv2 0 ]); (1, [ iv2 1 ]) ] with
  | Some _ -> ()
  | None -> Alcotest.fail "concurrent events rejected"

(* ---------- Orphans ---------- *)

let failure_gen =
  QCheck2.Gen.(
    let* c = Gen.computation in
    let* proc_pick = int_bound 1000 in
    let* survives = int_bound 20 in
    return (c, proc_pick, survives))

let failure_print (c, p, s) =
  Printf.sprintf "%s proc_pick=%d survives=%d" (Gen.computation_print c) p s

let test_orphans_match_oracle =
  qtest ~count:200 "timestamp-based orphans = poset-based orphans"
    failure_gen failure_print (fun (c, proc_pick, survives) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let ts = Online.timestamp_trace d trace in
      let failure =
        { Orphan.proc = proc_pick mod Trace.n trace; survives }
      in
      let fast = Orphan.orphans trace ts failure in
      let lost = Orphan.lost_messages trace failure in
      let poset = Oracle.message_poset trace in
      let slow =
        List.filter
          (fun m ->
            List.exists (fun l -> l = m || Poset.lt poset l m) lost)
          (List.init (Trace.message_count trace) Fun.id)
      in
      fast = slow)

let test_orphan_properties =
  qtest ~count:150 "orphan set sanity" failure_gen failure_print
    (fun (c, proc_pick, survives) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let ts = Online.timestamp_trace d trace in
      let failure = { Orphan.proc = proc_pick mod Trace.n trace; survives } in
      let lost = Orphan.lost_messages trace failure in
      let orphaned = Orphan.orphans trace ts failure in
      let stable = Orphan.stable_messages trace ts failure in
      let rollback = Orphan.rollback_processes trace ts failure in
      (* Lost ⊆ orphans; orphans ∪ stable partitions the messages; the
         failed process rolls back whenever it lost anything. *)
      List.for_all (fun l -> List.mem l orphaned) lost
      && List.sort compare (orphaned @ stable)
         = List.init (Trace.message_count trace) Fun.id
      && (lost = [] || List.mem failure.Orphan.proc rollback))

let test_orphans_multi =
  qtest ~count:100 "multi-failure orphans are the union of single failures"
    failure_gen failure_print (fun (c, proc_pick, survives) ->
      let g, trace = Gen.build_computation c in
      if Trace.n trace < 2 then true
      else begin
        let d = Decomposition.best g in
        let ts = Online.timestamp_trace d trace in
        let f1 = { Orphan.proc = proc_pick mod Trace.n trace; survives } in
        let f2 =
          { Orphan.proc = (proc_pick + 1) mod Trace.n trace;
            survives = survives / 2 }
        in
        Orphan.orphans_multi trace ts [ f1; f2 ]
        = List.sort_uniq compare
            (Orphan.orphans trace ts f1 @ Orphan.orphans trace ts f2)
      end)

let test_orphan_no_loss () =
  let trace = Trace.of_steps_exn ~n:3 [ Send (0, 1); Send (1, 2) ] in
  let d = Decomposition.best (Trace.topology trace) in
  let ts = Online.timestamp_trace d trace in
  let failure = { Orphan.proc = 0; survives = 5 } in
  Alcotest.(check (list int)) "nothing lost" []
    (Orphan.lost_messages trace failure);
  Alcotest.(check (list int)) "no orphans" []
    (Orphan.orphans trace ts failure)

let test_orphan_cascade () =
  (* P0 -> P1, then P1 -> P2: losing P0's message orphans the chain. *)
  let trace = Trace.of_steps_exn ~n:3 [ Send (0, 1); Send (1, 2) ] in
  let d = Decomposition.best (Trace.topology trace) in
  let ts = Online.timestamp_trace d trace in
  let failure = { Orphan.proc = 0; survives = 0 } in
  Alcotest.(check (list int)) "both orphaned" [ 0; 1 ]
    (Orphan.orphans trace ts failure);
  Alcotest.(check (list int)) "everyone rolls back" [ 0; 1; 2 ]
    (Orphan.rollback_processes trace ts failure)

let test_orphan_independent_survives () =
  (* A concurrent message on disjoint processes survives. *)
  let trace = Trace.of_steps_exn ~n:4 [ Send (0, 1); Send (2, 3) ] in
  let d = Decomposition.best (Trace.topology trace) in
  let ts = Online.timestamp_trace d trace in
  let failure = { Orphan.proc = 0; survives = 0 } in
  Alcotest.(check (list int)) "only m0 orphaned" [ 0 ]
    (Orphan.orphans trace ts failure);
  Alcotest.(check (list int)) "m1 stable" [ 1 ]
    (Orphan.stable_messages trace ts failure)

(* ---------- Online WCP monitor ---------- *)

module Wcp_monitor = Synts_detect.Wcp_monitor

let monitored_intervals stamps =
  let by_proc = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      let p = s.Internal_events.proc in
      Hashtbl.replace by_proc p
        (Predicate.interval_of_internal s
        :: Option.value ~default:[] (Hashtbl.find_opt by_proc p)))
    stamps;
  Hashtbl.fold (fun p ivs acc -> (p, List.rev ivs) :: acc) by_proc []
  |> List.sort compare

let test_wcp_monitor_matches_offline =
  qtest ~count:200 "online monitor verdict = offline possibly"
    Gen.computation Gen.computation_print (fun c ->
      let _trace, stamps = stamps_of c in
      let monitored = monitored_intervals stamps in
      if monitored = [] then true
      else begin
        let offline = Predicate.possibly monitored in
        let monitor =
          Wcp_monitor.create ~processes:(List.map fst monitored)
        in
        (* Feed interleaved by occurrence order across processes: round
           robin over the original per-process lists. *)
        let queues = ref (List.map snd monitored) in
        let continue = ref true in
        while !continue do
          let fed = ref false in
          queues :=
            List.map
              (function
                | [] -> []
                | iv :: rest ->
                    ignore (Wcp_monitor.add monitor iv);
                    fed := true;
                    rest)
              !queues;
          if not !fed then continue := false
        done;
        match (offline, Wcp_monitor.witness monitor) with
        | Some _, Some w ->
            List.for_all
              (fun a -> List.for_all (fun b -> a == b || Predicate.overlap a b) w)
              w
        | None, None -> true
        | Some _, None | None, Some _ -> false
      end)

let test_wcp_monitor_early_detection () =
  let iv ~proc since until =
    { Predicate.proc; since = [| since |]; until = Option.map (fun u -> [| u |]) until }
  in
  let m = Wcp_monitor.create ~processes:[ 0; 1 ] in
  Alcotest.(check bool) "one queue empty: pending" true
    (Wcp_monitor.add m (iv ~proc:0 0 (Some 5)) = None);
  (* Overlapping interval on P1 completes the witness immediately. *)
  (match Wcp_monitor.add m (iv ~proc:1 2 (Some 7)) with
  | Some [ _; _ ] -> ()
  | _ -> Alcotest.fail "witness expected");
  Alcotest.(check int) "queues cleared" 0 (Wcp_monitor.pending_intervals m);
  (* Further intervals are ignored, witness latched. *)
  Alcotest.(check bool) "latched" true (Wcp_monitor.witness m <> None)

let test_wcp_monitor_elimination () =
  let iv ~proc since until =
    { Predicate.proc; since = [| since |]; until = Option.map (fun u -> [| u |]) until }
  in
  let m = Wcp_monitor.create ~processes:[ 0; 1 ] in
  (* P0's interval ends before P1's begins: eliminated, no witness. *)
  ignore (Wcp_monitor.add m (iv ~proc:0 0 (Some 2)));
  Alcotest.(check bool) "ordered pair: no witness" true
    (Wcp_monitor.add m (iv ~proc:1 2 None) = None);
  (* A later P0 interval overlapping P1's open interval wins. *)
  (match Wcp_monitor.add m (iv ~proc:0 3 None) with
  | Some _ -> ()
  | None -> Alcotest.fail "witness expected after elimination")

(* ---------- Recovery lines ---------- *)

let test_recovery_line_simple () =
  (* P0 checkpoints after its first message; P1 after its first two
     occurrences. Crash of P0 keeping 1 message. *)
  let trace =
    Trace.of_steps_exn ~n:2 [ Send (0, 1); Local 1; Send (0, 1); Send (1, 0) ]
  in
  let checkpoints = [| [ 1 ]; [ 2 ] |] in
  let line =
    Orphan.recovery_line trace ~checkpoints { Orphan.proc = 0; survives = 1 }
  in
  (* P0 restarts from its checkpoint (1 occurrence); P1 keeps only the
     part before the second message: its checkpoint at 2. *)
  Alcotest.(check (array int)) "line" [| 1; 2 |] line

let test_recovery_line_cascade () =
  (* No checkpoints anywhere: everything collapses to the start. *)
  let trace =
    Trace.of_steps_exn ~n:3 [ Send (0, 1); Send (1, 2); Send (2, 0) ]
  in
  let line =
    Orphan.recovery_line trace ~checkpoints:[| []; []; [] |]
      { Orphan.proc = 0; survives = 0 }
  in
  Alcotest.(check (array int)) "domino to zero" [| 0; 0; 0 |] line

let test_recovery_line_unaffected () =
  (* A disjoint pair keeps its state. *)
  let trace = Trace.of_steps_exn ~n:4 [ Send (0, 1); Send (2, 3) ] in
  let line =
    Orphan.recovery_line trace ~checkpoints:[| []; []; []; [] |]
      { Orphan.proc = 0; survives = 0 }
  in
  Alcotest.(check (array int)) "P2,P3 keep everything" [| 0; 0; 1; 1 |] line

let recovery_gen =
  QCheck2.Gen.(
    let* n = int_range 2 4 in
    let* seed = int_bound 100000 in
    let* messages = int_range 0 10 in
    let* proc_pick = int_bound 100 in
    let* survives = int_bound 6 in
    return (n, seed, messages, proc_pick, survives))

let recovery_print (n, seed, messages, p, s) =
  Printf.sprintf "n=%d seed=%d msgs=%d proc=%d survives=%d" n seed messages p s

let test_recovery_line_maximal =
  qtest ~count:150 "recovery line is the maximum consistent candidate line"
    recovery_gen recovery_print (fun (n, seed, messages, proc_pick, survives) ->
      let rng = Rng.create seed in
      let g = Topology.complete n in
      let trace =
        Workload.random rng ~topology:g ~messages ~internal_prob:0.3 ()
      in
      let failure = { Orphan.proc = proc_pick mod n; survives } in
      (* Random checkpoint placements. *)
      let history_len p = List.length (Trace.process_history trace p) in
      let checkpoints =
        Array.init n (fun p ->
            List.sort_uniq compare
              (List.init (Rng.int rng 3) (fun _ ->
                   Rng.int rng (history_len p + 1))))
      in
      let line = Orphan.recovery_line trace ~checkpoints failure in
      (* Brute force: enumerate all candidate combinations, keep the
         consistent ones respecting the failure limit, take the maximum. *)
      let failed_limit =
        let msgs = ref 0 and limit = ref (history_len failure.Orphan.proc) in
        List.iteri
          (fun idx occ ->
            match occ with
            | Trace.Msg _ ->
                incr msgs;
                if !msgs = failure.Orphan.survives + 1 && !limit > idx then
                  limit := idx
            | Trace.Int _ -> ())
          (Trace.process_history trace failure.Orphan.proc);
        !limit
      in
      let candidates p =
        let base = 0 :: checkpoints.(p) in
        List.sort_uniq compare
          (if p = failure.Orphan.proc then
             List.filter (fun c -> c <= failed_limit) base
           else base @ [ history_len p ])
      in
      let rec combos p =
        if p = n then [ [] ]
        else
          List.concat_map
            (fun rest -> List.map (fun c -> c :: rest) (candidates p))
            (combos (p + 1))
      in
      let consistent_lines =
        List.filter
          (fun cs -> Synts_detect.Cuts.consistent trace (Array.of_list cs))
          (combos 0)
      in
      (* The pointwise maximum of consistent lines is itself consistent
         (lattice property); the algorithm must return exactly it. *)
      let maximum =
        List.fold_left
          (fun acc cs -> Array.map2 max acc (Array.of_list cs))
          (Array.make n 0) consistent_lines
      in
      line = maximum && Synts_detect.Cuts.consistent trace line)

(* ---------- Boundary traces (cross-checked against the linter) ------- *)

(* Degenerate inputs that historically break detection code: one process,
   zero messages, and a maximum-width message poset (every pair
   concurrent). Each trace is also pushed through the trace linter so
   "valid boundary input" is asserted by an independent checker rather
   than assumed. *)

let lints_without_errors trace =
  Synts_lint.Finding.errors
    (Synts_lint.Trace_lint.check ~topology:(Trace.topology trace) trace)
  = 0

let test_boundary_single_process () =
  let trace = Trace.of_steps_exn ~n:1 [ Local 0; Local 0; Local 0 ] in
  Alcotest.(check bool) "lints clean" true (lints_without_errors trace);
  let failure = { Orphan.proc = 0; survives = 0 } in
  Alcotest.(check (list int)) "nothing to lose" []
    (Orphan.lost_messages trace failure);
  Alcotest.(check (list int)) "no orphans" []
    (Orphan.orphans trace [||] failure);
  (* A single monitored process needs no overlap: its first interval is a
     complete witness. *)
  let iv since until =
    { Predicate.proc = 0; since = [| since |];
      until = Option.map (fun u -> [| u |]) until }
  in
  let m = Wcp_monitor.create ~processes:[ 0 ] in
  (match Wcp_monitor.add m (iv 0 (Some 1)) with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "single-process witness expected")

let test_boundary_zero_messages () =
  let trace = Trace.of_steps_exn ~n:2 [] in
  Alcotest.(check bool) "lints clean" true (lints_without_errors trace);
  Alcotest.(check int) "no messages" 0 (Trace.message_count trace);
  let failure = { Orphan.proc = 1; survives = 0 } in
  Alcotest.(check (list int)) "no orphans" []
    (Orphan.orphans trace [||] failure);
  Alcotest.(check (list int)) "nothing lost, nobody rolls back" []
    (Orphan.rollback_processes trace [||] failure);
  (* A monitor over processes that never report stays pending forever. *)
  let m = Wcp_monitor.create ~processes:[ 0; 1 ] in
  Alcotest.(check bool) "no witness" true (Wcp_monitor.witness m = None)

let test_boundary_max_width () =
  (* Three disjoint messages: the message poset is an antichain of width
     3, and the three post-message internal events are pairwise
     concurrent. *)
  let trace =
    Trace.of_steps_exn ~n:6
      [ Send (0, 1); Local 1; Send (2, 3); Local 3; Send (4, 5); Local 5 ]
  in
  Alcotest.(check bool) "lints clean" true (lints_without_errors trace);
  let d = Decomposition.best (Trace.topology trace) in
  let ts = Online.timestamp_trace d trace in
  (* Every message is pairwise concurrent with the others. *)
  let poset = Oracle.message_poset trace in
  for i = 0 to 2 do
    for j = 0 to 2 do
      if i <> j then
        Alcotest.(check bool)
          (Printf.sprintf "m%d || m%d" i j)
          false (Poset.lt poset i j)
    done
  done;
  (* Losing one message orphans only it; the width-3 remainder stands. *)
  let failure = { Orphan.proc = 0; survives = 0 } in
  Alcotest.(check (list int)) "only m0 orphaned" [ 0 ]
    (Orphan.orphans trace ts failure);
  Alcotest.(check (list int)) "antichain rest stable" [ 1; 2 ]
    (Orphan.stable_messages trace ts failure);
  (* The online monitor finds the width-3 witness. *)
  let stamps = Internal_events.of_trace d trace in
  let m = Wcp_monitor.create ~processes:[ 1; 3; 5 ] in
  let witness =
    Array.fold_left
      (fun acc s ->
        match acc with
        | Some _ -> acc
        | None -> Wcp_monitor.add m (Predicate.interval_of_internal s))
      None stamps
  in
  match witness with
  | Some w -> Alcotest.(check int) "three-way witness" 3 (List.length w)
  | None -> Alcotest.fail "max-width witness expected"

(* ---------- Consistent cuts and definitely ---------- *)

module Cuts = Synts_detect.Cuts

(* Tiny computations so lattice walks stay cheap. *)
let tiny_computation =
  QCheck2.Gen.(
    let* n = int_range 2 4 in
    let* seed = int_bound 100000 in
    let* messages = int_range 0 8 in
    return (n, seed, messages))

let tiny_print (n, seed, messages) =
  Printf.sprintf "n=%d seed=%d messages=%d" n seed messages

let build_tiny (n, seed, messages) =
  let rng = Rng.create seed in
  let g = Topology.complete n in
  Workload.random rng ~topology:g ~messages ~internal_prob:0.4 ()

let test_cuts_known () =
  let t = Trace.of_steps_exn ~n:2 [ Send (0, 1) ] in
  Alcotest.(check int) "single message: 2 cuts" 2 (Cuts.count t);
  let t2 = Trace.of_steps_exn ~n:2 [ Local 0; Local 1 ] in
  Alcotest.(check int) "two independent events: 4 cuts" 4 (Cuts.count t2);
  let t3 = Trace.of_steps_exn ~n:2 [ Local 0; Send (0, 1); Local 1 ] in
  (* P0: e0, m; P1: m, e1. Cuts: 00,10,11(m),21,22 -> wait P0 len 2, P1
     len 2; consistent cuts: (0,0),(1,0),(2,1)? m is P0's 2nd, P1's 1st:
     (0,0),(1,0),(2,1),(2,2). *)
  Alcotest.(check int) "chain: 4 cuts" 4 (Cuts.count t3)

let test_cuts_successors_consistent =
  qtest ~count:100 "successors of consistent cuts are consistent"
    tiny_computation tiny_print (fun params ->
      let t = build_tiny params in
      (* BFS a few levels, checking consistency along the way. *)
      let ok = ref true in
      let frontier = ref [ Cuts.initial t ] in
      for _ = 1 to 6 do
        frontier :=
          List.concat_map
            (fun c ->
              let succs = Cuts.successors t c in
              List.iter
                (fun s -> if not (Cuts.consistent t s) then ok := false)
                succs;
              succs)
            !frontier
          |> List.sort_uniq compare
      done;
      !ok)

let test_cuts_count_matches_bruteforce =
  qtest ~count:60 "cut count matches brute-force enumeration"
    QCheck2.Gen.(
      let* n = int_range 2 3 in
      let* seed = int_bound 100000 in
      let* messages = int_range 0 5 in
      return (n, seed, messages))
    tiny_print
    (fun params ->
      let t = build_tiny params in
      let final = Cuts.final t in
      (* Enumerate every vector <= final and count the consistent ones. *)
      let rec enumerate acc p =
        if p = Array.length final then [ Array.of_list (List.rev acc) ]
        else
          List.concat_map
            (fun k -> enumerate (k :: acc) (p + 1))
            (List.init (final.(p) + 1) Fun.id)
      in
      let brute =
        List.length (List.filter (Cuts.consistent t) (enumerate [] 0))
      in
      brute = Cuts.count t)

let test_definitely_known () =
  (* The post-message cut is unavoidable. *)
  let t = Trace.of_steps_exn ~n:2 [ Send (0, 1) ] in
  Alcotest.(check bool) "message cut unavoidable" true
    (Predicate.definitely t (fun c -> c = [| 1; 1 |]));
  (* An off-diagonal cut of two independent events is avoidable. *)
  let t2 = Trace.of_steps_exn ~n:2 [ Local 0; Local 1 ] in
  Alcotest.(check bool) "corner avoidable" false
    (Predicate.definitely t2 (fun c -> c = [| 1; 0 |]));
  Alcotest.(check bool) "but possible" true
    (Predicate.possibly_cut t2 (fun c -> c = [| 1; 0 |]));
  Alcotest.(check bool) "never-true predicate" false
    (Predicate.possibly_cut t2 (fun _ -> false));
  Alcotest.(check bool) "always-true predicate definite" true
    (Predicate.definitely t2 (fun _ -> true))

let test_definitely_implies_possibly =
  qtest ~count:60 "definitely implies possibly" tiny_computation tiny_print
    (fun params ->
      let t = build_tiny params in
      (* A nontrivial derived predicate: some process has executed at
         least half its occurrences while another has not started. *)
      let final = Cuts.final t in
      let pred c =
        Array.exists2 (fun k f -> f > 0 && 2 * k >= f) c final
        && Array.exists (fun k -> k = 0) c
      in
      (not (Predicate.definitely t pred)) || Predicate.possibly_cut t pred)

let test_possibly_cut_agrees_with_wcp =
  (* The interval-based possibly and the lattice-based possibly must agree
     when the predicate is "each monitored process sits at one of its
     internal events". *)
  qtest ~count:100 "lattice possibly = interval possibly" tiny_computation
    tiny_print (fun params ->
      let t = build_tiny params in
      if Trace.internal_count t = 0 then true
      else begin
        let d = Decomposition.best (Topology.complete (Trace.n t)) in
        let stamps = Internal_events.of_trace d t in
        (* Monitored processes: those with at least one internal event. *)
        let by_proc = Hashtbl.create 8 in
        Array.iteri
          (fun id s ->
            let p = s.Internal_events.proc in
            Hashtbl.replace by_proc p
              (id :: Option.value ~default:[] (Hashtbl.find_opt by_proc p)))
          stamps;
        let monitored =
          Hashtbl.fold (fun p ids acc -> (p, List.rev ids) :: acc) by_proc []
          |> List.sort compare
        in
        (* Interval-based. *)
        let interval_ans =
          Predicate.possibly
            (List.map
               (fun (p, ids) ->
                 (p, List.map (fun id -> Predicate.interval_of_internal stamps.(id)) ids))
               monitored)
          <> None
        in
        (* Lattice-based: local index of each internal event within its
           process history. *)
        let local_index = Hashtbl.create 16 in
        List.iter
          (fun p ->
            List.iteri
              (fun k occ ->
                match occ with
                | Trace.Int e -> Hashtbl.replace local_index e.Trace.id (p, k)
                | Trace.Msg _ -> ())
              (Trace.process_history t p))
          (List.init (Trace.n t) Fun.id)
        |> ignore;
        let cut_pred c =
          List.for_all
            (fun (p, ids) ->
              c.(p) > 0
              && List.exists
                   (fun id -> Hashtbl.find local_index id = (p, c.(p) - 1))
                   ids)
            monitored
        in
        let lattice_ans = Predicate.possibly_cut t cut_pred in
        interval_ans = lattice_ans
      end)

let () =
  Alcotest.run "detect"
    [
      ( "cuts",
        [
          Alcotest.test_case "known counts" `Quick test_cuts_known;
          Alcotest.test_case "definitely/possibly basics" `Quick
            test_definitely_known;
          test_cuts_successors_consistent;
          test_cuts_count_matches_bruteforce;
          test_definitely_implies_possibly;
          test_possibly_cut_agrees_with_wcp;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "overlap basics" `Quick test_overlap_basics;
          Alcotest.test_case "possibly on tiny traces" `Quick
            test_possibly_simple;
          test_overlap_equals_concurrency;
          test_possibly_matches_brute;
        ] );
      ( "wcp-monitor",
        [
          Alcotest.test_case "early detection" `Quick
            test_wcp_monitor_early_detection;
          Alcotest.test_case "head elimination" `Quick
            test_wcp_monitor_elimination;
          test_wcp_monitor_matches_offline;
        ] );
      ( "recovery-line",
        [
          Alcotest.test_case "simple" `Quick test_recovery_line_simple;
          Alcotest.test_case "cascade" `Quick test_recovery_line_cascade;
          Alcotest.test_case "unaffected pair" `Quick
            test_recovery_line_unaffected;
          test_recovery_line_maximal;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "single process" `Quick
            test_boundary_single_process;
          Alcotest.test_case "zero messages" `Quick
            test_boundary_zero_messages;
          Alcotest.test_case "max-width poset" `Quick test_boundary_max_width;
        ] );
      ( "orphan",
        [
          Alcotest.test_case "no loss" `Quick test_orphan_no_loss;
          Alcotest.test_case "cascade" `Quick test_orphan_cascade;
          Alcotest.test_case "independent survivor" `Quick
            test_orphan_independent_survives;
          test_orphans_match_oracle;
          test_orphan_properties;
          test_orphans_multi;
        ] );
    ]
