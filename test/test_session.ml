module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Poset = Synts_poset.Poset
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Internal_events = Synts_core.Internal_events
module Session = Synts_session.Session
module Oracle = Synts_check.Oracle
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* Observations go through the unified Ingest entry point; these helpers
   unwrap the outcome kind each event type guarantees. *)
let message session ~src ~dst =
  match Session.observe session (Session.Message { src; dst }) with
  | Session.Stamped v -> v
  | Session.Deferred _ -> assert false

let internal session ~proc =
  match Session.observe session (Session.Internal { proc }) with
  | Session.Deferred ticket -> ticket
  | Session.Stamped _ -> assert false

(* Feed a whole trace through a session, returning message stamps (by
   message id) and all internal-event stamps (by internal id). *)
let feed session trace =
  let k = Trace.message_count trace in
  let msg_stamps = Array.make k [||] in
  let int_stamps =
    Array.make (Trace.internal_count trace)
      { Internal_events.proc = 0; prev = [||]; succ = None; counter = 0 }
  in
  let tickets = Hashtbl.create 16 in
  let mid = ref 0 and iid = ref 0 in
  let absorb resolved =
    List.iter
      (fun (ticket, stamp) ->
        int_stamps.(Hashtbl.find tickets ticket) <- stamp)
      resolved
  in
  List.iter
    (fun step ->
      match step with
      | Trace.Send (src, dst) ->
          msg_stamps.(!mid) <- message session ~src ~dst;
          incr mid;
          absorb (Session.drain_events session)
      | Trace.Local p ->
          let ticket = internal session ~proc:p in
          Hashtbl.replace tickets ticket !iid;
          incr iid)
    (Trace.steps trace);
  absorb (Session.finish_events session);
  (msg_stamps, int_stamps)

let session_of_mode adaptive c =
  let g, trace = Gen.build_computation c in
  let session =
    if adaptive then Session.adaptive ~n:(Trace.n trace) ()
    else Session.of_topology g
  in
  (session, trace)

let mode_gen = QCheck2.Gen.(pair Gen.computation bool)

let mode_print (c, adaptive) =
  Printf.sprintf "%s adaptive=%b" (Gen.computation_print c) adaptive

let test_session_exact =
  qtest ~count:200 "session stamps encode the poset (both modes)" mode_gen
    mode_print (fun (c, adaptive) ->
      let session, trace = session_of_mode adaptive c in
      let msg_stamps, _ = feed session trace in
      let poset = Oracle.message_poset trace in
      let ok = ref true in
      Array.iteri
        (fun i vi ->
          Array.iteri
            (fun j vj ->
              if i <> j && Poset.lt poset i j <> Session.precedes session vi vj
              then ok := false)
            msg_stamps)
        msg_stamps;
      !ok && Session.messages_observed session = Trace.message_count trace)

let test_session_static_matches_online =
  qtest ~count:150 "static session = whole-trace online algorithm"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let session = Session.of_topology g in
      let msg_stamps, _ = feed session trace in
      let expected =
        Online.timestamp_trace (Decomposition.best g) trace
      in
      Array.for_all2 Vector.equal msg_stamps expected)

let test_session_frontier =
  qtest ~count:150 "session frontier = poset maxima" mode_gen mode_print
    (fun (c, adaptive) ->
      let session, trace = session_of_mode adaptive c in
      let _ = feed session trace in
      Trace.message_count trace = 0
      || List.sort compare (List.map fst (Session.frontier session))
         = Poset.maximal_elements (Oracle.message_poset trace))

let test_session_internal_events =
  qtest ~count:200 "session internal stamps capture happened-before"
    mode_gen mode_print (fun (c, adaptive) ->
      let session, trace = session_of_mode adaptive c in
      let _, int_stamps = feed session trace in
      let hb = Oracle.happened_before_internal trace in
      let k = Array.length int_stamps in
      let ok = ref true in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if
            i <> j
            && Session.happened_before session int_stamps.(i) int_stamps.(j)
               <> hb i j
          then ok := false
        done
      done;
      !ok)

let test_session_width =
  qtest ~count:150 "session width = batch Dilworth width" mode_gen mode_print
    (fun (c, adaptive) ->
      let session, trace = session_of_mode adaptive c in
      let _ = feed session trace in
      Session.width session
      = Synts_poset.Dilworth.width (Oracle.message_poset trace))

let test_session_width_leq_dimension =
  qtest ~count:100 "width <= dimension (static mode)" Gen.computation
    Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let session = Session.of_topology g in
      let _ = feed session trace in
      Trace.message_count trace = 0
      || Session.width session <= Session.dimension session)

let test_session_stats () =
  let session = Session.of_topology (Topology.star 4) in
  (* Star topology: every pair ordered. *)
  ignore (message session ~src:0 ~dst:1);
  ignore (message session ~src:2 ~dst:0);
  ignore (message session ~src:0 ~dst:3);
  Alcotest.(check (float 0.0)) "no concurrency on a hub" 0.0
    (Session.concurrency_ratio session);
  Alcotest.(check int) "chain of 3" 3 (Session.longest_chain session);
  Alcotest.(check int) "dimension 1" 1 (Session.dimension session)

let test_session_adaptive_dimension_grows () =
  let session = Session.adaptive ~n:6 () in
  ignore (message session ~src:0 ~dst:1);
  Alcotest.(check int) "one group" 1 (Session.dimension session);
  let v1 = message session ~src:2 ~dst:3 in
  Alcotest.(check int) "two groups" 2 (Session.dimension session);
  let v2 = message session ~src:4 ~dst:5 in
  Alcotest.(check bool) "padded concurrent" true
    (Session.concurrent session v1 v2);
  Alcotest.(check int) "snapshot size" 3
    (Decomposition.size (Session.decomposition session))

let test_session_rejects_unknown_channel () =
  let session = Session.of_topology (Topology.star 3) in
  match message session ~src:1 ~dst:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "channel outside the topology accepted"

(* ---------- streaming-offline sessions ---------- *)

let test_session_offline_stream_exact =
  qtest ~count:200 "offline-stream session stamps encode the poset"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let session = Session.offline_stream ~n:(Trace.n trace) () in
      let msg_stamps, _ = feed session trace in
      let poset = Oracle.message_poset trace in
      let ok = ref true in
      Array.iteri
        (fun i vi ->
          Array.iteri
            (fun j vj ->
              if i <> j && Poset.lt poset i j <> Session.precedes session vi vj
              then ok := false)
            msg_stamps)
        msg_stamps;
      !ok
      && Session.messages_observed session = Trace.message_count trace
      && Session.width session <= Session.dimension session)

let test_offline_stream_no_decomposition () =
  let session = Session.offline_stream ~n:4 () in
  ignore (message session ~src:0 ~dst:1);
  ignore (message session ~src:2 ~dst:3);
  Alcotest.(check int) "two chains" 2 (Session.dimension session);
  match Session.decomposition session with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "offline-stream session produced a decomposition"

(* The packed Offline_sink drives like any other Ingest.S conformer:
   message stamps order-equivalent to batch offline, internal events
   resolved through the shared event stream. *)
let test_offline_sink_conformance =
  qtest ~count:150 "Offline_sink conforms to Ingest.S" Gen.computation
    Gen.computation_print (fun c ->
      let module Ingest = Synts_ingest.Ingest in
      let module Offline_sink = Synts_ingest.Offline_sink in
      let module Offline = Synts_core.Offline in
      let _, trace = Gen.build_computation c in
      let t = Offline_sink.create ~n:(Trace.n trace) () in
      let sink = Offline_sink.ingest t in
      let outcomes = Ingest.feed_trace sink trace in
      let streamed = Ingest.message_stamps outcomes in
      let resolved = Ingest.finish sink in
      let batch = Offline.timestamp_trace trace in
      let k = Array.length batch in
      let ok = ref (Array.length streamed = k) in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if
            !ok && i <> j
            && Offline.precedes streamed.(i) streamed.(j)
               <> Offline.precedes batch.(i) batch.(j)
          then ok := false
        done
      done;
      !ok
      && List.length resolved = Trace.internal_count trace
      && Ingest.processes sink = Trace.n trace
      && Ingest.dimension sink = Offline.Stream.dimension (Offline_sink.stream t))

let () =
  Alcotest.run "session"
    [
      ( "session",
        [
          Alcotest.test_case "stats on a hub" `Quick test_session_stats;
          Alcotest.test_case "adaptive growth" `Quick
            test_session_adaptive_dimension_grows;
          Alcotest.test_case "unknown channel" `Quick
            test_session_rejects_unknown_channel;
          test_session_exact;
          test_session_static_matches_online;
          test_session_frontier;
          test_session_internal_events;
          test_session_width;
          test_session_width_leq_dimension;
        ] );
      ( "offline-stream",
        [
          Alcotest.test_case "no decomposition" `Quick
            test_offline_stream_no_decomposition;
          test_session_offline_stream_exact;
          test_offline_sink_conformance;
        ] );
    ]
