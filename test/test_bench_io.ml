(* The bench baseline format: JSON codec round-trips, file validation,
   and the regression verdicts that `synts bench-diff` exits on. *)

module Json = Synts_bench_io.Json
module Bench_io = Synts_bench_io.Bench_io

let qtest ?(count = 200) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* ---------- JSON codec ---------- *)

let json_gen : Json.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ fix (fun self size ->
      let leaf =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun x -> Json.Num x) (float_bound_inclusive 1e9);
            map (fun i -> Json.Num (float_of_int i)) (int_range (-1000) 1000);
            map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 12));
          ]
      in
      if size = 0 then leaf
      else
        oneof
          [
            leaf;
            map (fun l -> Json.Arr l) (list_size (int_bound 4) (self (size / 2)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_bound 4)
                 (pair (string_size ~gen:printable (int_bound 8))
                    (self (size / 2))));
          ])

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Num x, Json.Num y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Json.Str x, Json.Str y -> x = y
  | Json.Arr x, Json.Arr y ->
      List.length x = List.length y && List.for_all2 json_eq x y
  | Json.Obj x, Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_eq v1 v2)
           x y
  | _ -> false

let test_json_roundtrip =
  qtest "to_string |> of_string round-trips" json_gen
    (fun j -> Json.to_string ~minify:true j)
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> json_eq j j'
      | Error _ -> false)

let test_json_roundtrip_minified =
  qtest "minified round-trip" json_gen
    (fun j -> Json.to_string ~minify:true j)
    (fun j ->
      match Json.of_string (Json.to_string ~minify:true j) with
      | Ok j' -> json_eq j j'
      | Error _ -> false)

let test_json_escapes () =
  let s = "a\"b\\c\nd\te\r\x01" in
  match Json.of_string (Json.to_string (Json.Str s)) with
  | Ok (Json.Str s') -> Alcotest.(check string) "escaped" s s'
  | _ -> Alcotest.fail "string did not round-trip"

let test_json_unicode_escape () =
  (match Json.of_string {|"é😀"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf8" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escapes rejected");
  match Json.of_string {|{"a": [1, 2.5, -3e2], "b": null}|} with
  | Ok j ->
      Alcotest.(check (option (float 0.0)))
        "nested number" (Some (-300.0))
        (match Json.member "a" j with
        | Some (Json.Arr [ _; _; x ]) -> Json.to_num x
        | _ -> None)
  | Error e -> Alcotest.fail e

let test_json_errors () =
  let bad = [ ""; "{"; "[1,"; "tru"; {|{"a" 1}|}; "1 2"; {|"\q"|} ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error e ->
          if not (String.length e > 0) then Alcotest.fail "empty error")
    bad;
  Alcotest.(check string)
    "non-finite prints as null" "null"
    (Json.to_string (Json.Num Float.nan))

(* ---------- baseline files ---------- *)

let sample ns words =
  { Bench_io.ns_per_run = ns; minor_words_per_run = words }

let run_a =
  {
    Bench_io.mode = "full";
    seed = 42;
    groups =
      [
        ("g1", [ ("fast", sample 100.0 50.0); ("slow", sample 5000.0 0.0) ]);
        ("g2", [ ("only-old", sample 10.0 10.0) ]);
      ];
  }

let test_baseline_roundtrip () =
  match Bench_io.of_json (Bench_io.to_json run_a) with
  | Ok t ->
      Alcotest.(check string) "mode" "full" t.Bench_io.mode;
      Alcotest.(check int) "seed" 42 t.Bench_io.seed;
      Alcotest.(check (option (float 0.0)))
        "metric survives" (Some 5000.0)
        (Option.map
           (fun m -> m.Bench_io.ns_per_run)
           (Bench_io.find t ~group:"g1" ~test:"slow"))
  | Error e -> Alcotest.fail e

let test_baseline_file_io () =
  let path = Filename.temp_file "synts-bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bench_io.save path run_a;
      match Bench_io.load path with
      | Ok t -> Alcotest.(check int) "groups" 2 (List.length t.Bench_io.groups)
      | Error e -> Alcotest.fail e)

let test_load_rejects_garbage () =
  let path = Filename.temp_file "synts-bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "{\"schema\": \"other/9\"}");
      match Bench_io.load path with
      | Error e ->
          Alcotest.(check bool) "mentions schema" true
            (String.length e > 0)
      | Ok _ -> Alcotest.fail "bad schema accepted")

(* ---------- diffing ---------- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_diff_verdicts () =
  let newer =
    {
      Bench_io.mode = "full";
      seed = 42;
      groups =
        [
          ( "g1",
            [
              (* +100% time: regression. alloc 50 -> 52 is under the
                 8-word floor: not flagged. *)
              ("fast", sample 200.0 52.0);
              (* 5000 -> 3000 ns: improvement; alloc 0 -> 4 under floor. *)
              ("slow", sample 3000.0 4.0);
            ] );
          ("g2", []);
          ("g3", [ ("only-new", sample 1.0 1.0) ]);
        ];
    }
  in
  let d = Bench_io.diff run_a newer in
  Alcotest.(check int) "one regression" 1 (List.length d.Bench_io.regressions);
  Alcotest.(check int) "one improvement" 1
    (List.length d.Bench_io.improvements);
  Alcotest.(check bool) "has_regression" true (Bench_io.has_regression d);
  let r = List.hd d.Bench_io.regressions in
  Alcotest.(check string) "regressed test" "fast" r.Bench_io.test;
  Alcotest.(check string) "regressed metric" "ns/run" r.Bench_io.metric;
  Alcotest.(check (list (pair string string)))
    "only_old" [ ("g2", "only-old") ] d.Bench_io.only_old;
  Alcotest.(check (list (pair string string)))
    "only_new" [ ("g3", "only-new") ] d.Bench_io.only_new;
  let report = Bench_io.render_diff ~old_run:run_a ~new_run:newer d in
  Alcotest.(check bool) "report says REGRESSION" true
    (contains_sub report "verdict: REGRESSION")

let test_diff_threshold_and_floors () =
  let newer =
    {
      Bench_io.mode = "full";
      seed = 42;
      groups =
        [
          ( "g1",
            [ ("fast", sample 120.0 50.0); ("slow", sample 5000.0 0.0) ] );
          ("g2", [ ("only-old", sample 10.0 10.0) ]);
        ];
    }
  in
  (* +20% is under the default 25% threshold... *)
  let d = Bench_io.diff run_a newer in
  Alcotest.(check bool) "under threshold" false (Bench_io.has_regression d);
  (* ...but over a 10% threshold. *)
  let d = Bench_io.diff ~threshold:0.10 run_a newer in
  Alcotest.(check bool) "over tighter threshold" true
    (Bench_io.has_regression d);
  (* Identical runs never regress, at any threshold. *)
  let d = Bench_io.diff ~threshold:0.01 run_a run_a in
  Alcotest.(check bool) "self-diff clean" false (Bench_io.has_regression d);
  Alcotest.(check int) "self-diff compared" 6 d.Bench_io.compared

let () =
  Alcotest.run "bench_io"
    [
      ( "json",
        [
          test_json_roundtrip;
          test_json_roundtrip_minified;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "unicode + nesting" `Quick test_json_unicode_escape;
          Alcotest.test_case "malformed inputs" `Quick test_json_errors;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "json round-trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "save/load" `Quick test_baseline_file_io;
          Alcotest.test_case "schema validation" `Quick
            test_load_rejects_garbage;
        ] );
      ( "diff",
        [
          Alcotest.test_case "verdicts, floors, coverage" `Quick
            test_diff_verdicts;
          Alcotest.test_case "thresholds" `Quick
            test_diff_threshold_and_floors;
        ] );
    ]
