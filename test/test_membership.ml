module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Membership = Synts_graph.Membership
module Edge_clock = Synts_core.Edge_clock
module Epoch_stamper = Synts_core.Epoch_stamper
module Wire = Synts_clock.Wire
module Plan = Synts_fault.Plan
module Injector = Synts_fault.Injector
module Churn = Synts_fault.Churn
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 100) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let lt a b =
  let le = ref true and ne = ref false in
  Array.iteri
    (fun i x ->
      if x > b.(i) then le := false;
      if x <> b.(i) then ne := true)
    a;
  !le && !ne

let bound_respected m =
  List.for_all
    (fun (i : Membership.epoch_info) -> i.live <= i.bound)
    (Membership.history m)

(* ---------- unit: delta application ---------- *)

let test_basics () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let m = Membership.of_graph g in
  Alcotest.(check int) "triangle is one component" 1 (Membership.width m);
  Alcotest.(check int) "epoch 0" 0 (Membership.epoch m);
  (match Membership.apply m (Membership.Join { proc = 3; edges = [ (3, 0) ] }) with
  | Ok r ->
      Alcotest.(check int) "identity injection" 0 r.map.(0);
      Alcotest.(check int) "remap from epoch 0" 0 r.from_epoch
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "epoch 1" 1 (Membership.epoch m);
  Alcotest.(check int) "universe grew" 4 (Membership.processes m);
  Alcotest.(check bool) "3 active" true (Membership.is_active m 3);
  Alcotest.(check bool) "new channel has a slot" true
    (match Membership.slot_of_edge m 3 0 with _ -> true | exception Not_found -> false);
  (match Membership.apply m (Membership.Leave 1) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "1 inactive" false (Membership.is_active m 1);
  Alcotest.(check bool) "channel 0-1 gone" true
    (match Membership.slot_of_edge m 0 1 with
    | _ -> false
    | exception Not_found -> true);
  Alcotest.(check bool) "join of active proc rejected" true
    (Result.is_error (Membership.apply m (Membership.Join { proc = 0; edges = [] })));
  Alcotest.(check bool) "duplicate add rejected" true
    (Result.is_error (Membership.apply m (Membership.Add_edge (0, 2))));
  Alcotest.(check bool) "drop of absent edge rejected" true
    (Result.is_error (Membership.apply m (Membership.Remove_edge (0, 1))));
  Alcotest.(check bool) "bound respected in every epoch" true (bound_respected m)

let test_delta_strings () =
  let rt d =
    Alcotest.(check bool)
      (Membership.delta_to_string d)
      true
      (Membership.delta_of_string (Membership.delta_to_string d) = Ok d)
  in
  rt (Membership.Join { proc = 4; edges = [ (4, 0); (1, 4) ] });
  rt (Membership.Join { proc = 9; edges = [] });
  rt (Membership.Leave 2);
  rt (Membership.Add_edge (1, 3));
  rt (Membership.Remove_edge (0, 5));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Membership.delta_of_string "melt:3"));
  Alcotest.(check bool) "bad edge rejected" true
    (Result.is_error (Membership.delta_of_string "add:1"))

(* ---------- unit: epoch-tagged Edge_clock ---------- *)

let test_edge_clock_rebase () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let d = Decomposition.best g in
  Alcotest.(check int) "path of 3 is one star" 1 (Decomposition.size d);
  let c0 = Edge_clock.create d ~pid:0 and c1 = Edge_clock.create d ~pid:1 in
  let req = Edge_clock.on_send c0 ~dst:1 in
  let `Ack ack, ts = Edge_clock.receive c1 ~src:0 req in
  let ts' = Edge_clock.on_ack c0 ~dst:1 ack in
  Alcotest.(check bool) "endpoints agree" true (ts = ts');
  let ck = Edge_clock.checkpoint c0 in
  Alcotest.(check int) "checkpoint tagged epoch 0" 0 (Edge_clock.checkpoint_epoch ck);
  (* Rebase into a two-slot epoch where the old component moved to slot 1. *)
  let group_of _ _ = 1 in
  Edge_clock.rebase c0 ~epoch:1 ~dim:2 ~map:[| 1 |] ~group_of;
  Alcotest.(check int) "epoch moved" 1 (Edge_clock.epoch c0);
  Alcotest.(check int) "dimension grew" 2 (Edge_clock.dimension c0);
  Alcotest.(check bool) "vector translated" true
    (Edge_clock.vector c0 = [| 0; 1 |]);
  Alcotest.(check bool) "same-epoch restore now rejects the stale checkpoint"
    true
    (match Edge_clock.restore c0 ck with
    | () -> false
    | exception Invalid_argument _ -> true);
  Edge_clock.reset c0;
  Edge_clock.restore_rebased c0 ck ~map:[| 1 |];
  Alcotest.(check bool) "stale checkpoint restored through the remap" true
    (Edge_clock.vector c0 = [| 0; 1 |]);
  Alcotest.(check bool) "backwards rebase rejected" true
    (match Edge_clock.rebase c0 ~epoch:0 ~dim:2 ~map:[| 0; 1 |] ~group_of with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_wire_epoch_roundtrip () =
  let v = [| 3; 0; 129 |] in
  (match Wire.decode_epoch (Wire.encode_epoch ~epoch:17 v) with
  | Ok (e, v') ->
      Alcotest.(check int) "epoch" 17 e;
      Alcotest.(check bool) "vector" true (v = v')
  | Error e -> Alcotest.fail e);
  match Wire.decode_epoch_framed (Wire.encode_epoch_framed ~epoch:0 [||]) with
  | Ok (e, v') ->
      Alcotest.(check int) "epoch 0" 0 e;
      Alcotest.(check int) "empty vector" 0 (Array.length v')
  | Error e -> Alcotest.fail e

(* ---------- random delta interpretation ---------- *)

(* Turn an opaque random stream into a valid delta for the current
   membership state, or [None] when the drawn op has no applicable
   instance. Drawing through the state keeps generation and shrinking on
   a single integer seed. *)
let random_delta rng m =
  let active = Membership.active m in
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  match Rng.int rng 5 with
  | 0 when active <> [] ->
      (* Fresh process joining with 1–2 channels. *)
      let proc = Membership.processes m in
      let e1 = (proc, pick active) in
      let edges =
        if Rng.chance rng 0.5 && List.length active > 1 then
          let p2 = pick (List.filter (fun p -> p <> snd e1) active) in
          [ e1; (proc, p2) ]
        else [ e1 ]
      in
      Some (Membership.Join { proc; edges })
  | 1 when List.length active > 1 -> Some (Membership.Leave (pick active))
  | 2 when List.length active > 1 ->
      let g = Membership.graph m in
      let u = pick active in
      let others =
        List.filter
          (fun v -> v <> u && not (Graph.has_edge g u v))
          active
      in
      if others = [] then None else Some (Membership.Add_edge (u, pick others))
  | 3 when Graph.edges (Membership.graph m) <> [] ->
      let u, v = pick (Graph.edges (Membership.graph m)) in
      Some (Membership.Remove_edge (u, v))
  | 4 ->
      (* Rejoin of a previously departed process. *)
      let inactive =
        List.filter
          (fun p -> not (Membership.is_active m p))
          (List.init (Membership.processes m) Fun.id)
      in
      if inactive = [] || active = [] then None
      else
        let proc = pick inactive in
        Some (Membership.Join { proc; edges = [ (proc, pick active) ] })
  | _ -> None

let seeded_graph =
  QCheck2.Gen.(
    let* n, edges = Gen.small_graph in
    let* seed = Gen.rng_seed in
    let* steps = int_range 1 60 in
    return (n, edges, seed, steps))

let print_seeded (n, edges, seed, steps) =
  Printf.sprintf "{n=%d; edges=%s; seed=%d; steps=%d}" n
    (String.concat ","
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges))
    seed steps

(* Every epoch produced by an arbitrary valid delta sequence stays
   within min(beta(G), N-2), and the remap chain is a well-formed
   identity injection. *)
let test_bound_invariant =
  qtest ~count:150 "membership: every epoch within min(beta, N-2)"
    seeded_graph print_seeded (fun (n, edges, seed, steps) ->
      let m = Membership.of_graph (Graph.of_edges n edges) in
      let rng = Rng.create seed in
      for _ = 1 to steps do
        match random_delta rng m with
        | None -> ()
        | Some d -> (
            match Membership.apply m d with
            | Ok _ -> ()
            | Error e ->
                QCheck2.Test.fail_reportf "valid delta rejected: %s" e)
      done;
      bound_respected m
      && List.for_all
           (fun (r : Membership.remap) ->
             Array.length r.map = r.from_dim
             && r.to_dim >= r.from_dim
             && Array.to_list r.map = List.init r.from_dim Fun.id)
           (Membership.remaps m))

(* ---------- the exactness property (tentpole) ----------

   Interleave messages and deltas through the epoch stamper; stamps
   recorded under the epoch they were produced in, then translated to
   the final epoch. Comparison outcomes must equal causality (Eq. 1)
   across every epoch boundary. *)

let run_stamper_sim (n, edges, seed, steps) =
  let m = Epoch_stamper.of_graph (Graph.of_edges n edges) in
  let rng = Rng.create seed in
  let stamps = ref [] (* (epoch, stamp, past) newest first *) in
  let nmsgs = ref 0 in
  let past = ref (Array.make n Bytes.empty) in
  let ensure_procs () =
    let procs = Membership.processes (Epoch_stamper.membership m) in
    if procs > Array.length !past then begin
      let old = !past in
      past :=
        Array.init procs (fun i ->
            if i < Array.length old then old.(i) else Bytes.empty)
    end
  in
  for _ = 1 to steps do
    let mb = Epoch_stamper.membership m in
    if Rng.chance rng 0.3 then (
      match random_delta rng mb with
      | None -> ()
      | Some d -> (
          match Epoch_stamper.apply m d with
          | Ok _ -> ensure_procs ()
          | Error e -> failwith ("valid delta rejected: " ^ e)))
    else
      let es = Graph.edges (Membership.graph mb) in
      if es <> [] then begin
        let u, v = List.nth es (Rng.int rng (List.length es)) in
        let ts = Epoch_stamper.stamp m ~src:u ~dst:v in
        let k = !nmsgs in
        incr nmsgs;
        let merged = Bytes.make (k + 1) '\000' in
        let blend b =
          Bytes.iteri
            (fun i c -> if c <> '\000' then Bytes.set merged i '\001')
            b
        in
        blend !past.(u);
        blend !past.(v);
        Bytes.set merged k '\001';
        !past.(u) <- merged;
        !past.(v) <- merged;
        stamps := (Epoch_stamper.epoch m, ts, merged, k) :: !stamps
      end
  done;
  (m, List.rev !stamps)

(* [pj] is message [j]'s causal past, a bitmap over {e original}
   message ids — so comparisons must go through each entry's recorded
   id, not its position in a possibly filtered list. *)
let causal (pj : Bytes.t) id_i id_j =
  id_i <> id_j && id_i < Bytes.length pj && Bytes.get pj id_i <> '\000'

let exact_against_causality mb stamps =
  let arr = Array.of_list stamps in
  let final =
    Array.map (fun (e, v, _, _) -> Membership.translate mb ~from_epoch:e v) arr
  in
  let ok = ref true in
  Array.iteri
    (fun i (_, _, _, id_i) ->
      Array.iteri
        (fun j (_, _, pj, id_j) ->
          if i <> j then
            let c = causal pj id_i id_j in
            if lt final.(i) final.(j) <> c then ok := false)
        arr)
    arr;
  !ok

let test_epoch_stamper_exact =
  qtest ~count:150 "epoch stamper: stamps exact across arbitrary churn"
    seeded_graph print_seeded (fun input ->
      let m, stamps = run_stamper_sim input in
      exact_against_causality (Epoch_stamper.membership m) stamps
      && bound_respected (Epoch_stamper.membership m))

(* Compaction: stamps from epochs >= the retirement floor keep exact
   comparison outcomes after slots frozen before the floor are dropped. *)
let test_compaction_exact =
  qtest ~count:120 "compaction: exact for stamps at or after the floor"
    seeded_graph print_seeded (fun (n, edges, seed, steps) ->
      let m, stamps = run_stamper_sim (n, edges, seed, steps) in
      let mb = Epoch_stamper.membership m in
      let floor = Membership.epoch mb / 2 in
      let r = Epoch_stamper.compact m ~retire_before:floor in
      let kept = List.filter (fun (e, _, _, _) -> e >= floor) stamps in
      r.to_dim <= r.from_dim
      && exact_against_causality mb kept)

(* ---------- churn harness: stale views + crash/partition ---------- *)

let churn_input =
  QCheck2.Gen.(
    let* n, edges = Gen.small_graph in
    let* seed = Gen.rng_seed in
    let* messages = int_range 0 50 in
    let time = map float_of_int (int_range 0 40) in
    let dur = map float_of_int (int_range 1 15) in
    let opt g = oneof [ return None; map Option.some g ] in
    let* crash =
      opt
        (let* at = time in
         let* after = opt dur in
         return
           (match after with
           | None -> Plan.Crash_stop { proc = 0; at }
           | Some d -> Plan.Crash_recover { proc = 0; at; after = d }))
    in
    let* part =
      if n < 2 then return None
      else
        opt
          (let* from_ = time in
           let* len = dur in
           return
             (Plan.Partition { island = [ 1 ]; from_; until_ = from_ +. len }))
    in
    let* churn =
      list_size (int_bound 3)
        (let* at = time in
         oneof
           [
             (let* peer = int_bound (n - 1) in
              let* idx = int_bound 1 in
              let proc = n + idx in
              return (Plan.Join_proc { proc; edges = [ (proc, peer) ]; at }));
             (let* p = int_bound (n - 1) in
              return (Plan.Leave_proc { proc = p; at }));
             (let* p = int_bound (n - 1) in
              let* after = dur in
              return (Plan.Flap { proc = p; at; after }));
           ])
    in
    let plan = List.filter_map Fun.id [ crash; part ] @ churn in
    return (n, edges, seed, messages, plan))

let print_churn_input (n, edges, seed, messages, plan) =
  Printf.sprintf "{n=%d; edges=%s; seed=%d; messages=%d; plan=%s}" n
    (String.concat ","
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges))
    seed messages (Plan.to_string plan)

let test_churn_harness_exact =
  qtest ~count:120
    "churn harness: exact under joins/leaves/flaps + crash + partition"
    churn_input print_churn_input (fun (n, edges, seed, messages, plan) ->
      (match Plan.validate ~n plan with
      | Ok () -> ()
      | Error e -> QCheck2.Test.fail_reportf "generated invalid plan: %s" e);
      let faults = Injector.create ~seed plan in
      match
        Churn.run ~seed ~faults ~graph:(Graph.of_edges n edges) ~messages ()
      with
      | Error e -> QCheck2.Test.fail_reportf "harness failed: %s" e
      | Ok (m, o) ->
          o.mismatches = 0
          && Array.length o.final_stamps = o.delivered
          && bound_respected m)

let test_churn_harness_deterministic () =
  let graph = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let plan =
    [
      Plan.Join_proc { proc = 4; edges = [ (4, 0) ]; at = 6.0 };
      Plan.Leave_proc { proc = 2; at = 12.0 };
      Plan.Flap { proc = 1; at = 20.0; after = 5.0 };
      Plan.Crash_recover { proc = 3; at = 9.0; after = 4.0 };
    ]
  in
  let run () =
    match
      Churn.run ~seed:7
        ~faults:(Injector.create ~seed:7 plan)
        ~graph ~messages:40 ()
    with
    | Ok (_, o) -> o
    | Error e -> Alcotest.fail e
  in
  let o1 = run () and o2 = run () in
  Alcotest.(check bool) "bit-identical outcome" true
    (o1.Churn.stamps = o2.Churn.stamps
    && o1.Churn.final_stamps = o2.Churn.final_stamps);
  Alcotest.(check bool) "run was checked and exact" true (Churn.exact o1);
  Alcotest.(check bool) "churn actually fired" true (o1.Churn.deltas_applied > 0);
  Alcotest.(check bool) "epochs advanced" true (o1.Churn.final_epoch > 0)

let () =
  Alcotest.run "membership"
    [
      ( "membership",
        [
          Alcotest.test_case "deltas and epochs" `Quick test_basics;
          Alcotest.test_case "delta grammar" `Quick test_delta_strings;
          test_bound_invariant;
        ] );
      ( "clock",
        [
          Alcotest.test_case "edge clock rebase" `Quick test_edge_clock_rebase;
          Alcotest.test_case "wire epoch frames" `Quick test_wire_epoch_roundtrip;
        ] );
      ( "exactness",
        [
          test_epoch_stamper_exact;
          test_compaction_exact;
          test_churn_harness_exact;
          Alcotest.test_case "churn harness deterministic" `Quick
            test_churn_harness_deterministic;
        ] );
    ]
